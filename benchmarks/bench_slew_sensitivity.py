"""Sensitivity bench: do Elmore-optimal solutions survive a slew-aware model?

The paper optimizes under basic Elmore + intrinsic-delay models but cites
[15] for a generalized model with signal slew.  This bench re-evaluates the
optimizer's Table II-style solutions under the slew-aware analyzer
(`repro.rctree.slew`): for each net, the unbuffered solution and the
fastest repeater solution are scored under both models.

Expected shapes: the slew model adds delay everywhere, but *less* (in
relative terms) to buffered solutions — repeaters regenerate edges — so the
optimizer's ranking is preserved and its relative advantage grows.
"""

from repro.analysis import Table, save_text
from repro.core.driver_sizing import apply_option_to_tree
from repro.core.msri import insert_repeaters
from repro.netgen import (
    fixed_1x_option,
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)
from repro.rctree import ElmoreAnalyzer, EvalContext
from repro.rctree.slew import SlewAnalyzer
from repro.tech import Repeater


def test_slew_sensitivity(benchmark):
    tech = paper_technology()
    table = Table(
        "slew-aware re-evaluation of Elmore-optimal solutions",
        [
            "seed",
            "unbuf elmore",
            "unbuf slew",
            "buf elmore",
            "buf slew",
            "gain elmore",
            "gain slew",
        ],
    )
    for seed in range(3):
        tree = paper_instance(seed, 8)
        dressed = apply_option_to_tree(tree, fixed_1x_option())
        suite = insert_repeaters(tree, tech, repeater_insertion_options())
        best = suite.min_ard()
        reps = {k: v for k, v in best.assignment().items()
                if isinstance(v, Repeater)}

        unbuf_el = ElmoreAnalyzer(dressed, tech).ard_bruteforce()
        buf_el = ElmoreAnalyzer(
            dressed, tech, context=EvalContext(assignment=reps)
        ).ard_bruteforce()
        unbuf_sl = SlewAnalyzer(dressed, tech).ard()[0]
        buf_sl = SlewAnalyzer(dressed, tech, reps).ard()[0]

        # ranking preserved; relative repeater gain grows under slew
        assert unbuf_sl > unbuf_el and buf_sl > buf_el
        assert buf_sl < unbuf_sl
        gain_el = buf_el / unbuf_el
        gain_sl = buf_sl / unbuf_sl
        assert gain_sl <= gain_el + 0.02  # repeaters never look worse
        table.add_row(
            seed, unbuf_el, unbuf_sl, buf_el, buf_sl,
            f"{gain_el:.3f}", f"{gain_sl:.3f}",
        )
    table.add_note("gain = buffered/unbuffered diameter; lower is better.")

    out = table.render()
    print("\n" + out)
    save_text("slew_sensitivity.txt", out)

    tree = paper_instance(0, 8)
    dressed = apply_option_to_tree(tree, fixed_1x_option())
    benchmark(lambda: SlewAnalyzer(dressed, tech).ard()[0])
