"""Robustness bench: optimized solutions under process variation.

Monte-Carlo corner analysis of the Table II-style solutions: do the
optimizer's repeater assignments keep their advantage across die-to-die
parameter spread, and does buffering tighten or widen the diameter
distribution?

Expected shapes: the buffered solution beats the unbuffered net in every
sampled corner (same corners via a shared seed), and its *relative* spread
(std/mean) is no larger — repeaters break long paths into fewer, smaller RC
products.
"""

from repro.analysis import Table, save_text
from repro.analysis.variation import monte_carlo_ard
from repro.core.driver_sizing import apply_option_to_tree
from repro.core.msri import insert_repeaters
from repro.netgen import (
    fixed_1x_option,
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)
from repro.tech import Repeater

SAMPLES = 80


def test_variation(benchmark):
    tech = paper_technology()
    table = Table(
        f"process-variation Monte Carlo ({SAMPLES} corners per cell)",
        [
            "seed",
            "unbuf nominal",
            "unbuf p95",
            "unbuf spread",
            "buf nominal",
            "buf p95",
            "buf spread",
        ],
    )
    for seed in range(3):
        tree = paper_instance(seed, 8)
        dressed = apply_option_to_tree(tree, fixed_1x_option())
        suite = insert_repeaters(tree, tech, repeater_insertion_options())
        best = suite.min_ard()
        reps = {k: v for k, v in best.assignment().items()
                if isinstance(v, Repeater)}

        unbuf = monte_carlo_ard(dressed, tech, samples=SAMPLES, seed=seed)
        buf = monte_carlo_ard(dressed, tech, reps, samples=SAMPLES, seed=seed)

        assert all(b < u for b, u in zip(buf.samples, unbuf.samples)), (
            "the optimized solution must win in every sampled corner"
        )
        assert buf.relative_spread <= unbuf.relative_spread + 0.02

        table.add_row(
            seed,
            unbuf.nominal,
            unbuf.p95,
            f"{100 * unbuf.relative_spread:.1f}%",
            buf.nominal,
            buf.p95,
            f"{100 * buf.relative_spread:.1f}%",
        )
    table.add_note("spread = std/mean of the sampled ARD distribution.")

    out = table.render()
    print("\n" + out)
    save_text("variation.txt", out)

    tree = paper_instance(0, 8)
    dressed = apply_option_to_tree(tree, fixed_1x_option())
    benchmark.pedantic(
        monte_carlo_ard,
        args=(dressed, tech),
        kwargs={"samples": SAMPLES},
        rounds=1,
        iterations=1,
    )
