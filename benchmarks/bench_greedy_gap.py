"""Ablation: greedy iterative insertion vs the optimal DP.

Quantifies what the paper's exact algorithm buys over the obvious
heuristic: insert one best repeater at a time until no insertion helps.
For each net we report the greedy endpoint and the optimal diameter at the
same cost, plus the cost the optimal algorithm needs to match the greedy
diameter.

Expected shape: greedy is never better (the DP is exact); on some nets it
is strictly worse or overspends.
"""

from repro.analysis import Table, save_text
from repro.baselines import greedy_insertion
from repro.core.driver_sizing import apply_option_to_tree
from repro.core.msri import insert_repeaters
from repro.netgen import (
    fixed_1x_option,
    paper_instance,
    paper_repeater_library,
    paper_technology,
    repeater_insertion_options,
)


def test_greedy_gap(benchmark):
    tech = paper_technology()
    lib = paper_repeater_library()
    table = Table(
        "greedy vs optimal repeater insertion (10-pin nets)",
        ["seed", "greedy diam", "greedy cost", "optimal diam @cost", "gap %"],
    )
    gaps = []
    for seed in range(3):
        tree = paper_instance(seed, 10)
        dressed = apply_option_to_tree(tree, fixed_1x_option())
        optimal = insert_repeaters(tree, tech, repeater_insertion_options())
        steps = greedy_insertion(dressed, tech, lib)
        final = steps[-1]
        # greedy cost excludes terminal dressing; optimal includes it (2/pin)
        base_cost = 2.0 * 10
        best_at_cost = min(
            s.ard
            for s in optimal.solutions
            if s.cost <= final.cost + base_cost + 1e-9
        )
        gap = final.ard / best_at_cost - 1.0
        gaps.append(gap)
        assert final.ard >= best_at_cost - 1e-6
        table.add_row(seed, final.ard, final.cost + base_cost, best_at_cost,
                      f"{100 * gap:.1f}")

    out = table.render()
    print("\n" + out)
    save_text("greedy_gap.txt", out)

    tree = apply_option_to_tree(paper_instance(0, 10), fixed_1x_option())
    benchmark.pedantic(
        greedy_insertion, args=(tree, tech, lib), rounds=1, iterations=1
    )
