"""Campaign runner scaling: serial vs sharded execution of the same grid.

The acceptance bar for the parallel runner is twofold: the ``--workers N``
path must produce *results identical* to the serial path (sharding only
changes where a job runs, never its inputs), and on hardware with enough
cores it must deliver real wall-clock speedup (≥2× at 4 workers on a
4-core machine; the paper-scale grids of Tables II–IV are embarrassingly
parallel).  Both are asserted here; the identity check runs everywhere,
the speedup check only where the cores exist to honour it.

Output lands in ``benchmarks/results/campaign_parallel.txt`` with the
core count recorded, so a reported ratio is always read against the
hardware that produced it.
"""

import json
import os
import time

from repro.analysis import save_text
from repro.analysis.campaign import CampaignConfig, run_campaign

WORKERS = 4
CFG = CampaignConfig(seeds=(0, 1, 2), sizes=(10,), label="parallel-bench")


def _normalized(campaign) -> dict:
    d = campaign.to_dict()
    for key in ("started_at", "elapsed_seconds", "metrics", "workers"):
        d.pop(key)
    for r in d["results"]:
        r.pop("sizing_runtime_s")
        r.pop("rep_runtime_s")
    return d


def test_campaign_parallel_identity_and_speedup():
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )

    t0 = time.perf_counter()
    serial = run_campaign(CFG)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_campaign(CFG, workers=WORKERS)
    parallel_s = time.perf_counter() - t0

    # sharding must not perturb a single bit of the science
    assert json.dumps(_normalized(serial), sort_keys=True) == json.dumps(
        _normalized(parallel), sort_keys=True
    )

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    lines = [
        f"campaign parallel scaling ({len(CFG.jobs())} jobs, "
        f"--workers {WORKERS})",
        f"cores available: {cores}",
        f"serial wall-clock:   {serial_s:.2f} s",
        f"parallel wall-clock: {parallel_s:.2f} s",
        f"speedup: {speedup:.2f}x",
        "results identical to the serial run: yes",
    ]
    if cores < WORKERS:
        lines.append(
            f"note: only {cores} core(s) — pool overhead dominates; the "
            f">=2x bar applies on >=4 cores"
        )
    out = "\n".join(lines)
    print("\n" + out)
    save_text("campaign_parallel.txt", out)

    if cores >= WORKERS:
        assert speedup >= 2.0, f"expected >=2x on {cores} cores, got {speedup:.2f}x"
