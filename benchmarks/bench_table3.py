"""Table III: fastest driver-sizing vs repeater-insertion solutions.

Six sample topologies (the first three seeds of each cardinality), reporting
the highest-performance solution of each approach with its cost in
equivalent 1X buffers — the paper's per-net view behind Table II's averages.
Expected shape: on every net the repeater solution's diameter is at or
below the sizing solution's.
"""

from repro.analysis import save_text, table3


def test_table3(benchmark, instance_results):
    by_size = {}
    for r in instance_results:
        by_size.setdefault(r.n_pins, []).append(r)
    samples = []
    for n_pins in sorted(by_size):
        samples.extend(by_size[n_pins][:3])

    table = benchmark(table3, samples)
    out = table.render()
    print("\n" + out)
    save_text("table3.txt", out)

    for r in samples:
        assert r.rep_min_ard <= r.sizing_min_ard + 1e-9
        assert r.rep_min_ard_cost > 2 * r.n_pins  # repeaters actually used
