"""MSRI candidate-growth curve: exact pre-filters and the width cap.

The DP's per-node candidate sets grow quickly with net size (the paper's
Sec. V complexity discussion); ``docs/PRUNING.md`` describes the two
bounded-growth mechanisms this benchmark measures on the Table II
workload:

1. **Exact pre-filters** (``prefilter=True``, the default) — the Shi–Li
   style predictive prescreen inside ``prune_one`` plus the sorted-front
   candidate sweep before MFS.  Results are bit-identical to the pure
   Fig. 4 pruner; only the wall-clock changes.  The benchmark asserts the
   frontier identity on every measured net.
2. **Width cap** (``max_front_width`` + ``lossy``) — deterministic
   thinning of oversized fronts.  The capped column shows the p95/max
   surviving front widths dropping to the cap, the growth-curve evidence
   that the cap bounds the DP's working set.

Run directly (writes ``benchmarks/results/msri_scaling.txt``)::

    python benchmarks/bench_msri_scaling.py

Larger nets can be appended with ``--sizes``; note that the exact-mode
speedup *tapers* as nets grow, because the fraction of candidate pairs
whose dominance is genuinely partial rises with front width (11.4% at 28
pins vs 8.5% at 22 on this workload) and the partial case pays for the
full region machinery in both variants — measured speedups decay from
~1.7x on the default curve to ~1.4-1.5x by 28 pins.  The default curve
ends where the prescreen's advantage clears run-to-run machine noise
with margin.

CI runs the smoke variant on a mid-size net::

    python benchmarks/bench_msri_scaling.py --sizes 12 --cap 10 \\
        --assert-front-cap --no-save
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import Table, save_text
from repro.core.msri import insert_repeaters
from repro.netgen import (
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)
from repro.netgen.workloads import PAPER_SPACING_UM


def run_one(
    pins: int,
    seed: int,
    cap: int,
    spacing: float = PAPER_SPACING_UM,
    repeats: int = 1,
) -> dict:
    """Measure one net: exact baseline vs exact prefilter vs lossy cap.

    With ``repeats > 1`` the baseline/prefilter pair is timed that many
    times, interleaved, and the minimum per variant is reported — the
    usual defense against scheduler noise on shared machines.
    """
    tech = paper_technology()
    tree = paper_instance(seed, pins, spacing)

    t_base = t_fast = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        base = insert_repeaters(
            tree, tech, repeater_insertion_options(prefilter=False)
        )
        dt = time.perf_counter() - t0
        t_base = dt if t_base is None else min(t_base, dt)

        t0 = time.perf_counter()
        fast = insert_repeaters(tree, tech, repeater_insertion_options())
        dt = time.perf_counter() - t0
        t_fast = dt if t_fast is None else min(t_fast, dt)

    capped = insert_repeaters(
        tree,
        tech,
        repeater_insertion_options(max_front_width=cap, lossy=True),
    )

    return {
        "pins": pins,
        "t_base": t_base,
        "t_fast": t_fast,
        "speedup": t_base / t_fast,
        # bit-identical is the exact-mode contract, not an approximation
        "identical": base.tradeoff() == fast.tradeoff(),
        "frontier": len(fast.solutions),
        "p95_exact": fast.stats.front_width_p95(),
        "max_exact": fast.stats.max_set_size,
        "p95_capped": capped.stats.front_width_p95(),
        "max_capped": capped.stats.max_set_size,
    }


def render(rows, cap: int) -> str:
    table = Table(
        "MSRI candidate growth: exact pre-filters and the width cap "
        f"(cap={cap}, lossy)",
        [
            "pins",
            "baseline (s)",
            "prefilter (s)",
            "speedup",
            "identical",
            "frontier",
            "p95 width",
            "max width",
            f"p95 capped",
            f"max capped",
        ],
    )
    for r in rows:
        table.add_row(
            r["pins"],
            f"{r['t_base']:.2f}",
            f"{r['t_fast']:.2f}",
            f"{r['speedup']:.2f}x",
            "yes" if r["identical"] else "NO",
            r["frontier"],
            r["p95_exact"],
            r["max_exact"],
            r["p95_capped"],
            r["max_capped"],
        )
    table.add_note(
        "baseline: pure Fig. 4 MFS (prefilter=False); prefilter: exact "
        "Shi-Li style prescreen + candidate sweep (bit-identical frontier "
        "asserted per row); capped: max_front_width with lossy thinning."
    )
    table.add_note("widths are per-node surviving-front sizes (docs/PRUNING.md).")
    return table.render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10, 12, 14, 16]
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cap", type=int, default=12)
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="time each variant this many times and report the minimum",
    )
    parser.add_argument(
        "--assert-front-cap",
        action="store_true",
        help="fail unless every capped-run front width is <= the cap",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        help="fail unless the largest net's exact speedup meets this factor",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="skip writing benchmarks/results"
    )
    args = parser.parse_args(argv)

    rows = [
        run_one(pins, args.seed, args.cap, repeats=args.repeats)
        for pins in sorted(args.sizes)
    ]
    out = render(rows, args.cap)
    print(out)
    if not args.no_save:
        save_text("msri_scaling.txt", out)

    status = 0
    for r in rows:
        if not r["identical"]:
            print(
                f"FAIL: pins={r['pins']}: prefiltered frontier differs from "
                f"the MFS-only baseline (exact-mode contract)",
                file=sys.stderr,
            )
            status = 1
    if args.assert_front_cap:
        for r in rows:
            if r["max_capped"] > args.cap:
                print(
                    f"FAIL: pins={r['pins']}: capped run kept a front of "
                    f"{r['max_capped']} > cap {args.cap}",
                    file=sys.stderr,
                )
                status = 1
    if args.assert_speedup is not None:
        largest = rows[-1]
        if largest["speedup"] < args.assert_speedup:
            print(
                f"FAIL: pins={largest['pins']}: speedup "
                f"{largest['speedup']:.2f}x < {args.assert_speedup}x",
                file=sys.stderr,
            )
            status = 1
    return status


def test_msri_scaling():
    """Suite entry: one small net, identity + cap assertions."""
    r = run_one(pins=8, seed=0, cap=8)
    assert r["identical"], "exact mode must reproduce the baseline frontier"
    assert r["max_capped"] <= 8
    assert r["p95_capped"] <= r["p95_exact"] or r["p95_exact"] == 0


if __name__ == "__main__":
    sys.exit(main())
