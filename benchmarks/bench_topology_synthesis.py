"""Extension bench: ARD-driven topology synthesis.

The paper closes by observing that its results enable "a multisource
version of the P-Tree timing-driven Steiner router".  This bench measures
what the ARD objective buys at topology-construction time: for seeded
terminal sets, it compares the MST-based topology's unaugmented RC-diameter
against the local-search topology of
:func:`repro.steiner.synthesize_topology`.

Expected shape: a consistent single-digit-percent diameter improvement, at
a modest wirelength premium that a positive wirelength weight can cap.
"""

from repro.analysis import Table, save_text
from repro.core.ard import ard
from repro.netgen import paper_net_spec, paper_technology, random_points
from repro.steiner import (
    rectilinear_mst,
    synthesize_topology,
    tree_from_terminal_edges,
)
from repro.tech import Terminal


def make_terms(seed, n):
    spec = paper_net_spec()
    return [
        Terminal(
            f"p{i}",
            x,
            y,
            capacitance=spec.capacitance,
            resistance=spec.resistance,
            intrinsic_delay=spec.intrinsic_delay,
        )
        for i, (x, y) in enumerate(random_points(seed, n))
    ]


def test_topology_synthesis(benchmark):
    tech = paper_technology()
    table = Table(
        "ARD-driven topology synthesis vs MST topology (8-pin nets)",
        ["seed", "MST diam", "synth diam", "gain %", "MST WL", "synth WL"],
    )
    gains = []
    for seed in range(6):
        terms = make_terms(seed, 8)
        mst_tree = tree_from_terminal_edges(
            terms, rectilinear_mst([(t.x, t.y) for t in terms])
        )
        mst_ard = ard(mst_tree, tech).value
        res = synthesize_topology(terms, tech)
        gain = 1.0 - res.ard / mst_ard
        gains.append(gain)
        assert res.ard <= mst_ard + 1e-9
        table.add_row(
            seed,
            mst_ard,
            res.ard,
            f"{100 * gain:.1f}",
            mst_tree.total_wire_length(),
            res.wirelength,
        )

    assert sum(gains) / len(gains) > 0.02  # consistent average improvement
    out = table.render()
    print("\n" + out)
    save_text("topology_synthesis.txt", out)

    terms = make_terms(0, 8)
    benchmark.pedantic(
        synthesize_topology, args=(terms, tech), rounds=1, iterations=1
    )
