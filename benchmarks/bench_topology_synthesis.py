"""Extension bench: ARD-driven topology synthesis.

The paper closes by observing that its results enable "a multisource
version of the P-Tree timing-driven Steiner router".  This bench measures
what the ARD objective buys at topology-construction time: for seeded
terminal sets, it compares the MST-based topology's unaugmented RC-diameter
against the local-search topology of
:func:`repro.steiner.synthesize_topology`.

Expected shape: a consistent single-digit-percent diameter improvement, at
a modest wirelength premium that a positive wirelength weight can cap.

A second section runs the ``objective="msri"`` search — each candidate
scored by its post-insertion minimum ARD — and compares the cached path
(score memo + shared :class:`~repro.core.msri_cache.MSRICache` with
``quantize_bound``) against a cold replica of the same loop that calls
``insert_repeaters`` per candidate with no reuse.  Both follow the same
move sequence (the cache is value-identical to the cold DP), so the
final ARD must match exactly and the ratio is pure reuse speedup.
"""

import time

from repro.analysis import Table, save_text
from repro.core import MSRICache, insert_repeaters
from repro.core.ard import ard
from repro.netgen import (
    paper_net_spec,
    paper_technology,
    random_points,
    repeater_insertion_options,
)
from repro.steiner import (
    rectilinear_mst,
    synthesize_topology,
    tree_from_terminal_edges,
)
from repro.steiner.topology_search import _component
from repro.tech import Terminal


def make_terms(seed, n):
    spec = paper_net_spec()
    return [
        Terminal(
            f"p{i}",
            x,
            y,
            capacitance=spec.capacitance,
            resistance=spec.resistance,
            intrinsic_delay=spec.intrinsic_delay,
        )
        for i, (x, y) in enumerate(random_points(seed, n))
    ]


def _cold_msri_search(terms, tech, opts, max_iterations):
    """Replica of the ``objective="msri"`` edge-exchange loop with no
    reuse: every candidate pays a full cold ``insert_repeaters``, and
    recurring candidates are re-scored (the pre-cache search cost).

    Returns ``(final ard, candidates scored)``.
    """
    n = len(terms)
    edges = list(rectilinear_mst([(t.x, t.y) for t in terms]))
    scored = 0

    def score(edge_list):
        nonlocal scored
        scored += 1
        key = tuple(sorted((min(a, b), max(a, b)) for a, b in edge_list))
        tree = tree_from_terminal_edges(terms, key)
        return insert_repeaters(tree, tech, opts).min_ard().ard

    best = score(edges)
    for _ in range(max_iterations):
        move = None
        for k, removed in enumerate(edges):
            remaining = edges[:k] + edges[k + 1:]
            side_a = _component(n, remaining, removed[0])
            for i in sorted(side_a):
                for j in range(n):
                    if j in side_a or (i, j) == removed or (j, i) == removed:
                        continue
                    s = score(remaining + [(i, j)])
                    if s < best - 1e-9 and (move is None or s < move[0]):
                        move = (s, k, (i, j))
        if move is None:
            break
        best, k, new_edge = move
        edges = edges[:k] + edges[k + 1:] + [new_edge]
    return best, scored


def msri_section(seeds=(0, 1, 2), pins=6, max_iterations=3):
    tech = paper_technology()
    opts = repeater_insertion_options(quantize_bound=True)
    table = Table(
        f"MSRI-objective synthesis: cached vs cold scoring "
        f"({pins}-pin nets, <= {max_iterations} moves)",
        [
            "seed",
            "cold (s)",
            "cached (s)",
            "speedup",
            "cold scored",
            "evals",
            "memo hits",
            "cache hit%",
            "same ard",
        ],
    )
    for seed in seeds:
        terms = make_terms(seed, pins)

        t0 = time.perf_counter()
        cold_ard, cold_scored = _cold_msri_search(
            terms, tech, opts, max_iterations
        )
        t_cold = time.perf_counter() - t0

        cache = MSRICache()
        t0 = time.perf_counter()
        res = synthesize_topology(
            terms,
            tech,
            objective="msri",
            msri_options=opts,
            msri_cache=cache,
            max_iterations=max_iterations,
        )
        t_cached = time.perf_counter() - t0

        # the cache is value-identical to the cold DP, so both searches
        # take the same moves and land on the same optimized diameter
        same = abs(res.ard - cold_ard) < 1e-9
        assert same, f"seed {seed}: cached search diverged from cold"
        hit_rate = cache.hits / max(1, cache.hits + cache.misses)
        table.add_row(
            seed,
            f"{t_cold:.3f}",
            f"{t_cached:.3f}",
            f"{t_cold / t_cached:.1f}x",
            cold_scored,
            res.evaluations,
            res.memo_hits,
            f"{100 * hit_rate:.0f}",
            "yes" if same else "NO",
        )
    table.add_note(
        "cold: per-candidate insert_repeaters, no memo, recurring "
        "candidates re-scored; cached: canonical-edge-set score memo + "
        "shared MSRICache (quantize_bound) via objective='msri'."
    )
    return table.render()


def test_topology_synthesis(benchmark):
    tech = paper_technology()
    table = Table(
        "ARD-driven topology synthesis vs MST topology (8-pin nets)",
        [
            "seed",
            "MST diam",
            "synth diam",
            "gain %",
            "MST WL",
            "synth WL",
            "evals",
            "memo hits",
        ],
    )
    gains = []
    for seed in range(6):
        terms = make_terms(seed, 8)
        mst_tree = tree_from_terminal_edges(
            terms, rectilinear_mst([(t.x, t.y) for t in terms])
        )
        mst_ard = ard(mst_tree, tech).value
        res = synthesize_topology(terms, tech)
        gain = 1.0 - res.ard / mst_ard
        gains.append(gain)
        assert res.ard <= mst_ard + 1e-9
        table.add_row(
            seed,
            mst_ard,
            res.ard,
            f"{100 * gain:.1f}",
            mst_tree.total_wire_length(),
            res.wirelength,
            res.evaluations,
            res.memo_hits,
        )

    assert sum(gains) / len(gains) > 0.02  # consistent average improvement
    out = table.render() + "\n\n" + msri_section()
    print("\n" + out)
    save_text("topology_synthesis.txt", out)

    terms = make_terms(0, 8)
    benchmark.pedantic(
        synthesize_topology, args=(terms, tech), rounds=1, iterations=1
    )
