"""Table II: driver sizing vs optimal repeater insertion, normalized.

Protocol (paper Sec. VI): seeded random nets of 10 and 20 terminals on a
1 cm grid, Steiner topologies, insertion points at <= 800 um; all terminals
are bidirectional with zero boundary arrival/downstream times; the repeater
is a pair of 1X buffers; the driver library pairs kX drivers/receivers.

Reported, per cardinality, normalized to the min-cost solution:
the minimum diameter achievable by sizing and its cost; the cheapest
repeater solution matching that diameter; and the minimum-diameter repeater
solution with its cost.

Paper reference shape (10 pins): sizing diameter ratio 0.73, repeater 0.55,
and the repeater solution matching the sizing diameter is far cheaper than
the sized solution.  The benchmark timing covers one representative 10-pin
repeater-insertion run.
"""

from repro.analysis import save_text, table2
from repro.core.msri import insert_repeaters
from repro.netgen import (
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)


def test_table2(benchmark, instance_results):
    table = table2(instance_results)
    out = table.render()
    print("\n" + out)
    save_text("table2.txt", out)

    # shape assertions against the paper
    for r in instance_results:
        assert r.rep_min_ard <= r.sizing_min_ard + 1e-9, (
            "repeater insertion must reach at least the sizing diameter"
        )
        assert r.sizing_min_ard <= r.base_ard + 1e-9
        if r.rep_cost_at_sizing_ard is not None:
            assert r.rep_cost_at_sizing_ard <= r.sizing_min_ard_cost + 1e-9, (
                "matching the sizing diameter by repeaters should not cost "
                "more than the sizing itself (paper Sec. VI)"
            )

    # representative timed run
    tree = paper_instance(0, 10)
    tech = paper_technology()
    benchmark.pedantic(
        insert_repeaters,
        args=(tree, tech, repeater_insertion_options()),
        rounds=1,
        iterations=1,
    )
