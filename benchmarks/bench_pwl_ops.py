"""Microbenchmarks for the Eq. (3) PWL primitives.

The paper requires every primitive to run in time linear in the number of
participating segments; these benchmarks record the constants behind that
bound for the operations the DP performs millions of times.
"""

import numpy as np
import pytest

from repro.core.pwl import PWL, maximum_all


def random_pwl(rng, pieces, x_max=100.0):
    xs = np.sort(rng.uniform(0.0, x_max, size=pieces - 1))
    xs = [0.0] + [float(x) for x in xs] + [x_max]
    ys = [float(rng.uniform(0.0, 500.0)) for _ in xs]
    return PWL.from_breakpoints(xs, ys)


@pytest.fixture(scope="module")
def pwls():
    rng = np.random.default_rng(0)
    return [random_pwl(rng, pieces=8) for _ in range(64)]


def test_bench_maximum(benchmark, pwls):
    f, g = pwls[0], pwls[1]
    out = benchmark(f.maximum, g)
    assert not out.is_empty


def test_bench_maximum_all(benchmark, pwls):
    out = benchmark(maximum_all, pwls)
    assert not out.is_empty


def test_bench_shift(benchmark, pwls):
    out = benchmark(pwls[0].shift, 7.5)
    assert not out.is_empty


def test_bench_add_linear(benchmark, pwls):
    out = benchmark(pwls[0].add_linear, 3.0, 2.0)
    assert not out.is_empty


def test_bench_region_leq(benchmark, pwls):
    region = benchmark(pwls[0].region_leq, pwls[1])
    assert region is not None


def test_bench_evaluate(benchmark, pwls):
    val = benchmark(pwls[0].evaluate, 42.0)
    assert np.isfinite(val)


def test_maximum_scales_linearly(benchmark):
    """Sanity on the linear-time claim: 10x the segments ~ 10x the time."""
    import time

    rng = np.random.default_rng(1)
    small = [random_pwl(rng, 16) for _ in range(2)]
    large = [random_pwl(rng, 160) for _ in range(2)]

    def best_of(fn, n=50):
        best = float("inf")
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_small = best_of(lambda: small[0].maximum(small[1]))
    t_large = best_of(lambda: large[0].maximum(large[1]))
    assert t_large < 40 * t_small  # linear-ish, generous CI margin
    benchmark(lambda: large[0].maximum(large[1]))
