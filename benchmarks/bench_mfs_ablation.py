"""Ablation A1: divide-and-conquer MFS (Fig. 4) vs naive pairwise pruning.

The paper motivates the divide-and-conquer pruner by the hope that
"many of the suboptimal solutions will be discarded at relatively deep
levels of the recursion and thus we can avoid pair-wise comparisons at
higher levels".  Both pruners are exact (the MSRI tests assert identical
frontiers); this benchmark quantifies the runtime difference on a full
10-pin optimization.
"""

import time

from repro.analysis import Table, save_text
from repro.core.msri import insert_repeaters
from repro.netgen import (
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)


def _run(tree, tech, use_dnc):
    return insert_repeaters(
        tree, tech, repeater_insertion_options(use_divide_and_conquer=use_dnc)
    )


def test_mfs_ablation(benchmark):
    tech = paper_technology()
    table = Table(
        "MFS ablation: Fig. 4 divide-and-conquer vs naive pairwise",
        ["seed", "D&C (s)", "pairwise (s)", "frontier size", "same frontier"],
    )
    for seed in range(3):
        tree = paper_instance(seed, 10)
        t0 = time.perf_counter()
        dnc = _run(tree, tech, True)
        t_dnc = time.perf_counter() - t0
        t0 = time.perf_counter()
        pair = _run(tree, tech, False)
        t_pair = time.perf_counter() - t0
        same = all(
            abs(a[0] - b[0]) < 1e-6 and abs(a[1] - b[1]) < 1e-6
            for a, b in zip(dnc.tradeoff(), pair.tradeoff())
        ) and len(dnc.solutions) == len(pair.solutions)
        assert same, "both pruners must produce the identical optimal frontier"
        table.add_row(seed, t_dnc, t_pair, len(dnc.solutions), "yes")

    out = table.render()
    print("\n" + out)
    save_text("mfs_ablation.txt", out)

    tree = paper_instance(0, 10)
    benchmark.pedantic(_run, args=(tree, tech, True), rounds=1, iterations=1)
