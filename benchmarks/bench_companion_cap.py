"""Sensitivity bench: the companion-capacitance modelling knob.

The paper's Fig. 8 repeater model lets the driving buffer ignore its
anti-parallel companion's input capacitance (the companion is tri-stated
but its gate still physically loads the node).  The Elmore engine carries
an ``include_companion_cap`` switch; this bench quantifies how much that
modelling choice moves the reported diameters on real solutions.

Expected shape: a small constant-per-repeater delay increase — the
companion load ``r * c_companion`` per crossing — i.e. a few percent, which
is why the paper's simplification is benign.
"""

import pytest

from repro.analysis import Table, save_text
from repro.core.ard import ard
from repro.rctree import EvalContext
from repro.core.driver_sizing import apply_option_to_tree
from repro.core.msri import insert_repeaters
from repro.netgen import (
    fixed_1x_option,
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)
from repro.tech import Repeater


def test_companion_cap_sensitivity(benchmark):
    tech = paper_technology()
    table = Table(
        "companion-capacitance sensitivity (fastest solutions)",
        ["seed", "repeaters", "diam paper model", "diam with companion", "delta %"],
    )
    for seed in range(3):
        tree = paper_instance(seed, 8)
        dressed = apply_option_to_tree(tree, fixed_1x_option())
        suite = insert_repeaters(tree, tech, repeater_insertion_options())
        best = suite.min_ard()
        reps = {k: v for k, v in best.assignment().items()
                if isinstance(v, Repeater)}
        base = ard(dressed, tech, context=EvalContext(assignment=reps)).value
        comp = ard(
            dressed,
            tech,
            context=EvalContext(assignment=reps, include_companion_cap=True),
        ).value
        assert comp >= base  # extra load can only slow the net
        delta = comp / base - 1.0
        assert delta < 0.10, "companion load should be a small correction"
        table.add_row(seed, len(reps), base, comp, f"{100 * delta:.2f}")

    out = table.render()
    print("\n" + out)
    save_text("companion_cap.txt", out)

    tree = paper_instance(0, 8)
    dressed = apply_option_to_tree(tree, fixed_1x_option())
    ctx = EvalContext(include_companion_cap=True)
    benchmark(lambda: ard(dressed, tech, context=ctx).value)
