"""Shared fixtures for the benchmark suite.

The expensive artifact — optimizing every seeded net in both modes — is
computed once per session and shared by the Table II/III/IV benchmarks.

Set ``REPRO_FULL=1`` to run the paper's full protocol (ten nets per
cardinality); the default uses three nets per cardinality so the whole
benchmark suite finishes in a few minutes while preserving every reported
shape.  EXPERIMENTS.md records a full run.
"""

import os

import pytest

from repro.analysis.experiments import run_instance

SIZES = (10, 20)


def n_seeds() -> int:
    return 10 if os.environ.get("REPRO_FULL") == "1" else 3


_cache = {}


@pytest.fixture(scope="session")
def instance_results():
    """InstanceResult for every (seed, size) pair of the protocol."""
    key = n_seeds()
    if key not in _cache:
        results = []
        for n_pins in SIZES:
            for seed in range(key):
                results.append(run_instance(seed, n_pins))
        _cache[key] = results
    return _cache[key]
