"""Serving-layer latency/throughput benchmark with byte-identity gate.

Starts an in-process :class:`~repro.serve.server.TimingServer` on an
ephemeral loopback port and drives it with the load generator: N
concurrent client sessions, each streaming a seeded edit sequence and
reading the re-evaluated ARD after every edit.  Afterwards every session
is replayed serially on a local engine and the streamed responses are
compared **byte-for-byte** against the re-encoded frames — the benchmark
asserts zero mismatches before it reports a single latency number, so a
fast-but-wrong server cannot pass.

Reported: total edit round-trips, wall-clock, aggregate throughput and
the p50/p99/max per-edit latency across all sessions.

Run directly (CI's ``serve-smoke`` job)::

    python benchmarks/bench_serve.py --sessions 8 --edits 50

or via the benchmark suite (``pytest benchmarks/bench_serve.py``).
The committed numbers live in ``benchmarks/results/serve_latency.txt``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import Table, save_text
from repro.serve.loadgen import run_load
from repro.serve.server import ServeConfig, start_in_thread


def run_serve_load(
    sessions: int = 8,
    edits: int = 50,
    seed: int = 0,
    engine: str = "incremental",
):
    """One measured load-generator pass against a fresh in-process server."""
    server, stop = start_in_thread(ServeConfig(engine=engine))
    try:
        report = run_load(
            "127.0.0.1",
            server.port,
            sessions=sessions,
            edits_per_session=edits,
            seed=seed,
            engine=engine,
        )
    finally:
        stop()
    if report.errors:
        raise AssertionError(f"load generator errors: {report.errors}")
    if report.mismatches:
        raise AssertionError(
            f"{report.mismatches} responses differ from the serial replay: "
            f"{report.mismatch_details}"
        )
    return report


def render(report, engine: str) -> str:
    table = Table(
        "serve: concurrent sessions vs serial replay — latency and throughput",
        ["metric", "value"],
    )
    table.add_row("engine", engine)
    table.add_row("concurrent sessions", report.sessions)
    table.add_row("edit round-trips", report.edits_total)
    table.add_row("wall-clock (s)", f"{report.wall_s:.2f}")
    table.add_row("throughput (edits/s)", f"{report.throughput_eps:.0f}")
    table.add_row("edit latency p50 (ms)", f"{report.p50_ms:.2f}")
    table.add_row("edit latency p99 (ms)", f"{report.p99_ms:.2f}")
    table.add_row("edit latency max (ms)", f"{report.max_ms:.2f}")
    table.add_row("byte-identity mismatches", report.mismatches)
    table.add_note(
        "every streamed response byte-compared against a serial replay on a "
        "local engine (same frames, same encoder) before timing is reported"
    )
    return table.render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=8)
    parser.add_argument("--edits", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--engine", default="incremental")
    parser.add_argument(
        "--assert-p99-ms",
        type=float,
        default=None,
        help="fail if the p99 edit latency exceeds this many milliseconds",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="skip writing benchmarks/results"
    )
    args = parser.parse_args(argv)

    report = run_serve_load(args.sessions, args.edits, args.seed, args.engine)
    out = render(report, args.engine)
    print(out)
    if not args.no_save:
        save_text("serve_latency.txt", out)
    if args.assert_p99_ms is not None and report.p99_ms > args.assert_p99_ms:
        print(
            f"FAIL: p99 edit latency {report.p99_ms:.2f}ms above required "
            f"{args.assert_p99_ms:.2f}ms",
            file=sys.stderr,
        )
        return 1
    return 0


def test_serve_latency(benchmark):
    """Benchmark-suite entry: smaller load, same byte-identity gate."""
    report = run_serve_load(sessions=4, edits=10)
    assert report.ok
    benchmark.pedantic(
        run_serve_load,
        kwargs={"sessions": 4, "edits": 10},
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    sys.exit(main())
