"""Disabled-observability overhead on the incremental-ARD greedy workload.

``repro.obs`` instrumentation is compiled into the ARD/MSRI core and the
incremental engine unconditionally; the contract (docs/OBSERVABILITY.md)
is that it costs **under 2%** while disabled.  This benchmark holds that
gate two ways on the same workload as ``bench_incremental_ard.py``
(greedy insertion driven by :class:`IncrementalARD`):

1. **Measured ratio** — interleaved min-of-N wall-clock of the workload
   with observability disabled vs. enabled.  The disabled time is the
   denominator everywhere; the enabled ratio is reported informationally
   (it pays for real recording, so it is allowed to exceed the gate).
2. **Asserted bound** — a deliberately pessimistic estimate of the
   disabled-path cost: every record an *enabled* run produces (spans,
   points, histogram observations, and the counter totals, which
   over-count ``add(n)`` calls n-fold) is priced at the measured disabled
   cost of its own primitive.  That over-estimates the true cost — the
   hot loops hoist the ``enabled()`` predicate and skip the guarded calls
   entirely — yet must still stay below 2% of the disabled wall-clock.

The bound is the CI gate because it is machine-noise-free: primitive
costs are tens of nanoseconds, measured over a million calls, while the
head-to-head ratio of two ~1 s runs can jitter past 2% on a loaded
runner without any code change.

Run directly (writes ``benchmarks/results/obs_overhead.txt``)::

    python benchmarks/bench_obs_overhead.py

or via the suite (``pytest benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import Table, save_text
from repro.baselines import greedy_insertion
from repro.netgen import paper_repeater_library, paper_technology, random_net
from repro.netgen.workloads import paper_net_spec
from repro.obs import core as obs

OVERHEAD_GATE = 0.02  # the documented "< 2% while disabled" contract


def _workload(terminals: int, steps: int, seed: int):
    tech = paper_technology()
    lib = paper_repeater_library()
    tree = random_net(seed, terminals, paper_net_spec(), spacing=800.0)
    return lambda: greedy_insertion(tree, tech, lib, max_steps=steps)


def _min_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _per_op_cost(fn, iters: int = 1_000_000) -> float:
    t0 = time.perf_counter()
    for _ in range(iters):
        fn()
    return (time.perf_counter() - t0) / iters


def run_measurement(terminals: int = 200, steps: int = 1, seed: int = 0,
                    reps: int = 3):
    """Time the workload disabled/enabled and bound the disabled cost."""
    work = _workload(terminals, steps, seed)
    work()  # warm both code paths and the allocator before timing

    # interleave the two modes so drift hits both equally
    t_disabled = float("inf")
    t_enabled = float("inf")
    for _ in range(reps):
        obs.set_enabled(False)
        t_disabled = min(t_disabled, _min_of(work, 1))
        with obs.observing():
            obs.reset()
            t_enabled = min(t_enabled, _min_of(work, 1))
    obs.reset()

    # one enabled run to count every record the instrumentation can emit
    with obs.observing():
        obs.reset()
        work()
        snap = obs.snapshot(reset=True)
    ops = {
        "spans": len(snap["spans"]),
        "points": len(snap["points"]),
        # counter totals >= add() calls (add(n) counts n-fold), and the
        # guarded hot-loop sites never even call add() while disabled
        "counter units": int(sum(snap["counters"].values())),
        "hist observations": int(sum(h[0] for h in snap["hists"].values())),
    }

    # price every record category at its own primitive's disabled cost
    obs.set_enabled(False)
    counter = obs.Counter("benchobs.probe")
    hist = obs.Histogram("benchobs.probe.h")

    def null_span():
        with obs.trace("benchobs.span"):
            pass

    per_op = {
        "spans": _per_op_cost(null_span),
        "points": _per_op_cost(lambda: obs.point("benchobs.p")),
        "counter units": _per_op_cost(counter.add),
        "hist observations": _per_op_cost(lambda: hist.observe(1)),
        "enabled() predicate": _per_op_cost(obs.enabled),
    }
    obs.set_enabled(None)

    bound_s = sum(ops[k] * per_op[k] for k in ops)
    return {
        "terminals": terminals,
        "steps": steps,
        "reps": reps,
        "t_disabled": t_disabled,
        "t_enabled": t_enabled,
        "measured_ratio": t_enabled / t_disabled,
        "ops": ops,
        "ops_bound": sum(ops.values()),
        "per_op": per_op,
        "bound_s": bound_s,
        "bound_fraction": bound_s / t_disabled,
    }


def render(report) -> str:
    table = Table(
        "observability overhead — greedy insertion workload", ["metric", "value"]
    )
    table.add_row("terminals / greedy steps",
                  f"{report['terminals']} / {report['steps']}")
    table.add_row("disabled wall-clock (s), min of "
                  f"{report['reps']}", f"{report['t_disabled']:.3f}")
    table.add_row("enabled wall-clock (s)", f"{report['t_enabled']:.3f}")
    table.add_row("enabled/disabled ratio (informational)",
                  f"{report['measured_ratio']:.3f}x")
    table.add_row("record-site upper bound (ops)", report["ops_bound"])
    for name, count in report["ops"].items():
        table.add_row(
            f"  {name}",
            f"{count} x {report['per_op'][name] * 1e9:.0f} ns/op",
        )
    table.add_row("disabled overhead bound (s)", f"{report['bound_s']:.6f}")
    table.add_row(
        "disabled overhead bound (fraction)",
        f"{report['bound_fraction']:.5f} (gate {OVERHEAD_GATE})",
    )
    table.add_note(
        "bound = every record an enabled run emits, priced at its own "
        "primitive's disabled cost — pessimistic by construction"
    )
    return table.render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--terminals", type=int, default=200)
    parser.add_argument("--steps", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--no-save", action="store_true", help="skip writing benchmarks/results"
    )
    args = parser.parse_args(argv)

    report = run_measurement(args.terminals, args.steps, args.seed, args.reps)
    out = render(report)
    print(out)
    if not args.no_save:
        save_text("obs_overhead.txt", out)
    if report["bound_fraction"] >= OVERHEAD_GATE:
        print(
            f"FAIL: disabled-instrumentation bound "
            f"{report['bound_fraction']:.4f} >= {OVERHEAD_GATE}",
            file=sys.stderr,
        )
        return 1
    return 0


def test_obs_overhead():
    """Suite entry: smaller workload, same < 2% disabled-overhead gate."""
    report = run_measurement(terminals=120, steps=1, reps=2)
    assert report["bound_fraction"] < OVERHEAD_GATE
    assert report["ops_bound"] > 0  # the workload really hit the obs sites


if __name__ == "__main__":
    sys.exit(main())
