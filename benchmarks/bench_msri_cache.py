"""Warm-vs-cold MSRI on the topology-search inner loop.

``synthesize_topology(objective="msri")`` scores every edge-exchange
candidate by the minimum post-insertion ARD, which makes the MSRI DP the
inner loop of the search.  This bench reproduces that loop directly —
enumerate the single-edge-exchange neighbours of the rectilinear MST,
steinerize each, run the repeater-insertion DP on each — and measures
what :class:`repro.core.msri_cache.MSRICache` buys:

* **cold** — ``insert_repeaters`` per candidate, no reuse (what the
  search paid before the cache existed);
* **prime** — first cached sweep over the same candidates with one
  shared :class:`~repro.core.msri_cache.MSRICache`; hits here are
  *cross-candidate* (sibling trees differing by one spanning edge share
  untouched subtrees; ``quantize_bound=True`` aligns their ``c_max``);
* **warm** — second cached sweep; every tree's root-child front is
  resident, so the DP re-derives nothing (``nodes computed = 0``) and
  the per-candidate cost collapses to signature hashing plus one
  front unpack.

Every warm result is checked for value-identity (cost/ARD/assignment of
the full root Pareto suite) against the cold run — the cache is a
memoization, not an approximation (docs/ALGORITHMS.md §13).

Run directly (writes ``benchmarks/results/msri_cache.txt``)::

    python benchmarks/bench_msri_cache.py

CI runs the smoke variant::

    python benchmarks/bench_msri_cache.py --sizes 8 --assert-speedup

Note: under ``REPRO_CHECK=1`` every cached solve re-runs the cold DP as
a differential contract, so the warm timings are meaningless — the bench
then reports but does not assert the speedup.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import Table, save_text
from repro.check import contracts
from repro.core import MSRICache, insert_repeaters, insert_repeaters_cached
from repro.netgen import (
    paper_net_spec,
    paper_technology,
    random_points,
    repeater_insertion_options,
)
from repro.steiner import rectilinear_mst, tree_from_terminal_edges
from repro.steiner.topology_search import _canonical_edges, _component
from repro.tech import Terminal


def make_terms(seed, n):
    spec = paper_net_spec()
    return [
        Terminal(
            f"p{i}",
            x,
            y,
            capacitance=spec.capacitance,
            resistance=spec.resistance,
            intrinsic_delay=spec.intrinsic_delay,
        )
        for i, (x, y) in enumerate(random_points(seed, n))
    ]


def edge_exchange_candidates(n, edges, limit):
    """The MST plus its single-edge-exchange neighbours, canonicalized.

    This is exactly the candidate set one round of the
    ``synthesize_topology`` edge scan scores.
    """
    seen = {_canonical_edges(edges)}
    candidates = list(seen)
    for k, removed in enumerate(edges):
        remaining = edges[:k] + edges[k + 1:]
        side_a = _component(n, remaining, removed[0])
        for i in sorted(side_a):
            for j in range(n):
                if j in side_a or (i, j) == removed or (j, i) == removed:
                    continue
                key = _canonical_edges(remaining + [(i, j)])
                if key not in seen:
                    seen.add(key)
                    candidates.append(key)
                if len(candidates) >= limit:
                    return candidates
    return candidates


def root_suite(result):
    """Value view of the root Pareto suite (uid-free, comparable)."""
    return [(s.cost, s.ard, s.assignment()) for s in result.solutions]


def run_sweep(pins, seed, limit, repeats):
    tech = paper_technology()
    terms = make_terms(seed, pins)
    mst = list(rectilinear_mst([(t.x, t.y) for t in terms]))
    candidates = edge_exchange_candidates(len(terms), mst, limit)
    trees = [tree_from_terminal_edges(terms, c) for c in candidates]
    # quantize_bound aligns c_max across sibling candidate trees so the
    # prime sweep can hit cross-candidate (docs/ALGORITHMS.md §13)
    opts = repeater_insertion_options(quantize_bound=True)

    t_cold = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        cold = [insert_repeaters(t, tech, opts) for t in trees]
        dt = time.perf_counter() - t0
        t_cold = dt if t_cold is None else min(t_cold, dt)

    cache = MSRICache()
    t0 = time.perf_counter()
    primed = [
        insert_repeaters_cached(t, tech, opts, cache=cache) for t in trees
    ]
    t_prime = time.perf_counter() - t0
    prime_hits, prime_misses = cache.hits, cache.misses

    t_warm = None
    warm = primed
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        warm = [
            insert_repeaters_cached(t, tech, opts, cache=cache) for t in trees
        ]
        dt = time.perf_counter() - t0
        t_warm = dt if t_warm is None else min(t_warm, dt)

    identical = all(
        root_suite(w) == root_suite(c) and root_suite(p) == root_suite(c)
        for w, p, c in zip(warm, primed, cold)
    )
    warm_nodes = sum(w.stats.nodes_processed for w in warm)
    return {
        "pins": pins,
        "candidates": len(candidates),
        "t_cold": t_cold,
        "t_prime": t_prime,
        "t_warm": t_warm,
        "speedup": t_cold / t_warm,
        "prime_hit_rate": prime_hits / max(1, prime_hits + prime_misses),
        "warm_nodes": warm_nodes,
        "identical": identical,
    }


def render(rows):
    table = Table(
        "MSRI subtree-front cache on the topology-search inner loop "
        "(edge-exchange candidate sweeps)",
        [
            "pins",
            "cands",
            "cold (s)",
            "prime (s)",
            "warm (s)",
            "speedup",
            "prime hit%",
            "warm nodes",
            "identical",
        ],
    )
    for r in rows:
        table.add_row(
            r["pins"],
            r["candidates"],
            f"{r['t_cold']:.3f}",
            f"{r['t_prime']:.3f}",
            f"{r['t_warm']:.3f}",
            f"{r['speedup']:.1f}x",
            f"{100 * r['prime_hit_rate']:.0f}",
            r["warm_nodes"],
            "yes" if r["identical"] else "NO",
        )
    table.add_note(
        "cold: insert_repeaters per candidate, no reuse; prime: first "
        "sweep through one shared MSRICache (hits are cross-candidate "
        "subtree reuse); warm: second sweep, fully resident."
    )
    table.add_note(
        "speedup = cold/warm; warm nodes = DP nodes actually recomputed "
        "across the warm sweep (0 = all fronts served from cache); "
        "identical = warm and prime root suites value-match cold."
    )
    return table.render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[8, 10, 12])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--candidates",
        type=int,
        default=24,
        help="cap on edge-exchange candidates per net (MST included)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="time cold/warm sweeps this many times and keep the minimum",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        nargs="?",
        const=3.0,
        default=None,
        help="fail unless every row's warm speedup meets this factor "
        "(default 3x when given without a value)",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="skip writing benchmarks/results"
    )
    args = parser.parse_args(argv)

    rows = [
        run_sweep(pins, args.seed, args.candidates, args.repeats)
        for pins in sorted(args.sizes)
    ]
    out = render(rows)
    print(out)
    if not args.no_save:
        save_text("msri_cache.txt", out)

    status = 0
    for r in rows:
        if not r["identical"]:
            print(
                f"FAIL: pins={r['pins']}: cached sweep differs from the "
                f"cold DP (memoization must be value-identical)",
                file=sys.stderr,
            )
            status = 1
        if r["warm_nodes"] != 0:
            print(
                f"FAIL: pins={r['pins']}: warm sweep recomputed "
                f"{r['warm_nodes']} DP nodes (expected full residency)",
                file=sys.stderr,
            )
            status = 1
    if args.assert_speedup is not None:
        if contracts.contracts_enabled():
            print(
                "NOTE: REPRO_CHECK is on — cached solves re-run the cold "
                "DP as a differential contract, so the speedup assertion "
                "is skipped.",
                file=sys.stderr,
            )
        else:
            for r in rows:
                if r["speedup"] < args.assert_speedup:
                    print(
                        f"FAIL: pins={r['pins']}: warm speedup "
                        f"{r['speedup']:.2f}x < {args.assert_speedup}x",
                        file=sys.stderr,
                    )
                    status = 1
    return status


def test_msri_cache_bench():
    """Suite entry: one small sweep, identity + residency assertions."""
    r = run_sweep(pins=7, seed=0, limit=8, repeats=1)
    assert r["identical"], "cached sweeps must value-match the cold DP"
    assert r["warm_nodes"] == 0
    assert r["prime_hit_rate"] > 0.0  # sibling candidates share subtrees


if __name__ == "__main__":
    sys.exit(main())
