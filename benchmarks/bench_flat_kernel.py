"""Batched flat-kernel evaluation vs per-net reference passes.

The array-flattened kernel (:mod:`repro.rctree.flat`) exists for exactly
one workload: scoring *thousands of nets per call* (topology search,
Monte-Carlo sweeps, campaign fan-out), where the per-net overhead of the
object-graph walk — node views, dict lookups, record allocation —
dominates.  This benchmark evaluates the same seeded corpus twice:

* reference: one :func:`repro.core.ard.ard` full pass per net;
* batched: one :func:`repro.rctree.flat.evaluate_batch` call, cold
  (compiling every net) and warm (every compile served by the
  :class:`~repro.rctree.flat.FlatNetCache`).

Every ARD value and critical pair is asserted **bit-identical** between
the two before any time is compared — a fast-but-wrong kernel cannot
pass.  Wall-clocks are medians over ``--repeats`` runs to damp machine
noise; CI's ``flat-smoke`` job gates on ``--assert-speedup 3``.

Run directly::

    python benchmarks/bench_flat_kernel.py --assert-speedup 3

or via the benchmark suite (``pytest benchmarks/bench_flat_kernel.py``).
The committed numbers live in ``benchmarks/results/flat_kernel.txt``.
"""

from __future__ import annotations

import argparse
import random
import statistics
import sys
import time

from repro.analysis import Table, save_text
from repro.core.ard import ard
from repro.netgen import paper_repeater_library, paper_technology, random_net
from repro.netgen.workloads import paper_net_spec
from repro.rctree.engine import EvalContext
from repro.rctree.flat import FlatNetCache, evaluate_batch

SPACING_CHOICES = (400.0, 800.0, 1600.0)


def build_corpus(n_nets: int, seed: int):
    """Seeded mixed-size nets with sparse random repeater assignments."""
    rng = random.Random(seed)
    options = paper_repeater_library().oriented_options()
    nets, contexts = [], []
    for i in range(n_nets):
        pins = 4 + (i % 24)
        spacing = SPACING_CHOICES[i % len(SPACING_CHOICES)]
        tree = random_net(seed + i, pins, paper_net_spec(), spacing=spacing)
        assignment = {
            idx: rng.choice(options)
            for idx in tree.insertion_indices()
            if rng.random() < 0.15
        }
        nets.append(tree)
        contexts.append(EvalContext(assignment=assignment or None))
    return nets, contexts


def _median_time(fn, repeats: int):
    """Median wall-clock of ``repeats`` runs; returns (seconds, last result)."""
    times, result = [], None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times), result


def run_comparison(n_nets: int = 400, seed: int = 0, repeats: int = 3):
    tech = paper_technology()
    nets, contexts = build_corpus(n_nets, seed)
    total_nodes = sum(len(t) for t in nets)

    t_reference, ref = _median_time(
        lambda: [
            ard(tree, tech, context=ctx) for tree, ctx in zip(nets, contexts)
        ],
        repeats,
    )
    t_cold, cold = _median_time(
        lambda: evaluate_batch(nets, tech, contexts=contexts), repeats
    )
    cache = FlatNetCache(maxsize=2 * n_nets)
    evaluate_batch(nets, tech, contexts=contexts, cache=cache)  # prime
    t_warm, warm = _median_time(
        lambda: evaluate_batch(nets, tech, contexts=contexts, cache=cache),
        repeats,
    )

    for k, (a, b, c) in enumerate(zip(ref, cold, warm)):
        # exact comparison is the point: the kernel must be bit-identical
        if not (a.value == b.value == c.value):  # repro: noqa[R001]
            raise AssertionError(
                f"net {k}: reference {a.value!r}, batch cold {b.value!r}, "
                f"batch warm {c.value!r}"
            )
        if not ((a.source, a.sink) == (b.source, b.sink) == (c.source, c.sink)):
            raise AssertionError(f"net {k}: critical pairs diverge")

    return {
        "nets": n_nets,
        "total_nodes": total_nodes,
        "repeats": repeats,
        "t_reference": t_reference,
        "t_cold": t_cold,
        "t_warm": t_warm,
        "speedup_cold": t_reference / t_cold,
        "speedup_warm": t_reference / t_warm,
        "speedup": t_reference / min(t_cold, t_warm),
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "nodes_per_s": total_nodes / t_warm,
    }


def render(report) -> str:
    table = Table(
        "batched flat kernel vs per-net reference ARD passes",
        ["metric", "value"],
    )
    table.add_row("nets per batch", report["nets"])
    table.add_row("total tree nodes", report["total_nodes"])
    table.add_row("timing repeats (median)", report["repeats"])
    table.add_row("per-net reference (s)", f"{report['t_reference']:.3f}")
    table.add_row("batch, cold compile (s)", f"{report['t_cold']:.3f}")
    table.add_row("batch, warm cache (s)", f"{report['t_warm']:.3f}")
    table.add_row("speedup (cold)", f"{report['speedup_cold']:.2f}x")
    table.add_row("speedup (warm)", f"{report['speedup_warm']:.2f}x")
    table.add_row(
        "compile cache hits/misses",
        f"{report['cache_hits']}/{report['cache_misses']}",
    )
    table.add_row("warm throughput (nodes/s)", f"{report['nodes_per_s']:.0f}")
    table.add_note(
        "every ARD value and critical pair asserted bit-identical to the "
        "reference pass before any wall-clock is compared"
    )
    return table.render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nets", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help="fail unless batched evaluation beats per-net reference "
        "passes by this factor (gates on the better of cold/warm — "
        "medians over --repeats runs)",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="skip writing benchmarks/results"
    )
    args = parser.parse_args(argv)

    report = run_comparison(args.nets, args.seed, args.repeats)
    out = render(report)
    print(out)
    if not args.no_save:
        save_text("flat_kernel.txt", out)
    if args.assert_speedup is not None and (
        report["speedup"] < args.assert_speedup
    ):
        print(
            f"FAIL: speedup {report['speedup']:.2f}x below "
            f"required {args.assert_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def test_flat_batch_speedup(benchmark):
    """Benchmark-suite entry: smaller corpus, same identity + speedup gate."""
    report = run_comparison(n_nets=150, repeats=5)
    assert report["speedup"] >= 3.0
    tech = paper_technology()
    nets, contexts = build_corpus(150, 0)
    cache = FlatNetCache(maxsize=400)
    evaluate_batch(nets, tech, contexts=contexts, cache=cache)
    benchmark.pedantic(
        evaluate_batch,
        args=(nets, tech),
        kwargs={"contexts": contexts, "cache": cache},
        rounds=3,
        iterations=1,
    )


if __name__ == "__main__":
    sys.exit(main())
