"""Ablation A2: insertion-point spacing (paper Sec. VI, footnote 15).

The paper notes that experiments with closer insertion-point spacing
("higher complexity") yielded only small quality improvements over the
800 um spacing while costing more runtime — results "typically obtained
within a few minutes ... (e.g., 20 pins, 300 um average insertion point
spacing)".  This ablation reruns one net at 800/450/300 um caps.

Expected shape: the minimum diameter improves only marginally below 800 um
while the candidate count and runtime grow substantially.
"""

import time

from repro.analysis import Table, save_text
from repro.core.msri import insert_repeaters
from repro.netgen import (
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)

SPACINGS = (800.0, 450.0, 300.0)


def test_spacing_ablation(benchmark):
    tech = paper_technology()
    table = Table(
        "insertion-point spacing ablation (10-pin net, seed 0)",
        ["spacing (um)", "ins. points", "min diameter (ps)", "runtime (s)"],
    )
    diameters = {}
    for spacing in SPACINGS:
        tree = paper_instance(0, 10, spacing=spacing)
        t0 = time.perf_counter()
        res = insert_repeaters(tree, tech, repeater_insertion_options())
        dt = time.perf_counter() - t0
        diameters[spacing] = res.min_ard().ard
        table.add_row(spacing, len(tree.insertion_indices()), res.min_ard().ard, dt)

    # denser candidates can only help, and only a little (paper footnote 15)
    assert diameters[300.0] <= diameters[800.0] + 1e-9
    improvement = 1.0 - diameters[300.0] / diameters[800.0]
    assert improvement < 0.15, (
        f"improvement from dense spacing should be small, got {improvement:.1%}"
    )

    out = table.render()
    print("\n" + out)
    save_text("spacing_ablation.txt", out)

    tree = paper_instance(0, 10, spacing=800.0)
    benchmark.pedantic(
        insert_repeaters,
        args=(tree, tech, repeater_insertion_options()),
        rounds=1,
        iterations=1,
    )
