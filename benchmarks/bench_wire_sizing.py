"""Extension bench: simultaneous wire sizing on multisource nets.

The paper's conclusions call out wire sizing as a direct application of the
same PWL/dominance machinery.  This bench runs the extension on a
paper-style net (5 pins, relaxed 1.6 mm insertion spacing — simultaneous
sizing inflates the dominant-solution sets substantially, so the combined
mode needs a smaller instance to stay in benchmark budget).

Wire widening halves a segment's resistance but raises every driver's load,
so it only pays in a *resistance-dominated* regime.  The bench therefore
reports two terminal regimes:

* weak 1X drivers (400 Ω) — the paper's Table II setup: repeaters win,
  widening never does (recorded as the all-1X "wires" row);
* strong 4X drivers (100 Ω) with matching 4X repeaters: widening now buys
  diameter, repeaters buy more, and the combined optimization dominates
  both at aligned cost — the shape asserted below.
"""

from repro.analysis import Table, save_text
from repro.core.msri import MSRIOptions, insert_repeaters
from repro.netgen import (
    fixed_1x_option,
    paper_driver_options,
    paper_instance,
    paper_repeater_library,
    paper_technology,
)
from repro.tech import DEFAULT_BUFFER, Repeater, RepeaterLibrary, default_wire_library


def test_wire_sizing(benchmark):
    tech = paper_technology()
    tree = paper_instance(seed=4, n_pins=5, spacing=1600.0)
    wires = default_wire_library(widths=(1.0, 2.0, 3.0))
    rep4 = RepeaterLibrary(
        [Repeater.from_buffer_pair(DEFAULT_BUFFER.scaled(4), name="rep4x")]
    )
    weak = [fixed_1x_option()]
    strong = [o for o in paper_driver_options() if o.name == "drv:1x@4x/rcv:1x@1x"]
    assert len(strong) == 1

    modes = {
        "1X drv / repeaters": MSRIOptions(
            library=paper_repeater_library(), driver_options=weak
        ),
        "1X drv / wires": MSRIOptions(wire_library=wires, driver_options=weak),
        "4X drv / repeaters": MSRIOptions(library=rep4, driver_options=strong),
        "4X drv / wires": MSRIOptions(wire_library=wires, driver_options=strong),
        "4X drv / both": MSRIOptions(
            library=rep4, wire_library=wires, driver_options=strong
        ),
    }
    table = Table(
        "wire-sizing extension (5-pin net, 1.6 mm spacing)",
        ["mode", "min cost", "diam @min cost (ps)", "min diam (ps)", "cost @min diam"],
    )
    results = {}
    for name, options in modes.items():
        res = insert_repeaters(tree, tech, options)
        results[name] = res
        table.add_row(
            name,
            res.min_cost().cost,
            res.min_cost().ard,
            res.min_ard().ard,
            res.min_ard().cost,
        )
    table.add_note(
        "with weak 1X drivers widening never pays (driver-load dominated); "
        "with strong 4X drivers it does — regime dependence is the point."
    )

    # regime shapes
    assert (
        results["1X drv / repeaters"].min_ard().ard
        < results["1X drv / repeaters"].min_cost().ard
    )
    assert (
        results["1X drv / wires"].min_ard().ard  # repro: noqa[R001] same solution object, bit-identical by construction
        == results["1X drv / wires"].min_cost().ard
    ), "widening should never pay off against weak drivers here"
    for name in ("4X drv / repeaters", "4X drv / wires"):
        assert results[name].min_ard().ard < results[name].min_cost().ard

    # the combined optimization dominates both strong-regime single modes
    combined = results["4X drv / both"]
    for name in ("4X drv / repeaters", "4X drv / wires"):
        single = results[name]
        slack = combined.min_cost().cost - single.min_cost().cost
        for cost, ardv in single.tradeoff():
            best = min(
                s.ard for s in combined.solutions if s.cost <= cost + slack + 1e-6
            )
            assert best <= ardv + 1e-6

    out = table.render()
    print("\n" + out)
    save_text("wire_sizing.txt", out)

    benchmark.pedantic(
        insert_repeaters,
        args=(tree, tech, modes["4X drv / both"]),
        rounds=1,
        iterations=1,
    )
