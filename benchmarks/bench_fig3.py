"""Fig. 3: arrival-time functions of the external capacitance at a merge.

Reconstructs the paper's motivational example in abstract units: two
sources ``u`` and ``w`` whose bottom-up accumulated resistances to the
merge vertex ``v`` are 7 and 12.  The joined solution's arrival function
must be piece-wise linear with exactly those slopes, and the *critical
source flips* at a computable crossover capacitance — small external loads
are dominated by the far/slow source, large ones by the steep
(high-resistance) path (Fig. 3(c)).  The internal-path construction of
Fig. 3(d) — adding scalar sink delays to the arrival intercepts — is also
checked, including the paper's remark that one internal path can dominate
for *all* values of ``c_E``.

Numbers used (abstract units, see the derivation in the test):

* u: driver resistance 3, pin cap 1, arrival time 30; wire to v: R=4, C=2
  -> ``arr_u(c_E) = 43 + 7 c_E`` before the join.
* w: driver resistance 2, pin cap 0.5; wire to v: R=10, C=1
  -> ``arr_w(c_E) = 8 + 12 c_E``.
* joined at v (each side sees the other's capacitance):
  ``max(53.5 + 7 c_E, 44 + 12 c_E)`` with the crossover at c_E = 1.9.
"""

import pytest

from repro.analysis import Table, save_text
from repro.core.solution import augment_wire, join, leaf_solution
from repro.tech import Terminal

C_MAX = 50.0


def build_sides():
    u = leaf_solution(
        Terminal("u", 0, 0, arrival_time=30.0, capacitance=1.0, resistance=3.0),
        C_MAX,
    )
    u = augment_wire(u, resistance=4.0, capacitance=2.0, c_max=C_MAX)
    w = leaf_solution(
        Terminal("w", 0, 0, downstream_delay=300.0, capacitance=0.5, resistance=2.0),
        C_MAX,
    )
    w = augment_wire(w, resistance=10.0, capacitance=1.0, c_max=C_MAX)
    return u, w


def test_fig3(benchmark):
    u, w = build_sides()
    # pre-join functions carry the accumulated path resistances as slopes
    assert u.arr.segments[0].slope == pytest.approx(7.0)
    assert w.arr.segments[0].slope == pytest.approx(12.0)

    joined = benchmark(join, u, w, C_MAX)

    # Fig. 3(c): the max of the two shifted lines, crossover at c_E = 1.9
    slopes = sorted(s.slope for s in joined.arr.segments)
    assert slopes == pytest.approx([7.0, 12.0])
    crossover = joined.arr.breakpoints()[1]
    assert crossover == pytest.approx(1.9)
    assert joined.arr.evaluate(0.0) == pytest.approx(53.5)   # far source u wins
    assert joined.arr.evaluate(10.0) == pytest.approx(164.0)  # steep path w wins

    # Fig. 3(d): internal paths add scalar sink delays to the intercepts;
    # with w's slow receive path (beta = 300 -> q_w = 310 after the wire)
    # the u -> (sink at w) path dominates for ALL c_E here, reproducing the
    # paper's closing remark on the example
    assert joined.diam is not None
    assert all(s.slope == pytest.approx(7.0) for s in joined.diam.segments)
    assert joined.diam.evaluate(0.0) == pytest.approx(53.5 + 310.0)

    table = Table(
        "Fig. 3: piecewise-linear arrival at the merge vertex v",
        ["c_E", "arr(c_E)", "critical source"],
    )
    for x in (0.0, 1.0, 1.9, 3.0, 5.0):
        val = joined.arr.evaluate(x)
        critical = "u" if val == pytest.approx(53.5 + 7 * x) else "w"
        table.add_row(x, val, critical)
    table.add_note("slopes 7 and 12 = accumulated path resistances (paper units)")
    table.add_note("crossover at c_E = 1.9: the critical source flips")
    out = table.render()
    print("\n" + out)
    save_text("fig3.txt", out)
