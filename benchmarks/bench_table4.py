"""Table IV: average optimizer CPU seconds per net size and mode.

The paper argues tractability empirically ("empirical evidence is the best
way to judge the tractability of algorithms such as those proposed here")
and reports seconds-scale averages on a SPARC 10.  We report the same
statistic on this machine; the benchmark fixture additionally times one
20-pin repeater run end to end so pytest-benchmark's output carries the
headline number.

Expected shape: seconds-scale runs, growing with pin count, with driver
sizing much cheaper than repeater insertion.
"""

from repro.analysis import save_text, table4
from repro.core.msri import insert_repeaters
from repro.netgen import (
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)


def test_table4(benchmark, instance_results):
    table = table4(instance_results)
    out = table.render()
    print("\n" + out)
    save_text("table4.txt", out)

    by_size = {}
    for r in instance_results:
        by_size.setdefault(r.n_pins, []).append(r)
    avg = {
        n: sum(r.rep_runtime_s for r in rs) / len(rs) for n, rs in by_size.items()
    }
    # growth with size, and everything finishes in tractable time
    assert avg[20] > avg[10]
    assert all(a < 600.0 for a in avg.values())

    tree = paper_instance(0, 20)
    benchmark.pedantic(
        insert_repeaters,
        args=(tree, paper_technology(), repeater_insertion_options()),
        rounds=1,
        iterations=1,
    )
