"""Fig. 11: progressive optimization of an eight-pin net.

The paper's example: an 8-pin net (total wirelength 19.6 kum) where all
pins can drive or receive, optimized under the unaugmented RC-diameter.
Fig. 11 shows (a) the bare topology, (b) a two-repeater solution, and (c) a
five-repeater solution, annotating each with its RC-diameter and critical
source/sink pair.

Expected shape: the diameter improves monotonically with the repeater
budget, and the critical pair changes as the algorithm re-balances paths.
Our seed is chosen so the instance's wirelength matches the paper's
19.6 kum (the original point set is unpublished).
"""

import pytest

from repro.analysis import Table, render_tree, save_text
from repro.core.ard import ard
from repro.rctree import EvalContext
from repro.core.driver_sizing import apply_option_to_tree
from repro.core.msri import insert_repeaters
from repro.netgen import (
    find_fig11_seed,
    fixed_1x_option,
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)
from repro.tech import Repeater


def test_fig11(benchmark):
    tech = paper_technology()
    seed = find_fig11_seed()
    tree = paper_instance(seed, n_pins=8)
    assert abs(tree.total_wire_length() - 19_600.0) < 800.0

    suite = benchmark.pedantic(
        insert_repeaters,
        args=(tree, tech, repeater_insertion_options()),
        rounds=1,
        iterations=1,
    )

    dressed = apply_option_to_tree(tree, fixed_1x_option())
    table = Table(
        f"Fig. 11: 8-pin net, wirelength "
        f"{tree.total_wire_length() / 1000:.1f} kum (paper: 19.6)",
        ["solution", "repeaters", "RC-diameter (ps)", "critical pair"],
    )
    chunks = []
    diameters = []
    pairs = []
    for label, count in [("(a) unoptimized", 0), ("(b)", 2), ("(c)", 5)]:
        sol = suite.with_repeater_count(count)
        if sol is None:
            # fall back to the nearest available budget on the frontier
            candidates = [s for s in suite.solutions if s.repeater_count() >= count]
            sol = candidates[0] if candidates else suite.solutions[-1]
        reps = {k: v for k, v in sol.assignment().items() if isinstance(v, Repeater)}
        res = ard(dressed, tech, context=EvalContext(assignment=reps))
        src = tree.node(res.source).terminal.name
        snk = tree.node(res.sink).terminal.name
        assert res.value == pytest.approx(sol.ard, rel=1e-9)
        table.add_row(label, len(reps), res.value, f"{src} -> {snk}")
        chunks.append(
            f"\n{label}: {len(reps)} repeaters, diameter {res.value:.0f} ps, "
            f"critical {src} -> {snk}\n"
            + render_tree(tree, reps, width=64, height=20)
        )
        diameters.append(res.value)
        pairs.append((src, snk))

    # the paper's qualitative claims
    assert diameters[0] > diameters[1] > diameters[2], (
        "diameter must improve with added buffering resources"
    )
    assert len(set(pairs)) >= 2, (
        "the critical input-to-output path should change as the algorithm "
        "re-balances the paths (paper Fig. 11 discussion)"
    )

    out = table.render() + "\n" + "\n".join(chunks)
    print("\n" + out)
    save_text("fig11.txt", out)
