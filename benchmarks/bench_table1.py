"""Table I: the technology parameters in force.

Static configuration rather than a measurement; regenerated here so the
results directory carries the exact constants every other table used, and
the benchmark measures the (trivial) cost of assembling the report.
"""

from repro.analysis import save_text, table1


def test_table1(benchmark):
    table = benchmark(table1)
    out = table.render()
    print("\n" + out)
    save_text("table1.txt", out)
    assert "wire resistance" in out
    assert "1X buffer input capacitance" in out
