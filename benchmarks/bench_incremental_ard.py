"""Incremental ARD vs per-probe full recompute on greedy insertion.

The greedy baseline probes every (insertion point, oriented repeater)
candidate per accepted step; historically each probe paid a full O(n)
Fig. 2 pass, making one step O(n²).  The persistent
:class:`~repro.rctree.incremental.IncrementalARD` engine answers each probe
with a dirty root-path re-propagation instead.  This benchmark runs the
*identical* greedy loop under both oracles on a 500-terminal net and
reports the wall-clock ratio.

Because both oracles share the record combine step, the two trajectories
(every ARD value, cost, and assignment) must be **bit-identical** — the
benchmark asserts that before it asserts the speedup, so a fast-but-wrong
engine cannot pass.

Run directly (CI's ``incremental-smoke`` job)::

    python benchmarks/bench_incremental_ard.py --assert-speedup 2

or via the benchmark suite (``pytest benchmarks/bench_incremental_ard.py``).
The committed numbers live in ``benchmarks/results/incremental_ard.txt``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import Table, save_text
from repro.baselines import greedy_insertion
from repro.core.ard import ard
from repro.netgen import paper_repeater_library, paper_technology, random_net
from repro.netgen.workloads import paper_net_spec
from repro.rctree.engine import EvalContext


class FullRecomputeEngine:
    """The pre-incremental oracle: one fresh full Fig. 2 pass per probe."""

    def __init__(self, tree, tech):
        self._tree = tree
        self._tech = tech
        self._assignment = {}
        self.evaluations = 0

    def set_assignment(self, node, repeater):
        if repeater is None:
            self._assignment.pop(node, None)
        else:
            self._assignment[node] = repeater

    def evaluate(self, tree=None):
        self.evaluations += 1
        return ard(
            self._tree,
            self._tech,
            context=EvalContext(assignment=dict(self._assignment)),
        )


def run_comparison(terminals: int = 500, steps: int = 2, seed: int = 0):
    """Time both oracles through the same greedy run; returns a report dict."""
    tech = paper_technology()
    lib = paper_repeater_library()
    tree = random_net(seed, terminals, paper_net_spec(), spacing=800.0)

    t0 = time.perf_counter()
    fast = greedy_insertion(tree, tech, lib, max_steps=steps)
    t_incremental = time.perf_counter() - t0

    slow_engine = FullRecomputeEngine(tree, tech)
    t0 = time.perf_counter()
    slow = greedy_insertion(tree, tech, lib, max_steps=steps, engine=slow_engine)
    t_full = time.perf_counter() - t0

    if len(fast) != len(slow):
        raise AssertionError(
            f"trajectory lengths diverge: {len(fast)} vs {len(slow)}"
        )
    for k, (a, b) in enumerate(zip(fast, slow)):
        # exact comparison is the point: incremental must be bit-identical
        if a.ard != b.ard or a.cost != b.cost or a.assignment != b.assignment:  # repro: noqa[R001]
            raise AssertionError(
                f"step {k}: incremental ({a.ard}, {a.cost}) != "
                f"full recompute ({b.ard}, {b.cost})"
            )

    return {
        "terminals": terminals,
        "nodes": len(tree),
        "insertion_points": len(tree.insertion_indices()),
        "steps": len(fast) - 1,
        "probes": slow_engine.evaluations,
        "t_incremental": t_incremental,
        "t_full": t_full,
        "speedup": t_full / t_incremental,
        "final_ard": fast[-1].ard,
    }


def render(report) -> str:
    table = Table(
        "incremental ARD vs full recompute — greedy insertion oracle",
        ["metric", "value"],
    )
    table.add_row("terminals", report["terminals"])
    table.add_row("tree nodes", report["nodes"])
    table.add_row("insertion points", report["insertion_points"])
    table.add_row("accepted greedy steps", report["steps"])
    table.add_row("oracle probes", report["probes"])
    table.add_row("full recompute wall-clock (s)", f"{report['t_full']:.2f}")
    table.add_row(
        "incremental wall-clock (s)", f"{report['t_incremental']:.2f}"
    )
    table.add_row("speedup", f"{report['speedup']:.1f}x")
    table.add_row("final ARD (ps)", f"{report['final_ard']:.1f}")
    table.add_note(
        "identical greedy trajectories asserted bit-for-bit before timing "
        "is compared"
    )
    return table.render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--terminals", type=int, default=500)
    parser.add_argument("--steps", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help="fail unless incremental beats full recompute by this factor",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="skip writing benchmarks/results"
    )
    args = parser.parse_args(argv)

    report = run_comparison(args.terminals, args.steps, args.seed)
    out = render(report)
    print(out)
    if not args.no_save:
        save_text("incremental_ard.txt", out)
    if args.assert_speedup is not None and report["speedup"] < args.assert_speedup:
        print(
            f"FAIL: speedup {report['speedup']:.1f}x below required "
            f"{args.assert_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def test_incremental_speedup(benchmark):
    """Benchmark-suite entry: smaller net, same bit-identity + speedup gate."""
    report = run_comparison(terminals=200, steps=1)
    assert report["speedup"] >= 2.0
    tech = paper_technology()
    lib = paper_repeater_library()
    tree = random_net(0, 200, paper_net_spec(), spacing=800.0)
    benchmark.pedantic(
        greedy_insertion,
        args=(tree, tech, lib),
        kwargs={"max_steps": 1},
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    sys.exit(main())
