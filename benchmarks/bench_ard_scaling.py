"""Sec. III claim: ARD(T) in linear time.

The paper's second contribution: the augmented RC-diameter is computable in
O(n) by one DFS after two capacitance passes — "it is unnecessary to
perform multiple single source computations".  This benchmark sweeps net
sizes and times the Fig. 2 algorithm against the per-source brute force.

Expected shape: near-linear growth for Fig. 2, near-quadratic for the brute
force, with the ratio growing roughly linearly in the terminal count.
"""

import time

import pytest

from repro.analysis import Table, save_text
from repro.core.ard import compute_ard
from repro.netgen import paper_instance, paper_technology
from repro.rctree import ElmoreAnalyzer

SIZES = (25, 50, 100, 200, 400)


def _best_of(fn, repeat=3):
    best = float("inf")
    value = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_ard_scaling(benchmark):
    tech = paper_technology()
    table = Table(
        "ARD scaling: Fig. 2 linear-time vs per-source brute force",
        ["terminals", "nodes", "linear (ms)", "brute (ms)", "ratio"],
    )
    rows = []
    for n in SIZES:
        tree = paper_instance(seed=2, n_pins=n, spacing=None)
        analyzer = ElmoreAnalyzer(tree, tech)
        t_lin, v_lin = _best_of(lambda: compute_ard(analyzer).value)
        t_bru, v_bru = _best_of(lambda: analyzer.ard_bruteforce(), repeat=1)
        assert v_lin == pytest.approx(v_bru, rel=1e-9)
        rows.append((n, len(tree), t_lin, t_bru))
        table.add_row(n, len(tree), t_lin * 1000, t_bru * 1000, f"{t_bru / t_lin:.1f}x")

    # shape: the advantage grows superlinearly across the sweep
    first_ratio = rows[0][3] / rows[0][2]
    last_ratio = rows[-1][3] / rows[-1][2]
    assert last_ratio > 4 * first_ratio

    # shape: the linear algorithm's per-node time stays roughly flat
    per_node_first = rows[0][2] / rows[0][1]
    per_node_last = rows[-1][2] / rows[-1][1]
    assert per_node_last < 5 * per_node_first

    out = table.render()
    print("\n" + out)
    save_text("ard_scaling.txt", out)

    largest = paper_instance(seed=2, n_pins=SIZES[-1], spacing=None)
    analyzer = ElmoreAnalyzer(largest, tech)
    benchmark(lambda: compute_ard(analyzer).value)
