"""Random net generation and the paper's named experimental workloads."""

from .random_nets import NetSpec, build_net, random_net, random_points
from .workloads import (
    PAPER_SPACING_UM,
    driver_sizing_options,
    find_fig11_seed,
    fixed_1x_option,
    paper_driver_options,
    paper_instance,
    paper_net_spec,
    paper_repeater_library,
    paper_technology,
    repeater_insertion_options,
)

__all__ = [
    "NetSpec",
    "build_net",
    "random_net",
    "random_points",
    "PAPER_SPACING_UM",
    "driver_sizing_options",
    "find_fig11_seed",
    "fixed_1x_option",
    "paper_driver_options",
    "paper_instance",
    "paper_net_spec",
    "paper_repeater_library",
    "paper_technology",
    "repeater_insertion_options",
]
