"""Seeded random net instances (paper Sec. VI methodology).

The paper generates "random point sets with ten terminals on a 1 cm x 1 cm
grid" (and likewise with twenty), builds Steiner trees over them, and adds
insertion points at a maximum spacing.  This module reproduces that
pipeline with a deterministic seed so every experiment in this repository
is exactly re-runnable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..rctree.builder import TreeBuilder
from ..rctree.topology import RoutingTree
from ..steiner.insertion_points import add_insertion_points
from ..steiner.steinerize import build_steiner_topology
from ..tech.parameters import UM_PER_CM
from ..tech.terminals import Terminal

__all__ = ["NetSpec", "random_points", "build_net", "random_net"]


@dataclass(frozen=True)
class NetSpec:
    """Electrical parameters applied uniformly to generated terminals."""

    capacitance: float = 0.05      # pF; 1X receiver input capacitance
    resistance: float = 400.0      # ohm; 1X driver output resistance
    intrinsic_delay: float = 50.0  # ps; 1X driver intrinsic delay
    arrival_time: float = 0.0      # ps
    downstream_delay: float = 0.0  # ps


def random_points(
    seed: int, n: int, grid: float = UM_PER_CM
) -> List[Tuple[float, float]]:
    """``n`` uniform points on the ``grid x grid`` µm square, seeded."""
    if n < 2:
        raise ValueError("a net needs at least two terminals")
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, grid, size=(n, 2))
    return [(float(x), float(y)) for x, y in pts]


def build_net(
    points: Sequence[Tuple[float, float]],
    spec: NetSpec = NetSpec(),
    *,
    spacing: Optional[float] = 800.0,
    root: int = 0,
    names: Optional[Sequence[str]] = None,
) -> RoutingTree:
    """Steiner tree over the points, with insertion points threaded in.

    ``spacing=None`` skips insertion-point placement (pure topology).
    """
    topo = build_steiner_topology(points)
    builder = TreeBuilder()
    handles = []
    for i, (x, y) in enumerate(topo.points):
        if i < topo.n_terminals:
            name = names[i] if names is not None else f"p{i}"
            handles.append(
                builder.add_terminal(
                    Terminal(
                        name=name,
                        x=x,
                        y=y,
                        arrival_time=spec.arrival_time,
                        downstream_delay=spec.downstream_delay,
                        capacitance=spec.capacitance,
                        resistance=spec.resistance,
                        intrinsic_delay=spec.intrinsic_delay,
                    )
                )
            )
        else:
            handles.append(builder.add_steiner(x, y))
    for a, b in topo.edges:
        builder.connect(handles[a], handles[b])
    tree = builder.build(root=handles[root])
    if spacing is not None:
        tree = add_insertion_points(tree, spacing)
    return tree


def random_net(
    seed: int,
    n_terminals: int,
    spec: NetSpec = NetSpec(),
    *,
    grid: float = UM_PER_CM,
    spacing: Optional[float] = 800.0,
) -> RoutingTree:
    """One seeded experiment instance: points → Steiner tree → candidates."""
    points = random_points(seed, n_terminals, grid)
    return build_net(points, spec, spacing=spacing)
