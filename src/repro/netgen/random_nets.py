"""Seeded random net instances (paper Sec. VI methodology).

The paper generates "random point sets with ten terminals on a 1 cm x 1 cm
grid" (and likewise with twenty), builds Steiner trees over them, and adds
insertion points at a maximum spacing.  This module reproduces that
pipeline with a deterministic seed so every experiment in this repository
is exactly re-runnable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

try:  # numpy backs only the seeded point sampler; the deterministic
    # constructors (chain_net / star_net / build_net) never need it
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from ..rctree.builder import TreeBuilder
from ..rctree.topology import RoutingTree
from ..steiner.insertion_points import add_insertion_points
from ..steiner.steinerize import build_steiner_topology
from ..tech.parameters import UM_PER_CM
from ..tech.terminals import Terminal

__all__ = [
    "NetSpec",
    "random_points",
    "build_net",
    "random_net",
    "chain_net",
    "star_net",
]


@dataclass(frozen=True)
class NetSpec:
    """Electrical parameters applied uniformly to generated terminals."""

    capacitance: float = 0.05      # pF; 1X receiver input capacitance
    resistance: float = 400.0      # ohm; 1X driver output resistance
    intrinsic_delay: float = 50.0  # ps; 1X driver intrinsic delay
    arrival_time: float = 0.0      # ps
    downstream_delay: float = 0.0  # ps


def random_points(
    seed: int, n: int, grid: float = UM_PER_CM
) -> List[Tuple[float, float]]:
    """``n`` uniform points on the ``grid x grid`` µm square, seeded."""
    if n < 2:
        raise ValueError("a net needs at least two terminals")
    if np is None:
        raise RuntimeError("random_points requires numpy (pip install numpy)")
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, grid, size=(n, 2))
    return [(float(x), float(y)) for x, y in pts]


def build_net(
    points: Sequence[Tuple[float, float]],
    spec: NetSpec = NetSpec(),
    *,
    spacing: Optional[float] = 800.0,
    root: int = 0,
    names: Optional[Sequence[str]] = None,
) -> RoutingTree:
    """Steiner tree over the points, with insertion points threaded in.

    ``spacing=None`` skips insertion-point placement (pure topology).
    """
    topo = build_steiner_topology(points)
    builder = TreeBuilder()
    handles = []
    for i, (x, y) in enumerate(topo.points):
        if i < topo.n_terminals:
            name = names[i] if names is not None else f"p{i}"
            handles.append(
                builder.add_terminal(
                    Terminal(
                        name=name,
                        x=x,
                        y=y,
                        arrival_time=spec.arrival_time,
                        downstream_delay=spec.downstream_delay,
                        capacitance=spec.capacitance,
                        resistance=spec.resistance,
                        intrinsic_delay=spec.intrinsic_delay,
                    )
                )
            )
        else:
            handles.append(builder.add_steiner(x, y))
    for a, b in topo.edges:
        builder.connect(handles[a], handles[b])
    tree = builder.build(root=handles[root])
    if spacing is not None:
        tree = add_insertion_points(tree, spacing)
    return tree


def random_net(
    seed: int,
    n_terminals: int,
    spec: NetSpec = NetSpec(),
    *,
    grid: float = UM_PER_CM,
    spacing: Optional[float] = 800.0,
) -> RoutingTree:
    """One seeded experiment instance: points → Steiner tree → candidates."""
    points = random_points(seed, n_terminals, grid)
    return build_net(points, spec, spacing=spacing)


def chain_net(
    n_segments: int,
    spec: NetSpec = NetSpec(),
    *,
    segment_length: float = 200.0,
) -> RoutingTree:
    """A degenerate path graph: two terminals joined by a chain of
    ``n_segments`` wire segments with an insertion point at every interior
    node (``n_segments + 1`` nodes plus leafification pendants).

    Deterministic and numpy-free — the edge-case/differential corpora use
    it for depth-stress cases (a 10k-segment chain exercises every
    traversal's recursion-freedom) without sampling anything.
    """
    if n_segments < 1:
        raise ValueError("a chain needs at least one segment")
    if segment_length <= 0.0:
        raise ValueError(f"segment length must be positive, got {segment_length}")
    builder = TreeBuilder()
    head = builder.add_terminal(
        Terminal(
            name="head",
            x=0.0,
            y=0.0,
            arrival_time=spec.arrival_time,
            downstream_delay=spec.downstream_delay,
            capacitance=spec.capacitance,
            resistance=spec.resistance,
            intrinsic_delay=spec.intrinsic_delay,
        )
    )
    prev = head
    for k in range(1, n_segments):
        node = builder.add_insertion_point(k * segment_length, 0.0)
        builder.connect(prev, node)
        prev = node
    tail = builder.add_terminal(
        Terminal(
            name="tail",
            x=n_segments * segment_length,
            y=0.0,
            arrival_time=spec.arrival_time,
            downstream_delay=spec.downstream_delay,
            capacitance=spec.capacitance,
            resistance=spec.resistance,
            intrinsic_delay=spec.intrinsic_delay,
        )
    )
    builder.connect(prev, tail)
    return builder.build(root=head)


def star_net(
    n_leaves: int,
    spec: NetSpec = NetSpec(),
    *,
    arm_length: float = 400.0,
) -> RoutingTree:
    """A degenerate star: one hub Steiner point fanning out to ``n_leaves``
    leaf terminals, driven by a root terminal at the hub position.

    Deterministic and numpy-free; maximal fan-out in one combine step is
    the stress case for the Fig. 2 sibling skip-sums.
    """
    if n_leaves < 2:
        raise ValueError("a star needs at least two leaves")
    if arm_length <= 0.0:
        raise ValueError(f"arm length must be positive, got {arm_length}")
    builder = TreeBuilder()
    root = builder.add_terminal(
        Terminal(
            name="hub",
            x=0.0,
            y=0.0,
            arrival_time=spec.arrival_time,
            downstream_delay=spec.downstream_delay,
            capacitance=spec.capacitance,
            resistance=spec.resistance,
            intrinsic_delay=spec.intrinsic_delay,
        )
    )
    hub = builder.add_steiner(0.0, 0.0)
    builder.connect(root, hub)
    for k in range(n_leaves):
        leaf = builder.add_terminal(
            Terminal(
                name=f"leaf{k}",
                x=arm_length,
                y=float(k),
                arrival_time=spec.arrival_time,
                downstream_delay=spec.downstream_delay,
                capacitance=spec.capacitance,
                resistance=spec.resistance,
                intrinsic_delay=spec.intrinsic_delay,
            )
        )
        builder.connect(hub, leaf, length=arm_length)
    return builder.build(root=root)
