"""Named workloads reproducing the paper's experimental setup (Sec. VI).

The Sec. VI experiments share one configuration:

* random point sets on a 1 cm × 1 cm grid (10 nets each of 10 and 20 pins);
* Steiner trees over the points, insertion points at ≤ 800 µm spacing with
  at least one per wire;
* every terminal acts as both source and sink with zero arrival times and
  downstream delays — i.e. the *unaugmented* RC-diameter is optimized;
* the repeater is a pair of the Table-I 1X buffers;
* the driver-sizing library pairs kX driving and receiving buffers
  (k ∈ {1..4}), accounting for a 400 Ω previous stage and a 0.2 pF
  following stage;
* costs are counted in equivalent 1X buffers, *including* the terminal
  buffers, so the min-cost solution (no repeaters, all-1X terminals) costs
  ``2 × pins``.

To keep repeater-insertion and driver-sizing runs directly comparable, the
generated terminals are *bare* (zero boundary penalties) and both modes
dress them through :class:`~repro.core.driver_sizing.DriverOption`:
repeater-insertion runs pin every terminal to the 1X/1X option; sizing runs
offer the full library.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.driver_sizing import DriverOption, make_driver_options
from ..core.msri import MSRIOptions
from ..rctree.topology import RoutingTree
from ..tech.buffers import DEFAULT_BUFFER, RepeaterLibrary, default_repeater_library
from ..tech.parameters import DEFAULT_TECHNOLOGY, Technology
from .random_nets import NetSpec, random_net

__all__ = [
    "PAPER_SPACING_UM",
    "paper_technology",
    "paper_net_spec",
    "paper_repeater_library",
    "paper_driver_options",
    "fixed_1x_option",
    "paper_instance",
    "repeater_insertion_options",
    "driver_sizing_options",
    "find_fig11_seed",
]

#: Maximum insertion-point spacing used in the main experiments.
PAPER_SPACING_UM = 800.0


def paper_technology() -> Technology:
    """Wire constants of the experiments (documented Table-I substitution)."""
    return DEFAULT_TECHNOLOGY


def paper_net_spec() -> NetSpec:
    """Bare terminals: 1X electrical defaults, zero boundary penalties.

    Both optimization modes re-dress these through driver options, so the
    alpha/beta stored here stay zero (the paper's "all arrival times and
    downstream delay times are zero").
    """
    return NetSpec(
        capacitance=DEFAULT_BUFFER.input_capacitance,
        resistance=DEFAULT_BUFFER.output_resistance,
        intrinsic_delay=DEFAULT_BUFFER.intrinsic_delay,
        arrival_time=0.0,
        downstream_delay=0.0,
    )


def paper_repeater_library() -> RepeaterLibrary:
    """The Table II repeater: a pair of 1X buffers (cost 2)."""
    return default_repeater_library()


def paper_driver_options(scales=(1.0, 2.0, 3.0, 4.0)) -> List[DriverOption]:
    """The kX (driver, receiver) library with the paper's boundary stages."""
    tech = paper_technology()
    return make_driver_options(
        DEFAULT_BUFFER,
        scales,
        prev_stage_resistance=tech.extras["prev_stage_resistance"],
        next_stage_capacitance=tech.extras["next_stage_capacitance"],
    )


def fixed_1x_option() -> DriverOption:
    """The 1X/1X terminal dressing used by repeater-insertion runs."""
    return paper_driver_options(scales=(1.0,))[0]


def paper_instance(
    seed: int, n_pins: int, spacing: Optional[float] = PAPER_SPACING_UM
) -> RoutingTree:
    """One seeded Sec. VI instance: points → Steiner tree → candidates."""
    return random_net(seed, n_pins, paper_net_spec(), spacing=spacing)


def repeater_insertion_options(**overrides) -> MSRIOptions:
    """MSRI options for a Table II repeater-insertion run."""
    return MSRIOptions(
        library=paper_repeater_library(),
        driver_options=[fixed_1x_option()],
        **overrides,
    )


def driver_sizing_options(**overrides) -> MSRIOptions:
    """MSRI options for a Table II driver-sizing run."""
    return MSRIOptions(library=None, driver_options=paper_driver_options(), **overrides)


def find_fig11_seed(
    target_wirelength: float = 19_600.0,
    tolerance: float = 800.0,
    n_pins: int = 8,
    max_seed: int = 500,
) -> int:
    """Seed whose 8-pin instance matches Fig. 11's ~19.6 kµm wirelength.

    The paper's example point set is not published; we pick the first seeded
    instance whose Steiner wirelength lands within ``tolerance`` of the
    paper's 19.6 kµm so the scenario is geometrically comparable.
    """
    for seed in range(max_seed):
        tree = paper_instance(seed, n_pins, spacing=None)
        if abs(tree.total_wire_length() - target_wirelength) <= tolerance:
            return seed
    raise RuntimeError(
        f"no seed below {max_seed} yields wirelength within {tolerance} of "
        f"{target_wirelength}"
    )
