"""``repro-lint`` — command-line front end for the lint engine.

Usage::

    repro-lint src/                      # lint a tree, text output
    repro-lint --format json src tests   # machine-readable findings
    repro-lint --select R001,R006 src    # run a subset of rules
    repro-lint --list-rules              # print the catalogue

Exit status is 0 when no unsuppressed findings remain, 1 otherwise — the
CI gate runs ``repro-lint src/`` and fails the build on any finding.
The same functionality is reachable as ``repro-msri lint ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .engine import Finding, LintEngine, render_json, render_text
from .rules import DEFAULT_RULES, rules_by_id

__all__ = ["main", "build_parser", "run_lint"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific static analysis for the Lillis & Cheng "
        "reproduction (rules R001-R006; suppress per line with "
        "'# repro: noqa[Rxxx] reason')",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (recursively)"
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def run_lint(
    paths: Sequence[str],
    *,
    fmt: str = "text",
    select: Optional[str] = None,
    out=None,
) -> int:
    """Lint ``paths`` and print findings; returns the process exit code."""
    out = out if out is not None else sys.stdout
    rules: Sequence = DEFAULT_RULES
    if select:
        catalogue = rules_by_id()
        wanted = [rule_id.strip() for rule_id in select.split(",") if rule_id.strip()]
        unknown = [rule_id for rule_id in wanted if rule_id not in catalogue]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [catalogue[rule_id] for rule_id in wanted]
    engine = LintEngine(rules)
    try:
        findings: List[Finding] = engine.lint_paths(paths)
    except OSError as exc:
        print(f"cannot lint {exc.filename or paths}: {exc.strerror}", file=sys.stderr)
        return 2
    if fmt == "json":
        print(render_json(findings), file=out)
    else:
        print(render_text(findings), file=out)
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.rule_id} [{rule.severity}] {rule.description}")
        return 0
    if not args.paths:
        build_parser().error("no paths given (or use --list-rules)")
    return run_lint(args.paths, fmt=args.format, select=args.select)


if __name__ == "__main__":
    sys.exit(main())
