"""``repro-lint`` — command-line front end for the lint engine.

Usage::

    repro-lint src/                      # lint a tree, text output
    repro-lint --format json src tests   # machine-readable findings
    repro-lint --format sarif src        # SARIF 2.1.0 for code-scanning UIs
    repro-lint --select R001,R006 src    # run a subset of rules
    repro-lint --list-rules              # print the catalogue
    repro-lint --write-baseline lint-baseline.json src/   # adopt debt
    repro-lint --baseline lint-baseline.json src/         # gate on new only
    repro-lint --changed-only src/       # lint files changed vs. HEAD

Exit status is 0 when no unsuppressed, non-baselined findings remain, 1
otherwise — the CI gate runs ``repro-lint src/ benchmarks/ examples/`` and
fails the build on any finding.  The same functionality is reachable as
``repro-msri lint ...``.

``--changed-only`` narrows the linted set to files reported changed by
``git diff --name-only <base>`` (plus untracked files).  The whole-program
graph is then built over the changed files only, so interprocedural rules
see a partial call graph — fast for pre-commit loops, while CI runs the
full tree.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import load_baseline, partition, write_baseline
from .engine import Finding, LintEngine, render_json, render_text
from .rules import DEFAULT_RULES, rules_by_id
from .sarif import render_sarif

__all__ = ["main", "build_parser", "run_lint", "changed_files"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific static analysis for the Lillis & Cheng "
        "reproduction (per-file rules R001-R006 plus whole-program rules "
        "R007-R010; suppress per line with '# repro: noqa[Rxxx] reason')",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (recursively)"
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="demote findings fingerprinted in FILE to warnings; only new "
        "findings fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write all current findings to FILE as the new baseline and "
        "exit 0",
    )
    parser.add_argument(
        "--changed-only",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="BASE",
        help="lint only files changed vs. the git ref BASE (default HEAD), "
        "plus untracked files, restricted to the given paths",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def changed_files(
    paths: Sequence[str], base: str = "HEAD"
) -> List[str]:
    """``*.py`` files under ``paths`` that differ from ``base`` or are
    untracked, according to git.  Raises ``RuntimeError`` outside a repo."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", base, "--"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.splitlines()
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.splitlines()
    except (OSError, subprocess.CalledProcessError) as exc:
        raise RuntimeError(f"--changed-only requires git: {exc}") from exc
    scopes = [Path(p).resolve() for p in paths]
    out: List[str] = []
    for name in dict.fromkeys([*diff, *untracked]):  # keep order, dedupe
        if not name.endswith(".py"):
            continue
        candidate = Path(name)
        if not candidate.exists():
            continue  # deleted in the working tree
        resolved = candidate.resolve()
        if not scopes or any(
            scope == resolved or scope in resolved.parents for scope in scopes
        ):
            out.append(name)
    return out


def run_lint(
    paths: Sequence[str],
    *,
    fmt: str = "text",
    select: Optional[str] = None,
    baseline: Optional[str] = None,
    write_baseline_to: Optional[str] = None,
    changed_only: Optional[str] = None,
    out=None,
) -> int:
    """Lint ``paths`` and print findings; returns the process exit code."""
    out = out if out is not None else sys.stdout
    rules: Sequence = DEFAULT_RULES
    if select:
        catalogue = rules_by_id()
        wanted = [rule_id.strip() for rule_id in select.split(",") if rule_id.strip()]
        unknown = [rule_id for rule_id in wanted if rule_id not in catalogue]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [catalogue[rule_id] for rule_id in wanted]
    if changed_only is not None:
        try:
            paths = changed_files(paths, base=changed_only)
        except RuntimeError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if not paths:
            print("no changed python files to lint", file=out)
            return 0
    engine = LintEngine(rules)
    try:
        findings: List[Finding] = engine.lint_paths(paths)
    except OSError as exc:
        print(f"cannot lint {exc.filename or paths}: {exc.strerror}", file=sys.stderr)
        return 2
    if write_baseline_to is not None:
        count = write_baseline(findings, write_baseline_to)
        print(
            f"wrote {count} fingerprint(s) to {write_baseline_to}", file=out
        )
        return 0
    gating = findings
    if baseline is not None:
        try:
            known_fps = load_baseline(baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline: {exc}", file=sys.stderr)
            return 2
        gating, known = partition(findings, known_fps)
        if known and fmt == "text":
            print(
                f"{len(known)} baselined finding(s) suppressed "
                f"({baseline})",
                file=out,
            )
    if fmt == "sarif":
        print(render_sarif(gating, rules), file=out)
    elif fmt == "json":
        print(render_json(gating), file=out)
    else:
        print(render_text(gating), file=out)
    return 1 if gating else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.rule_id} [{rule.severity}] {rule.description}")
        return 0
    if not args.paths:
        build_parser().error("no paths given (or use --list-rules)")
    return run_lint(
        args.paths,
        fmt=args.format,
        select=args.select,
        baseline=args.baseline,
        write_baseline_to=args.write_baseline,
        changed_only=args.changed_only,
    )


if __name__ == "__main__":
    sys.exit(main())
