"""Physical-dimension vocabulary shared by the lint rules (R001, R006, R007).

Units follow :mod:`repro.tech.parameters`: resistance in Ω, capacitance in
pF, delay in ps (because Ω · pF = ps), distance in µm, and — for the
power-aware roadmap work — power in µW.  A dimension is a vector of integer
exponents over the four independent axes ``(Ω, pF, µm, µW)`` — picoseconds
are the derived dimension ``(1, 1, 0, 0)`` and area (µm²) is
``(0, 0, 2, 0)``.

Inference is deliberately *name-based and conservative*: an expression gets
a dimension only when its terminal identifier (variable name, attribute
name, or called method name) appears in the declarations tables below,
which were curated from the actual vocabulary of ``core/``, ``rctree/``,
``steiner/`` and ``tech/``.  Anything unknown stays a wildcard and can
never trigger a finding, so the dimensional rule errs toward silence
rather than noise.  Numeric literals are wildcards too: ``0.5 * cap`` is a
scalar multiple of a capacitance, not a dimension clash.

The whole-program analyzer (:mod:`repro.check.graph`) layers a second
source of truth on top of the tables: :func:`dim_of` accepts an ``env``
mapping local/parameter names to dimensions established elsewhere (e.g. by
interprocedural propagation) and a ``call_dims`` resolver for function
return dimensions inferred from the project call graph.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, Mapping, Optional, Tuple

__all__ = [
    "Dim",
    "OHM",
    "PF",
    "PS",
    "UM",
    "UM2",
    "UW",
    "DIMENSIONLESS",
    "NAME_DIMS",
    "CALL_DIMS",
    "SENTINEL_NAMES",
    "dim_of",
    "format_dim",
]

#: Exponent vector over the independent axes (Ω, pF, µm, µW).
Dim = Tuple[int, int, int, int]

OHM: Dim = (1, 0, 0, 0)
PF: Dim = (0, 1, 0, 0)
PS: Dim = (1, 1, 0, 0)  # Ω · pF
UM: Dim = (0, 0, 1, 0)
UM2: Dim = (0, 0, 2, 0)  # area
UW: Dim = (0, 0, 0, 1)  # power
DIMENSIONLESS: Dim = (0, 0, 0, 0)
OHM_PER_UM: Dim = (1, 0, -1, 0)
PF_PER_UM: Dim = (0, 1, -1, 0)
PER_UM: Dim = (0, 0, -1, 0)
UW_PER_UM: Dim = (0, 0, -1, 1)

#: Identifiers (variable or attribute names) with a declared dimension.
#: Ambiguous names used for several quantities in the codebase (``x``,
#: ``y``, ``lo``, ``hi``, ``best`` …) are deliberately absent.
NAME_DIMS: Dict[str, Dim] = {
    # resistances (Ω)
    "resistance": OHM,
    "r": OHM,
    "r_ab": OHM,
    "r_ba": OHM,
    "r_root": OHM,
    "output_resistance": OHM,
    "prev_stage_resistance": OHM,
    "wire_res": OHM,
    "_wire_res": OHM,
    "slope": OHM,
    "ds": OHM,  # slope difference in the PWL helpers
    # capacitances (pF)
    "capacitance": PF,
    "cap": PF,
    "c": PF,
    "c_a": PF,
    "c_b": PF,
    "c_e": PF,
    "c_max": PF,
    "c_root": PF,
    "load": PF,
    "load_pf": PF,
    "pins": PF,
    "input_capacitance": PF,
    "net_capacitance": PF,
    "next_stage_capacitance": PF,
    "wire_cap": PF,
    "_wire_cap": PF,
    "_down": PF,
    "_up": PF,
    # delays / times (ps)
    "delay": PS,
    "ard": PS,
    "arrival": PS,
    "arrival_time": PS,
    "arrival_penalty": PS,
    "required": PS,
    "diameter": PS,
    "intrinsic": PS,
    "intrinsic_delay": PS,
    "downstream_delay": PS,
    "sink_delay_extra": PS,
    "d_ab": PS,
    "d_ba": PS,
    "d_root": PS,
    "alpha": PS,
    "beta": PS,
    "q": PS,
    "intercept": PS,
    "spec": PS,
    # slews are transition *times* (ps) under the PERI composition model
    "slew": PS,
    "input_slew": PS,
    "output_slew": PS,
    "launch_slew": PS,
    "arriving_slew": PS,
    # distances (µm)
    "length": UM,
    "length_um": UM,
    "spacing": UM,
    "wirelength": UM,
    # areas (µm²) — wire-sizing / placement footprints
    "area": UM2,
    "area_um2": UM2,
    "footprint": UM2,
    # power-model vocabulary (µW) for the power-aware MSRI roadmap work
    "power": UW,
    "power_uw": UW,
    "switching_power": UW,
    "leakage_power": UW,
    "total_power": UW,
    # per-length technology constants
    "unit_resistance": OHM_PER_UM,
    "unit_capacitance": PF_PER_UM,
    "cost_per_um": PER_UM,  # cost is dimensionless (equivalent 1X buffers)
    "power_per_um": UW_PER_UM,
}

#: Called method/function names whose return value has a known dimension.
CALL_DIMS: Dict[str, Dim] = {
    "wire_delay": PS,
    "path_delay": PS,
    "driver_delay": PS,
    "augmented_delay": PS,
    "repeater_delay_through": PS,
    "ard_bruteforce": PS,
    "evaluate": PS,  # PWL arrival/diameter functions return ps
    "evaluate_or": PS,
    "value": PS,  # Segment.value
    "sink_slew": PS,
    "wire_resistance": OHM,
    "wire_capacitance": PF,
    "cap_into": PF,
    "downstream_cap": PF,
    "upstream_cap": PF,
    "node_view": PF,
    "driver_load": PF,
    "total_capacitance": PF,
    "edge_length": UM,
    "total_wire_length": UM,
}

#: Names that act as sentinels (±inf markers); float equality against them
#: is exact by construction and exempt from R001.
SENTINEL_NAMES: FrozenSet[str] = frozenset({"NEVER", "inf", "nan", "INF", "NAN"})


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _add(a: Dim, b: Dim) -> Dim:
    return tuple(x + y for x, y in zip(a, b))  # type: ignore[return-value]


def _sub(a: Dim, b: Dim) -> Dim:
    return tuple(x - y for x, y in zip(a, b))  # type: ignore[return-value]


def dim_of(
    node: ast.AST,
    *,
    env: Optional[Mapping[str, Optional[Dim]]] = None,
    call_dims: Optional[Callable[[str], Optional[Dim]]] = None,
) -> Optional[Dim]:
    """Infer the physical dimension of an expression, or None (wildcard).

    The inference understands the arithmetic the Elmore/PWL code actually
    performs: products and quotients combine exponent vectors (a numeric
    literal is a pure scalar), sums/differences propagate whichever operand
    dimension is known, and subscripting a dimensioned container (e.g. the
    per-edge ``_wire_cap`` list) yields the element dimension.

    ``env`` overrides the name table for bare identifiers — the
    whole-program analyzer feeds parameter and local-variable dimensions it
    established by interprocedural propagation (an entry whose value is
    ``None`` positively *erases* a table dimension for that name).
    ``call_dims`` likewise pre-empts :data:`CALL_DIMS` for call
    expressions, returning the callee's inferred return dimension.
    """
    if isinstance(node, ast.Name) and env is not None and node.id in env:
        return env[node.id]
    if isinstance(node, (ast.Name, ast.Attribute)):
        ident = _terminal_identifier(node)
        return NAME_DIMS.get(ident) if ident is not None else None
    if isinstance(node, ast.Call):
        ident = _terminal_identifier(node.func)
        if ident is None:
            return None
        if call_dims is not None:
            resolved = call_dims(ident)
            if resolved is not None:
                return resolved
        return CALL_DIMS.get(ident)
    if isinstance(node, ast.Subscript):
        return dim_of(node.value, env=env, call_dims=call_dims)
    if isinstance(node, ast.UnaryOp):
        return dim_of(node.operand, env=env, call_dims=call_dims)
    if isinstance(node, ast.IfExp):
        body = dim_of(node.body, env=env, call_dims=call_dims)
        orelse = dim_of(node.orelse, env=env, call_dims=call_dims)
        if body is not None and orelse is not None and body != orelse:
            return None  # ambiguous conditional; stay silent
        return body if body is not None else orelse
    if isinstance(node, ast.BinOp):
        left = dim_of(node.left, env=env, call_dims=call_dims)
        right = dim_of(node.right, env=env, call_dims=call_dims)
        if isinstance(node.op, ast.Mult):
            if left is not None and right is not None:
                return _add(left, right)
            if left is not None and isinstance(node.right, ast.Constant):
                return left
            if right is not None and isinstance(node.left, ast.Constant):
                return right
            return None
        if isinstance(node.op, ast.Div):
            if left is not None and right is not None:
                return _sub(left, right)
            if left is not None and isinstance(node.right, ast.Constant):
                return left
            return None
        if isinstance(node.op, (ast.Add, ast.Sub)):
            # mismatches are reported by R006; for inference purposes the
            # sum carries whichever side is known (left wins on conflict)
            return left if left is not None else right
    return None


_AXIS_SYMBOLS = ("Ω", "pF", "µm", "µW")
_NAMED = {OHM: "Ω", PF: "pF", PS: "ps", UM: "µm", UM2: "µm²", UW: "µW",
          OHM_PER_UM: "Ω/µm", PF_PER_UM: "pF/µm", PER_UM: "1/µm",
          UW_PER_UM: "µW/µm", DIMENSIONLESS: "1"}


def format_dim(dim: Dim) -> str:
    """Human-readable rendering: ``ps``, ``Ω``, or a composed monomial."""
    if dim in _NAMED:
        return _NAMED[dim]
    parts = []
    for exponent, symbol in zip(dim, _AXIS_SYMBOLS):
        if exponent == 1:
            parts.append(symbol)
        elif exponent != 0:
            parts.append(f"{symbol}^{exponent}")
    return "·".join(parts) if parts else "1"
