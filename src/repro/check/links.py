"""Relative-link checker for the repository's markdown documentation.

The docs cross-reference each other heavily (README → docs/*, docs/* →
source files); a rename silently strands those links.  This module walks
every ``[text](target)`` and ``![alt](target)`` in the given markdown
files and verifies that

* relative file targets exist on disk (resolved against the file that
  contains the link), and
* intra-file anchors (``#section`` or ``other.md#section``) match a
  heading in the target file, using GitHub's slug rules (lowercase,
  spaces to dashes, punctuation dropped).

External schemes (``http://``, ``https://``, ``mailto:``) are skipped —
CI must not depend on the network.  Inline code spans and fenced code
blocks are ignored so documentation *about* link syntax never trips the
checker.

Run it as::

    python -m repro.check.links README.md docs/*.md

Exit status is the number of broken links (0 = clean), one ``file:line``
diagnostic per finding.
"""

from __future__ import annotations

import re
import sys
from typing import Iterable, List, Set, Tuple

__all__ = ["check_file", "main"]

# [text](target) or ![alt](target); target ends at the first unescaped ')'
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _slug(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = _CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"[^\w\s-]", "", text.strip().lower())
    return re.sub(r"[\s]+", "-", text)


def _headings(path: str) -> Set[str]:
    slugs: Set[str] = set()
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = _HEADING_RE.match(line)
            if m:
                slugs.add(_slug(m.group(1)))
    return slugs


def _iter_links(path: str) -> Iterable[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every markdown link in *path*."""
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            scrubbed = _CODE_SPAN_RE.sub("", line)
            for m in _LINK_RE.finditer(scrubbed):
                yield lineno, m.group(1)


def check_file(path: str) -> List[str]:
    """Return ``file:line: message`` diagnostics for broken links in *path*."""
    import os

    problems: List[str] = []
    base = os.path.dirname(os.path.abspath(path))
    for lineno, target in _iter_links(path):
        if target.startswith(_EXTERNAL):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                problems.append(
                    f"{path}:{lineno}: broken link target {file_part!r}"
                )
                continue
            anchor_file = resolved
        else:
            anchor_file = os.path.abspath(path)
        if anchor and anchor_file.endswith(".md"):
            if _slug(anchor) not in _headings(anchor_file):
                problems.append(
                    f"{path}:{lineno}: anchor #{anchor} not found in "
                    f"{file_part or path}"
                )
    return problems


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: python -m repro.check.links FILE.md [FILE.md ...]")
        return 2
    problems: List[str] = []
    for path in argv:
        problems.extend(check_file(path))
    for p in problems:
        print(p)
    if not problems:
        print(f"links: {len(argv)} file(s) clean")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
