"""Opt-in runtime contracts asserting paper-level invariants.

Set ``REPRO_CHECK=1`` in the environment (or call :func:`set_enabled` /
use the :func:`checking` context manager in tests) and the ARD/MSRI core
verifies, at its pass boundaries:

* **non-negative capacitances** after the Eq. 1/2 passes of the Elmore
  engine (every subtree load and every external load);
* **PWL well-formedness** on construction — segments sorted, domains
  monotone and non-overlapping, coefficients finite (Sec. IV-C);
* **Pareto non-domination** after every minimal-functional-subset prune:
  no surviving solution is strictly dominated anywhere on its remaining
  domain (Definition 4.3), and the root (cost, ARD) front is strictly
  monotone;
* **A/D/Z consistency**: on small trees the linear-time Fig. 2 ARD equals
  the O(n²) brute-force pairwise maximum, and the reported critical pair
  reproduces the reported value.

Contracts raise :class:`ContractViolation` (a ``RuntimeError`` — never a
bare ``assert``, so ``python -O`` cannot strip them).  All checks are
no-ops unless enabled; the hooks in the core cost one predicate call.

This module must stay import-light: the core imports it at module load,
so any ``repro.core`` imports happen lazily inside the verifiers.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

__all__ = [
    "ContractViolation",
    "contracts_enabled",
    "set_enabled",
    "checking",
    "verify_pwl",
    "verify_nonnegative_caps",
    "verify_msri_node_conservation",
    "verify_pareto",
    "verify_front_equivalence",
    "verify_front_values",
    "verify_msri_equivalence",
    "verify_root_front",
    "verify_ard_consistency",
    "verify_incremental_consistency",
    "verify_flat_consistency",
]

_ENV_VAR = "REPRO_CHECK"


class ContractViolation(RuntimeError):
    """A paper-level invariant failed at a pass boundary."""


def _env_enabled() -> bool:
    return os.environ.get(_ENV_VAR, "").strip().lower() not in ("", "0", "false", "off")


_enabled = _env_enabled()


def contracts_enabled() -> bool:
    """True when runtime invariant checking is active."""
    return _enabled


def set_enabled(flag: Optional[bool]) -> None:
    """Force contracts on/off; ``None`` re-reads the REPRO_CHECK env var."""
    global _enabled
    _enabled = _env_enabled() if flag is None else bool(flag)


@contextmanager
def checking(flag: bool = True) -> Iterator[None]:
    """Temporarily enable (or disable) contracts — for tests."""
    global _enabled
    prev = _enabled
    _enabled = bool(flag)
    try:
        yield
    finally:
        _enabled = prev


# -- individual verifiers -----------------------------------------------------
#
# Each verifier is callable unconditionally (tests drive them directly with
# injected violations); the core calls them behind contracts_enabled().


def verify_pwl(pwl, *, context: str = "") -> None:
    """Segment list is sorted, non-overlapping, with finite coefficients."""
    from ..core.intervals import ATOL

    prev = None
    for seg in pwl.segments:
        if seg.lo > seg.hi:
            raise ContractViolation(
                f"{context or 'PWL'}: empty segment domain [{seg.lo}, {seg.hi}]"
            )
        if not all(
            math.isfinite(v) for v in (seg.lo, seg.hi, seg.intercept, seg.slope)
        ):
            raise ContractViolation(
                f"{context or 'PWL'}: non-finite segment {seg!r}"
            )
        if prev is not None and seg.lo < prev.hi - ATOL:
            raise ContractViolation(
                f"{context or 'PWL'}: segments out of order or overlapping: "
                f"{prev!r} then {seg!r}"
            )
        prev = seg


def verify_nonnegative_caps(analyzer, *, atol: float = 1e-9) -> None:
    """Every Eq. 1 subtree load and Eq. 2 external load is >= 0."""
    tree = analyzer.tree
    for v in range(len(tree)):
        down = analyzer.downstream_cap(v)
        if down < -atol:
            raise ContractViolation(
                f"Eq. 1 violation: downstream capacitance of node {v} is "
                f"{down} pF (negative)"
            )
        if tree.parent(v) is not None:
            up = analyzer.upstream_cap(v)
            if up < -atol:
                raise ContractViolation(
                    f"Eq. 2 violation: upstream capacitance at node {v} is "
                    f"{up} pF (negative)"
                )


def verify_msri_node_conservation(node: int, generated: int, kept: int) -> None:
    """MSRI per-node solution accounting: ``pruned + kept == generated``.

    The DP reports, for every vertex, how many candidate solutions it
    generated and how many survived pruning; the difference is the pruned
    count.  A pruner that *invents* solutions (``kept > generated``) or a
    negative count means the bookkeeping — and therefore every published
    pruning-effectiveness number — is wrong.
    """
    if generated < 0 or kept < 0:
        raise ContractViolation(
            f"MSRI node {node}: negative solution count "
            f"(generated={generated}, kept={kept})"
        )
    if kept > generated:
        raise ContractViolation(
            f"MSRI node {node}: pruning returned {kept} solutions from "
            f"{generated} candidates — pruned + kept != generated"
        )


def verify_pareto(
    solutions: Sequence, *, limit: int = 150, measure_atol: float = 1e-9
) -> None:
    """No solution is strictly dominated anywhere on its surviving domain.

    Re-runs the strict pruning predicate pairwise (Definition 4.3): a
    violation means MFS pruning let a dominated region survive.  To bound
    the O(n²) cost on huge sets only the first ``limit`` solutions (in the
    pruner's own tie-break order) are cross-checked.
    """
    from ..core.mfs import prune_one

    sols = list(solutions)[:limit]
    for i, s in enumerate(sols):
        for j, by in enumerate(sols):
            if i == j:
                continue
            survivor = prune_one(s, by, strict=True)
            if survivor is s:
                continue
            lost = s.domain.measure - (
                0.0 if survivor is None else survivor.domain.measure
            )
            if survivor is None or lost > measure_atol:
                raise ContractViolation(
                    f"Pareto violation after pruning: solution uid={s.uid} "
                    f"({s.describe()}) is strictly dominated by uid={by.uid} "
                    f"({by.describe()}) on a region of measure {lost:g}"
                )


def verify_front_equivalence(
    front: Sequence, baseline: Sequence, *, context: str = ""
) -> None:
    """Two pruned fronts are *bit-identical* up to ordering.

    Exact-mode safety contract of the predictive pre-filters
    (``docs/PRUNING.md``): the front produced with pre-filtering enabled
    must equal the front the pure Fig. 4 pruner computes from the same raw
    candidates — same solutions (by uid), same scalar coordinates, same
    surviving domains, same PWL coordinates.  Comparison is exact (no
    tolerance): the fast path is required to replicate the slow path's
    arithmetic, so any drift is a pruning bug, never float noise.
    """
    label = context or "front equivalence"
    key = lambda s: (s.parity, s.cost, s.cap, s.q, s.uid)  # noqa: E731
    a = sorted(front, key=key)
    b = sorted(baseline, key=key)
    if len(a) != len(b):
        only_a = sorted({s.uid for s in a} - {s.uid for s in b})
        only_b = sorted({s.uid for s in b} - {s.uid for s in a})
        raise ContractViolation(
            f"{label}: fast front has {len(a)} solutions, baseline {len(b)} "
            f"(extra uids {only_a}, missing uids {only_b})"
        )
    for sa, sb in zip(a, b):
        # exact comparison is the contract (see docstring)
        if (
            sa.uid != sb.uid
            or sa.parity != sb.parity
            or sa.cost != sb.cost  # repro: noqa[R001]
            or sa.cap != sb.cap  # repro: noqa[R001]
            or sa.q != sb.q  # repro: noqa[R001]
            or sa.domain != sb.domain
            or sa.arr != sb.arr
            or sa.diam != sb.diam
        ):
            raise ContractViolation(
                f"{label}: solution mismatch — fast uid={sa.uid} "
                f"({sa.describe()}) vs baseline uid={sb.uid} "
                f"({sb.describe()})"
            )


def _solution_value_key(s):
    """A total order on solutions by *content*, ignoring the ``uid``.

    Used where two fronts computed by different paths (cold DP versus a
    cache/incremental reuse) must be compared: uids are process-local
    tie-breaks and legitimately differ, but every value-bearing field must
    be bitwise equal.  ``None`` functions sort before any segment tuple.
    """
    dom = tuple((iv.lo, iv.hi) for iv in s.domain.intervals)
    arr = (
        (0, ())
        if s.arr is None
        else (1, tuple((g.lo, g.hi, g.intercept, g.slope) for g in s.arr.segments))
    )
    diam = (
        (0, ())
        if s.diam is None
        else (1, tuple((g.lo, g.hi, g.intercept, g.slope) for g in s.diam.segments))
    )
    return (s.parity, s.cost, s.cap, s.q, dom, arr, diam)


def verify_front_values(
    front: Sequence, baseline: Sequence, *, context: str = ""
) -> None:
    """Two fronts are bit-identical in every value-bearing field.

    The uid-agnostic sibling of :func:`verify_front_equivalence`: the
    memoized/incremental MSRI paths rebuild solutions with fresh uids, so
    uids may not be compared — but parity, cost, cap, q, the surviving
    domain, and the PWL coordinates of ``arr``/``diam`` must all match the
    cold DP exactly (no tolerance: reuse replays stored bits, so any drift
    is a caching bug, never float noise).
    """
    label = context or "front values"
    a = sorted(front, key=_solution_value_key)
    b = sorted(baseline, key=_solution_value_key)
    if len(a) != len(b):
        raise ContractViolation(
            f"{label}: reused front has {len(a)} solutions, "
            f"cold baseline {len(b)}"
        )
    for sa, sb in zip(a, b):
        if _solution_value_key(sa) != _solution_value_key(sb):
            raise ContractViolation(
                f"{label}: solution value mismatch — reused "
                f"{sa.describe()} vs cold {sb.describe()}"
            )


def verify_msri_equivalence(result, baseline, *, context: str = "") -> None:
    """A reused/incremental MSRI result equals the cold DP — *bit for bit*.

    Compares the root (cost, ARD) suites exactly and every solution's
    reconstructed assignment (node index -> placed object; repeaters and
    driver options are value-equal frozen dataclasses).  uids and trace
    shapes may differ; the answers may not.
    """
    label = context or "MSRI equivalence"
    a, b = result.solutions, baseline.solutions
    if len(a) != len(b):
        raise ContractViolation(
            f"{label}: reused suite has {len(a)} solutions, cold has {len(b)}"
        )
    for sa, sb in zip(a, b):
        # exact comparison is the contract (see docstring)
        if sa.cost != sb.cost or sa.ard != sb.ard:  # repro: noqa[R001]
            raise ContractViolation(
                f"{label}: root solution mismatch — reused (cost={sa.cost!r}, "
                f"ard={sa.ard!r}) vs cold (cost={sb.cost!r}, ard={sb.ard!r})"
            )
        if sa.assignment() != sb.assignment():
            raise ContractViolation(
                f"{label}: assignment mismatch at cost={sa.cost!r} — "
                f"reused {sa.assignment()!r} vs cold {sb.assignment()!r}"
            )


def verify_root_front(roots: Sequence, *, atol: float = 1e-9) -> None:
    """Root suite is strictly increasing in cost, strictly decreasing in ARD."""
    for a, b in zip(roots, roots[1:]):
        if b.cost <= a.cost + atol or b.ard >= a.ard - atol:
            raise ContractViolation(
                f"root front not strictly monotone: (cost={a.cost}, "
                f"ard={a.ard}) followed by (cost={b.cost}, ard={b.ard})"
            )


def verify_ard_consistency(
    result, analyzer, *, max_terminals: int = 12, atol: float = 1e-6
) -> None:
    """Fig. 2 linear-time A/D/Z agrees with brute force on small trees.

    Skipped (returns silently) above ``max_terminals`` — the brute force is
    O(n²) path walks and the contract is meant as a spot check, not a tax.
    """
    terminals = analyzer.tree.terminal_indices()
    if len(terminals) > max_terminals:
        return
    brute = analyzer.ard_bruteforce()
    scale = max(1.0, abs(brute)) if math.isfinite(brute) else 1.0
    both_undefined = not math.isfinite(result.value) and not math.isfinite(brute)
    if not both_undefined and abs(result.value - brute) > atol * scale:
        raise ContractViolation(
            f"ARD inconsistency: Fig. 2 three-pass gives {result.value}, "
            f"brute-force pairwise maximum gives {brute}"
        )
    if result.is_finite and result.source is not None and result.sink is not None:
        via_pair = analyzer.augmented_delay(result.source, result.sink)
        if abs(via_pair - result.value) > atol * scale:
            raise ContractViolation(
                f"critical pair ({result.source}, {result.sink}) reproduces "
                f"{via_pair}, not the reported ARD {result.value}"
            )


def verify_incremental_consistency(result, engine) -> None:
    """An incremental evaluation equals a fresh full pass — *bit for bit*.

    ``engine.fresh_result()`` rebuilds every record from the engine's
    current state with the same shared combine step, so value and critical
    pair must match exactly (no tolerance): any difference is a
    dirty-tracking bug in the incremental path, never float drift.
    """
    fresh = engine.fresh_result()
    both_undefined = not result.is_finite and not fresh.is_finite
    # exact comparison is the contract: the two paths share one arithmetic
    if not both_undefined and result.value != fresh.value:  # repro: noqa[R001]
        raise ContractViolation(
            f"incremental ARD {result.value!r} != fresh full pass "
            f"{fresh.value!r} (dirty-path invalidation bug)"
        )
    if (result.source, result.sink) != (fresh.source, fresh.sink):
        raise ContractViolation(
            f"incremental critical pair ({result.source}, {result.sink}) != "
            f"fresh full pass ({fresh.source}, {fresh.sink})"
        )


def verify_flat_consistency(result, state) -> None:
    """A flat-kernel evaluation equals the reference record pass — *bit for bit*.

    ``state`` is the :class:`~repro.rctree.incremental.EvalState` capturing
    the flat engine's current knobs; the reference ``build_records`` /
    ``finish_root`` replay it from scratch.  The flat kernel is a port of
    that exact arithmetic, so value and critical pair must match with no
    tolerance: any difference is a compilation or kernel porting bug, never
    float drift.
    """
    from ..rctree.incremental import build_records, finish_root

    records = build_records(state)
    value, src, snk = finish_root(state, records)
    both_undefined = not result.is_finite and not math.isfinite(value)
    # exact comparison is the contract: the flat kernel ports this arithmetic
    if not both_undefined and result.value != value:  # repro: noqa[R001]
        raise ContractViolation(
            f"flat-kernel ARD {result.value!r} != reference record pass "
            f"{value!r} (kernel porting bug)"
        )
    if (result.source, result.sink) != (src, snk):
        raise ContractViolation(
            f"flat-kernel critical pair ({result.source}, {result.sink}) != "
            f"reference record pass ({src}, {snk})"
        )
