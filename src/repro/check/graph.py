"""Whole-program analysis: symbol table, call graph, interprocedural dims.

The per-file rules (R001–R006) see one AST at a time, so a unit mix-up
laundered through a function boundary — an Ω value passed into a parameter
the callee adds to a ps value — is invisible to them.  This module builds
the project-wide view the whole-program rules (R007–R010) need:

* a **symbol table** of every function, method and class across all linted
  files, keyed by dotted qualname;
* a **call graph**: each call site resolved (conservatively, by unique
  simple name, or through an explicit ``self.`` receiver) to the function
  it invokes;
* a **fixpoint dimension pass** propagating the Ω/pF/ps/µm/µW lattice of
  :mod:`repro.check.dimensions` through function parameters and return
  values.  Parameter dimensions come from three sources, tracked
  separately so rules can report *why* a dimension is established:

  - ``declared`` — the parameter's own name is in ``NAME_DIMS``;
  - ``usage`` — the body adds/subtracts the parameter against a quantity
    of known dimension (``return delay + extra`` pins ``extra`` to ps);
  - ``callsite`` — every resolved caller passes arguments of one known
    dimension.

  Return dimensions are joined over the function's ``return`` expressions,
  evaluated in an environment of parameter and local-variable dimensions.

The lattice is the usual three-level one: ``None`` (unknown, top), a
concrete ``Dim`` vector, and :data:`CONFLICT` (bottom).  Conflicting
evidence collapses to ``CONFLICT``, which can never trigger a finding —
the analyzer errs toward silence exactly like the name tables do.

Everything here is pure ``ast``: no imports are executed, so linting
broken or dependency-heavy code is safe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .dimensions import CALL_DIMS, NAME_DIMS, Dim, dim_of

__all__ = [
    "CONFLICT",
    "join",
    "known",
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ProjectGraph",
    "module_name_for_path",
]


class _Conflict:
    """Bottom of the dimension lattice: contradictory evidence."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<dim CONFLICT>"


CONFLICT = _Conflict()

#: Lattice value: ``None`` (unknown) | ``Dim`` | :data:`CONFLICT`.
LatticeVal = object


def join(a: LatticeVal, b: LatticeVal) -> LatticeVal:
    """Least upper bound: unknown is the identity, disagreement conflicts."""
    if a is None:
        return b
    if b is None:
        return a
    if a is CONFLICT or b is CONFLICT or a != b:
        return CONFLICT
    return a


def known(value: LatticeVal) -> Optional[Dim]:
    """The concrete dimension, or None for unknown/conflicted values."""
    if value is None or value is CONFLICT:
        return None
    return value  # type: ignore[return-value]


def module_name_for_path(path: str) -> str:
    """Dotted module name for a file path (``src/repro/core/ard.py`` →
    ``repro.core.ard``); falls back to the stem for paths outside ``src``.
    """
    parts = list(PurePath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "<module>"


@dataclass
class CallSite:
    """One resolved-or-not call expression inside a function (or module)."""

    node: ast.Call
    path: str
    caller: Optional[str]  #: qualname of the enclosing function, None at module level
    callee_name: Optional[str]  #: rightmost identifier of the callee, if any
    resolved: Optional[str] = None  #: qualname of the unique project match


@dataclass
class FunctionInfo:
    """Everything the analyzer knows about one function or method."""

    qualname: str
    name: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    params: List[str]  #: positional(+kwonly) parameter names, self/cls dropped
    class_name: Optional[str] = None
    nested: bool = False  #: defined inside another function (not picklable)
    decorators: Tuple[str, ...] = ()
    num_defaults: int = 0  #: how many trailing parameters carry defaults
    # -- dimension lattice state (fixpoint-updated) ---------------------------
    declared_dims: Dict[str, LatticeVal] = field(default_factory=dict)
    usage_dims: Dict[str, LatticeVal] = field(default_factory=dict)
    callsite_dims: Dict[str, LatticeVal] = field(default_factory=dict)
    local_dims: Dict[str, LatticeVal] = field(default_factory=dict)
    return_dim: LatticeVal = None
    # -- call graph -----------------------------------------------------------
    calls: List[CallSite] = field(default_factory=list)
    callees: Set[str] = field(default_factory=set)  #: resolved callee qualnames

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def param_dim(self, name: str) -> LatticeVal:
        """Declared ⊔ usage ⊔ call-site evidence for one parameter."""
        return join(
            join(self.declared_dims.get(name), self.usage_dims.get(name)),
            self.callsite_dims.get(name),
        )

    def param_contract(self, name: str) -> Optional[Dim]:
        """The dimension a caller must honour: declared ⊔ usage evidence.

        Call-site evidence is deliberately excluded — a contract derived
        only from *other* call sites would let two wrong callers indict
        each other.  R007 compares arguments against this.
        """
        return known(join(self.declared_dims.get(name), self.usage_dims.get(name)))

    def contract_basis(self, name: str) -> str:
        """Human-readable provenance of :meth:`param_contract`."""
        if known(self.declared_dims.get(name)) is not None:
            return "declared by name"
        return "established by usage in the body"


@dataclass
class ClassInfo:
    """One class definition: bases (as dotted source text) and methods."""

    qualname: str
    name: str
    path: str
    node: ast.ClassDef
    bases: Tuple[str, ...]
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def is_protocol(self) -> bool:
        return any(b.split(".")[-1] == "Protocol" for b in self.bases)


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    """Source-ish dotted rendering of a Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return None


class _Collector(ast.NodeVisitor):
    """First pass over one file: functions, classes, call sites."""

    def __init__(self, graph: "ProjectGraph", path: str) -> None:
        self.graph = graph
        self.path = path
        self.module = module_name_for_path(path)
        self._scope: List[str] = []  # qualname components below the module
        self._func_stack: List[FunctionInfo] = []
        self._class_stack: List[ClassInfo] = []

    # -- definitions -----------------------------------------------------------

    def _handle_function(self, node) -> None:
        qualname = ".".join([self.module, *self._scope, node.name])
        args = node.args
        params = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
        in_class = bool(self._class_stack) and (
            not self._func_stack
            or self._scope[-1:] == [self._class_stack[-1].name]
        )
        if in_class and params and params[0] in ("self", "cls"):
            params = params[1:]
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            path=self.path,
            node=node,
            params=params,
            class_name=self._class_stack[-1].name if in_class else None,
            nested=bool(self._func_stack),
            decorators=tuple(
                d for d in (_dotted(dec) for dec in node.decorator_list) if d
            ),
            num_defaults=len(args.defaults)
            + sum(1 for d in args.kw_defaults if d is not None),
        )
        for p in params:
            info.declared_dims[p] = NAME_DIMS.get(p)
        self.graph._add_function(info)
        if in_class:
            self._class_stack[-1].methods[node.name] = info
        self._scope.append(node.name)
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = ".".join([self.module, *self._scope, node.name])
        info = ClassInfo(
            qualname=qualname,
            name=node.name,
            path=self.path,
            node=node,
            bases=tuple(b for b in (_dotted(base) for base in node.bases) if b),
        )
        self.graph._add_class(info)
        self._scope.append(node.name)
        self._class_stack.append(info)
        self.generic_visit(node)
        self._class_stack.pop()
        self._scope.pop()

    # -- module-level globals (for R008 shared-state analysis) -----------------

    def _note_module_global(self, target: ast.AST, value: ast.AST) -> None:
        if self._scope or not isinstance(target, ast.Name):
            return
        ctor = None
        if isinstance(value, ast.Call):
            ctor = _terminal_name(value.func)
        self.graph._module_globals.setdefault(self.path, {})[target.id] = ctor

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_module_global(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._note_module_global(node.target, node.value)
        self.generic_visit(node)

    # -- call sites ------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        caller = self._func_stack[-1] if self._func_stack else None
        site = CallSite(
            node=node,
            path=self.path,
            caller=caller.qualname if caller else None,
            callee_name=_terminal_name(node.func),
        )
        if caller is not None:
            caller.calls.append(site)
        else:
            self.graph._module_calls.setdefault(self.path, []).append(site)
        self.generic_visit(node)


class ProjectGraph:
    """The whole-program view: symbols, call graph, inferred dimensions."""

    #: Fixpoint iteration cap.  The lattice has height 2 per slot, so
    #: convergence is fast; the cap only guards pathological inputs.
    MAX_ITERATIONS = 10

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.paths: List[str] = []
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        self._classes_by_name: Dict[str, List[ClassInfo]] = {}
        self._module_calls: Dict[str, List[CallSite]] = {}
        self._module_globals: Dict[str, Dict[str, Optional[str]]] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, sources: Sequence[Tuple[str, ast.AST]]) -> "ProjectGraph":
        """Build the graph over ``(path, parsed tree)`` pairs and run the
        interprocedural dimension fixpoint."""
        graph = cls()
        for path, tree in sources:
            graph.paths.append(path)
            _Collector(graph, path).visit(tree)
        graph._resolve_calls()
        graph._infer_dimensions()
        return graph

    def _add_function(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info
        self._by_name.setdefault(info.name, []).append(info)

    def _add_class(self, info: ClassInfo) -> None:
        self.classes[info.qualname] = info
        self._classes_by_name.setdefault(info.name, []).append(info)

    # -- lookups ---------------------------------------------------------------

    def functions_in(self, path: str) -> List[FunctionInfo]:
        return [f for f in self.functions.values() if f.path == path]

    def classes_in(self, path: str) -> List[ClassInfo]:
        return [c for c in self.classes.values() if c.path == path]

    def by_simple_name(self, name: str) -> List[FunctionInfo]:
        return list(self._by_name.get(name, ()))

    def module_globals(self, path: str) -> Set[str]:
        """Names assigned at module level in ``path``."""
        return set(self._module_globals.get(path, ()))

    def module_global_constructors(self, path: str) -> Dict[str, Optional[str]]:
        """Module-global name → terminal callee name of its initializer
        (``_OBS_NODES = obs.Counter(...)`` → ``"Counter"``), else None."""
        return dict(self._module_globals.get(path, {}))

    def class_named(self, name: str) -> Optional[ClassInfo]:
        candidates = self._classes_by_name.get(name, ())
        return candidates[0] if len(candidates) == 1 else None

    def all_call_sites(self) -> Iterable[CallSite]:
        for fn in self.functions.values():
            yield from fn.calls
        for sites in self._module_calls.values():
            yield from sites

    def call_sites_in(self, path: str) -> Iterable[CallSite]:
        for fn in self.functions.values():
            if fn.path == path:
                yield from fn.calls
        yield from self._module_calls.get(path, ())

    def resolve(self, site: CallSite) -> Optional[FunctionInfo]:
        return self.functions.get(site.resolved) if site.resolved else None

    # -- call resolution -------------------------------------------------------

    def _resolve_calls(self) -> None:
        for site in self.all_call_sites():
            info = self._resolve_one(site)
            if info is not None:
                site.resolved = info.qualname
                caller = self.functions.get(site.caller) if site.caller else None
                if caller is not None:
                    caller.callees.add(info.qualname)

    def _resolve_one(self, site: CallSite) -> Optional[FunctionInfo]:
        func = site.node.func
        name = site.callee_name
        if name is None:
            return None
        # self.method() inside a class whose body defines the method
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id in ("self", "cls") and site.caller is not None:
                caller = self.functions.get(site.caller)
                if caller is not None and caller.class_name is not None:
                    cls_info = self.class_named(caller.class_name)
                    if cls_info is not None and name in cls_info.methods:
                        return cls_info.methods[name]
        # ClassName() constructor → __init__ is opaque to the dim pass; skip
        if isinstance(func, ast.Name) and name in self._classes_by_name:
            return None
        candidates = self._by_name.get(name, ())
        if len(candidates) == 1:
            return candidates[0]
        return None  # ambiguous or unknown: stay conservative

    # -- interprocedural dimension fixpoint ------------------------------------

    def _infer_dimensions(self) -> None:
        for _ in range(self.MAX_ITERATIONS):
            if not self._one_round():
                break

    def _one_round(self) -> bool:
        changed = False
        for fn in self.functions.values():
            changed |= self._local_pass(fn)
        # propagate argument dimensions into callee parameter slots
        for site in self.all_call_sites():
            callee = self.resolve(site)
            if callee is None:
                continue
            env = self._env_for(site.caller)
            for param, arg in self._bind_args(callee, site.node):
                d = self.dim_of_expr(arg, env)
                if d is None:
                    continue
                old = callee.callsite_dims.get(param)
                new = join(old, d)
                if new is not old and new != old:
                    callee.callsite_dims[param] = new
                    changed = True
        return changed

    def _env_for(self, qualname: Optional[str]) -> Dict[str, LatticeVal]:
        if qualname is None:
            return {}
        fn = self.functions.get(qualname)
        return self.function_env(fn) if fn is not None else {}

    def function_env(self, fn: FunctionInfo) -> Dict[str, LatticeVal]:
        """Known dimensions of ``fn``'s parameters and locals, for R006/R007.

        Conflicted slots are included with value ``None`` so they *erase*
        any same-named entry in the global name table — a variable with
        contradictory evidence must not fall back to its name's dimension.
        """
        env: Dict[str, LatticeVal] = {}
        for p in fn.params:
            env[p] = known(fn.param_dim(p))
        for name, val in fn.local_dims.items():
            env[name] = known(val)
        return env

    def return_dim_of(self, name: str) -> Optional[Dim]:
        """Inferred return dimension for a unique simple name, else the
        declarations table."""
        candidates = self._by_name.get(name, ())
        if len(candidates) == 1:
            d = known(candidates[0].return_dim)
            if d is not None:
                return d
        return CALL_DIMS.get(name)

    def dim_of_expr(
        self, node: ast.AST, env: Optional[Dict[str, LatticeVal]] = None
    ) -> Optional[Dim]:
        """Project-aware :func:`repro.check.dimensions.dim_of`."""
        return dim_of(node, env=env, call_dims=self.return_dim_of)

    @staticmethod
    def _bind_args(
        callee: FunctionInfo, call: ast.Call
    ) -> List[Tuple[str, ast.AST]]:
        """Map call arguments onto callee parameter names (best effort)."""
        pairs: List[Tuple[str, ast.AST]] = []
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if i < len(callee.params):
                pairs.append((callee.params[i], arg))
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in callee.params:
                pairs.append((kw.arg, kw.value))
        return pairs

    def _local_pass(self, fn: FunctionInfo) -> bool:
        """Re-derive usage dims, local dims and the return dim of ``fn``."""
        env: Dict[str, LatticeVal] = {
            p: known(fn.param_dim(p)) for p in fn.params
        }
        usage: Dict[str, LatticeVal] = {}
        ret: LatticeVal = None
        params = set(fn.params)

        def eval_dim(node: ast.AST) -> Optional[Dim]:
            return self.dim_of_expr(node, env)

        def note_usage(name: str, d: Optional[Dim]) -> None:
            if d is not None:
                usage[name] = join(usage.get(name), d)

        def scan_expr(node: ast.AST) -> None:
            """Record +/- usage evidence for still-undimensioned params."""
            for sub in ast.walk(node):
                if isinstance(sub, ast.BinOp) and isinstance(
                    sub.op, (ast.Add, ast.Sub)
                ):
                    ld, rd = eval_dim(sub.left), eval_dim(sub.right)
                    for side, other in ((sub.left, rd), (sub.right, ld)):
                        if (
                            isinstance(side, ast.Name)
                            and side.id in params
                            and env.get(side.id) is None
                        ):
                            note_usage(side.id, other)

        def walk_body(stmts) -> None:
            nonlocal ret
            for stmt in stmts:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue  # nested scopes are analyzed on their own
                scan_expr(stmt)
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name):
                        d = eval_dim(stmt.value)
                        if d is not None:
                            prev = fn.local_dims.get(target.id)
                            env[target.id] = known(join(prev, d))
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    if isinstance(stmt.target, ast.Name):
                        d = eval_dim(stmt.value)
                        if d is not None:
                            env[stmt.target.id] = d
                elif isinstance(stmt, ast.Return) and stmt.value is not None:
                    ret = join(ret, eval_dim(stmt.value))
                for child_block in ("body", "orelse", "finalbody", "handlers"):
                    block = getattr(stmt, child_block, None)
                    if not block:
                        continue
                    if child_block == "handlers":
                        for h in block:
                            walk_body(h.body)
                    else:
                        walk_body(block)

        body = getattr(fn.node, "body", [])
        walk_body(body)

        locals_now = {
            name: val
            for name, val in env.items()
            if name not in params and val is not None
        }
        changed = False
        if usage != fn.usage_dims:
            fn.usage_dims = usage
            changed = True
        if locals_now != {
            k: known(v) for k, v in fn.local_dims.items() if known(v) is not None
        }:
            fn.local_dims = dict(locals_now)
            changed = True
        if ret != fn.return_dim and not (
            ret is None and fn.return_dim is None
        ):
            fn.return_dim = ret
            changed = True
        return changed

    # -- reachability ----------------------------------------------------------

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure of resolved call edges from ``roots``
        (qualnames); the roots themselves are included."""
        seen: Set[str] = set()
        stack = [q for q in roots if q in self.functions]
        while stack:
            q = stack.pop()
            if q in seen:
                continue
            seen.add(q)
            stack.extend(self.functions[q].callees - seen)
        return seen

    # -- worker-submission surface (R008) --------------------------------------

    #: Call names that submit a callable to the process-pool executor; the
    #: first positional argument (or the named keyword) is the callable.
    SUBMIT_CALLS: Dict[str, object] = {"run_jobs": 0, "run_campaign": "job_fn"}

    def submitted_callables(
        self,
    ) -> List[Tuple[CallSite, Optional[ast.AST], Optional[FunctionInfo]]]:
        """Every callable handed to the executor surface, resolved if
        possible: ``(site, callable expression, FunctionInfo or None)``."""
        out = []
        for site in self.all_call_sites():
            if site.callee_name not in self.SUBMIT_CALLS:
                continue
            slot = self.SUBMIT_CALLS[site.callee_name]
            arg: Optional[ast.AST] = None
            if isinstance(slot, int):
                if len(site.node.args) > slot:
                    arg = site.node.args[slot]
            for kw in site.node.keywords:
                if kw.arg == slot or (isinstance(slot, int) and kw.arg == "fn"):
                    arg = kw.value
            if arg is None:
                continue
            resolved = None
            name = _terminal_name(arg)
            if name is not None:
                candidates = self._by_name.get(name, ())
                if len(candidates) == 1:
                    resolved = candidates[0]
            out.append((site, arg, resolved))
        return out
