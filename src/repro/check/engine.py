"""Visitor-based AST lint engine with per-line ``noqa`` suppressions.

The engine parses each Python file once, hands the tree to every registered
:class:`Rule`, filters findings through the suppression comments collected
from the token stream, and renders the survivors as text or JSON.

Suppression syntax (checked by rule id, with an optional trailing reason)::

    if spread == 0.0:  # repro: noqa[R001] exact zero is the disabled sentinel
    x = {1, 2}         # repro: noqa[R002,R006] fixture exercises both rules

A bare ``# repro: noqa`` (no bracket) suppresses every rule on that line.
Suppressions attach to the physical line the finding is reported on.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Finding", "FileContext", "Rule", "LintEngine", "render_text", "render_json"]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

#: Sentinel stored in the suppression map for a bare ``# repro: noqa``.
_ALL_RULES = "*"


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, pinned to a file position."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str  # "error" | "warning"
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs about one file: source, AST, suppressions.

    ``project`` is the whole-program view (symbol table, call graph,
    interprocedural dimensions) built over every file of the lint run —
    a single-file project when linting one source in isolation.  Rules
    that only need the local AST ignore it.
    """

    path: str
    source: str
    tree: ast.AST
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    project: Optional["ProjectGraph"] = None

    def suppressed(self, line: int, rule_id: str) -> bool:
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return _ALL_RULES in rules or rule_id in rules


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` / ``severity`` / ``description`` and
    implement :meth:`check`, yielding :class:`Finding` objects.  The helper
    :meth:`finding` fills in the boilerplate fields.
    """

    rule_id: str = "R000"
    severity: str = "error"
    description: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map physical line number -> set of suppressed rule ids."""
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if m is None:
                continue
            line = tok.start[0]
            if m.group(1) is None:
                out.setdefault(line, set()).add(_ALL_RULES)
            else:
                for rule_id in m.group(1).split(","):
                    rule_id = rule_id.strip()
                    if rule_id:
                        out.setdefault(line, set()).add(rule_id)
    except tokenize.TokenError:
        pass  # syntax problems surface via ast.parse instead
    return out


class LintEngine:
    """Run a set of rules over sources, files, or directory trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        if rules is None:
            from .rules import DEFAULT_RULES

            rules = DEFAULT_RULES
        self.rules: Tuple[Rule, ...] = tuple(rules)

    @staticmethod
    def _parse(source: str, path: str):
        """Parse one source: ``(FileContext, None)`` or ``(None, Finding)``."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return None, Finding(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule_id="E999",
                severity="error",
                message=f"syntax error: {exc.msg}",
            )
        ctx = FileContext(
            path=path,
            source=source,
            tree=tree,
            suppressions=_parse_suppressions(source),
        )
        return ctx, None

    def _run_rules(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for rule in self.rules:
            for f in rule.check(ctx):
                if not ctx.suppressed(f.line, f.rule_id):
                    findings.append(f)
        return findings

    def lint_source(self, source: str, path: str = "<string>") -> List[Finding]:
        ctx, syntax_error = self._parse(source, path)
        if ctx is None:
            return [syntax_error]
        from .graph import ProjectGraph

        ctx.project = ProjectGraph.build([(ctx.path, ctx.tree)])
        findings = self._run_rules(ctx)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def lint_file(self, path: str) -> List[Finding]:
        with open(path, encoding="utf-8") as fh:
            return self.lint_source(fh.read(), path=str(path))

    @staticmethod
    def _collect_files(paths: Iterable[str]) -> List[str]:
        files: List[str] = []
        for path in paths:
            p = Path(path)
            if p.is_dir():
                files.extend(str(f) for f in sorted(p.rglob("*.py")))
            else:
                files.append(str(p))
        return files

    def lint_paths(self, paths: Iterable[str]) -> List[Finding]:
        """Lint files and (recursively) directories of ``*.py`` files.

        This is the whole-program entry point: every parseable file in
        the run contributes to one shared :class:`~repro.check.graph.
        ProjectGraph`, so the interprocedural rules see calls that cross
        file boundaries.
        """
        from .graph import ProjectGraph

        findings: List[Finding] = []
        contexts: List[FileContext] = []
        for file in self._collect_files(paths):
            with open(file, encoding="utf-8") as fh:
                source = fh.read()
            ctx, syntax_error = self._parse(source, file)
            if ctx is None:
                findings.append(syntax_error)
            else:
                contexts.append(ctx)
        project = ProjectGraph.build([(c.path, c.tree) for c in contexts])
        for ctx in contexts:
            ctx.project = project
            findings.extend(self._run_rules(ctx))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings


def render_text(findings: Sequence[Finding]) -> str:
    lines = [f.render() for f in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append(f"{len(findings)} finding(s): {errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps([f.to_dict() for f in findings], indent=2)
