"""R004 — mutable default argument values.

A ``def f(x, acc=[])`` default is evaluated once at definition time and
shared across calls; accumulating into it corrupts later calls.  The rule
flags list/dict/set literals and calls to their constructors in default
positions (positional and keyword-only).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import FileContext, Finding, Rule

__all__ = ["MutableDefaultRule"]

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "defaultdict", "Counter"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


class MutableDefaultRule(Rule):
    rule_id = "R004"
    severity = "error"
    description = "mutable default argument shared across calls"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        ctx,
                        default,
                        "mutable default is evaluated once and shared across "
                        "calls; default to None and construct inside the body",
                    )
