"""Rule registry for the repro lint engine.

Each rule lives in its own module; ``DEFAULT_RULES`` is the catalogue the
``repro-lint`` CLI and the CI gate run.  Rules are keyed by stable ids
(R001…R010) used in findings and ``# repro: noqa[Rxxx]`` suppressions.
R001–R006 are per-file AST rules; R007–R010 consume the whole-program
:class:`~repro.check.graph.ProjectGraph` attached to each file context.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..engine import Rule
from .asserts import AssertControlFlowRule
from .defaults import MutableDefaultRule
from .determinism import DeterminismRule
from .float_eq import FloatEqualityRule
from .interproc import InterprocDimensionRule
from .iteration import SetIterationRule
from .parallel_safety import ParallelSafetyRule
from .protocol import ProtocolConformanceRule
from .tech_mutation import TechMutationRule
from .units import DimensionRule

__all__ = [
    "AssertControlFlowRule",
    "DeterminismRule",
    "DimensionRule",
    "FloatEqualityRule",
    "InterprocDimensionRule",
    "MutableDefaultRule",
    "ParallelSafetyRule",
    "ProtocolConformanceRule",
    "SetIterationRule",
    "TechMutationRule",
    "DEFAULT_RULES",
    "rules_by_id",
]

DEFAULT_RULES: Tuple[Rule, ...] = (
    FloatEqualityRule(),
    SetIterationRule(),
    AssertControlFlowRule(),
    MutableDefaultRule(),
    TechMutationRule(),
    DimensionRule(),
    InterprocDimensionRule(),
    ParallelSafetyRule(),
    DeterminismRule(),
    ProtocolConformanceRule(),
)


def rules_by_id() -> Dict[str, Rule]:
    return {rule.rule_id: rule for rule in DEFAULT_RULES}
