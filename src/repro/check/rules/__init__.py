"""Rule registry for the repro lint engine.

Each rule lives in its own module; ``DEFAULT_RULES`` is the catalogue the
``repro-lint`` CLI and the CI gate run.  Rules are keyed by stable ids
(R001…R006) used in findings and ``# repro: noqa[Rxxx]`` suppressions.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..engine import Rule
from .asserts import AssertControlFlowRule
from .defaults import MutableDefaultRule
from .float_eq import FloatEqualityRule
from .iteration import SetIterationRule
from .tech_mutation import TechMutationRule
from .units import DimensionRule

__all__ = [
    "AssertControlFlowRule",
    "DimensionRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "SetIterationRule",
    "TechMutationRule",
    "DEFAULT_RULES",
    "rules_by_id",
]

DEFAULT_RULES: Tuple[Rule, ...] = (
    FloatEqualityRule(),
    SetIterationRule(),
    AssertControlFlowRule(),
    MutableDefaultRule(),
    TechMutationRule(),
    DimensionRule(),
)


def rules_by_id() -> Dict[str, Rule]:
    return {rule.rule_id: rule for rule in DEFAULT_RULES}
