"""R001 — exact float equality on physical quantities.

Resistances, capacitances and delays are accumulated through long chains of
floating-point arithmetic (Elmore sums, PWL breakpoint algebra), so exact
``==``/``!=`` comparisons on them are almost always latent bugs: two
mathematically equal delays differ in the last ulp and a pruning or merge
decision silently flips.  The rule fires when an equality comparison

* involves a float literal (``ds == 0.0``), or
* has a declared physical dimension on *both* sides (see
  :mod:`repro.check.dimensions`).

Comparisons against the ``NEVER``/``inf`` sentinels are exempt — those
values are assigned, never computed, so equality is exact by construction.
Intentional exact comparisons (e.g. a ``0.0`` used as a "feature disabled"
sentinel) should be annotated ``# repro: noqa[R001] <reason>``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..dimensions import SENTINEL_NAMES, dim_of, format_dim
from ..engine import FileContext, Finding, Rule

__all__ = ["FloatEqualityRule"]


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp):
        return _is_float_literal(node.operand)
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_sentinel(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp):
        return _is_sentinel(node.operand)
    if isinstance(node, ast.Name):
        return node.id in SENTINEL_NAMES
    if isinstance(node, ast.Attribute):  # math.inf, math.nan
        return node.attr in SENTINEL_NAMES
    return False


class FloatEqualityRule(Rule):
    rule_id = "R001"
    severity = "error"
    description = "exact float ==/!= comparison on a physical quantity"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_sentinel(left) or _is_sentinel(right):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    yield self.finding(
                        ctx,
                        node,
                        "exact equality against a float literal; use a "
                        "tolerance (math.isclose or abs(...) <= atol), or "
                        "annotate the intended sentinel with "
                        "# repro: noqa[R001] <reason>",
                    )
                    continue
                dl, dr = dim_of(left), dim_of(right)
                if dl is not None and dr is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"exact equality between physical quantities "
                        f"({format_dim(dl)} vs {format_dim(dr)}); compare "
                        f"with a tolerance",
                    )
