"""R003 — ``assert`` used for control flow in library code.

``python -O`` strips ``assert`` statements entirely, so any assert whose
condition can actually be false at runtime (unreachable-state guards,
narrowing checks before attribute access) silently disappears in optimized
deployments — exactly the class of invariant this reproduction depends on.
Library code should raise an explicit exception instead; genuinely
redundant debug asserts can be suppressed with ``# repro: noqa[R003]``.

Test code is exempt: pytest rewrites asserts and they are the assertion
idiom there.  A file counts as test code when any path component starts
with ``test`` or is named ``tests``/``conftest.py`` — and likewise for
``benchmarks``/``bench_*.py``, which pytest collects as tests too (see
``python_files`` in ``pyproject.toml``).
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterable

from ..engine import FileContext, Finding, Rule

__all__ = ["AssertControlFlowRule"]


def _is_test_file(path: str) -> bool:
    parts = PurePath(path).parts
    if not parts:
        return False
    if any(part in ("tests", "benchmarks") for part in parts):
        return True
    name = parts[-1]
    return (
        name.startswith("test_")
        or name.startswith("bench_")
        or name == "conftest.py"
    )


class AssertControlFlowRule(Rule):
    rule_id = "R003"
    severity = "error"
    description = "bare assert in library code (stripped under python -O)"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if _is_test_file(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    ctx,
                    node,
                    "assert vanishes under python -O; raise an explicit "
                    "exception (RuntimeError/ValueError) for conditions "
                    "that guard real control flow",
                )
