"""R006 — dimensionally inconsistent arithmetic on physical quantities.

Everything in this library is a plain ``float``, so nothing stops
``resistance + delay`` even though Ω and ps are incommensurable.  The rule
runs the name-based dimension inference of :mod:`repro.check.dimensions`
over every ``+``/``-`` expression and flags the ones whose operands carry
*declared, different* dimensions.  Products and quotients are where
dimensions legitimately combine (Ω · pF = ps) — the inference folds them
into exponent vectors rather than flagging them.

The inference is conservative by design: identifiers outside the
declarations table are wildcards and never fire, so a finding means both
operand dimensions were positively established from the repo's own naming
vocabulary.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..dimensions import dim_of, format_dim
from ..engine import FileContext, Finding, Rule

__all__ = ["DimensionRule"]


class DimensionRule(Rule):
    rule_id = "R006"
    severity = "error"
    description = "adding/subtracting quantities of different physical dimension"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            left = right = None
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                left, right = node.left, node.right
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left, right = node.target, node.value
            else:
                continue
            dl, dr = dim_of(left), dim_of(right)
            if dl is None or dr is None or dl == dr:
                continue
            op = "+" if isinstance(node.op, ast.Add) else "-"
            yield self.finding(
                ctx,
                node,
                f"dimension mismatch: {format_dim(dl)} {op} {format_dim(dr)} "
                f"(Ω·pF=ps algebra violated); check the expression or the "
                f"declarations table in repro/check/dimensions.py",
            )
