"""R006 — dimensionally inconsistent arithmetic on physical quantities.

Everything in this library is a plain ``float``, so nothing stops
``resistance + delay`` even though Ω and ps are incommensurable.  The rule
runs the name-based dimension inference of :mod:`repro.check.dimensions`
over every ``+``/``-`` expression and flags the ones whose operands carry
*declared, different* dimensions.  Products and quotients are where
dimensions legitimately combine (Ω · pF = ps) — the inference folds them
into exponent vectors rather than flagging them.

The inference is conservative by design: identifiers outside the
declarations table are wildcards and never fire, so a finding means both
operand dimensions were positively established from the repo's own naming
vocabulary.

When the whole-program graph is available (it always is under the default
engine), each expression is evaluated in the *interprocedural environment*
of its enclosing function: parameter and local dimensions established by
the :mod:`repro.check.graph` fixpoint override the name tables, and a name
with contradictory evidence is positively erased so it cannot fire on a
stale table entry.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..dimensions import Dim, dim_of, format_dim
from ..engine import FileContext, Finding, Rule

__all__ = ["DimensionRule"]

_Env = Optional[Mapping[str, Optional[Dim]]]


class DimensionRule(Rule):
    rule_id = "R006"
    severity = "error"
    description = "adding/subtracting quantities of different physical dimension"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        project = ctx.project
        fn_envs: Dict[Tuple[int, int], Dict[str, Optional[Dim]]] = {}
        if project is not None:
            for fn in project.functions_in(ctx.path):
                key = (fn.node.lineno, fn.node.col_offset)
                fn_envs[key] = project.function_env(fn)
        yield from self._walk(ctx, ctx.tree, None, fn_envs)

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        env: _Env,
        fn_envs: Dict[Tuple[int, int], Dict[str, Optional[Dim]]],
    ) -> Iterable[Finding]:
        for child in ast.iter_child_nodes(node):
            child_env = env
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = (child.lineno, child.col_offset)
                child_env = fn_envs.get(key, env)
            else:
                finding = self._check_node(ctx, child, env)
                if finding is not None:
                    yield finding
            yield from self._walk(ctx, child, child_env, fn_envs)

    def _check_node(
        self, ctx: FileContext, node: ast.AST, env: _Env
    ) -> Optional[Finding]:
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left, right = node.left, node.right
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            left, right = node.target, node.value
        else:
            return None
        project = ctx.project
        if project is not None:
            dl = project.dim_of_expr(left, dict(env) if env else None)
            dr = project.dim_of_expr(right, dict(env) if env else None)
        else:
            dl, dr = dim_of(left, env=env), dim_of(right, env=env)
        if dl is None or dr is None or dl == dr:
            return None
        op = "+" if isinstance(node.op, ast.Add) else "-"
        return self.finding(
            ctx,
            node,
            f"dimension mismatch: {format_dim(dl)} {op} {format_dim(dr)} "
            f"(Ω·pF=ps algebra violated); check the expression or the "
            f"declarations table in repro/check/dimensions.py",
        )
