"""R008 — parallel-safety of callables submitted to the executor pool.

``repro.analysis.executor.run_jobs`` (and ``run_campaign``'s ``job_fn``
hook) ship the callable and its arguments to worker *processes*.  Two bug
classes survive local testing and explode only under ``workers >= 1``:

* **unpicklable callables** — lambdas, nested functions and other
  non-module-level objects cannot cross the pipe.  Flagged whenever the
  submitting call requests process isolation (a ``workers`` argument that
  is not the literal ``0``; the inline serial path tolerates closures).
* **worker-side shared-state writes** — a function reachable from a
  submitted callable that rebinds a module global (``global`` statement),
  mutates a module-level container, writes ``os.environ``, or flips the
  process-wide obs/contract switches (``set_enabled``) produces state that
  silently diverges between workers and breaks the executor's
  bit-identical-at-any-worker-count guarantee — the precondition for the
  concurrent `IncrementalARD` session server.

Module-level observability instruments (``obs.Counter`` / ``Histogram``
assignments) are exempt: their per-process buffers are snapshotted and
merged across the pipe by design.  Test files are exempt like R003 — the
fault-injection suite deliberately misuses the pool.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from ..engine import FileContext, Finding, Rule
from .asserts import _is_test_file

__all__ = ["ParallelSafetyRule"]

#: Method names that mutate a container in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
})

#: Module-level constructor names whose instances are deliberately
#: process-local (merged explicitly by the executor); mutation is fine.
_OBS_CONSTRUCTORS = frozenset({"Counter", "Histogram", "Gauge"})

#: Process-wide switch flippers (repro.obs.core / repro.check.contracts).
_STATE_FLIPPERS = frozenset({"set_enabled"})

#: The executor implements the pool itself; its own bookkeeping is exempt.
_EXEMPT_SUFFIXES = ("analysis/executor.py", "obs/core.py", "obs/export.py")


def _dotted(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


def _needs_pickling(call: ast.Call) -> bool:
    """True when the submitting call requests worker processes."""
    for kw in call.keywords:
        if kw.arg == "workers":
            v = kw.value
            if isinstance(v, ast.Constant) and v.value == 0:
                return False
            return True
    return False  # workers omitted: the default is the inline serial path


class ParallelSafetyRule(Rule):
    rule_id = "R008"
    severity = "error"
    description = (
        "callable submitted to the process pool is not module-level/"
        "picklable, or worker-reachable code writes shared state"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        project = ctx.project
        if project is None or _is_test_file(ctx.path):
            return
        posix = ctx.path.replace("\\", "/")
        exempt = posix.endswith(_EXEMPT_SUFFIXES)

        submissions = project.submitted_callables()
        roots = []
        for site, arg, resolved in submissions:
            if resolved is not None and not resolved.nested:
                roots.append(resolved.qualname)
            if site.path != ctx.path or exempt:
                continue
            if not _needs_pickling(site.node):
                continue
            if isinstance(arg, ast.Lambda):
                yield self.finding(
                    ctx,
                    arg,
                    "lambda submitted to the worker pool is not picklable; "
                    "define a module-level function",
                )
            elif resolved is not None and resolved.nested:
                yield self.finding(
                    ctx,
                    site.node,
                    f"nested function '{resolved.name}' submitted to the "
                    f"worker pool is not picklable; move it to module level",
                )

        if exempt:
            return
        reachable = project.reachable_from(roots)
        for fn in project.functions_in(ctx.path):
            if fn.qualname not in reachable:
                continue
            yield from self._check_worker_body(ctx, fn)

    def _check_worker_body(self, ctx: FileContext, fn) -> Iterable[Finding]:
        project = ctx.project
        global_names: Set[str] = set()
        module_globals = project.module_globals(fn.path)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
        for node in ast.walk(fn.node):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in global_names:
                    yield self.finding(
                        ctx,
                        node,
                        f"worker-reachable function '{fn.name}' rebinds "
                        f"module global '{target.id}'; worker processes "
                        f"each mutate their own copy and results diverge "
                        f"from the serial path",
                    )
                if (
                    isinstance(target, ast.Subscript)
                    and _dotted(target.value) in ("os.environ",)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"worker-reachable function '{fn.name}' writes "
                        f"os.environ; per-worker environment mutation is "
                        f"invisible to the parent and other workers",
                    )
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in module_globals
                    and not self._is_obs_instrument(
                        project, fn.path, target.value.id
                    )
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"worker-reachable function '{fn.name}' writes into "
                        f"module-level container '{target.value.id}'; "
                        f"worker-local mutations are lost when the process "
                        f"exits and never reach the other workers",
                    )
            if isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id in module_globals
                    and callee.attr in _MUTATORS
                    and not self._is_obs_instrument(
                        project, fn.path, callee.value.id
                    )
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"worker-reachable function '{fn.name}' mutates "
                        f"module-level container '{callee.value.id}' via "
                        f".{callee.attr}(); shared-state writes do not "
                        f"propagate across worker processes",
                    )
                name = callee.attr if isinstance(callee, ast.Attribute) else (
                    callee.id if isinstance(callee, ast.Name) else None
                )
                if name in _STATE_FLIPPERS:
                    yield self.finding(
                        ctx,
                        node,
                        f"worker-reachable function '{fn.name}' flips the "
                        f"process-wide '{name}' switch; enable obs/contracts "
                        f"in the parent (the env var is inherited) instead",
                    )

    @staticmethod
    def _is_obs_instrument(project, path: str, name: str) -> bool:
        ctor = project.module_global_constructors(path).get(name)
        return ctor in _OBS_CONSTRUCTORS
