"""R002 — nondeterministic iteration over sets in DP merge/pruning paths.

The MSRI dynamic program resolves exact ties by *order* (earlier solutions
get weak-pruning priority, ``uid`` breaks residual ties), so any iteration
whose order depends on hash seeds makes results irreproducible between
runs.  ``set``/``frozenset`` iteration order is salted per process; the
rule flags ``for``/comprehension iteration directly over a set expression
or over a local variable bound to one.  Wrapping in ``sorted(...)`` (or
any ordering call) makes the iteration deterministic and silences the
rule.  Python ``dict`` preserves insertion order since 3.7, so dict
iteration is deterministic whenever insertions are — it is not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from ..engine import FileContext, Finding, Rule

__all__ = ["SetIterationRule"]

_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}


class SetIterationRule(Rule):
    rule_id = "R002"
    severity = "error"
    description = "iteration over an unordered set (nondeterministic order)"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        # One scope per function/module: collect names bound to set
        # expressions, then flag iterations in that same scope.
        scopes = [n for n in ast.walk(ctx.tree)
                  if isinstance(n, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef))]
        for scope in scopes:
            set_names = _set_bound_names(scope)
            for node in _scope_body_walk(scope):
                iters = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                       ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if _is_set_expr(it, set_names):
                        yield self.finding(
                            ctx,
                            it,
                            "iterating over a set: order is hash-salted and "
                            "nondeterministic; iterate over sorted(...) or "
                            "keep an ordered list alongside the set",
                        )


def _set_bound_names(scope: ast.AST) -> Set[str]:
    """Names assigned a set expression anywhere in this scope (not nested)."""
    names: Set[str] = set()
    for node in _scope_body_walk(scope):
        if isinstance(node, ast.Assign):
            if _is_set_expr(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_set_expr(node.value, names) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _scope_body_walk(scope: ast.AST) -> Iterable[ast.AST]:
    """Walk a scope without descending into nested function scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in _SET_CONSTRUCTORS:
            return True
        # s.union(t) etc. return sets when the receiver is a known set
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and _is_set_expr(node.func.value, set_names)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra: a | b, a & b, a - b, a ^ b
        return _is_set_expr(node.left, set_names) or _is_set_expr(node.right, set_names)
    return False
