"""R005 — mutation of ``Technology`` or shared technology state.

:class:`~repro.tech.parameters.Technology` objects are shared freely across
analyzers, DP runs and worker boundaries; the dataclass is frozen, but its
``extras`` dict is an ordinary mutable mapping and ``object.__setattr__``
pierces the freeze.  Mutating a shared technology mid-run silently skews
every later delay computation, so all variation must go through copies
(``dataclasses.replace`` / ``Technology.with_name`` / ``dict(tech.extras)``).

The rule flags, for receivers that look like technology objects (names
``tech``/``technology``/``*_tech`` or a terminal ``.tech``/``._tech``
attribute, plus ``DEFAULT_TECHNOLOGY``):

* attribute or subscript assignment (``tech.name = ...``,
  ``tech.extras["k"] = ...``), including augmented assignment and ``del``;
* mutating-method calls on ``extras`` (``tech.extras.update(...)``);
* ``object.__setattr__(tech, ...)``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..engine import FileContext, Finding, Rule

__all__ = ["TechMutationRule"]

_TECH_NAMES = {"tech", "technology", "DEFAULT_TECHNOLOGY"}
_DICT_MUTATORS = {"update", "pop", "popitem", "clear", "setdefault", "__setitem__"}


def _root_and_attrs(node: ast.AST):
    """Peel an Attribute/Subscript chain down to its root expression."""
    attrs = []
    while True:
        if isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            return node, attrs


def _is_tech_expr(node: ast.AST) -> bool:
    """True when the expression plausibly denotes a Technology object."""
    root, attrs = _root_and_attrs(node)
    if isinstance(root, ast.Name):
        name = root.id
        if name in _TECH_NAMES or name.endswith("_tech"):
            return True
    # any `.tech` / `._tech` / `.technology` link in the chain
    return any(a in ("tech", "_tech", "technology") for a in attrs)


def _mutated_receiver(target: ast.AST) -> Optional[ast.AST]:
    """The object being written through, for attribute/subscript targets."""
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        return target.value
    return None


class TechMutationRule(Rule):
    rule_id = "R005"
    severity = "error"
    description = "mutation of a (shared) Technology object"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            for target in targets:
                receiver = _mutated_receiver(target)
                if receiver is not None and _is_tech_expr(receiver):
                    yield self.finding(
                        ctx,
                        node,
                        "writing through a Technology object mutates state "
                        "shared across analyzers; use dataclasses.replace "
                        "or copy extras with dict(tech.extras)",
                    )

            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _DICT_MUTATORS
                    and _is_tech_expr(func.value)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"'{func.attr}' mutates shared Technology state; "
                        f"work on a copy (dict(tech.extras))",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "__setattr__"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "object"
                    and node.args
                    and _is_tech_expr(node.args[0])
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "object.__setattr__ pierces the frozen Technology "
                        "dataclass; build a new instance instead",
                    )
