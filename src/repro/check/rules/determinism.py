"""R009 — nondeterminism sources inside engine-reachable compute.

The differential guarantees of the test suite (serial ≡ parallel
campaigns, incremental ≡ full-pass ARD, reference ≡ batched kernels) are
*bit-identical* claims.  They die the moment engine-reachable compute
consults anything that varies between runs:

* the **module-level RNG** (``random.random()``, ``np.random.rand()``,
  ``np.random.default_rng()`` with no seed) — salt- and call-order-
  dependent; use an explicitly seeded ``random.Random(seed)`` /
  ``default_rng(seed)`` instance threaded through the call chain;
* **``id()``-based ordering** — CPython addresses change run to run, so a
  sort key or comparison involving ``id()`` makes frontiers and pruning
  order irreproducible (flagged anywhere in library code, not just in
  engine-reachable functions);
* **environment/clock reads** (``os.environ``, ``os.getenv``,
  ``time.time``/``perf_counter``, ``datetime.now``) inside functions
  reachable from the timing-engine entry points — results must be a pure
  function of the tree, the technology and the evaluation context.

"Engine-reachable" is the call-graph closure from every
``TimingEngine``-shaped class method (classes defining ``path_delay``)
plus the optimizer entry points (``insert_repeaters``, ``ard``,
``compute_ard``, ``ard_bruteforce``).  The observability and check layers
are exempt — measuring wall-clock is their job — as is the executor.

Test and benchmark files get a narrower audit instead of a blanket
exemption: the differential corpora (``tests/test_flat_differential.py``
and friends) promise to be re-runnable from a single base seed, so any
*global-state* RNG use there — ``random.random()``, legacy
``np.random.*``, a seedless ``default_rng()`` — breaks the promise and is
flagged.  Clock reads, ``os.environ`` and ``id()`` ordering stay allowed
in tests (timing assertions and monkeypatching are their business).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from ..engine import FileContext, Finding, Rule
from .asserts import _is_test_file

__all__ = ["DeterminismRule"]

#: Optimizer entry points whose closure counts as engine-reachable.
_ENTRY_FUNCTIONS = frozenset({
    "insert_repeaters", "ard", "compute_ard", "ard_bruteforce",
})

#: ``random.<fn>`` calls on the shared module-level RNG.
_PY_RANDOM = frozenset({
    "random", "randint", "uniform", "choice", "choices", "shuffle",
    "sample", "randrange", "getrandbits", "gauss", "betavariate",
    "expovariate", "normalvariate", "seed",
})

#: ``np.random.<fn>`` legacy global-state API.
_NP_RANDOM = frozenset({
    "random", "rand", "randn", "randint", "choice", "shuffle",
    "permutation", "normal", "uniform", "seed",
})

#: Clock/environment reads that vary between runs.
_IMPURE_READS = frozenset({
    "time.time", "time.perf_counter", "time.monotonic",
    "time.process_time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "os.getenv",
})

_EXEMPT_SUFFIXES = (
    "analysis/executor.py", "obs/core.py", "obs/export.py",
    "check/contracts.py",
)


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return None


def _contains_id_call(node: ast.AST) -> Optional[ast.Call]:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
        ):
            return sub
    return None


class DeterminismRule(Rule):
    rule_id = "R009"
    severity = "warning"
    description = (
        "nondeterminism source (unseeded RNG, id() ordering, env/clock "
        "read) in engine-reachable compute"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if _is_test_file(ctx.path):
            yield from self._check_test_rng(ctx)
            return
        posix = ctx.path.replace("\\", "/")
        if posix.endswith(_EXEMPT_SUFFIXES):
            return
        yield from self._check_id_ordering(ctx)
        project = ctx.project
        if project is None:
            return
        reachable = self._engine_reachable(project)
        for fn in project.functions_in(ctx.path):
            if fn.qualname not in reachable:
                continue
            yield from self._check_impure(ctx, fn)

    # -- test/benchmark corpora: global-state RNG only ------------------------

    def _check_test_rng(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) == 2 and parts[0] == "random" and parts[1] in _PY_RANDOM:
                yield self.finding(
                    ctx,
                    node,
                    f"test corpus uses the module-level RNG "
                    f"random.{parts[1]}(); derive every draw from a seeded "
                    f"random.Random(seed) so the corpus replays from one "
                    f"base seed",
                )
            elif (
                len(parts) >= 3
                and parts[-2] == "random"
                and parts[-1] in _NP_RANDOM
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"test corpus uses the legacy numpy global RNG "
                    f".random.{parts[-1]}(); use np.random.default_rng(seed)",
                )
            elif parts[-1] == "default_rng" and not (node.args or node.keywords):
                yield self.finding(
                    ctx,
                    node,
                    "test corpus creates an OS-entropy default_rng(); pass "
                    "an explicit seed so the corpus is reproducible",
                )

    # -- id()-based ordering: flagged anywhere in library code ----------------

    def _check_id_ordering(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("sorted", "min", "max"):
                    for kw in node.keywords:
                        if kw.arg == "key" and _contains_id_call(kw.value):
                            yield self.finding(
                                ctx,
                                node,
                                "id() used as an ordering key; CPython "
                                "object addresses differ between runs — "
                                "sort on a stable attribute instead",
                            )
            if isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                for op in node.ops
            ):
                # membership (``id(t) in seen``) is identity tracking and
                # deterministic; only *ordering* on addresses is flagged
                operands = [node.left, *node.comparators]
                if any(
                    isinstance(op, ast.Call)
                    and isinstance(op.func, ast.Name)
                    and op.func.id == "id"
                    for op in operands
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "comparison on id(); object addresses are not "
                        "stable across interpreter runs",
                    )

    # -- engine-reachable closure ----------------------------------------------

    @staticmethod
    def _engine_reachable(project) -> Set[str]:
        roots = []
        for cls in project.classes.values():
            if cls.is_protocol or "path_delay" not in cls.methods:
                continue
            roots.extend(m.qualname for m in cls.methods.values())
        for name in _ENTRY_FUNCTIONS:
            roots.extend(f.qualname for f in project.by_simple_name(name))
        return project.reachable_from(roots)

    def _check_impure(self, ctx: FileContext, fn) -> Iterable[Finding]:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if (
                    len(parts) == 2
                    and parts[0] == "random"
                    and parts[1] in _PY_RANDOM
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"engine-reachable function '{fn.name}' calls the "
                        f"module-level RNG random.{parts[1]}(); thread a "
                        f"seeded random.Random(seed) instance instead",
                    )
                elif (
                    len(parts) >= 3
                    and parts[-2] == "random"
                    and parts[-1] in _NP_RANDOM
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"engine-reachable function '{fn.name}' uses the "
                        f"legacy numpy global RNG .random.{parts[-1]}(); "
                        f"use np.random.default_rng(seed)",
                    )
                elif parts[-1] == "default_rng" and not (
                    node.args or node.keywords
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"engine-reachable function '{fn.name}' creates an "
                        f"OS-entropy default_rng(); pass an explicit seed",
                    )
                elif dotted in _IMPURE_READS:
                    yield self.finding(
                        ctx,
                        node,
                        f"engine-reachable function '{fn.name}' reads the "
                        f"clock/environment ({dotted}); engine results must "
                        f"be a pure function of tree, technology and "
                        f"context",
                    )
            elif isinstance(node, ast.Attribute):
                if _dotted(node) == "os.environ":
                    yield self.finding(
                        ctx,
                        node,
                        f"engine-reachable function '{fn.name}' reads "
                        f"os.environ; pass configuration through "
                        f"EvalContext/options instead",
                    )
