"""R007 — dimension-inconsistent call arguments and return values.

The per-expression rule R006 cannot see a unit mix-up that crosses a
function boundary: if ``total_delay(delay, extra)`` adds its two parameters
and a caller passes a resistance as ``extra``, the callee's body is clean
under name-based inference (``extra`` carries no declared dimension) and
the call site is just a function call.  This rule closes that hole using
the whole-program graph (:mod:`repro.check.graph`):

* **argument checks** — at every resolved call site, an argument whose
  dimension is known is compared against the parameter's *contract*: the
  dimension established by the parameter's own name (``NAME_DIMS``) or by
  how the callee's body uses it (added/subtracted against a known
  quantity).  Evidence coming only from other call sites is excluded so
  two wrong callers cannot indict each other.
* **return checks** — a function whose name promises a dimension in
  ``CALL_DIMS`` (``wire_delay`` → ps) must not be inferred to return a
  different one.

Everything unknown or conflicted stays silent, so a finding means both
sides of the mismatch were positively established.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..dimensions import CALL_DIMS, format_dim
from ..engine import FileContext, Finding, Rule
from ..graph import known

__all__ = ["InterprocDimensionRule"]


class InterprocDimensionRule(Rule):
    rule_id = "R007"
    severity = "error"
    description = (
        "dimension-inconsistent call argument or return value "
        "(interprocedural Ω/pF/ps/µm/µW propagation)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        project = ctx.project
        if project is None:
            return
        for site in project.call_sites_in(ctx.path):
            callee = project.resolve(site)
            if callee is None:
                continue
            caller = project.functions.get(site.caller) if site.caller else None
            env = project.function_env(caller) if caller is not None else {}
            for param, arg in project._bind_args(callee, site.node):
                arg_dim = project.dim_of_expr(arg, env)
                contract = callee.param_contract(param)
                if arg_dim is None or contract is None or arg_dim == contract:
                    continue
                yield self.finding(
                    ctx,
                    site.node,
                    f"argument for parameter '{param}' of {callee.name}() "
                    f"is {format_dim(arg_dim)} but the parameter is "
                    f"{format_dim(contract)} ({callee.contract_basis(param)}, "
                    f"defined at {callee.path}:{callee.node.lineno})",
                )
        for fn in project.functions_in(ctx.path):
            declared = CALL_DIMS.get(fn.name)
            inferred = known(fn.return_dim)
            if declared is None or inferred is None or declared == inferred:
                continue
            yield self.finding(
                ctx,
                fn.node,
                f"{fn.name}() is declared to return "
                f"{format_dim(declared)} (CALL_DIMS) but its return "
                f"expressions infer to {format_dim(inferred)}",
            )
