"""R010 — engine protocol conformance and removed-shim calls.

The PR-3 ``TimingEngine`` protocol is structural: nothing but convention
keeps a backend engine's surface aligned with it, and a drifted method
signature only explodes when a consumer finally passes the argument the
engine renamed.  This rule makes the contract static:

* every engine-shaped class (a class defining ``path_delay``) must define
  **all** protocol methods with matching positional parameter names —
  ``evaluate(self, tree=None)`` and ``path_delay(self, src, dst)``.  The
  expected surface is read from the project's own ``TimingEngine``
  protocol class when it is in the linted set, so the rule follows the
  protocol if it evolves; a built-in spec is the fallback for partial
  lints.
* every editable-shaped class (a class defining at least three of the
  five ``EditableEngine`` edit methods) must define **all** five with
  matching signatures — ``set_assignment`` / ``set_terminal`` /
  ``set_wire_width`` / ``set_wire_scale`` / ``reroot``.  The session
  server dispatches edits structurally against ``EditableEngine``, so a
  partial or drifted edit surface fails only when a client streams the
  one edit op the engine renamed.  The three-of-five marker keeps
  deliberate partial surfaces (e.g. a benchmark baseline with just
  ``set_assignment``) out of scope.
* no internal module may call the pre-``EvalContext`` signatures:
  ``ard(tree, tech, assignment)`` / ``ElmoreAnalyzer(tree, tech, ...)``
  with a third positional argument or the legacy ``assignment`` /
  ``include_companion_cap`` / ``wire_widths`` keywords.  These were
  removed at v2.0 and now raise ``TypeError`` at runtime; the modules
  that implemented the shims are exempt, as are test files (the removal
  regression tests exercise them deliberately).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from ..engine import FileContext, Finding, Rule
from .asserts import _is_test_file

__all__ = ["ProtocolConformanceRule"]

#: Fallback spec when the linted set does not include the protocol class:
#: method name → (positional parameter names, minimum trailing defaults).
_DEFAULT_SPEC: Dict[str, Tuple[List[str], int]] = {
    "evaluate": (["tree"], 1),
    "path_delay": (["src", "dst"], 0),
}

#: Fallback spec for the ``EditableEngine`` edit surface.
_DEFAULT_EDIT_SPEC: Dict[str, Tuple[List[str], int]] = {
    "set_assignment": (["node", "repeater"], 0),
    "set_terminal": (["node", "terminal"], 0),
    "set_wire_width": (["edge", "width"], 0),
    "set_wire_scale": (["resistance_factor", "capacitance_factor"], 2),
    "reroot": (["node"], 0),
}

#: How many edit methods a class must define before the full surface is
#: required (deliberate partial surfaces stay out of scope).
_EDIT_MARKER_COUNT = 3

#: Callees whose legacy signatures were removed at v2.0: name → number of
#: modern positional parameters (anything beyond is the legacy
#: assignment arg).
_LEGACY_CALLEES: Dict[str, int] = {"ard": 2, "ElmoreAnalyzer": 2}

_LEGACY_KEYWORDS = frozenset({
    "assignment", "include_companion_cap", "wire_widths",
})

#: Modules implementing the shims themselves.
_SHIM_SUFFIXES = ("rctree/engine.py", "rctree/elmore.py", "core/ard.py")


class ProtocolConformanceRule(Rule):
    rule_id = "R010"
    severity = "error"
    description = (
        "engine implementation drifts from the TimingEngine/EditableEngine "
        "protocol surface, or internal code calls the removed "
        "ard/ElmoreAnalyzer legacy signatures"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        project = ctx.project
        if project is None or _is_test_file(ctx.path):
            return
        spec = self._protocol_spec(project, "TimingEngine", _DEFAULT_SPEC)
        edit_spec = self._protocol_spec(
            project, "EditableEngine", _DEFAULT_EDIT_SPEC
        )
        for cls in project.classes_in(ctx.path):
            if cls.is_protocol or cls.name in ("TimingEngine", "EditableEngine"):
                continue
            if "path_delay" in cls.methods:
                yield from self._check_surface(
                    ctx, cls, spec, "TimingEngine", "path_delay()"
                )
            defined = sum(1 for m in edit_spec if m in cls.methods)
            if defined >= _EDIT_MARKER_COUNT:
                yield from self._check_surface(
                    ctx,
                    cls,
                    edit_spec,
                    "EditableEngine",
                    f"{defined} of {len(edit_spec)} edit methods",
                )
        posix = ctx.path.replace("\\", "/")
        if posix.endswith(_SHIM_SUFFIXES):
            return
        for site in project.call_sites_in(ctx.path):
            name = site.callee_name
            if name not in _LEGACY_CALLEES:
                continue
            call = site.node
            modern_arity = _LEGACY_CALLEES[name]
            legacy_kw = [
                kw.arg for kw in call.keywords if kw.arg in _LEGACY_KEYWORDS
            ]
            if len(call.args) > modern_arity:
                yield self.finding(
                    ctx,
                    call,
                    f"{name}() called with a positional assignment argument; "
                    f"the pre-EvalContext signature was removed at v2.0 "
                    f"and raises TypeError — pass "
                    f"context=EvalContext(assignment=...)",
                )
            elif legacy_kw:
                yield self.finding(
                    ctx,
                    call,
                    f"{name}() called with legacy keyword(s) "
                    f"{sorted(legacy_kw)}; pass context=EvalContext(...) "
                    f"instead (removed at v2.0, raises TypeError)",
                )

    def _check_surface(self, ctx, cls, spec, proto_name, marker):
        for mname, (want_params, min_defaults) in spec.items():
            method = cls.methods.get(mname)
            if method is None:
                yield self.finding(
                    ctx,
                    cls.node,
                    f"class {cls.name} defines {marker} but is missing "
                    f"the {proto_name} protocol method "
                    f"{mname}({', '.join(want_params)})",
                )
                continue
            got = method.params[: len(want_params)]
            if got != want_params or method.num_defaults < min_defaults:
                yield self.finding(
                    ctx,
                    method.node,
                    f"{cls.name}.{mname}({', '.join(method.params)}) "
                    f"drifts from the {proto_name} protocol surface "
                    f"{mname}({', '.join(want_params)})"
                    + (
                        f" with {min_defaults} trailing default(s)"
                        if min_defaults
                        else ""
                    ),
                )

    @staticmethod
    def _protocol_spec(
        project, proto_name: str, fallback: Dict[str, Tuple[List[str], int]]
    ) -> Dict[str, Tuple[List[str], int]]:
        proto = project.class_named(proto_name)
        if proto is None or not proto.methods:
            return fallback
        spec: Dict[str, Tuple[List[str], int]] = {}
        for name, method in proto.methods.items():
            if name.startswith("_"):
                continue
            spec[name] = (list(method.params), method.num_defaults)
        return spec or fallback
