"""R010 — ``TimingEngine`` protocol conformance and deprecated-shim calls.

The PR-3 ``TimingEngine`` protocol is structural: nothing but convention
keeps a backend engine's surface aligned with it, and a drifted method
signature only explodes when a consumer finally passes the argument the
engine renamed.  This rule makes the contract static:

* every engine-shaped class (a class defining ``path_delay``) must define
  **all** protocol methods with matching positional parameter names —
  ``evaluate(self, tree=None)`` and ``path_delay(self, src, dst)``.  The
  expected surface is read from the project's own ``TimingEngine``
  protocol class when it is in the linted set, so the rule follows the
  protocol if it evolves; a built-in spec is the fallback for partial
  lints.
* no internal module may call the deprecated pre-``EvalContext`` shims:
  ``ard(tree, tech, assignment)`` / ``ElmoreAnalyzer(tree, tech, ...)``
  with a third positional argument or the legacy ``assignment`` /
  ``include_companion_cap`` / ``wire_widths`` keywords.  The shims emit
  ``DeprecationWarning`` at runtime and are slated for removal at v2.0;
  the modules that *implement* them are exempt, as are test files (the
  shim regression tests exercise them deliberately).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from ..engine import FileContext, Finding, Rule
from .asserts import _is_test_file

__all__ = ["ProtocolConformanceRule"]

#: Fallback spec when the linted set does not include the protocol class:
#: method name → (positional parameter names, minimum trailing defaults).
_DEFAULT_SPEC: Dict[str, Tuple[List[str], int]] = {
    "evaluate": (["tree"], 1),
    "path_delay": (["src", "dst"], 0),
}

#: Callees with deprecated legacy signatures: name → number of modern
#: positional parameters (anything beyond is the legacy assignment arg).
_LEGACY_CALLEES: Dict[str, int] = {"ard": 2, "ElmoreAnalyzer": 2}

_LEGACY_KEYWORDS = frozenset({
    "assignment", "include_companion_cap", "wire_widths",
})

#: Modules implementing the shims themselves.
_SHIM_SUFFIXES = ("rctree/engine.py", "rctree/elmore.py", "core/ard.py")


class ProtocolConformanceRule(Rule):
    rule_id = "R010"
    severity = "error"
    description = (
        "TimingEngine implementation drifts from the protocol surface, "
        "or internal code calls the deprecated ard/ElmoreAnalyzer shims"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        project = ctx.project
        if project is None or _is_test_file(ctx.path):
            return
        spec = self._protocol_spec(project)
        for cls in project.classes_in(ctx.path):
            if cls.is_protocol or cls.name == "TimingEngine":
                continue
            if "path_delay" not in cls.methods:
                continue
            for mname, (want_params, min_defaults) in spec.items():
                method = cls.methods.get(mname)
                if method is None:
                    yield self.finding(
                        ctx,
                        cls.node,
                        f"class {cls.name} defines path_delay() but is "
                        f"missing the TimingEngine protocol method "
                        f"{mname}({', '.join(want_params)})",
                    )
                    continue
                got = method.params[: len(want_params)]
                if got != want_params or method.num_defaults < min_defaults:
                    yield self.finding(
                        ctx,
                        method.node,
                        f"{cls.name}.{mname}({', '.join(method.params)}) "
                        f"drifts from the TimingEngine protocol surface "
                        f"{mname}({', '.join(want_params)})"
                        + (
                            f" with {min_defaults} trailing default(s)"
                            if min_defaults
                            else ""
                        ),
                    )
        posix = ctx.path.replace("\\", "/")
        if posix.endswith(_SHIM_SUFFIXES):
            return
        for site in project.call_sites_in(ctx.path):
            name = site.callee_name
            if name not in _LEGACY_CALLEES:
                continue
            call = site.node
            modern_arity = _LEGACY_CALLEES[name]
            legacy_kw = [
                kw.arg for kw in call.keywords if kw.arg in _LEGACY_KEYWORDS
            ]
            if len(call.args) > modern_arity:
                yield self.finding(
                    ctx,
                    call,
                    f"{name}() called with a positional assignment argument; "
                    f"the pre-EvalContext signature is deprecated for "
                    f"removal at v2.0 — pass "
                    f"context=EvalContext(assignment=...)",
                )
            elif legacy_kw:
                yield self.finding(
                    ctx,
                    call,
                    f"{name}() called with deprecated keyword(s) "
                    f"{sorted(legacy_kw)}; pass context=EvalContext(...) "
                    f"instead (removal at v2.0)",
                )

    @staticmethod
    def _protocol_spec(project) -> Dict[str, Tuple[List[str], int]]:
        proto = project.class_named("TimingEngine")
        if proto is None or not proto.methods:
            return _DEFAULT_SPEC
        spec: Dict[str, Tuple[List[str], int]] = {}
        for name, method in proto.methods.items():
            if name.startswith("_"):
                continue
            spec[name] = (list(method.params), method.num_defaults)
        return spec or _DEFAULT_SPEC
