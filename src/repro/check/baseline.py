"""Baseline files: adopt the analyzer on a codebase with existing findings.

A baseline is a JSON file of *fingerprints* of known findings.  Linting
with ``--baseline FILE`` demotes every baselined finding from a build
failure to a warning ("warn-then-error"): the build stays green while the
debt is visible on every run, and any *new* finding still fails.  The
workflow::

    repro-lint --write-baseline lint-baseline.json src/   # adopt
    repro-lint --baseline lint-baseline.json src/         # gate

Fingerprints are ``sha1(path|rule|message|n)`` truncated to 16 hex chars,
where ``n`` counts repeated ``(path, rule, message)`` triples within one
run.  Line and column are deliberately excluded — finding messages carry
no line numbers, so a fingerprint survives unrelated edits that shift code
up or down, while any change to the offending expression itself (which
alters the message or removes the finding) invalidates it.  The occurrence
counter keeps the gate sound when several identical findings share a file:
baselining one instance does not grandfather in a newly introduced second.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Sequence, Set, Tuple

from .engine import Finding

__all__ = [
    "fingerprint",
    "fingerprints",
    "write_baseline",
    "load_baseline",
    "partition",
]

_FORMAT_VERSION = 1


def fingerprint(finding: Finding, occurrence: int = 0) -> str:
    """Stable identity of a finding across line-number drift."""
    key = (
        f"{finding.path}|{finding.rule_id}|{finding.message}|{occurrence}"
    )
    return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]


def fingerprints(findings: Sequence[Finding]) -> List[str]:
    """Per-finding fingerprints with occurrence counters applied.

    Findings are expected in the engine's sorted order (path, line, col),
    so counters are assigned deterministically top-of-file first.
    """
    counts: Dict[Tuple[str, str, str], int] = {}
    out: List[str] = []
    for f in findings:
        key = (f.path, f.rule_id, f.message)
        n = counts.get(key, 0)
        counts[key] = n + 1
        out.append(fingerprint(f, n))
    return out


def write_baseline(findings: Sequence[Finding], path: str) -> int:
    """Write a baseline adopting ``findings``; returns how many entries."""
    entries: Dict[str, Dict[str, str]] = {}
    for f, fp in zip(findings, fingerprints(findings)):
        entries[fp] = {
            "path": f.path,
            "rule": f.rule_id,
            "message": f.message,
        }
    payload = {"version": _FORMAT_VERSION, "fingerprints": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)


def load_baseline(path: str) -> Set[str]:
    """The set of baselined fingerprints in ``path``.

    Raises ``ValueError`` on a malformed or future-versioned file — a
    silently ignored baseline would turn the gate off.
    """
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "fingerprints" not in payload:
        raise ValueError(f"{path}: not a repro-lint baseline file")
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    return set(payload["fingerprints"])


def partition(
    findings: Sequence[Finding], baselined: Set[str]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(new, known)`` against a baseline set."""
    new: List[Finding] = []
    known: List[Finding] = []
    for f, fp in zip(findings, fingerprints(findings)):
        (known if fp in baselined else new).append(f)
    return new, known
