"""Repo-specific correctness tooling: static analysis + runtime contracts.

The reproduction's correctness rests on two disciplines nothing in stock
Python enforces:

* **physical-unit discipline** — the library computes in Ω, pF, ps and µm
  with the identity Ω · pF = ps (see :mod:`repro.tech.parameters`); adding a
  resistance to a delay is meaningless but type-checks fine;
* **dynamic-programming invariants** the paper proves — non-negative Eq. 1/2
  subtree capacitances, Pareto non-domination of pruned ``Solution`` sets
  (Sec. IV-D), and well-formed PWL segment lists (Sec. IV-C).

This package supplies both layers:

* :mod:`repro.check.engine` + :mod:`repro.check.rules` — an AST lint engine
  with rules R001–R006 (float equality on physical quantities, set
  iteration in DP paths, control-flow ``assert``, mutable defaults,
  ``Technology`` mutation, dimensional analysis).  Run it with the
  ``repro-lint`` console script or ``repro-msri lint``.  Findings can be
  suppressed per line with ``# repro: noqa[Rxxx] reason``.
* :mod:`repro.check.contracts` — opt-in runtime invariant checks, enabled
  with ``REPRO_CHECK=1`` in the environment, asserting paper-level
  invariants at pass boundaries of the ARD/MSRI core.

See ``docs/STATIC_ANALYSIS.md`` for the full rule catalogue.
"""

from .contracts import ContractViolation, checking, contracts_enabled, set_enabled
from .engine import Finding, LintEngine, Rule

__all__ = [
    "ContractViolation",
    "Finding",
    "LintEngine",
    "Rule",
    "checking",
    "contracts_enabled",
    "set_enabled",
]
