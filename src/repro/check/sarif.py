"""SARIF 2.1.0 rendering for lint findings.

SARIF (Static Analysis Results Interchange Format) is the industry
interchange format consumed by code-scanning UIs (GitHub code scanning,
VS Code SARIF viewers, ...).  The emitted log is deliberately minimal but
schema-valid: one ``run`` of the ``repro-lint`` driver, the full rule
catalogue under ``tool.driver.rules``, and one ``result`` per finding with
a physical location and the stable baseline fingerprint from
:mod:`repro.check.baseline` under ``partialFingerprints`` so downstream
viewers can track findings across commits the same way the ``--baseline``
workflow does.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .baseline import fingerprint
from .engine import Finding, Rule

__all__ = ["render_sarif", "SARIF_VERSION", "SARIF_SCHEMA"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: repro-lint severity → SARIF result level.
_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule: Rule) -> Dict[str, object]:
    return {
        "id": rule.rule_id,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning")
        },
    }


def _result(finding: Finding, rule_index: Dict[str, int]) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {
            "reproLintFingerprint/v1": fingerprint(finding),
        },
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    return result


def render_sarif(
    findings: Sequence[Finding], rules: Sequence[Rule] = ()
) -> str:
    """One SARIF log (as a JSON string) for a single lint run."""
    descriptors: List[Dict[str, object]] = [
        _rule_descriptor(rule) for rule in rules
    ]
    rule_index = {rule.rule_id: i for i, rule in enumerate(rules)}
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": descriptors,
                    }
                },
                "results": [_result(f, rule_index) for f in findings],
            }
        ],
    }
    return json.dumps(log, indent=2)
