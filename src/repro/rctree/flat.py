"""Array-flattened ARD kernel: ``FlatNet``, ``FlatARDEngine``, ``evaluate_batch``.

The reference engines walk :class:`~repro.rctree.topology.RoutingTree`
objects node-by-node — every Fig. 2 combine step pays attribute lookups,
``Node`` dataclass indirection and per-node method dispatch.  This module
*compiles* a tree once into contiguous topological-order arrays (parent
index, children table, per-edge wire R/C, per-terminal ``alpha``/``beta``/
``r``/``c`` columns plus source/sink tags) and then runs the paper's three
passes as tight index loops over those arrays:

* Eq. 1 (bottom-up subtree loads) and the Fig. 2 ``A_v``/``D_v``/``Z_v``
  recursion fuse into one reverse-preorder loop over the flat columns;
* Eq. 2 (top-down external loads) is one forward-preorder loop;
* the per-node timing table and ``path_delay`` reuse the same arrays.

**Bit-identity contract.**  The kernel is a *port*, not a re-derivation: it
replays the exact floating-point expression trees of
:mod:`repro.rctree.incremental` (whose record algebra is shared with the
full pass in :func:`repro.core.ard.compute_ard`) and of
:class:`~repro.rctree.elmore.ElmoreAnalyzer`'s Eq. 2 pass, reusing the
reference helpers ``_prune`` / ``_top_two`` / ``_best_scalar`` /
``_eval_at`` directly.  Every result — scalar ARD, critical pair, and the
full per-node ``A_v``/``D_v``/``Z_v`` table — is therefore ``==`` to the
reference engines, not merely close; ``tests/test_flat_differential.py``
locks this down over a 500-net corpus and the ``REPRO_CHECK=1`` contract
(:func:`repro.check.contracts.verify_flat_consistency`) re-asserts it on
every evaluation in checked runs.

**numpy is optional.**  The kernel loops are pure Python always.  When
numpy is importable, the *compile* step (lowering wire and terminal columns)
can vectorize; elementwise float64 arithmetic with the same operand order
is IEEE-identical to the scalar expressions, so the two backends produce
bit-identical ``FlatNet`` columns — and hence bit-identical results.  The
Eq. 2 sibling skip-sums are deliberately **not** vectorized: a
subtract-the-child trick differs in floats from the reference's exact
skip-sum for fan-out > 2, which would break the bit-identity contract.

``evaluate_batch`` amortizes everything that is per-net overhead in the
reference path (engine construction, tree validation, per-node timing
table) across thousands of nets, with an LRU compile cache keyed on the
canonical net hash; :mod:`repro.analysis.batch` adds multi-core fan-out on
top via the campaign executor.
"""

from __future__ import annotations

import hashlib
from array import array
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..check import contracts
from ..obs import core as obs
from ..tech.buffers import Repeater
from ..tech.parameters import Technology
from ..tech.terminals import NEVER, Terminal
from .engine import ARDResult, EvalContext, SubtreeTiming, check_engine_tree
from .incremental import (
    EvalState,
    _best_scalar,
    _eval_at,
    _prune,
    _top_two,
    build_records,
    finish_root,
)
from .topology import NodeKind, RoutingTree

try:  # numpy accelerates compilation only; the kernel never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "FlatNet",
    "FlatARDEngine",
    "FlatNetCache",
    "canonical_net_key",
    "compile_net",
    "evaluate_batch",
]

HAVE_NUMPY = _np is not None

#: ``backend="auto"`` vectorizes compilation only at or above this node
#: count — below it the array round-trip costs more than it saves.
AUTO_NUMPY_MIN_NODES = 512

# Observability metrics (naming contract: docs/OBSERVABILITY.md).  The
# compile counters expose the cache economics of batched evaluation; the
# kernel counter divided by the ``flat.batch`` span duration is the
# nodes-per-second throughput of the flat pass.  All free while REPRO_OBS
# is off.
_OBS_COMPILE_HITS = obs.Counter("flat.compile.cache_hits")
_OBS_COMPILE_MISSES = obs.Counter("flat.compile.cache_misses")
_OBS_KERNEL_NODES = obs.Counter("flat.kernel.nodes")
_OBS_BATCH_SIZE = obs.Histogram("flat.batch.size")

#: Per-node repeater parameters ``(c_a, c_b, d_ab, r_ab, d_ba, r_ba)``.
_RepParams = Tuple[float, float, float, float, float, float]


class FlatNet(object):
    """One routing tree lowered to contiguous topological-order columns.

    A compiled net is a plain struct-of-arrays: every column is indexed by
    node id, ``order`` is the preorder node sequence (its reverse is the
    postorder the Fig. 2 recursion needs), and ``kids[v]`` is the ascending
    children tuple.  Instances handed out by :class:`FlatNetCache` are
    shared and must be treated as immutable; :class:`FlatARDEngine`
    compiles a private instance so its mutation ops can patch columns in
    place.
    """

    __slots__ = (
        "tree",
        "tech",
        "companion",
        "n",
        "root",
        "order",
        "parent",
        "kids",
        "wire_cap",
        "wire_res",
        "is_term",
        "is_src",
        "is_snk",
        "alpha",
        "beta",
        "tcap",
        "tres",
        "tintr",
        "tname",
        "leaf_base",
        "rep",
        "widths",
        "res_scale",
        "cap_scale",
    )

    def __init__(self, tree: RoutingTree, tech: Technology, companion: bool):
        n = len(tree)
        self.tree = tree
        self.tech = tech
        self.companion = companion
        self.n = n
        self.root = tree.root
        self.order: List[int] = list(tree.dfs_preorder())
        self.parent: List[Optional[int]] = [tree.parent(i) for i in range(n)]
        self.kids: List[Tuple[int, ...]] = [tree.children(i) for i in range(n)]
        self.wire_cap: List[float] = [0.0] * n
        self.wire_res: List[float] = [0.0] * n
        self.is_term: List[bool] = [False] * n
        self.is_src: List[bool] = [False] * n
        self.is_snk: List[bool] = [False] * n
        self.alpha: List[float] = [0.0] * n
        self.beta: List[float] = [0.0] * n
        self.tcap: List[float] = [0.0] * n
        self.tres: List[float] = [0.0] * n
        self.tintr: List[float] = [0.0] * n
        self.tname: List[Optional[str]] = [None] * n
        self.leaf_base: List[float] = [0.0] * n
        self.rep: List[Optional[_RepParams]] = [None] * n
        self.widths: Dict[int, float] = {}
        self.res_scale = 1.0
        self.cap_scale = 1.0

    # -- column maintenance (shared by compile and the engine's mutators) ------

    def refresh_edge(self, i: int) -> None:
        """Recompute one edge's R/C columns — the EvalState formula verbatim.

        Multiplying by a unit width or scale factor is IEEE-exact, so the
        columns stay bitwise identical to the reference arrays whichever
        knobs are active.
        """
        length = self.tree.edge_length(i)
        w = self.widths.get(i, 1.0)
        self.wire_cap[i] = self.tech.wire_capacitance(length) * w * self.cap_scale
        self.wire_res[i] = self.tech.wire_resistance(length) / w * self.res_scale

    def set_terminal_payload(self, v: int, term: Terminal) -> None:
        """Load one terminal's columns from its (possibly overridden) payload."""
        self.is_term[v] = True
        self.is_src[v] = term.is_source
        self.is_snk[v] = term.is_sink
        self.alpha[v] = term.arrival_time
        self.beta[v] = term.downstream_delay
        self.tcap[v] = term.capacitance
        self.tres[v] = term.resistance
        self.tintr[v] = term.intrinsic_delay
        self.tname[v] = term.name
        self.refresh_leaf_base(v)

    def refresh_leaf_base(self, v: int) -> None:
        # _leaf_record's driver-delay base:
        #   alpha + driver_delay(cap + wire_cap) = alpha + (intr + r*(c + wc))
        self.leaf_base[v] = self.alpha[v] + (
            self.tintr[v] + self.tres[v] * (self.tcap[v] + self.wire_cap[v])
        )

    def set_repeater_params(self, v: int, rep: Optional[Repeater]) -> None:
        if rep is None:
            self.rep[v] = None
        else:
            self.rep[v] = (rep.c_a, rep.c_b, rep.d_ab, rep.r_ab, rep.d_ba, rep.r_ba)


def _validated_knobs(
    tree: RoutingTree, context: EvalContext
) -> Tuple[Dict[int, Repeater], Dict[int, float]]:
    """Validate an :class:`EvalContext` against a tree — EvalState's checks,
    raising the same typed errors with the same messages."""
    assignment: Dict[int, Repeater] = {}
    for idx, rep in dict(context.assignment or {}).items():
        if rep is None:
            continue
        if not (0 <= idx < len(tree)):
            raise ValueError(f"assignment names unknown node {idx}")
        node = tree.node(idx)
        if node.kind is not NodeKind.INSERTION:
            raise ValueError(
                f"repeater assigned to node {idx} which is a "
                f"{node.kind.value}, not an insertion point"
            )
        if not isinstance(rep, Repeater):
            raise TypeError(f"assignment[{idx}] is not a Repeater: {rep!r}")
        assignment[idx] = rep
    widths: Dict[int, float] = {}
    for idx, w in dict(context.wire_widths or {}).items():
        if not (0 <= idx < len(tree)) or tree.parent(idx) is None:
            raise ValueError(f"wire edge {idx} does not name an edge")
        if w <= 0.0:
            raise ValueError(f"wire width factor must be positive, got {w}")
        widths[idx] = float(w)
    return assignment, widths


def compile_net(
    tree: RoutingTree,
    tech: Technology,
    context: Optional[EvalContext] = None,
    *,
    use_numpy: bool = False,
) -> FlatNet:
    """Lower one tree + context into a :class:`FlatNet`.

    With ``use_numpy=True`` the wire and leaf-base columns are built by
    vectorized float64 arithmetic; operand order matches the scalar
    expressions, so both paths produce bit-identical columns.
    """
    context = context if context is not None else EvalContext()
    assignment, widths = _validated_knobs(tree, context)
    net = FlatNet(tree, tech, bool(context.include_companion_cap))
    net.widths = widths
    for idx, rep in assignment.items():
        net.set_repeater_params(idx, rep)

    n = net.n
    for v, node in enumerate(tree.nodes):
        term = node.terminal
        if term is not None:
            net.is_term[v] = True
            net.is_src[v] = term.is_source
            net.is_snk[v] = term.is_sink
            net.alpha[v] = term.arrival_time
            net.beta[v] = term.downstream_delay
            net.tcap[v] = term.capacitance
            net.tres[v] = term.resistance
            net.tintr[v] = term.intrinsic_delay
            net.tname[v] = term.name

    if use_numpy and _np is not None:
        lengths = _np.array([tree.edge_length(i) for i in range(n)], dtype=_np.float64)
        warr = _np.ones(n, dtype=_np.float64)
        for idx, w in widths.items():
            warr[idx] = w
        # (length * unit) * w  ==  (unit * length) * w  bit-for-bit: float
        # multiplication commutes exactly, and the scalar path multiplies
        # wire_capacitance(length) by w in the same position.
        net.wire_cap = ((lengths * tech.unit_capacitance) * warr).tolist()
        net.wire_res = ((lengths * tech.unit_resistance) / warr).tolist()
        alpha = _np.array(net.alpha, dtype=_np.float64)
        tintr = _np.array(net.tintr, dtype=_np.float64)
        tres = _np.array(net.tres, dtype=_np.float64)
        tcap = _np.array(net.tcap, dtype=_np.float64)
        wc = _np.array(net.wire_cap, dtype=_np.float64)
        net.leaf_base = (alpha + (tintr + tres * (tcap + wc))).tolist()
    else:
        # refresh_edge inlined with the unit-knob multiplications dropped:
        # x * 1.0 and x / 1.0 are IEEE-exact no-ops, so skipping them keeps
        # the columns bit-identical while halving compile cost
        edge_length = tree.edge_length
        uc = tech.unit_capacitance
        ur = tech.unit_resistance
        wc = net.wire_cap
        wr = net.wire_res
        if widths:
            for i in range(n):
                length = edge_length(i)
                w = widths.get(i, 1.0)
                wc[i] = uc * length * w
                wr[i] = ur * length / w
        else:
            for i in range(n):
                length = edge_length(i)
                wc[i] = uc * length
                wr[i] = ur * length
        alpha = net.alpha
        tintr = net.tintr
        tres = net.tres
        tcap = net.tcap
        leaf_base = net.leaf_base
        for v in range(n):
            if net.is_term[v]:
                leaf_base[v] = alpha[v] + (tintr[v] + tres[v] * (tcap[v] + wc[v]))
    return net


# -- the fused Eq. 1 + Fig. 2 kernel -------------------------------------------


def _kernel(net: FlatNet):
    """One reverse-preorder sweep producing every non-root subtree record.

    This is :func:`repro.rctree.incremental.record_for` unrolled over flat
    columns: the candidate tuples, prune/argmax helpers and expression
    order are the reference's own, so the resulting ``(down, ups, req,
    req_sink, diams)`` arrays match ``build_records`` entry for entry.
    """
    n = net.n
    order = net.order
    root = net.root
    kids = net.kids
    wire_cap = net.wire_cap
    wire_res = net.wire_res
    is_term = net.is_term
    is_src = net.is_src
    is_snk = net.is_snk
    beta = net.beta
    tcap = net.tcap
    tres = net.tres
    leaf_base = net.leaf_base
    rep = net.rep
    companion = net.companion
    never = NEVER

    down: List[float] = [0.0] * n
    ups: List[tuple] = [()] * n
    req: List[float] = [never] * n
    req_sink: List[Optional[int]] = [None] * n
    diams: List[tuple] = [()] * n

    if obs.enabled():
        _OBS_KERNEL_NODES.add(n)

    for i in range(n - 1, -1, -1):
        v = order[i]
        if v == root:
            continue
        if is_term[v]:
            down[v] = tcap[v]
            if is_src[v]:
                ups[v] = ((leaf_base[v], tres[v], v),)
            if is_snk[v]:
                req[v] = beta[v]
                req_sink[v] = v
            continue

        children = kids[v]
        if rep[v] is None and len(children) == 1:
            # bare degree-1 node (the bulk of every insertion-point chain):
            # the general combine below collapses to lifting one child's
            # fronts; every expression is the general path's own literal
            # (sum() over one load is 0 + load; cross pairs cannot form —
            # the best downward entry always comes from the only child)
            u = children[0]
            ru = req[u]
            if ru != never:
                req[v] = wire_res[u] * (0.5 * wire_cap[u] + down[u]) + ru
                req_sink[v] = req_sink[u]
            down[v] = 0 + (wire_cap[u] + down[u])
            side = wire_cap[v] + 0
            wru = wire_res[u]
            half = 0.5 * wire_cap[u]
            front = ups[u]
            if front:
                lifted = [
                    (base + slope * side + wru * (half + side), slope + wru, source)
                    for base, slope, source in front
                ]
                ups[v] = _prune(lifted) if len(lifted) > 1 else tuple(lifted)
            front = diams[u]
            if front:
                shifted = [
                    (base + slope * side, slope, pair)
                    for base, slope, pair in front
                ]
                diams[v] = (
                    _prune(shifted) if len(shifted) > 1 else tuple(shifted)
                )
            continue

        child_load = [wire_cap[u] + down[u] for u in children]
        downs = []
        for u in children:
            ru = req[u]
            if ru != never:
                downs.append(
                    (wire_res[u] * (0.5 * wire_cap[u] + down[u]) + ru, req_sink[u], u)
                )

        # small-front fast paths: _top_two/_best_scalar over zero or one
        # entries reduce to these literals (first-strict argmax from NEVER)
        n_downs = len(downs)
        if n_downs == 0:
            best_down = second_down = None
            rq, rs = never, None
        elif n_downs == 1:
            best_down, second_down = downs[0], None
            rq, rs = downs[0][0], downs[0][1]
        else:
            best_down, second_down = _top_two(downs)
            rq, rs = _best_scalar(downs)

        rv = rep[v]
        if rv is not None:
            c_a, c_b, d_ab, r_ab, d_ba, r_ba = rv
            child = children[0]
            if ups[child]:
                best_arrival, best_source = never, None
                wrc = wire_res[child]
                half = 0.5 * wire_cap[child]
                for base, slope, source in ups[child]:
                    arrival = base + slope * c_b + wrc * (half + c_b)
                    if arrival > best_arrival:
                        best_arrival, best_source = arrival, source
                up_load = wire_cap[v] + c_a if companion else wire_cap[v]
                ups[v] = ((best_arrival + d_ba + r_ba * up_load, r_ba, best_source),)
            if rq != never:
                cross_load = wire_cap[child] + down[child]
                if companion:
                    cross_load = cross_load + c_b
                rq = rq + (d_ab + r_ab * cross_load)
            req[v] = rq
            req_sink[v] = rs
            frozen = tuple(
                (base + slope * c_b, 0.0, pair) for base, slope, pair in diams[child]
            )
            diams[v] = _prune(frozen) if len(frozen) > 1 else frozen
            down[v] = c_a
            continue

        down[v] = sum(child_load)
        ups_v: List[tuple] = []
        diams_v: List[tuple] = []
        lifted_per_child: List[Tuple[int, List[tuple]]] = []
        n_kids = len(children)
        wcv = wire_cap[v]
        for k in range(n_kids):
            u = children[k]
            # the exact sibling skip-sum of _internal_record (no subtraction
            # trick), which is what keeps fan-out > 2 nets bit-identical;
            # the one- and two-child forms below are that sum's literal
            # expansion (sum() starts from int 0, an exact addend)
            if n_kids == 1:
                side = wcv + 0
            elif n_kids == 2:
                side = wcv + (0 + child_load[1 - k])
            else:
                side = wcv + sum(child_load[j] for j in range(n_kids) if j != k)
            wru = wire_res[u]
            half = 0.5 * wire_cap[u]
            lifted: List[tuple] = []
            for base, slope, source in ups[u]:
                lifted.append(
                    (base + slope * side + wru * (half + side), slope + wru, source)
                )
            lifted_per_child.append((u, lifted))
            ups_v.extend(lifted)
            for base, slope, pair in diams[u]:
                diams_v.append((base + slope * side, slope, pair))

        if best_down is not None:
            for u, lifted in lifted_per_child:
                for base, slope, source in lifted:
                    chosen = best_down
                    if chosen[2] == u:
                        chosen = second_down
                    if chosen is None:
                        continue
                    diams_v.append((base + chosen[0], slope, (source, chosen[1])))

        req[v] = rq
        req_sink[v] = rs
        ups[v] = _prune(ups_v) if len(ups_v) > 1 else tuple(ups_v)
        diams[v] = _prune(diams_v) if len(diams_v) > 1 else tuple(diams_v)

    return down, ups, req, req_sink, diams


def _finish(net: FlatNet, down, ups, req, req_sink, diams):
    """:func:`repro.rctree.incremental.finish_root` over flat columns."""
    root = net.root
    if not net.is_term[root]:
        raise ValueError(f"node {root} is not a terminal")
    (child,) = net.kids[root]
    root_cap = net.tcap[root]
    wire_cap = net.wire_cap[child]
    wire_res = net.wire_res[child]

    best, pair = _eval_at(diams[child], root_cap)
    src, snk = pair if pair is not None else (None, None)

    if net.is_snk[root] and ups[child]:
        arrival, arrival_source = _eval_at(ups[child], root_cap)
        cand = arrival + wire_res * (0.5 * wire_cap + root_cap) + net.beta[root]
        if cand > best:
            best, src, snk = cand, arrival_source, root

    if net.is_src[root] and req[child] != NEVER:
        load = net.tcap[root] + (wire_cap + down[child])
        cand = (
            net.alpha[root]
            + (net.tintr[root] + net.tres[root] * load)
            + wire_res * (0.5 * wire_cap + down[child])
            + req[child]
        )
        if cand > best:
            best, src, snk = cand, root, req_sink[child]
    return best, src, snk


def _up_pass(net: FlatNet, down: List[float]) -> List[float]:
    """Eq. 2 over flat columns — ElmoreAnalyzer's top-down pass verbatim.

    The record ``down`` array equals the analyzer's Eq. 1 array for every
    non-root node (same sums in the same order), so feeding it here yields
    the analyzer's exact external loads.
    """
    n = net.n
    up = [0.0] * n
    parent = net.parent
    rep = net.rep
    is_term = net.is_term
    tcap = net.tcap
    wire_cap = net.wire_cap
    kids = net.kids
    for v in net.order:
        p = parent[v]
        if p is None:
            continue
        rp = rep[p]
        if rp is not None:
            up[v] = rp[1]  # c_b
        elif is_term[p]:
            up[v] = tcap[p]  # p is the root terminal
        else:
            base = 0.0
            if parent[p] is not None:
                base = wire_cap[p] + up[p]
            siblings = sum(
                wire_cap[u] + down[u] for u in kids[p] if u != v
            )
            up[v] = base + siblings
    return up


def _timing_table(net, up, ups, req, req_sink, diams, best, src, snk):
    """The per-node ``A_v``/``D_v``/``Z_v`` table of ``compute_ard``."""
    timing: Dict[int, SubtreeTiming] = {}
    order = net.order
    root = net.root
    for i in range(net.n - 1, -1, -1):
        v = order[i]
        if v == root:
            continue
        arrival, arrival_source = _eval_at(ups[v], up[v])
        diameter, diameter_pair = _eval_at(diams[v], up[v])
        timing[v] = SubtreeTiming(
            arrival, arrival_source, req[v], req_sink[v], diameter, diameter_pair
        )
    timing[root] = SubtreeTiming(NEVER, None, NEVER, None, best, (src, snk))
    return timing


def _resolve_backend(backend: str, n_nodes: int) -> bool:
    """True when compilation should vectorize."""
    if backend == "numpy":
        if not HAVE_NUMPY:
            raise ValueError("backend='numpy' requested but numpy is not installed")
        return True
    if backend == "python":
        return False
    if backend == "auto":
        return HAVE_NUMPY and n_nodes >= AUTO_NUMPY_MIN_NODES
    raise ValueError(
        f"unknown backend {backend!r}; expected 'auto', 'python' or 'numpy'"
    )


# -- the engine ----------------------------------------------------------------


class FlatARDEngine:
    """A :class:`~repro.rctree.engine.TimingEngine` over compiled columns.

    Construction compiles the tree once; :meth:`evaluate` runs the fused
    flat kernel and caches the scalar result until a mutation invalidates
    it.  The mutation ops mirror :class:`IncrementalARD`'s surface
    (``set_assignment`` / ``set_terminal`` / ``set_wire_width`` /
    ``set_wire_scale``) by patching the affected columns in place — each
    subsequent evaluate is a fresh O(n) kernel sweep, which is the flat
    engine's trade: no dirty tracking, but a far cheaper full pass.

    ``backend`` selects how compilation builds the columns: ``"python"``
    (always available), ``"numpy"`` (vectorized, raises without numpy) or
    ``"auto"`` (numpy when available and the tree has at least
    ``AUTO_NUMPY_MIN_NODES`` nodes).  Both produce bit-identical columns.

    ``include_timing=True`` additionally materializes the per-node
    ``A_v``/``D_v``/``Z_v`` table on every evaluate (the reference
    ``ard()`` behavior); the default matches ``IncrementalARD`` and returns
    it empty.

    With ``REPRO_CHECK=1`` every evaluation is cross-checked bit-for-bit
    against a fresh reference record pass
    (:func:`repro.check.contracts.verify_flat_consistency`).
    """

    def __init__(
        self,
        tree: RoutingTree,
        tech: Technology,
        *,
        context: Optional[EvalContext] = None,
        backend: str = "auto",
        include_timing: bool = False,
    ):
        context = context if context is not None else EvalContext()
        self._use_numpy = _resolve_backend(backend, len(tree))
        self._net = compile_net(tree, tech, context, use_numpy=self._use_numpy)
        self._assignment, _ = _validated_knobs(tree, context)
        self._overrides: Dict[int, Terminal] = {}
        self._include_timing = bool(include_timing)
        self._scalar = None  # (down, ups, req, req_sink, diams, best, src, snk)
        self._up: Optional[List[float]] = None
        self._result: Optional[ARDResult] = None

    # -- engine protocol --------------------------------------------------------

    @property
    def tree(self) -> RoutingTree:
        return self._net.tree

    @property
    def technology(self) -> Technology:
        return self._net.tech

    @property
    def assignment(self) -> Dict[int, Repeater]:
        return dict(self._assignment)

    @property
    def backend(self) -> str:
        """The resolved compile backend: ``"numpy"`` or ``"python"``."""
        return "numpy" if self._use_numpy else "python"

    @property
    def context(self) -> EvalContext:
        """The engine's current knobs (terminal overrides and wire scales
        live outside :class:`EvalContext` and are not represented)."""
        return EvalContext(
            assignment=dict(self._assignment) or None,
            wire_widths=dict(self._net.widths) or None,
            include_companion_cap=self._net.companion,
        )

    def evaluate(self, tree: Optional[RoutingTree] = None) -> ARDResult:
        """The current ARD from one fused kernel sweep (cached until edited)."""
        check_engine_tree(self._net.tree, tree)
        if self._result is not None:
            return self._result
        arrays = self._ensure_kernel()
        down, ups, req, req_sink, diams, best, src, snk = arrays
        timing: Dict[int, SubtreeTiming] = {}
        if self._include_timing:
            up = self._ensure_up()
            timing = _timing_table(
                self._net, up, ups, req, req_sink, diams, best, src, snk
            )
        self._result = ARDResult(best, src, snk, timing)
        if contracts.contracts_enabled():
            contracts.verify_flat_consistency(self._result, self._eval_state())
        return self._result

    def path_delay(self, src: int, dst: int) -> float:
        """``PD(src, dst)`` under the engine's current state (Def. 2.1)."""
        net = self._net
        if not net.is_term[src] or not net.is_term[dst]:
            raise ValueError("path_delay endpoints must be terminals")
        if src == dst:
            raise ValueError("source and sink must differ")
        if not net.is_src[src]:
            raise ValueError(f"terminal {net.tname[src]} cannot drive")

        self._ensure_kernel()
        self._ensure_up()
        path = net.tree.path_between(src, dst)
        # driver_delay(cap + cap_into) = intr + r * (c + cap_into)
        total = net.tintr[src] + net.tres[src] * (
            net.tcap[src] + self._cap_into(src, path[1])
        )
        for k in range(1, len(path)):
            a, b = path[k - 1], path[k]
            total += self._wire_delay(a, b)
            if k < len(path) - 1 and net.rep[b] is not None:
                total += self._crossing_delay(b, a, path[k + 1])
        return total

    # -- mutation ops -----------------------------------------------------------

    def set_assignment(self, node: int, repeater: Optional[Repeater]) -> None:
        """Place (or with ``None`` remove) a repeater at an insertion node."""
        if repeater is not None:
            if not (0 <= node < self._net.n):
                raise ValueError(f"assignment names unknown node {node}")
            kind = self._net.tree.node(node).kind
            if kind is not NodeKind.INSERTION:
                raise ValueError(
                    f"repeater assigned to node {node} which is a "
                    f"{kind.value}, not an insertion point"
                )
            if not isinstance(repeater, Repeater):
                raise TypeError(f"assignment[{node}] is not a Repeater: {repeater!r}")
            self._assignment[node] = repeater
        else:
            self._assignment.pop(node, None)
        self._net.set_repeater_params(node, repeater)
        self._invalidate()

    def set_terminal(self, node: int, terminal: Terminal) -> None:
        """Override the terminal payload of a terminal node."""
        if not (0 <= node < self._net.n):
            raise ValueError(f"unknown node {node}")
        if not self._net.is_term[node]:
            raise ValueError(f"node {node} is not a terminal")
        if not isinstance(terminal, Terminal):
            raise TypeError(f"terminal override for node {node} is {terminal!r}")
        self._overrides[node] = terminal
        self._net.set_terminal_payload(node, terminal)
        self._invalidate()

    def set_wire_width(self, edge: int, width) -> None:
        """Set the width factor of one edge (named by its child node).

        ``width`` is a positive factor, an object with a ``width`` attribute
        (e.g. :class:`~repro.tech.buffers.WireClass`), or ``None`` to
        restore unit width.
        """
        factor = getattr(width, "width", width)
        net = self._net
        if not (0 <= edge < net.n) or net.parent[edge] is None:
            raise ValueError(f"wire edge {edge} does not name an edge")
        if factor is None:
            net.widths.pop(edge, None)
        else:
            if factor <= 0.0:
                raise ValueError(f"wire width factor must be positive, got {factor}")
            net.widths[edge] = float(factor)
        net.refresh_edge(edge)
        if net.is_term[edge]:
            net.refresh_leaf_base(edge)
        self._invalidate()

    def set_wire_scale(
        self, *, resistance_factor: float = 1.0, capacitance_factor: float = 1.0
    ) -> None:
        """Set (absolutely, not cumulatively) global wire variation scalars."""
        if resistance_factor <= 0.0 or capacitance_factor <= 0.0:
            raise ValueError("wire variation scalars must be positive")
        net = self._net
        net.res_scale = float(resistance_factor)
        net.cap_scale = float(capacitance_factor)
        for i in range(net.n):
            net.refresh_edge(i)
        for v in range(net.n):
            if net.is_term[v]:
                net.refresh_leaf_base(v)
        self._invalidate()

    def reroot(self, node: int) -> None:
        """Re-orient the tree at ``node`` (terminal or branch point).

        Changes every parent relation, so the columns are recompiled from
        the re-oriented tree (O(n), the engine's normal full-sweep cost);
        edge width overrides are remapped to the re-oriented edge carriers
        and terminal overrides / wire scales are replayed — mirroring
        :meth:`repro.rctree.incremental.IncrementalARD.reroot` so the two
        editable engines stay bit-identical through structural edits.
        """
        net = self._net
        old = net.tree
        new_tree = old.rerooted(node)
        remapped: Dict[int, float] = {}
        for idx, w in net.widths.items():
            parent = old.parent(idx)
            if new_tree.parent(idx) == parent:
                remapped[idx] = w
            else:  # the edge flipped: its carrier is now the old parent
                remapped[parent] = w
        res_scale, cap_scale = net.res_scale, net.cap_scale
        self._net = compile_net(
            new_tree,
            net.tech,
            EvalContext(
                assignment=dict(self._assignment) or None,
                wire_widths=remapped or None,
                include_companion_cap=net.companion,
            ),
            use_numpy=self._use_numpy,
        )
        net = self._net
        if res_scale != 1.0 or cap_scale != 1.0:  # repro: noqa[R001] 1.0 is the exact "never scaled" default
            net.res_scale = res_scale
            net.cap_scale = cap_scale
            for i in range(net.n):
                net.refresh_edge(i)
        for idx, term in self._overrides.items():
            net.set_terminal_payload(idx, term)
        if res_scale != 1.0 or cap_scale != 1.0:  # repro: noqa[R001] see above
            for v in range(net.n):
                if net.is_term[v]:
                    net.refresh_leaf_base(v)
        self._invalidate()

    # -- verification hooks -----------------------------------------------------

    def fresh_result(self) -> ARDResult:
        """A from-scratch reference record pass over the engine's state.

        Replays the current knobs into an
        :class:`~repro.rctree.incremental.EvalState` and runs the reference
        ``build_records`` / ``finish_root`` — any disagreement with
        :meth:`evaluate` pinpoints a kernel porting bug, not float drift.
        """
        state = self._eval_state()
        records = build_records(state)
        value, src, snk = finish_root(state, records)
        return ARDResult(value, src, snk, {})

    def _eval_state(self) -> EvalState:
        state = EvalState(
            self._net.tree,
            self._net.tech,
            EvalContext(
                assignment=dict(self._assignment) or None,
                wire_widths=dict(self._net.widths) or None,
                include_companion_cap=self._net.companion,
            ),
        )
        if self._net.res_scale != 1.0 or self._net.cap_scale != 1.0:  # repro: noqa[R001] 1.0 is the exact "never scaled" default; replaying it through set_scales must be a no-op bit-for-bit
            state.set_scales(self._net.res_scale, self._net.cap_scale)
        for idx, term in self._overrides.items():
            state.set_terminal_override(idx, term)
        return state

    # -- internals --------------------------------------------------------------

    def _invalidate(self) -> None:
        self._scalar = None
        self._up = None
        self._result = None

    def _ensure_kernel(self):
        if self._scalar is None:
            down, ups, req, req_sink, diams = _kernel(self._net)
            best, src, snk = _finish(self._net, down, ups, req, req_sink, diams)
            self._scalar = (down, ups, req, req_sink, diams, best, src, snk)
        return self._scalar

    def _ensure_up(self) -> List[float]:
        if self._up is None:
            down = self._ensure_kernel()[0]
            self._up = _up_pass(self._net, down)
        return self._up

    # path-delay plumbing: ElmoreAnalyzer's views over the flat arrays

    def _node_view(self, v: int, entered_from: int) -> float:
        net = self._net
        if entered_from == net.parent[v]:
            return self._scalar[0][v]  # Eq. 1 down
        rv = net.rep[v]
        if rv is not None:
            return rv[1]  # c_b
        if net.is_term[v]:
            return net.tcap[v]  # root terminal seen from its child
        total = 0.0
        if net.parent[v] is not None:
            total += net.wire_cap[v] + self._up[v]
        total += sum(
            net.wire_cap[u] + self._scalar[0][u]
            for u in net.kids[v]
            if u != entered_from
        )
        return total

    def _edge_index(self, a: int, b: int) -> int:
        parent = self._net.parent
        if parent[b] == a:
            return b
        if parent[a] == b:
            return a
        raise ValueError(f"nodes {a} and {b} are not adjacent")

    def _cap_into(self, frm: int, to: int) -> float:
        e = self._edge_index(frm, to)
        return self._net.wire_cap[e] + self._node_view(to, frm)

    def _wire_delay(self, frm: int, to: int) -> float:
        e = self._edge_index(frm, to)
        return self._net.wire_res[e] * (
            0.5 * self._net.wire_cap[e] + self._node_view(to, frm)
        )

    def _crossing_delay(self, at: int, came_from: int, going_to: int) -> float:
        c_a, c_b, d_ab, r_ab, d_ba, r_ba = self._net.rep[at]
        downward = came_from == self._net.parent[at]
        load = self._cap_into(at, going_to)
        if self._net.companion:
            load += c_b if downward else c_a
        if downward:
            return d_ab + r_ab * load
        return d_ba + r_ba * load


# -- compile cache -------------------------------------------------------------


def canonical_net_key(
    tree: RoutingTree,
    tech: Technology,
    context: Optional[EvalContext] = None,
) -> str:
    """A content hash identifying one (tree, technology, context) triple.

    Floats enter the digest as their raw IEEE-754 bytes, so the key
    distinguishes exactly the values the kernel would distinguish — two
    nets share a key precisely when they pose the bitwise-same evaluation
    problem.  Terminal and repeater *names* are excluded: they never enter
    the arithmetic.
    """
    context = context if context is not None else EvalContext()
    # plain lists + one array() construction: the per-element work runs in C
    ints: List[int] = [len(tree), 1 if context.include_companion_cap else 0]
    floats: List[float] = [tech.unit_resistance, tech.unit_capacitance]
    terminal = NodeKind.TERMINAL
    steiner = NodeKind.STEINER
    parents = tree._parent
    lengths = tree._edge_length
    for i, node in enumerate(tree.nodes):
        p = parents[i]
        kind = node.kind
        ints.append(0 if kind is terminal else 1 if kind is steiner else 2)
        ints.append(-1 if p is None else p)
        floats.append(lengths[i])
        term = node.terminal
        if term is not None:  # presence is implied by the kind code above
            floats.append(term.arrival_time)
            floats.append(term.downstream_delay)
            floats.append(term.capacitance)
            floats.append(term.resistance)
            floats.append(term.intrinsic_delay)
    ints.append(-2)  # section separator: node table / assignment
    assignment = dict(context.assignment or {})
    for idx in sorted(assignment):
        rep = assignment[idx]
        ints.append(idx)
        floats.extend((rep.c_a, rep.c_b, rep.d_ab, rep.r_ab, rep.d_ba, rep.r_ba))
    ints.append(-3)  # section separator: assignment / wire widths
    widths = dict(context.wire_widths or {})
    for idx in sorted(widths):
        ints.append(idx)
        floats.append(widths[idx])
    h = hashlib.blake2b(digest_size=16)
    h.update(array("q", ints).tobytes())
    h.update(array("d", floats).tobytes())
    return h.hexdigest()


class FlatNetCache:
    """An LRU of compiled :class:`FlatNet` instances keyed by canonical hash.

    Batched workloads (Monte Carlo over a fixed topology set, repeated
    campaign evaluation) re-see the same nets; a hit skips compilation
    entirely.  Cached instances are shared — callers must not mutate them
    (:class:`FlatARDEngine` never uses the cache for exactly this reason).
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize <= 0:
            raise ValueError(f"cache maxsize must be positive, got {maxsize}")
        self._maxsize = maxsize
        self._store: "OrderedDict[str, FlatNet]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def get_or_compile(
        self,
        tree: RoutingTree,
        tech: Technology,
        context: Optional[EvalContext] = None,
        *,
        use_numpy: bool = False,
    ) -> FlatNet:
        key = canonical_net_key(tree, tech, context)
        net = self._store.get(key)
        if net is not None:
            self._store.move_to_end(key)
            self.hits += 1
            if obs.enabled():
                _OBS_COMPILE_HITS.add()
            return net
        self.misses += 1
        if obs.enabled():
            _OBS_COMPILE_MISSES.add()
        net = compile_net(tree, tech, context, use_numpy=use_numpy)
        self._store[key] = net
        while len(self._store) > self._maxsize:
            self._store.popitem(last=False)
        return net


# -- batched evaluation --------------------------------------------------------


def evaluate_batch(
    nets: Sequence[RoutingTree],
    tech: Technology,
    *,
    contexts: Union[None, EvalContext, Sequence[Optional[EvalContext]]] = None,
    backend: str = "auto",
    include_timing: bool = False,
    cache: Optional[FlatNetCache] = None,
) -> List[ARDResult]:
    """Compile and evaluate many nets in one call.

    ``contexts`` is ``None`` (bare evaluation for every net), a single
    :class:`EvalContext` applied to all nets, or a sequence parallel to
    ``nets``.  ``backend`` resolves per net as in :class:`FlatARDEngine`.
    Pass a :class:`FlatNetCache` to reuse compilations across calls.
    ``include_timing=True`` materializes every per-node timing table
    (roughly doubling the work); the default returns scalar results.

    Results come back in input order.  Under ``REPRO_CHECK=1`` every result
    is cross-checked bit-for-bit against the reference record pass.  For
    multi-core fan-out over very large batches see
    :func:`repro.analysis.batch.evaluate_batch_parallel`.
    """
    n_batch = len(nets)
    if isinstance(contexts, EvalContext) or contexts is None:
        ctx_list: List[Optional[EvalContext]] = [contexts] * n_batch
    else:
        ctx_list = list(contexts)
        if len(ctx_list) != n_batch:
            raise ValueError(
                f"contexts length {len(ctx_list)} != nets length {n_batch}"
            )

    results: List[ARDResult] = []
    total_nodes = sum(len(t) for t in nets)
    if obs.enabled():
        _OBS_BATCH_SIZE.observe(n_batch)
    with obs.trace("flat.batch", nets=n_batch, nodes=total_nodes):
        for tree, ctx in zip(nets, ctx_list):
            use_numpy = _resolve_backend(backend, len(tree))
            if cache is not None:
                net = cache.get_or_compile(tree, tech, ctx, use_numpy=use_numpy)
            else:
                net = compile_net(tree, tech, ctx, use_numpy=use_numpy)
            down, ups, req, req_sink, diams = _kernel(net)
            best, src, snk = _finish(net, down, ups, req, req_sink, diams)
            timing: Dict[int, SubtreeTiming] = {}
            if include_timing:
                up = _up_pass(net, down)
                timing = _timing_table(
                    net, up, ups, req, req_sink, diams, best, src, snk
                )
            result = ARDResult(best, src, snk, timing)
            if contracts.contracts_enabled():
                contracts.verify_flat_consistency(
                    result, EvalState(tree, tech, ctx)
                )
            results.append(result)
    return results
