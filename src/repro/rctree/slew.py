"""Slew-aware delay evaluation (the generalized model of Lillis et al. [15]).

The paper's own experiments use the basic Elmore + intrinsic-delay models
(Sec. II), but it cites its companion work [15] for "a generalized buffer
delay model incorporating signal slew".  This module provides that richer
model as an *evaluation* layer, used for sensitivity analysis of solutions
produced under the basic model (``benchmarks/bench_slew_sensitivity.py``):

* a driving stage (terminal driver or repeater half) launches a ramp whose
  output transition time is ``slew_gain · R_drv · C_load`` (the classic
  ≈ ln 9 ≈ 2.2 RC estimate for 10–90% transitions);
* travelling down the wire, the transition degrades with the Elmore delay
  accumulated since the last regeneration — the PERI composition
  ``S = sqrt(S_launch² + (slew_gain · d_elmore)²)``;
* every stage's switching delay grows with the transition time arriving at
  its input: ``d += slew_to_delay · S_in`` (first-order linear sensitivity,
  default 0.25 — half of a half-swing ramp);
* repeaters *regenerate* the edge: after a repeater, the accumulated wire
  degradation restarts — which is precisely why repeaters help more under a
  slew-aware model than plain Elmore predicts.

The model collapses to the paper's when ``slew_to_delay = 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..tech.buffers import Repeater
from ..tech.parameters import Technology
from ..tech.terminals import NEVER
from .elmore import ElmoreAnalyzer
from .engine import ARDResult, EvalContext, check_engine_tree
from .topology import RoutingTree

__all__ = ["SlewModel", "SlewAnalyzer"]

#: 10–90% transition of an RC step response: t = ln(9) RC.
LN9 = math.log(9.0)


@dataclass(frozen=True)
class SlewModel:
    """Coefficients of the slew extension.

    ``slew_gain`` converts an RC product into a transition time;
    ``slew_to_delay`` converts an input transition time into extra stage
    delay; ``input_slew`` is the transition arriving at every terminal
    driver's input.
    """

    slew_gain: float = LN9
    slew_to_delay: float = 0.25
    input_slew: float = 0.0

    def __post_init__(self) -> None:
        if self.slew_gain < 0.0 or self.slew_to_delay < 0.0 or self.input_slew < 0.0:
            raise ValueError("slew model coefficients must be non-negative")


class SlewAnalyzer:
    """Slew-aware path delays on top of an Elmore capacitance backbone."""

    def __init__(
        self,
        tree: RoutingTree,
        tech: Technology,
        assignment: Optional[Dict[int, Repeater]] = None,
        model: SlewModel = SlewModel(),
    ):
        self._an = ElmoreAnalyzer(tree, tech, context=EvalContext(assignment=assignment))
        self._model = model
        self._tree = tree

    @property
    def elmore(self) -> ElmoreAnalyzer:
        return self._an

    def evaluate(self, tree: Optional[RoutingTree] = None) -> ARDResult:
        """Slew-aware ARD as an :class:`~repro.rctree.engine.ARDResult`
        (:class:`TimingEngine` conformance; per-node ``timing`` stays empty —
        this engine enumerates pairs, it has no subtree recursion)."""
        check_engine_tree(self._tree, tree)
        best, src, snk = self.ard()
        return ARDResult(best, src, snk, {})

    def path_delay(self, src: int, dst: int) -> float:
        """Slew-aware delay from the driver at ``src`` to terminal ``dst``.

        Walks the path, carrying ``(arrival time, launch slew, elmore since
        last regeneration)``; each repeater charges the degraded transition
        arriving at its input and relaunches a fresh ramp.
        """
        tree = self._tree
        an = self._an
        m = self._model
        src_t = tree.node(src).terminal
        dst_t = tree.node(dst).terminal
        if src_t is None or dst_t is None:
            raise ValueError("endpoints must be terminals")
        if src == dst:
            raise ValueError("source and sink must differ")
        if not src_t.is_source:
            raise ValueError(f"terminal {src_t.name} cannot drive")

        path = tree.path_between(src, dst)
        load = src_t.capacitance + an.cap_into(src, path[1])
        time = src_t.driver_delay(load) + m.slew_to_delay * m.input_slew
        launch_slew = m.slew_gain * src_t.resistance * load
        elmore_since_launch = 0.0

        for k in range(1, len(path)):
            a, b = path[k - 1], path[k]
            elmore_since_launch += an.wire_delay(a, b)
            time += an.wire_delay(a, b)
            if k < len(path) - 1 and an.has_repeater(b):
                arriving = self._degraded(launch_slew, elmore_since_launch)
                time += an.repeater_delay_through(b, a, path[k + 1])
                time += m.slew_to_delay * arriving
                # regeneration: fresh ramp from the repeater's output
                rep = an.assignment[b]
                downward = a == tree.parent(b)
                r_drive = rep.r_ab if downward else rep.r_ba
                launch_slew = m.slew_gain * r_drive * an.cap_into(b, path[k + 1])
                elmore_since_launch = 0.0
        # the sink's receiver also switches later on a degraded edge
        time += m.slew_to_delay * self._degraded(launch_slew, elmore_since_launch)
        return time

    def sink_slew(self, src: int, dst: int) -> float:
        """The transition time arriving at ``dst`` when ``src`` drives."""
        tree = self._tree
        an = self._an
        m = self._model
        path = tree.path_between(src, dst)
        src_t = tree.node(src).terminal
        load = src_t.capacitance + an.cap_into(src, path[1])
        launch_slew = m.slew_gain * src_t.resistance * load
        elmore = 0.0
        for k in range(1, len(path)):
            a, b = path[k - 1], path[k]
            elmore += an.wire_delay(a, b)
            if k < len(path) - 1 and an.has_repeater(b):
                rep = an.assignment[b]
                downward = a == tree.parent(b)
                r_drive = rep.r_ab if downward else rep.r_ba
                launch_slew = m.slew_gain * r_drive * an.cap_into(b, path[k + 1])
                elmore = 0.0
        return self._degraded(launch_slew, elmore)

    def augmented_delay(self, src: int, dst: int) -> float:
        tree = self._tree
        src_t = tree.node(src).terminal
        dst_t = tree.node(dst).terminal
        if not src_t.is_source or not dst_t.is_sink:
            return NEVER
        return (
            src_t.arrival_time + self.path_delay(src, dst) + dst_t.downstream_delay
        )

    def ard(self) -> Tuple[float, Optional[int], Optional[int]]:
        """Slew-aware ARD by pair enumeration (evaluation-only model)."""
        best, bs, bk = NEVER, None, None
        terminals = self._tree.terminal_indices()
        for u in terminals:
            if not self._tree.node(u).terminal.is_source:
                continue
            for v in terminals:
                if v == u or not self._tree.node(v).terminal.is_sink:
                    continue
                d = self.augmented_delay(u, v)
                if d > best:
                    best, bs, bk = d, u, v
        return best, bs, bk

    def _degraded(self, launch_slew: float, elmore_since_launch: float) -> float:
        """PERI composition of launch slew and wire degradation."""
        return math.hypot(launch_slew, self._model.slew_gain * elmore_since_launch)
