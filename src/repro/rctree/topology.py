"""Rooted rectilinear routing trees for multisource nets.

The paper's net-specific inputs (Sec. II) are a terminal set in the plane and
a rectilinear Steiner tree spanning it, with prescribed *degree-two candidate
insertion points* where repeaters may go (footnote 6: degree two avoids
ambiguity about which side of the repeater a branch connects to).  Sec. III
additionally assumes, w.l.o.g., that all terminals are leaves (a non-leaf
terminal gets a zero-length pendant edge) and that the tree is re-oriented
with respect to an arbitrary root.

:class:`RoutingTree` is that object: an immutable rooted tree whose nodes are
terminals, Steiner (branch) points, or candidate insertion points, with a
wire length on every parent edge.  Construction is via
:class:`~repro.rctree.builder.TreeBuilder`; this module owns the invariants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..tech.terminals import Terminal

__all__ = ["NodeKind", "Node", "RoutingTree", "RepeaterAssignment"]


class NodeKind(enum.Enum):
    """Role of a tree node."""

    TERMINAL = "terminal"
    STEINER = "steiner"
    INSERTION = "insertion"


@dataclass(frozen=True)
class Node:
    """One vertex of the routing tree.

    ``terminal`` is populated exactly for :attr:`NodeKind.TERMINAL` nodes.
    """

    index: int
    x: float
    y: float
    kind: NodeKind
    terminal: Optional[Terminal] = None

    def __post_init__(self) -> None:
        if (self.kind is NodeKind.TERMINAL) != (self.terminal is not None):
            raise ValueError(
                f"node {self.index}: terminal payload must accompany exactly "
                f"the TERMINAL kind (kind={self.kind}, terminal={self.terminal})"
            )

    @property
    def name(self) -> str:
        if self.terminal is not None:
            return self.terminal.name
        return f"{self.kind.value}{self.index}"


#: A repeater assignment maps insertion-node index -> oriented Repeater,
#: with the convention that the repeater's A-side faces the tree root.
#: Unassigned insertion points carry no repeater.  (Plain dict alias; the
#: optimizer produces these and the Elmore engine consumes them.)
RepeaterAssignment = Dict[int, "object"]


class RoutingTree:
    """An immutable rooted routing tree.

    Parameters
    ----------
    nodes:
        Node records; ``nodes[i].index == i`` must hold.
    parent:
        ``parent[i]`` is the parent node index, ``None`` exactly for the root.
    edge_length:
        ``edge_length[i]`` is the wire length (µm) of the edge from ``i`` to
        its parent; must be 0.0 for the root.  Zero-length edges are legal
        (leafification pendants).

    Invariants enforced at construction:

    * exactly one root; parent pointers are acyclic and connect all nodes;
    * terminals are leaves;
    * insertion points have degree exactly two (one child, one parent) and
      are never the root;
    * Steiner nodes are internal (degree >= 2 including the parent edge) —
      a leaf Steiner node would be dangling wire.
    """

    __slots__ = ("_nodes", "_parent", "_edge_length", "_children", "_root")

    def __init__(
        self,
        nodes: Sequence[Node],
        parent: Sequence[Optional[int]],
        edge_length: Sequence[float],
    ):
        self._nodes: Tuple[Node, ...] = tuple(nodes)
        self._parent: Tuple[Optional[int], ...] = tuple(parent)
        self._edge_length: Tuple[float, ...] = tuple(edge_length)
        n = len(self._nodes)
        if not (len(self._parent) == len(self._edge_length) == n):
            raise ValueError("nodes/parent/edge_length length mismatch")
        if n == 0:
            raise ValueError("routing tree may not be empty")
        for i, node in enumerate(self._nodes):
            if node.index != i:
                raise ValueError(f"node at position {i} has index {node.index}")

        roots = [i for i, p in enumerate(self._parent) if p is None]
        if len(roots) != 1:
            raise ValueError(f"expected exactly one root, found {roots}")
        self._root = roots[0]
        if self._edge_length[self._root] != 0.0:  # repro: noqa[R001] root edge length is constructed as literal 0.0
            raise ValueError("root must have zero edge length")

        children: List[List[int]] = [[] for _ in range(n)]
        for i, p in enumerate(self._parent):
            if p is None:
                continue
            if not (0 <= p < n) or p == i:
                raise ValueError(f"node {i}: invalid parent {p}")
            if self._edge_length[i] < 0.0:
                raise ValueError(f"node {i}: negative edge length")
            children[p].append(i)
        self._children: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(c) for c in children
        )

        self._check_connected()
        self._check_kinds()

    # -- invariant checks ----------------------------------------------------

    def _check_connected(self) -> None:
        seen = [False] * len(self._nodes)
        stack = [self._root]
        seen[self._root] = True
        count = 1
        while stack:
            v = stack.pop()
            for u in self._children[v]:
                if seen[u]:
                    raise ValueError("cycle detected in parent pointers")
                seen[u] = True
                count += 1
                stack.append(u)
        if count != len(self._nodes):
            orphans = [i for i, s in enumerate(seen) if not s]
            raise ValueError(f"tree not connected; unreachable nodes {orphans}")

    def _check_kinds(self) -> None:
        for node in self._nodes:
            i = node.index
            degree = len(self._children[i]) + (0 if i == self._root else 1)
            if node.kind is NodeKind.TERMINAL:
                if i == self._root:
                    if len(self._children[i]) != 1:
                        raise ValueError(
                            f"root terminal {i} ({node.name}) must have exactly "
                            f"one child, found {len(self._children[i])}"
                        )
                elif self._children[i]:
                    raise ValueError(
                        f"terminal node {i} ({node.name}) must be a leaf; "
                        "leafify non-leaf terminals with a zero-length pendant"
                    )
            if node.kind is NodeKind.INSERTION:
                if i == self._root or degree != 2:
                    raise ValueError(
                        f"insertion point {i} must have degree two and not be "
                        f"the root (paper footnote 6); degree={degree}"
                    )
            if node.kind is NodeKind.STEINER and degree < 2:
                raise ValueError(f"steiner node {i} is dangling (degree {degree})")

    # -- basic accessors -------------------------------------------------------

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self._nodes

    @property
    def root(self) -> int:
        return self._root

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, i: int) -> Node:
        return self._nodes[i]

    def parent(self, i: int) -> Optional[int]:
        """Parent index of ``i`` (None for the root)."""
        return self._parent[i]

    def children(self, i: int) -> Tuple[int, ...]:
        return self._children[i]

    def edge_length(self, i: int) -> float:
        """Length (µm) of the wire from ``i`` up to its parent."""
        return self._edge_length[i]

    def neighbors(self, i: int) -> List[int]:
        """All adjacent node indices (parent plus children)."""
        out = list(self._children[i])
        p = self._parent[i]
        if p is not None:
            out.append(p)
        return out

    def degree(self, i: int) -> int:
        return len(self.neighbors(i))

    def is_leaf(self, i: int) -> bool:
        return not self._children[i]

    # -- derived collections ---------------------------------------------------

    def terminal_indices(self) -> List[int]:
        """Indices of terminal nodes, in index order."""
        return [n.index for n in self._nodes if n.kind is NodeKind.TERMINAL]

    def terminals(self) -> List[Terminal]:
        """The terminal payloads, in node-index order."""
        return [n.terminal for n in self._nodes if n.terminal is not None]

    def insertion_indices(self) -> List[int]:
        """Indices of candidate repeater insertion points."""
        return [n.index for n in self._nodes if n.kind is NodeKind.INSERTION]

    def steiner_indices(self) -> List[int]:
        return [n.index for n in self._nodes if n.kind is NodeKind.STEINER]

    def terminal_by_name(self, name: str) -> int:
        """Node index of the terminal with the given name."""
        for n in self._nodes:
            if n.terminal is not None and n.terminal.name == name:
                return n.index
        raise KeyError(name)

    # -- traversal ---------------------------------------------------------------

    def dfs_preorder(self) -> Iterator[int]:
        """Root-first traversal."""
        stack = [self._root]
        while stack:
            v = stack.pop()
            yield v
            stack.extend(reversed(self._children[v]))

    def dfs_postorder(self) -> Iterator[int]:
        """Children-before-parent traversal (the DP's processing order)."""
        order = list(self.dfs_preorder())
        return iter(reversed(order))

    def path_between(self, a: int, b: int) -> List[int]:
        """Node indices along the unique tree path from ``a`` to ``b``."""
        ancestors_a = []
        v: Optional[int] = a
        while v is not None:
            ancestors_a.append(v)
            v = self._parent[v]
        index_in_a = {node: k for k, node in enumerate(ancestors_a)}
        ancestors_b = []
        v = b
        while v is not None and v not in index_in_a:
            ancestors_b.append(v)
            v = self._parent[v]
        if v is None:
            raise RuntimeError("nodes in one tree always share an ancestor")
        return ancestors_a[: index_in_a[v] + 1] + list(reversed(ancestors_b))

    def depth(self, i: int) -> int:
        """Number of edges from ``i`` up to the root."""
        d = 0
        v = self._parent[i]
        while v is not None:
            d += 1
            v = self._parent[v]
        return d

    # -- metrics ---------------------------------------------------------------

    def total_wire_length(self) -> float:
        """Sum of all edge lengths (µm)."""
        return sum(self._edge_length)

    def max_edge_length(self) -> float:
        return max(self._edge_length)

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` over all node positions."""
        xs = [n.x for n in self._nodes]
        ys = [n.y for n in self._nodes]
        return (min(xs), min(ys), max(xs), max(ys))

    # -- restructuring -----------------------------------------------------------

    def rerooted(self, new_root: int) -> "RoutingTree":
        """The same tree re-oriented so ``new_root`` becomes the root.

        The paper re-orients topologies with respect to an arbitrary root
        vertex (Sec. III); both the ARD algorithm and the DP accept any
        rooting, and tests use this to confirm root-independence.
        """
        if not (0 <= new_root < len(self._nodes)):
            raise ValueError(f"invalid root {new_root}")
        n = len(self._nodes)
        parent: List[Optional[int]] = [None] * n
        length = [0.0] * n
        # walk from new_root flipping edges along the old root path
        visited = [False] * n
        stack = [(new_root, None, 0.0)]
        while stack:
            v, par, plen = stack.pop()
            visited[v] = True
            parent[v] = par
            length[v] = plen
            for u in self.neighbors(v):
                if not visited[u]:
                    if self._parent[u] == v:
                        elen = self._edge_length[u]
                    else:
                        elen = self._edge_length[v]
                    stack.append((u, v, elen))
        return RoutingTree(self._nodes, parent, length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoutingTree(n={len(self)}, terminals="
            f"{len(self.terminal_indices())}, insertion="
            f"{len(self.insertion_indices())}, wl={self.total_wire_length():.0f}um)"
        )
