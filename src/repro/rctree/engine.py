"""The unified timing-engine surface: ``TimingEngine`` and ``EvalContext``.

The repository grew four ways to ask "what is the ARD of this tree?" —
:func:`repro.core.ard.ard`, :class:`~repro.rctree.elmore.ElmoreAnalyzer`,
:class:`~repro.rctree.slew.SlewAnalyzer` and
:func:`repro.sim.propagation.simulated_ard` — each with its own calling
convention.  This module defines the one surface they all share:

* :class:`EvalContext` — the evaluation knobs (repeater assignment, wire
  widths, companion-capacitance model) as a single frozen value object,
  replacing the scattered positional/keyword arguments;
* :class:`TimingEngine` — a :class:`typing.Protocol` with ``evaluate()``
  returning an :class:`ARDResult` and ``path_delay(u, v)``, so consumers
  (baselines, analysis, reporting) can take *an engine* instead of
  hard-coding one implementation;
* :class:`EditableEngine` — the protocol of *persistent* engines that also
  accept in-place edits (``set_assignment`` / ``set_terminal`` /
  ``set_wire_width`` / ``set_wire_scale`` / ``reroot``), the surface the
  session server (``repro.serve``) dispatches against;
* :class:`ARDResult` / :class:`SubtreeTiming` — the result types, moved
  here from ``repro.core.ard`` (which re-exports them) so every engine can
  return them without importing the optimizer core.

Engines implementing ``TimingEngine``: ``ElmoreAnalyzer`` (full Fig. 2
pass), ``SlewAnalyzer`` (slew-aware pair enumeration), ``IncrementalARD``
(persistent, edit-friendly Fig. 2 records), ``FlatARDEngine`` (array
kernel) and ``SimulationEngine`` (event-driven cross-check).
``IncrementalARD`` and ``FlatARDEngine`` additionally implement
``EditableEngine``.

As of v2.0 the engines take their knobs exclusively as one keyword-only
``context=EvalContext(...)``; the pre-context per-knob shims
(``ard(tree, tech, assignment)`` and friends) were removed and now raise
:class:`TypeError` — see docs/API.md for the migration table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

try:  # pragma: no cover - Protocol is typing_extensions-free on >=3.8
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        return cls


__all__ = [
    "ARDResult",
    "SubtreeTiming",
    "EvalContext",
    "TimingEngine",
    "EditableEngine",
]


@dataclass(frozen=True)
class SubtreeTiming:
    """Per-subtree quantities of the Fig. 2 recursion, with arg-max tracking.

    ``arrival``/``required``/``diameter`` are ``-inf`` when the subtree holds
    no source / no sink / no source-sink pair respectively; the companion
    index fields are ``None`` in those cases.
    """

    arrival: float
    arrival_source: Optional[int]
    required: float
    required_sink: Optional[int]
    diameter: float
    diameter_pair: Optional[Tuple[int, int]]


@dataclass(frozen=True)
class ARDResult:
    """Outcome of an ARD computation.

    ``value`` is ``-inf`` for nets with no source/sink pair.  ``source`` and
    ``sink`` are the node indices of the critical pair achieving the ARD.
    ``timing`` exposes the per-subtree table for diagnostics and tests; only
    the full :func:`repro.core.ard.compute_ard` pass populates it — engines
    that never materialize per-node scalars (``IncrementalARD``,
    ``SlewAnalyzer``, ``SimulationEngine``) return it empty.
    """

    value: float
    source: Optional[int]
    sink: Optional[int]
    timing: Dict[int, SubtreeTiming]

    @property
    def is_finite(self) -> bool:
        return math.isfinite(self.value)


@dataclass(frozen=True)
class EvalContext:
    """Everything that parameterizes one timing evaluation of a tree.

    Construct with keyword arguments only.  The three fields were previously
    scattered positional/keyword knobs on ``ard()``, ``ElmoreAnalyzer`` and
    ``insert_repeaters``:

    ``assignment``
        Insertion-node index → oriented :class:`~repro.tech.buffers.Repeater`
        (A-side facing the root).  Missing indices carry no repeater.
    ``wire_widths``
        Edge index (the child node of the edge) → width factor ``w``; a
        ``w``-wide wire has resistance ``R/w`` and capacitance ``w·C``.
        Missing edges default to 1.
    ``include_companion_cap``
        When True, a repeater's crossing delay also drives the anti-parallel
        companion buffer's input capacitance (sensitivity-study model).
    """

    assignment: Optional[Mapping[int, object]] = field(default=None, kw_only=True)
    wire_widths: Optional[Mapping[int, float]] = field(default=None, kw_only=True)
    include_companion_cap: bool = field(default=False, kw_only=True)


@runtime_checkable
class TimingEngine(Protocol):
    """What every timing engine offers consumers.

    ``evaluate(tree=None)`` returns the engine's ARD as an
    :class:`ARDResult`; engines are bound to one tree at construction, so
    ``tree`` is accepted only as a consistency check (pass the engine's own
    tree or ``None``).  ``path_delay(u, v)`` is the engine's notion of
    ``PD(u, v)`` between two terminals, driver delay included.
    """

    def evaluate(self, tree: object = None) -> ARDResult:
        """The ARD of the engine's tree under its current context."""
        ...  # pragma: no cover - protocol

    def path_delay(self, src: int, dst: int) -> float:
        """Source-to-sink delay ``PD(src, dst)`` in ps."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class EditableEngine(TimingEngine, Protocol):
    """A persistent :class:`TimingEngine` that accepts in-place edits.

    This is the shared edit surface of :class:`~repro.rctree.incremental.
    IncrementalARD` and :class:`~repro.rctree.flat.FlatARDEngine`, and the
    contract the session server (``repro.serve``) dispatches client edit
    streams against.  Every mutation invalidates the cached result; the
    next :meth:`TimingEngine.evaluate` reflects the edit.  Edits validate
    eagerly — a rejected edit raises (``ValueError`` / ``TypeError``)
    *before* mutating engine state, except where an implementation
    documents otherwise.

    The positional parameter names below are part of the contract: lint
    rule R010 (docs/STATIC_ANALYSIS.md) flags implementations whose
    signatures drift from this protocol.
    """

    def set_assignment(self, node: int, repeater: object) -> None:
        """Place (or with ``None`` remove) a repeater at an insertion node."""
        ...  # pragma: no cover - protocol

    def set_terminal(self, node: int, terminal: object) -> None:
        """Override the terminal payload of a terminal node."""
        ...  # pragma: no cover - protocol

    def set_wire_width(self, edge: int, width: object) -> None:
        """Set (or with ``None`` clear) the width factor of one edge."""
        ...  # pragma: no cover - protocol

    def set_wire_scale(
        self, *, resistance_factor: float = 1.0, capacitance_factor: float = 1.0
    ) -> None:
        """Set (absolutely, not cumulatively) global wire variation scalars."""
        ...  # pragma: no cover - protocol

    def reroot(self, node: int) -> None:
        """Re-orient the engine's tree at ``node``."""
        ...  # pragma: no cover - protocol


def check_engine_tree(engine_tree: object, tree: object) -> None:
    """Raise if ``tree`` names a different tree than the engine is bound to.

    Shared by every :class:`TimingEngine` implementation's ``evaluate``.
    """
    if tree is not None and tree is not engine_tree:
        raise ValueError(
            "this engine is bound to its construction tree; build a new "
            "engine to evaluate a different tree"
        )
