"""Mutable construction of :class:`~repro.rctree.topology.RoutingTree`.

The builder accepts an arbitrary undirected tree over terminals, Steiner
points, and insertion points, then :meth:`TreeBuilder.build` performs the
paper's normalizations:

* **leafification** (Sec. III): any terminal with degree > 1 is split into a
  pure connection vertex plus a zero-length pendant edge to the terminal;
* **re-orientation**: the tree is rooted at a chosen terminal (the MSRI
  algorithm roots at "an arbitrary terminal", Sec. IV);
* wire lengths default to rectilinear (Manhattan) distance between the
  endpoints, the natural metric for the paper's rectilinear Steiner trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..tech.terminals import Terminal
from .topology import Node, NodeKind, RoutingTree

__all__ = ["TreeBuilder", "manhattan"]


def manhattan(ax: float, ay: float, bx: float, by: float) -> float:
    """Rectilinear distance between two points."""
    return abs(ax - bx) + abs(ay - by)


@dataclass
class _ProtoNode:
    x: float
    y: float
    kind: NodeKind
    terminal: Optional[Terminal] = None


class TreeBuilder:
    """Incrementally assemble a routing tree, then normalize and validate.

    Example
    -------
    >>> from repro.tech import Terminal
    >>> b = TreeBuilder()
    >>> a = b.add_terminal(Terminal("a", 0, 0, resistance=100, capacitance=0.05))
    >>> c = b.add_terminal(Terminal("c", 800, 0, resistance=100, capacitance=0.05))
    >>> m = b.add_insertion_point(400, 0)
    >>> b.connect(a, m)
    >>> b.connect(m, c)
    >>> tree = b.build(root=a)
    """

    def __init__(self) -> None:
        self._nodes: List[_ProtoNode] = []
        self._edges: List[Tuple[int, int, Optional[float]]] = []

    # -- node creation -----------------------------------------------------

    def add_terminal(self, terminal: Terminal) -> int:
        """Add a terminal at its own position; returns the handle."""
        self._nodes.append(
            _ProtoNode(terminal.x, terminal.y, NodeKind.TERMINAL, terminal)
        )
        return len(self._nodes) - 1

    def add_steiner(self, x: float, y: float) -> int:
        """Add a Steiner (branch) point."""
        self._nodes.append(_ProtoNode(x, y, NodeKind.STEINER))
        return len(self._nodes) - 1

    def add_insertion_point(self, x: float, y: float) -> int:
        """Add a candidate repeater insertion point (must end up degree two)."""
        self._nodes.append(_ProtoNode(x, y, NodeKind.INSERTION))
        return len(self._nodes) - 1

    # -- edges --------------------------------------------------------------

    def connect(self, a: int, b: int, length: Optional[float] = None) -> None:
        """Join two handles with a wire.

        ``length`` defaults to the Manhattan distance between the endpoints;
        pass an explicit value when the detailed route detours.
        """
        if a == b:
            raise ValueError("self-loop")
        for h in (a, b):
            if not (0 <= h < len(self._nodes)):
                raise ValueError(f"unknown node handle {h}")
        if length is not None and length < 0.0:
            raise ValueError(f"negative wire length {length}")
        self._edges.append((a, b, length))

    # -- finalization --------------------------------------------------------

    def build(self, root: int) -> RoutingTree:
        """Normalize (leafify), root at ``root``, and validate.

        ``root`` must be a terminal handle — the conventions of both the ARD
        algorithm and the DP in this library assume a terminal root.
        """
        if not (0 <= root < len(self._nodes)):
            raise ValueError(f"unknown root handle {root}")
        if self._nodes[root].kind is not NodeKind.TERMINAL:
            raise ValueError("root must be a terminal")

        nodes = list(self._nodes)
        edges = list(self._edges)

        # adjacency for degree counting
        degree = [0] * len(nodes)
        for a, b, _ in edges:
            degree[a] += 1
            degree[b] += 1

        # leafification: split terminals of degree > 1 (root included when
        # its degree exceeds one — the root terminal keeps exactly one child)
        remap: Dict[int, int] = {}
        for i, proto in enumerate(list(nodes)):
            if proto.kind is NodeKind.TERMINAL and degree[i] > 1:
                nodes[i] = _ProtoNode(proto.x, proto.y, NodeKind.STEINER)
                nodes.append(
                    _ProtoNode(proto.x, proto.y, NodeKind.TERMINAL, proto.terminal)
                )
                pendant = len(nodes) - 1
                edges.append((i, pendant, 0.0))
                remap[i] = pendant

        if root in remap:
            root = remap[root]

        if len(edges) != len(nodes) - 1:
            raise ValueError(
                f"a tree over {len(nodes)} nodes needs exactly {len(nodes) - 1} "
                f"edges, got {len(edges)} (cycle or disconnection)"
            )

        # resolve default lengths and build adjacency
        adjacency: List[List[Tuple[int, float]]] = [[] for _ in nodes]
        for a, b, length in edges:
            if length is None:
                length = manhattan(nodes[a].x, nodes[a].y, nodes[b].x, nodes[b].y)
            adjacency[a].append((b, length))
            adjacency[b].append((a, length))

        # orient by BFS from the root
        n = len(nodes)
        parent: List[Optional[int]] = [None] * n
        elen = [0.0] * n
        seen = [False] * n
        seen[root] = True
        queue = [root]
        while queue:
            v = queue.pop()
            for u, length in adjacency[v]:
                if not seen[u]:
                    seen[u] = True
                    parent[u] = v
                    elen[u] = length
                    queue.append(u)
        if not all(seen):
            missing = [i for i, s in enumerate(seen) if not s]
            raise ValueError(f"graph is not connected; unreachable: {missing}")

        final_nodes = [
            Node(i, p.x, p.y, p.kind, p.terminal) for i, p in enumerate(nodes)
        ]
        return RoutingTree(final_nodes, parent, elen)
