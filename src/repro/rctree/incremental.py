"""Incremental ARD: persistent Fig. 2 records with dirty-path invalidation.

The paper's Fig. 2 algorithm computes the augmented RC-diameter in one
linear pass, but every optimization loop in this repository re-runs that
pass from scratch per candidate edit — O(n) per probe, O(n²) outer loops.
This module makes the pass *persistent and editable*.

The obstacle is that the scalar per-subtree quantities (arrival ``a(v)``,
diameter ``z(v)``) are **not** functions of the subtree alone: a source
inside ``T_v`` drives the whole net, so its Elmore terms include the
capacitance *outside* the subtree, and a single edit anywhere invalidates
scalar caches tree-wide.  The fix is to store each subtree's candidates as
**linear functions of the external load** ``t_v`` (the Eq. 2 quantity —
everything above ``v``'s parent edge, the wire itself excluded):

* ``ups``    — arrival candidates ``(base, slope, source)`` with value
  ``base + slope · t_v`` measured on the parent side of ``v``;
* ``req``    — the required time ``d(v)``, a genuine subtree-local scalar;
* ``diams``  — diameter candidates ``(base, slope, (source, sink))``: an
  internal pair's up-leg still sees the external load, so ``z(v)`` is
  linear in ``t_v`` too (slope 0 once a repeater decouples the path);
* ``down``   — the Eq. 1 subtree load.

So defined, a record is a pure function of subtree-local state (its own
wire, terminal, repeater, and children's records), which makes dirty
tracking exact: an edit at ``v`` invalidates the records on the root path
of ``v`` and nothing else.  Re-propagation costs O(depth · branching ·
front) per edit, and batched edits coalesce shared path prefixes because a
node re-propagates at most once per :meth:`IncrementalARD.evaluate`.

Candidate fronts stay small through upper-envelope (Pareto) pruning on the
domain ``t ≥ 0``: a candidate whose base *and* slope are both dominated can
never win the max.  In practice deeper sources dominate shallower ones on
the same path, collapsing the front to a handful of entries.

:func:`repro.core.ard.compute_ard` runs this same record algebra for its
full pass (evaluating the records at the analyzer's Eq. 2 loads to fill
the legacy per-node timing table), so the full and incremental paths share
one implementation and agree **bit-identically** — the REPRO_CHECK contract
(:func:`repro.check.contracts.verify_incremental_consistency`) asserts
exactly that after every incremental evaluation.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..check import contracts
from ..obs import core as obs
from ..tech.buffers import Repeater
from ..tech.parameters import Technology
from ..tech.terminals import NEVER, Terminal
from .engine import (
    ARDResult,
    EvalContext,
    SubtreeTiming,
    check_engine_tree,
)
from .topology import NodeKind, RoutingTree

__all__ = [
    "IncrementalARD",
    "EvalState",
    "SubtreeRecord",
    "build_records",
    "record_for",
    "finish_root",
    "timing_from_record",
]


# Observability metrics (naming contract: docs/OBSERVABILITY.md) — these
# quantify the module's central claim: evaluate() touches only dirty root
# paths, not the tree.  All are free while REPRO_OBS is off.
_OBS_CACHE_HITS = obs.Counter("incremental.cache_hits")
_OBS_CACHE_MISSES = obs.Counter("incremental.cache_misses")
_OBS_DIRTY_SEEDS = obs.Counter("incremental.refresh.dirty_seeds")
_OBS_REBUILT = obs.Counter("incremental.refresh.records_rebuilt")
_OBS_UNCHANGED = obs.Counter("incremental.refresh.records_unchanged")
_OBS_FULL_REBUILDS = obs.Counter("incremental.full_rebuilds")
_OBS_PATH_LENGTH = obs.Histogram("incremental.refresh.path_length")

#: Arrival candidate ``(base, slope, source)``: value ``base + slope · t``.
UpCandidate = Tuple[float, float, int]
#: Diameter candidate ``(base, slope, (source, sink))``.
DiamCandidate = Tuple[float, float, Tuple[int, int]]


class SubtreeRecord(NamedTuple):
    """The Fig. 2 state of one subtree as linear functions of its external load."""

    down: float                            # Eq. 1 load seen from the parent
    ups: Tuple[UpCandidate, ...]           # arrival candidates at v (parent side)
    req: float                             # d(v); NEVER when the subtree has no sink
    req_sink: Optional[int]
    diams: Tuple[DiamCandidate, ...]       # internal-pair candidates


class EvalState(object):
    """Mutable evaluation state: one tree + technology + editable knobs.

    Owns the per-edge wire resistance/capacitance arrays (width factors and
    the global variation scalars applied), the repeater assignment, and the
    terminal overrides.  Both the full pass (:func:`build_records` via
    ``compute_ard``) and :class:`IncrementalARD` compute records from this
    state with identical arithmetic, which is what makes them bit-identical.
    """

    __slots__ = (
        "tree",
        "tech",
        "assignment",
        "companion",
        "widths",
        "terminal_overrides",
        "res_scale",
        "cap_scale",
        "wire_cap",
        "wire_res",
    )

    def __init__(
        self,
        tree: RoutingTree,
        tech: Technology,
        context: Optional[EvalContext] = None,
    ):
        context = context if context is not None else EvalContext()
        self.tree = tree
        self.tech = tech
        self.companion = bool(context.include_companion_cap)
        self.terminal_overrides: Dict[int, Terminal] = {}
        self.res_scale = 1.0
        self.cap_scale = 1.0

        self.assignment: Dict[int, Repeater] = {}
        for idx, rep in dict(context.assignment or {}).items():
            self.set_repeater(idx, rep)

        self.widths: Dict[int, float] = {}
        self.wire_cap: List[float] = [0.0] * len(tree)
        self.wire_res: List[float] = [0.0] * len(tree)
        for idx, w in dict(context.wire_widths or {}).items():
            self._check_edge(idx)
            if w <= 0.0:
                raise ValueError(f"wire width factor must be positive, got {w}")
            self.widths[idx] = float(w)
        for i in range(len(tree)):
            self.refresh_edge(i)

    # -- mutation primitives (validated; no dirty tracking here) ---------------

    def set_repeater(self, idx: int, rep: Optional[Repeater]) -> None:
        if rep is None:
            self.assignment.pop(idx, None)
            return
        if not (0 <= idx < len(self.tree)):
            raise ValueError(f"assignment names unknown node {idx}")
        node = self.tree.node(idx)
        if node.kind is not NodeKind.INSERTION:
            raise ValueError(
                f"repeater assigned to node {idx} which is a "
                f"{node.kind.value}, not an insertion point"
            )
        if not isinstance(rep, Repeater):
            raise TypeError(f"assignment[{idx}] is not a Repeater: {rep!r}")
        self.assignment[idx] = rep

    def set_width(self, edge: int, width: Optional[float]) -> None:
        self._check_edge(edge)
        if width is None:
            self.widths.pop(edge, None)
        else:
            if width <= 0.0:
                raise ValueError(f"wire width factor must be positive, got {width}")
            self.widths[edge] = float(width)
        self.refresh_edge(edge)

    def set_terminal_override(self, idx: int, terminal: Terminal) -> None:
        if not (0 <= idx < len(self.tree)):
            raise ValueError(f"unknown node {idx}")
        if self.tree.node(idx).kind is not NodeKind.TERMINAL:
            raise ValueError(f"node {idx} is not a terminal")
        if not isinstance(terminal, Terminal):
            raise TypeError(f"terminal override for node {idx} is {terminal!r}")
        self.terminal_overrides[idx] = terminal

    def set_scales(self, res_scale: float, cap_scale: float) -> None:
        if res_scale <= 0.0 or cap_scale <= 0.0:
            raise ValueError("wire variation scalars must be positive")
        self.res_scale = float(res_scale)
        self.cap_scale = float(cap_scale)
        for i in range(len(self.tree)):
            self.refresh_edge(i)

    def refresh_edge(self, i: int) -> None:
        # multiplying by a unit width/scale is IEEE-exact, so the arrays are
        # bitwise identical to ElmoreAnalyzer's when no knob is active
        length = self.tree.edge_length(i)
        w = self.widths.get(i, 1.0)
        self.wire_cap[i] = self.tech.wire_capacitance(length) * w * self.cap_scale
        self.wire_res[i] = self.tech.wire_resistance(length) / w * self.res_scale

    def _check_edge(self, idx: int) -> None:
        if not (0 <= idx < len(self.tree)) or self.tree.parent(idx) is None:
            raise ValueError(f"wire edge {idx} does not name an edge")

    # -- queries ----------------------------------------------------------------

    def terminal(self, idx: int) -> Terminal:
        override = self.terminal_overrides.get(idx)
        if override is not None:
            return override
        term = self.tree.node(idx).terminal
        if term is None:
            raise ValueError(f"node {idx} is not a terminal")
        return term

    def own_cap(self, idx: int) -> float:
        node = self.tree.node(idx)
        if node.terminal is None:
            return 0.0
        return self.terminal(idx).capacitance


# -- the shared combine step ---------------------------------------------------


def record_for(
    state: EvalState, v: int, records: List[Optional[SubtreeRecord]]
) -> SubtreeRecord:
    """The record of node ``v`` from its children's records — the one DFS
    combine step shared by the full and incremental passes."""
    tree = state.tree
    if tree.node(v).kind is NodeKind.TERMINAL:
        return _leaf_record(state, v)
    return _internal_record(state, v, records)


def _leaf_record(state: EvalState, v: int) -> SubtreeRecord:
    term = state.terminal(v)
    ups: Tuple[UpCandidate, ...] = ()
    if term.is_source:
        # driver load = own cap + parent wire + external load t_v
        base = term.arrival_time + term.driver_delay(
            term.capacitance + state.wire_cap[v]
        )
        ups = ((base, term.resistance, v),)
    if term.is_sink:
        req, req_sink = term.downstream_delay, v
    else:
        req, req_sink = NEVER, None
    return SubtreeRecord(term.capacitance, ups, req, req_sink, ())


def _internal_record(
    state: EvalState, v: int, records: List[Optional[SubtreeRecord]]
) -> SubtreeRecord:
    tree = state.tree
    children = tree.children(v)
    wire_cap = state.wire_cap
    wire_res = state.wire_res
    rep = state.assignment.get(v)

    child_load = [wire_cap[u] + records[u].down for u in children]
    if rep is not None:
        down = rep.c_a
    else:
        down = sum(child_load)

    # per-child downward delay (scalar): wire into the child + its required
    downs: List[Tuple[float, int, int]] = []
    for k, u in enumerate(children):
        rec = records[u]
        if rec.req != NEVER:
            downs.append(
                (
                    wire_res[u] * (0.5 * wire_cap[u] + rec.down) + rec.req,
                    rec.req_sink,
                    u,
                )
            )

    if rep is not None:
        return _repeater_record(state, v, children[0], records[children[0]], downs, rep)

    # external load of child u:  t_u = side_u + t_v
    ups: List[UpCandidate] = []
    diams: List[DiamCandidate] = []
    lifted_per_child: List[Tuple[int, List[UpCandidate]]] = []
    total_side = sum(child_load)
    for k, u in enumerate(children):
        rec = records[u]
        side = wire_cap[v] + (total_side - child_load[k])
        # recompute the sibling sum exactly (no subtraction tricks) so the
        # incremental path reproduces the full pass bit for bit
        side = wire_cap[v] + sum(
            child_load[j] for j in range(len(children)) if j != k
        )
        lifted: List[UpCandidate] = []
        for base, slope, source in rec.ups:
            lifted.append(
                (
                    base
                    + slope * side
                    + wire_res[u] * (0.5 * wire_cap[u] + side),
                    slope + wire_res[u],
                    source,
                )
            )
        lifted_per_child.append((u, lifted))
        ups.extend(lifted)
        for base, slope, pair in rec.diams:
            diams.append((base + slope * side, slope, pair))

    # cross-child pairs: every lifted up candidate + the best down of a
    # *different* child (top-two downs give the distinct-child fallback)
    best_down, second_down = _top_two(downs)
    for u, lifted in lifted_per_child:
        for base, slope, source in lifted:
            chosen = best_down
            if chosen is not None and chosen[2] == u:
                chosen = second_down
            if chosen is None:
                continue
            diams.append((base + chosen[0], slope, (source, chosen[1])))

    req, req_sink = _best_scalar(downs)
    return SubtreeRecord(
        down, _prune(ups), req, req_sink, _prune(diams)
    )


def _repeater_record(
    state: EvalState,
    v: int,
    child: int,
    rec: SubtreeRecord,
    downs: List[Tuple[float, int, int]],
    rep: Repeater,
) -> SubtreeRecord:
    """Record of a repeater node: the repeater decouples, so candidates are
    evaluated at its B-side input cap and re-launched with its own slope."""
    wire_cap = state.wire_cap
    wire_res = state.wire_res

    ups: Tuple[UpCandidate, ...] = ()
    if rec.ups:
        # arrivals below the repeater become scalars at t_child = c_b ...
        best_arrival, best_source = NEVER, None
        for base, slope, source in rec.ups:
            arrival = (
                base
                + slope * rep.c_b
                + wire_res[child] * (0.5 * wire_cap[child] + rep.c_b)
            )
            if arrival > best_arrival:
                best_arrival, best_source = arrival, source
        # ... and relaunch upward (B -> A) against the parent wire + t_v
        up_load = wire_cap[v] + rep.c_a if state.companion else wire_cap[v]
        ups = ((best_arrival + rep.d_ba + rep.r_ba * up_load, rep.r_ba, best_source),)

    req, req_sink = _best_scalar(downs)
    if req != NEVER:
        cross_load = wire_cap[child] + rec.down
        if state.companion:
            cross_load = cross_load + rep.c_b
        req = req + rep.delay(a_to_b=True, load_pf=cross_load)

    # internal pairs are frozen: beyond c_b the external load is invisible
    diams = tuple(
        (base + slope * rep.c_b, 0.0, pair) for base, slope, pair in rec.diams
    )
    return SubtreeRecord(rep.c_a, ups, req, req_sink, _prune(diams))


def _top_two(downs):
    """First-strict top two downward entries (used for distinct-child pairs)."""
    best = second = None
    for entry in downs:
        if best is None or entry[0] > best[0]:
            best, second = entry, best
        elif second is None or entry[0] > second[0]:
            second = entry
    return best, second


def _best_scalar(entries) -> Tuple[float, Optional[int]]:
    value, arg = NEVER, None
    for val, terminal, _child in entries:
        if val > value:
            value, arg = val, terminal
    return value, arg


def _prune(candidates):
    """Upper-envelope (Pareto) filter on the domain ``t >= 0``.

    A candidate is redundant when another has base **and** slope at least as
    large — it can then never exceed the dominator at any non-negative
    external load.  Keep-first on exact ties, so the first-strict arg-max
    over the surviving list is deterministic.
    """
    if len(candidates) <= 1:
        return tuple(candidates)
    if len(candidates) == 2:
        # the general loop specialized to two entries (keep-first on ties)
        a, b = candidates
        if a[0] >= b[0] and a[1] >= b[1]:
            return (a,)
        if b[0] >= a[0] and b[1] >= a[1]:
            return (b,)
        return (a, b)
    kept: List = []
    for cand in candidates:
        dominated = False
        for other in kept:
            if other[0] >= cand[0] and other[1] >= cand[1]:
                dominated = True
                break
        if dominated:
            continue
        kept = [
            other
            for other in kept
            if not (cand[0] >= other[0] and cand[1] >= other[1])
        ]
        kept.append(cand)
    return tuple(kept)


def _eval_at(candidates, external_cap: float):
    """First-strict arg-max of ``base + slope · external_cap``."""
    value, arg = NEVER, None
    for base, slope, tag in candidates:
        cand = base + slope * external_cap
        if cand > value:
            value, arg = cand, tag
    return value, arg


def build_records(state: EvalState) -> List[Optional[SubtreeRecord]]:
    """Records for every non-root node, children before parents."""
    tree = state.tree
    records: List[Optional[SubtreeRecord]] = [None] * len(tree)
    for v in tree.dfs_postorder():
        if v != tree.root:
            records[v] = record_for(state, v, records)
    return records


def finish_root(
    state: EvalState, records: List[Optional[SubtreeRecord]]
) -> Tuple[float, Optional[int], Optional[int]]:
    """Fold the root terminal's own source/sink roles in — ``ARD = z(root)``."""
    tree = state.tree
    root = tree.root
    term = state.terminal(root)
    (child,) = tree.children(root)
    rec = records[child]
    root_cap = term.capacitance
    wire_cap = state.wire_cap[child]
    wire_res = state.wire_res[child]

    # the external load of the root's child is the root's own input cap
    best, pair = _eval_at(rec.diams, root_cap)
    src, snk = pair if pair is not None else (None, None)

    # root as sink: arrivals from inside the child subtree terminate here
    if term.is_sink and rec.ups:
        arrival, arrival_source = _eval_at(rec.ups, root_cap)
        cand = (
            arrival
            + wire_res * (0.5 * wire_cap + root_cap)
            + term.downstream_delay
        )
        if cand > best:
            best, src, snk = cand, arrival_source, root

    # root as source: drive down into the child subtree
    if term.is_source and rec.req != NEVER:
        load = term.capacitance + (wire_cap + rec.down)
        cand = (
            term.arrival_time
            + term.driver_delay(load)
            + wire_res * (0.5 * wire_cap + rec.down)
            + rec.req
        )
        if cand > best:
            best, src, snk = cand, root, rec.req_sink
    return best, src, snk


def timing_from_record(
    record: SubtreeRecord, external_cap: float
) -> SubtreeTiming:
    """The legacy scalar :class:`SubtreeTiming` of one record, evaluated at
    the node's actual Eq. 2 external load (used by the full pass only)."""
    arrival, arrival_source = _eval_at(record.ups, external_cap)
    diameter, diameter_pair = _eval_at(record.diams, external_cap)
    return SubtreeTiming(
        arrival, arrival_source, record.req, record.req_sink, diameter, diameter_pair
    )


# -- the persistent engine -----------------------------------------------------


class IncrementalARD:
    """A persistent :class:`~repro.rctree.engine.TimingEngine` over one tree.

    Construction runs one full record pass (O(n)); afterwards the mutation
    ops — :meth:`set_assignment`, :meth:`set_terminal`,
    :meth:`set_wire_width`, :meth:`set_wire_scale`, :meth:`reroot` — mark
    the minimal dirty set and :meth:`evaluate` re-propagates only the dirty
    root paths (deepest first, so batched edits coalesce shared prefixes
    and a node recomputes at most once).  Re-propagation stops early when a
    recomputed record is unchanged.

    With ``REPRO_CHECK=1`` every evaluation is cross-checked against a
    fresh full pass (:meth:`fresh_result`) for bit-identical value and
    critical pair.

    ``evaluate`` returns an :class:`~repro.rctree.engine.ARDResult` with an
    empty ``timing`` table — the per-node scalar table is a full-pass
    product; use :func:`repro.core.ard.compute_ard` when you need it.
    """

    def __init__(
        self,
        tree: RoutingTree,
        tech: Technology,
        *,
        context: Optional[EvalContext] = None,
    ):
        self._state = EvalState(tree, tech, context)
        self._rebuild()

    # -- engine protocol --------------------------------------------------------

    @property
    def tree(self) -> RoutingTree:
        return self._state.tree

    @property
    def technology(self) -> Technology:
        return self._state.tech

    @property
    def assignment(self) -> Dict[int, Repeater]:
        return dict(self._state.assignment)

    def evaluate(self, tree: Optional[RoutingTree] = None) -> ARDResult:
        """The current ARD, re-propagating only dirty root paths."""
        check_engine_tree(self._state.tree, tree)
        self._refresh()
        if self._result is None:
            if obs.enabled():
                _OBS_CACHE_MISSES.add()
            value, src, snk = finish_root(self._state, self._records)
            self._result = ARDResult(value, src, snk, {})
            if contracts.contracts_enabled():
                contracts.verify_incremental_consistency(self._result, self)
        elif obs.enabled():
            _OBS_CACHE_HITS.add()
        return self._result

    def path_delay(self, src: int, dst: int) -> float:
        """``PD(src, dst)`` under the engine's current state (Def. 2.1)."""
        self._refresh()
        tree = self._state.tree
        if tree.node(src).terminal is None or tree.node(dst).terminal is None:
            raise ValueError("path_delay endpoints must be terminals")
        if src == dst:
            raise ValueError("source and sink must differ")
        src_t = self._state.terminal(src)
        if not src_t.is_source:
            raise ValueError(f"terminal {src_t.name} cannot drive")

        path = tree.path_between(src, dst)
        total = src_t.driver_delay(
            src_t.capacitance + self._cap_into(src, path[1])
        )
        for k in range(1, len(path)):
            a, b = path[k - 1], path[k]
            total += self._wire_delay(a, b)
            if k < len(path) - 1 and b in self._state.assignment:
                total += self._crossing_delay(b, a, path[k + 1])
        return total

    # -- mutation ops -----------------------------------------------------------

    def set_assignment(self, node: int, repeater: Optional[Repeater]) -> None:
        """Place (or with ``None`` remove) a repeater at an insertion node."""
        self._state.set_repeater(node, repeater)
        self._mark(node)

    def set_terminal(self, node: int, terminal: Terminal) -> None:
        """Override the terminal payload of a terminal node."""
        self._state.set_terminal_override(node, terminal)
        if node != self._state.tree.root:
            self._mark(node)
        else:
            self._result = None  # the root finish reads the terminal directly

    def set_wire_width(self, edge: int, width) -> None:
        """Set the width factor of one edge (named by its child node).

        ``width`` is a positive factor, an object with a ``width`` attribute
        (e.g. :class:`~repro.tech.buffers.WireClass`), or ``None`` to restore
        unit width.
        """
        factor = getattr(width, "width", width)
        self._state.set_width(edge, factor)
        # the edge's own record carries its wire in every driver-load term,
        # and the parent's combine reads the edge arrays directly
        self._mark(edge)
        parent = self._state.tree.parent(edge)
        if parent is not None:
            self._mark(parent)

    def set_wire_scale(
        self, *, resistance_factor: float = 1.0, capacitance_factor: float = 1.0
    ) -> None:
        """Set (absolutely, not cumulatively) global wire variation scalars.

        Models die-to-die process variation of the wire constants without
        rebuilding tree or engine; every record is invalidated, so the next
        :meth:`evaluate` is a full O(n) pass — the win over rebuilding is
        skipping tree validation and engine construction.
        """
        self._state.set_scales(resistance_factor, capacitance_factor)
        tree = self._state.tree
        for v in range(len(tree)):
            if v != tree.root:
                self._mark(v)

    def reroot(self, node: int) -> None:
        """Re-orient the tree at ``node`` (terminal or branch point).

        Changes every parent relation, so this is a full O(n) rebuild; edge
        width overrides are remapped to the re-oriented edge carriers.
        """
        old = self._state.tree
        new_tree = old.rerooted(node)
        remapped: Dict[int, float] = {}
        for idx, w in self._state.widths.items():
            parent = old.parent(idx)
            if new_tree.parent(idx) == parent:
                remapped[idx] = w
            else:  # the edge flipped: its carrier is now the old parent
                remapped[parent] = w
        self._state.tree = new_tree
        self._state.widths = remapped
        self._rebuild()

    # -- verification hooks -----------------------------------------------------

    def fresh_result(self) -> ARDResult:
        """A from-scratch full record pass over the current state.

        The REPRO_CHECK contract compares every incremental evaluation
        against this; since the full pass shares :func:`record_for`, any
        disagreement pinpoints a dirty-tracking bug, not float drift.
        """
        records = build_records(self._state)
        value, src, snk = finish_root(self._state, records)
        return ARDResult(value, src, snk, {})

    # -- internals --------------------------------------------------------------

    def _rebuild(self) -> None:
        if obs.enabled():
            _OBS_FULL_REBUILDS.add()
        tree = self._state.tree
        for i in range(len(tree)):
            self._state.refresh_edge(i)
        pos = [0] * len(tree)
        for k, v in enumerate(tree.dfs_postorder()):
            pos[v] = k
        self._pos = pos
        self._records = build_records(self._state)
        self._dirty: set = set()
        self._result: Optional[ARDResult] = None

    def _mark(self, node: int) -> None:
        self._dirty.add(node)
        self._result = None

    def _refresh(self) -> None:
        """Re-propagate dirty records, deepest (postorder-earliest) first."""
        if not self._dirty:
            return
        tree = self._state.tree
        root = tree.root
        heap = [(self._pos[v], v) for v in sorted(self._dirty) if v != root]
        heapq.heapify(heap)
        queued = {v for _, v in heap}
        self._dirty.clear()
        seeds = len(queued)
        rebuilt = unchanged = 0  # plain locals: nothing obs-side in the loop
        while heap:
            _, v = heapq.heappop(heap)
            queued.discard(v)
            record = record_for(self._state, v, self._records)
            if record == self._records[v]:
                unchanged += 1
                continue
            rebuilt += 1
            self._records[v] = record
            parent = tree.parent(v)
            if parent is not None and parent != root and parent not in queued:
                heapq.heappush(heap, (self._pos[parent], parent))
                queued.add(parent)
        if obs.enabled():
            _OBS_DIRTY_SEEDS.add(seeds)
            _OBS_REBUILT.add(rebuilt)
            _OBS_UNCHANGED.add(unchanged)
            _OBS_PATH_LENGTH.observe(rebuilt + unchanged)

    # path-delay plumbing: Elmore views recomputed from the cached records

    def _external_above(self, v: int) -> float:
        """Eq. 2 at ``v``: load above ``v``'s parent edge (wire excluded)."""
        tree = self._state.tree
        chain = []
        x = v
        while True:
            p = tree.parent(x)
            if p is None:
                raise ValueError("the root has no upstream")
            chain.append(x)
            if p in self._state.assignment or p == tree.root:
                break
            x = p
        top = tree.parent(chain[-1])
        rep = self._state.assignment.get(top)
        if rep is not None:
            acc = rep.c_b
        else:
            acc = self._state.own_cap(top)  # top is the root terminal
        for x in reversed(chain[:-1]):
            p = tree.parent(x)
            acc = (
                self._state.wire_cap[p]
                + acc
                + sum(
                    self._state.wire_cap[w] + self._records[w].down
                    for w in tree.children(p)
                    if w != x
                )
            )
        return acc

    def _view_into(self, v: int, entered_from: int) -> float:
        tree = self._state.tree
        if entered_from == tree.parent(v):
            return self._records[v].down
        rep = self._state.assignment.get(v)
        if rep is not None:
            return rep.c_b
        if tree.node(v).kind is NodeKind.TERMINAL:
            return self._state.own_cap(v)  # root terminal seen from its child
        total = 0.0
        if tree.parent(v) is not None:
            total += self._state.wire_cap[v] + self._external_above(v)
        total += sum(
            self._state.wire_cap[u] + self._records[u].down
            for u in tree.children(v)
            if u != entered_from
        )
        return total

    def _edge_index(self, a: int, b: int) -> int:
        tree = self._state.tree
        if tree.parent(b) == a:
            return b
        if tree.parent(a) == b:
            return a
        raise ValueError(f"nodes {a} and {b} are not adjacent")

    def _cap_into(self, frm: int, to: int) -> float:
        e = self._edge_index(frm, to)
        return self._state.wire_cap[e] + self._view_into(to, frm)

    def _wire_delay(self, frm: int, to: int) -> float:
        e = self._edge_index(frm, to)
        return self._state.wire_res[e] * (
            0.5 * self._state.wire_cap[e] + self._view_into(to, frm)
        )

    def _crossing_delay(self, at: int, came_from: int, going_to: int) -> float:
        rep = self._state.assignment[at]
        downward = came_from == self._state.tree.parent(at)
        load = self._cap_into(at, going_to)
        if self._state.companion:
            load += rep.c_b if downward else rep.c_a
        return rep.delay(a_to_b=downward, load_pf=load)
