"""Engine registry: construct any :class:`TimingEngine` by name.

PR 3 unified the engines behind one protocol; this registry adds the last
mile — a *string* spelling usable from CLI flags, config files and
campaign specs.  Consumers (``greedy_insertion``, ``synthesize_topology``,
``monte_carlo_ard``, ``repro-msri ard --engine``) accept an engine name
and resolve it here, so adding a backend is one table entry.

Names
-----
``reference`` / ``elmore``
    :class:`~repro.rctree.elmore.ElmoreAnalyzer` — the full Fig. 2 pass
    with the per-node timing table.
``incremental``
    :class:`~repro.rctree.incremental.IncrementalARD` — persistent records
    with dirty-path re-propagation; fastest for edit-probe loops.
``flat``
    :class:`~repro.rctree.flat.FlatARDEngine` with ``backend="auto"`` —
    the array-flattened kernel; fastest for evaluate-many workloads.
``flat-python`` / ``flat-numpy``
    The flat engine pinned to one compile backend (``flat-numpy`` raises
    without numpy installed).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..tech.parameters import Technology
from .elmore import ElmoreAnalyzer
from .engine import EditableEngine, EvalContext, TimingEngine
from .flat import FlatARDEngine
from .incremental import IncrementalARD
from .topology import RoutingTree

__all__ = [
    "engine_names",
    "editable_engine_names",
    "make_engine",
    "make_editable_engine",
    "resolve_engine_factory",
]


def _make_elmore(tree, tech, context, include_timing):
    # the full Fig. 2 pass always materializes the timing table
    return ElmoreAnalyzer(tree, tech, context=context)


def _make_incremental(tree, tech, context, include_timing):
    if include_timing:
        raise ValueError(
            "engine 'incremental' never materializes per-node timing "
            "tables; use 'flat' or 'reference' for include_timing=True"
        )
    return IncrementalARD(tree, tech, context=context)


def _make_flat(tree, tech, context, include_timing):
    return FlatARDEngine(
        tree, tech, context=context, backend="auto",
        include_timing=include_timing,
    )


def _make_flat_python(tree, tech, context, include_timing):
    return FlatARDEngine(
        tree, tech, context=context, backend="python",
        include_timing=include_timing,
    )


def _make_flat_numpy(tree, tech, context, include_timing):
    return FlatARDEngine(
        tree, tech, context=context, backend="numpy",
        include_timing=include_timing,
    )


_BUILDERS: Dict[str, Callable] = {
    "reference": _make_elmore,
    "elmore": _make_elmore,
    "incremental": _make_incremental,
    "flat": _make_flat,
    "flat-python": _make_flat_python,
    "flat-numpy": _make_flat_numpy,
}

# The class each name constructs — used to classify editability without
# building a throwaway engine.
_CLASSES: Dict[str, type] = {
    "reference": ElmoreAnalyzer,
    "elmore": ElmoreAnalyzer,
    "incremental": IncrementalARD,
    "flat": FlatARDEngine,
    "flat-python": FlatARDEngine,
    "flat-numpy": FlatARDEngine,
}


def engine_names() -> tuple:
    """The registered engine names, sorted (for CLI ``choices=``)."""
    return tuple(sorted(_BUILDERS))


def editable_engine_names() -> tuple:
    """Names whose engines satisfy :class:`EditableEngine` (sorted).

    Classified structurally from the engine class, so a new registry entry
    is picked up without a second table to maintain.
    """
    return tuple(
        name for name in engine_names() if _is_editable(_CLASSES[name])
    )


def _is_editable(cls) -> bool:
    return all(
        callable(getattr(cls, attr, None))
        for attr in (
            "set_assignment",
            "set_terminal",
            "set_wire_width",
            "set_wire_scale",
            "reroot",
        )
    )


def make_engine(
    name: str,
    tree: RoutingTree,
    tech: Technology,
    *,
    context: Optional[EvalContext] = None,
    include_timing: bool = False,
) -> TimingEngine:
    """Construct the named engine over one tree.

    ``include_timing=True`` requests the per-node timing table on every
    ``evaluate()``; engines that never materialize it (``incremental``)
    reject the request eagerly rather than silently returning an empty
    table.  Raises :class:`ValueError` for unknown names (listing the
    registry) — a CLI-friendly failure mode.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: {', '.join(engine_names())}"
        ) from None
    return builder(tree, tech, context, include_timing)


def make_editable_engine(
    name: str,
    tree: RoutingTree,
    tech: Technology,
    *,
    context: Optional[EvalContext] = None,
    include_timing: bool = False,
) -> EditableEngine:
    """Construct the named engine, requiring the :class:`EditableEngine`
    surface (session servers dispatch edits against it).

    Raises :class:`ValueError` both for unknown names and for engines that
    evaluate but cannot be edited in place (e.g. ``reference``), listing
    the editable subset.
    """
    engine = make_engine(
        name, tree, tech, context=context, include_timing=include_timing
    )
    if not isinstance(engine, EditableEngine):
        raise ValueError(
            f"engine {name!r} is not editable; "
            f"editable engines: {', '.join(editable_engine_names())}"
        )
    return engine


def resolve_engine_factory(
    name: str, tech: Technology, *, context: Optional[EvalContext] = None
) -> Callable[[RoutingTree], TimingEngine]:
    """A per-tree engine factory for consumers that evaluate many trees
    (e.g. ``synthesize_topology``), with the name validated eagerly."""
    if name not in _BUILDERS:
        raise ValueError(
            f"unknown engine {name!r}; available: {', '.join(engine_names())}"
        )

    def factory(tree: RoutingTree) -> TimingEngine:
        return make_engine(name, tree, tech, context=context)

    return factory
