"""Engine registry: construct any :class:`TimingEngine` by name.

PR 3 unified the engines behind one protocol; this registry adds the last
mile — a *string* spelling usable from CLI flags, config files and
campaign specs.  Consumers (``greedy_insertion``, ``synthesize_topology``,
``monte_carlo_ard``, ``repro-msri ard --engine``) accept an engine name
and resolve it here, so adding a backend is one table entry.

Names
-----
``reference`` / ``elmore``
    :class:`~repro.rctree.elmore.ElmoreAnalyzer` — the full Fig. 2 pass
    with the per-node timing table.
``incremental``
    :class:`~repro.rctree.incremental.IncrementalARD` — persistent records
    with dirty-path re-propagation; fastest for edit-probe loops.
``flat``
    :class:`~repro.rctree.flat.FlatARDEngine` with ``backend="auto"`` —
    the array-flattened kernel; fastest for evaluate-many workloads.
``flat-python`` / ``flat-numpy``
    The flat engine pinned to one compile backend (``flat-numpy`` raises
    without numpy installed).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..tech.parameters import Technology
from .elmore import ElmoreAnalyzer
from .engine import EvalContext, TimingEngine
from .flat import FlatARDEngine
from .incremental import IncrementalARD
from .topology import RoutingTree

__all__ = ["engine_names", "make_engine", "resolve_engine_factory"]


def _make_elmore(tree, tech, context):
    return ElmoreAnalyzer(tree, tech, context=context)


def _make_incremental(tree, tech, context):
    return IncrementalARD(tree, tech, context=context)


def _make_flat(tree, tech, context):
    return FlatARDEngine(tree, tech, context=context, backend="auto")


def _make_flat_python(tree, tech, context):
    return FlatARDEngine(tree, tech, context=context, backend="python")


def _make_flat_numpy(tree, tech, context):
    return FlatARDEngine(tree, tech, context=context, backend="numpy")


_BUILDERS: Dict[str, Callable] = {
    "reference": _make_elmore,
    "elmore": _make_elmore,
    "incremental": _make_incremental,
    "flat": _make_flat,
    "flat-python": _make_flat_python,
    "flat-numpy": _make_flat_numpy,
}


def engine_names() -> tuple:
    """The registered engine names, sorted (for CLI ``choices=``)."""
    return tuple(sorted(_BUILDERS))


def make_engine(
    name: str,
    tree: RoutingTree,
    tech: Technology,
    *,
    context: Optional[EvalContext] = None,
) -> TimingEngine:
    """Construct the named engine over one tree.

    Raises :class:`ValueError` for unknown names (listing the registry) —
    a CLI-friendly failure mode.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: {', '.join(engine_names())}"
        ) from None
    return builder(tree, tech, context)


def resolve_engine_factory(
    name: str, tech: Technology, *, context: Optional[EvalContext] = None
) -> Callable[[RoutingTree], TimingEngine]:
    """A per-tree engine factory for consumers that evaluate many trees
    (e.g. ``synthesize_topology``), with the name validated eagerly."""
    if name not in _BUILDERS:
        raise ValueError(
            f"unknown engine {name!r}; available: {', '.join(engine_names())}"
        )

    def factory(tree: RoutingTree) -> TimingEngine:
        return make_engine(name, tree, tech, context=context)

    return factory
