"""Routing-tree data structures and delay engines (Elmore, slew, incremental)."""

from .builder import TreeBuilder, manhattan
from .elmore import ElmoreAnalyzer
from .engine import ARDResult, EvalContext, SubtreeTiming, TimingEngine
from .incremental import IncrementalARD
from .slew import SlewAnalyzer, SlewModel
from .topology import Node, NodeKind, RoutingTree

__all__ = [
    "TreeBuilder",
    "manhattan",
    "ARDResult",
    "EvalContext",
    "SubtreeTiming",
    "TimingEngine",
    "ElmoreAnalyzer",
    "IncrementalARD",
    "SlewAnalyzer",
    "SlewModel",
    "Node",
    "NodeKind",
    "RoutingTree",
]
