"""Routing-tree data structures and delay engines (Elmore + slew-aware)."""

from .builder import TreeBuilder, manhattan
from .elmore import ElmoreAnalyzer
from .slew import SlewAnalyzer, SlewModel
from .topology import Node, NodeKind, RoutingTree

__all__ = [
    "TreeBuilder",
    "manhattan",
    "ElmoreAnalyzer",
    "SlewAnalyzer",
    "SlewModel",
    "Node",
    "NodeKind",
    "RoutingTree",
]
