"""Routing-tree data structures and delay engines (Elmore, slew, incremental, flat)."""

from .builder import TreeBuilder, manhattan
from .elmore import ElmoreAnalyzer
from .engine import (
    ARDResult,
    EditableEngine,
    EvalContext,
    SubtreeTiming,
    TimingEngine,
)
from .flat import (
    HAVE_NUMPY,
    FlatARDEngine,
    FlatNet,
    FlatNetCache,
    canonical_net_key,
    compile_net,
    evaluate_batch,
)
from .incremental import IncrementalARD
from .registry import (
    editable_engine_names,
    engine_names,
    make_editable_engine,
    make_engine,
    resolve_engine_factory,
)
from .slew import SlewAnalyzer, SlewModel
from .topology import Node, NodeKind, RoutingTree

__all__ = [
    "TreeBuilder",
    "manhattan",
    "ARDResult",
    "EvalContext",
    "SubtreeTiming",
    "TimingEngine",
    "EditableEngine",
    "ElmoreAnalyzer",
    "IncrementalARD",
    "HAVE_NUMPY",
    "FlatARDEngine",
    "FlatNet",
    "FlatNetCache",
    "canonical_net_key",
    "compile_net",
    "evaluate_batch",
    "engine_names",
    "editable_engine_names",
    "make_engine",
    "make_editable_engine",
    "resolve_engine_factory",
    "SlewAnalyzer",
    "SlewModel",
    "Node",
    "NodeKind",
    "RoutingTree",
]
