"""Routing-tree data structures and delay engines (Elmore, slew, incremental, flat)."""

from .builder import TreeBuilder, manhattan
from .elmore import ElmoreAnalyzer
from .engine import ARDResult, EvalContext, SubtreeTiming, TimingEngine
from .flat import (
    HAVE_NUMPY,
    FlatARDEngine,
    FlatNet,
    FlatNetCache,
    canonical_net_key,
    compile_net,
    evaluate_batch,
)
from .incremental import IncrementalARD
from .registry import engine_names, make_engine, resolve_engine_factory
from .slew import SlewAnalyzer, SlewModel
from .topology import Node, NodeKind, RoutingTree

__all__ = [
    "TreeBuilder",
    "manhattan",
    "ARDResult",
    "EvalContext",
    "SubtreeTiming",
    "TimingEngine",
    "ElmoreAnalyzer",
    "IncrementalARD",
    "HAVE_NUMPY",
    "FlatARDEngine",
    "FlatNet",
    "FlatNetCache",
    "canonical_net_key",
    "compile_net",
    "evaluate_batch",
    "engine_names",
    "make_engine",
    "resolve_engine_factory",
    "SlewAnalyzer",
    "SlewModel",
    "Node",
    "NodeKind",
    "RoutingTree",
]
