"""Elmore delay engine for multisource routing trees with repeaters.

Implements the capacitance recurrences of the paper's Sec. III — Eq. (1),
the bottom-up pass giving the load of each subtree as seen from its parent,
and Eq. (2), the top-down pass giving the load of everything *outside* each
subtree — plus source-to-sink path delays ``PD(u, v)`` under the models of
Sec. II.  Both load directions are needed because a signal on a multisource
net may traverse any edge in either direction.

Conventions shared with the optimizer (see DESIGN.md §4):

* a repeater assigned to an insertion node has its **A-side facing the
  root**; signal flow root→leaves uses the ``*_ab`` parameters;
* a repeater decouples: looking into a repeater node one sees only the
  input capacitance of the facing side;
* a terminal's driver load is the whole net including the terminal's own
  input capacitance;
* by default the companion buffer of a repeater does not load the driving
  buffer (the paper's Fig. 8 model); ``include_companion_cap=True`` adds
  the anti-parallel buffer's input capacitance to crossing delays for
  sensitivity studies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..check import contracts
from ..obs import core as obs
from ..tech.buffers import Repeater
from ..tech.parameters import Technology
from ..tech.terminals import NEVER
from .engine import EvalContext, check_engine_tree
from .topology import NodeKind, RoutingTree

__all__ = ["ElmoreAnalyzer"]

# Nodes visited by the Eq. 1/2 capacitance passes (naming contract:
# docs/OBSERVABILITY.md).  Grows by 2·n per analyzer construction, making
# "how many full capacitance passes did this optimization run" readable
# straight off a trace.
_OBS_CAP_PASS_NODES = obs.Counter("elmore.cap_pass.nodes")


class ElmoreAnalyzer:
    """Delay/capacitance queries for one tree + one repeater assignment.

    The analyzer is cheap to construct (two O(n) capacitance passes) and
    immutable with respect to the assignment: build a new one per candidate
    assignment.

    Parameters
    ----------
    tree:
        The routing tree (rooted at a terminal).
    tech:
        Wire constants.
    context:
        The evaluation knobs as one
        :class:`~repro.rctree.engine.EvalContext` — repeater ``assignment``
        (A-side facing the root), per-edge ``wire_widths`` factors (a
        ``w``-wide wire has resistance ``R/w`` and capacitance ``w*C``),
        and the ``include_companion_cap`` crossing-delay model.

    ``context`` is the only way to pass the knobs: the pre-context
    per-knob arguments were removed at v2.0 and now raise
    :class:`TypeError` (docs/API.md).
    """

    def __init__(
        self,
        tree: RoutingTree,
        tech: Technology,
        *,
        context: Optional[EvalContext] = None,
    ):
        context = context if context is not None else EvalContext()
        self._tree = tree
        self._tech = tech
        self._assignment: Dict[int, Repeater] = dict(context.assignment or {})
        self._companion = bool(context.include_companion_cap)
        wire_widths = context.wire_widths
        for idx, w in (wire_widths or {}).items():
            if w <= 0.0:
                raise ValueError(f"wire width factor must be positive, got {w}")
            if not (0 <= idx < len(tree)) or tree.parent(idx) is None:
                raise ValueError(f"wire_widths[{idx}] does not name an edge")
        self._wire_widths = dict(wire_widths or {})

        for idx, rep in self._assignment.items():
            if not (0 <= idx < len(tree)):
                raise ValueError(f"assignment names unknown node {idx}")
            node = tree.node(idx)
            if node.kind is not NodeKind.INSERTION:
                raise ValueError(
                    f"repeater assigned to node {idx} which is a "
                    f"{node.kind.value}, not an insertion point"
                )
            if not isinstance(rep, Repeater):
                raise TypeError(f"assignment[{idx}] is not a Repeater: {rep!r}")

        self._wire_cap: List[float] = [
            tech.wire_capacitance(tree.edge_length(i))
            * self._wire_widths.get(i, 1.0)
            for i in range(len(tree))
        ]
        self._wire_res: List[float] = [
            tech.wire_resistance(tree.edge_length(i))
            / self._wire_widths.get(i, 1.0)
            for i in range(len(tree))
        ]
        self._down: List[float] = [0.0] * len(tree)
        self._up: List[float] = [0.0] * len(tree)
        self._run_capacitance_passes()
        if contracts.contracts_enabled():
            contracts.verify_nonnegative_caps(self)

    # -- construction-time passes (Eqs. 1 and 2) ------------------------------

    def _own_cap(self, v: int) -> float:
        node = self._tree.node(v)
        return node.terminal.capacitance if node.terminal is not None else 0.0

    def _run_capacitance_passes(self) -> None:
        tree = self._tree
        if obs.enabled():
            _OBS_CAP_PASS_NODES.add(2 * len(tree))
        # Eq. (1): bottom-up subtree loads.
        for v in tree.dfs_postorder():
            rep = self._assignment.get(v)
            if rep is not None:
                self._down[v] = rep.c_a
            elif tree.node(v).kind is NodeKind.TERMINAL and tree.is_leaf(v):
                self._down[v] = self._own_cap(v)
            else:
                self._down[v] = sum(
                    self._wire_cap[u] + self._down[u] for u in tree.children(v)
                )
        # Eq. (2): top-down external loads at each node's parent.
        for v in tree.dfs_preorder():
            p = tree.parent(v)
            if p is None:
                continue
            rep = self._assignment.get(p)
            if rep is not None:
                self._up[v] = rep.c_b
            elif tree.node(p).kind is NodeKind.TERMINAL:
                self._up[v] = self._own_cap(p)  # p is the root terminal
            else:
                base = 0.0
                if tree.parent(p) is not None:
                    base = self._wire_cap[p] + self._up[p]
                siblings = sum(
                    self._wire_cap[u] + self._down[u]
                    for u in tree.children(p)
                    if u != v
                )
                self._up[v] = base + siblings

    # -- capacitance queries ----------------------------------------------------

    def downstream_cap(self, v: int) -> float:
        """Load of subtree ``T_v`` as seen from ``v``'s parent (Eq. 1).

        Excludes the wire of the parent edge itself.
        """
        return self._down[v]

    def upstream_cap(self, v: int) -> float:
        """Load of everything outside ``T_v`` as seen at ``v``'s parent (Eq. 2).

        Excludes the wire of the edge ``(v, parent)``; raises for the root.
        """
        if self._tree.parent(v) is None:
            raise ValueError("the root has no upstream")
        return self._up[v]

    def node_view(self, v: int, entered_from: int) -> float:
        """Capacitance seen looking *into* node ``v`` from a neighbor.

        This is the unified form of Eqs. (1)–(2): entering from the parent
        yields the subtree load, entering from a child yields the external
        load, and a repeater at ``v`` presents only its facing input
        capacitance.
        """
        tree = self._tree
        if entered_from not in tree.neighbors(v):
            raise ValueError(f"{entered_from} is not adjacent to {v}")
        if entered_from == tree.parent(v):
            return self._down[v]
        # entered from a child
        rep = self._assignment.get(v)
        if rep is not None:
            return rep.c_b
        if tree.node(v).kind is NodeKind.TERMINAL:
            return self._own_cap(v)  # root terminal seen from its child
        total = 0.0
        if tree.parent(v) is not None:
            total += self._wire_cap[v] + self._up[v]
        total += sum(
            self._wire_cap[u] + self._down[u]
            for u in tree.children(v)
            if u != entered_from
        )
        return total

    def cap_into(self, frm: int, to: int) -> float:
        """Load seen from node ``frm`` through the edge toward neighbor ``to``.

        Includes the full wire capacitance of the edge plus everything
        beyond it; this is exactly a driver's load when it sits at ``frm``
        and drives toward ``to``.
        """
        return self._edge_cap(frm, to) + self.node_view(to, frm)

    def total_capacitance(self) -> float:
        """Sum of all wire and terminal capacitances, ignoring decoupling.

        An upper bound on any load in the net; the DP uses it to bound the
        external-capacitance domain.
        """
        wires = sum(self._wire_cap)
        pins = sum(t.capacitance for t in self._tree.terminals())
        return wires + pins

    def driver_load(self, terminal_idx: int) -> float:
        """Everything the terminal's driver sees, own input cap included."""
        tree = self._tree
        node = tree.node(terminal_idx)
        if node.terminal is None:
            raise ValueError(f"node {terminal_idx} is not a terminal")
        neighbor = self._sole_neighbor(terminal_idx)
        return node.terminal.capacitance + self.cap_into(terminal_idx, neighbor)

    # -- delays -------------------------------------------------------------------

    def path_delay(self, src: int, dst: int) -> float:
        """``PD(src, dst)``: Elmore delay from the driver at terminal ``src``
        through wires and repeaters to terminal ``dst`` (paper Def. 2.1).

        Includes the source driver's delay; excludes the terminals' ``alpha``
        and ``beta`` (see :meth:`augmented_delay`).
        """
        tree = self._tree
        src_t = tree.node(src).terminal
        dst_t = tree.node(dst).terminal
        if src_t is None or dst_t is None:
            raise ValueError("path_delay endpoints must be terminals")
        if src == dst:
            raise ValueError("source and sink must differ")
        if not src_t.is_source:
            raise ValueError(f"terminal {src_t.name} cannot drive")

        path = tree.path_between(src, dst)
        delay = src_t.driver_delay(src_t.capacitance + self.cap_into(src, path[1]))
        for k in range(1, len(path)):
            a, b = path[k - 1], path[k]
            delay += self.wire_delay(a, b)
            if k < len(path) - 1 and b in self._assignment:
                delay += self.repeater_delay_through(b, a, path[k + 1])
        return delay

    def wire_delay(self, frm: int, to: int) -> float:
        """Elmore delay (ps) across the wire from ``frm`` to adjacent ``to``.

        ``r_e * (c_e/2 + load beyond the wire)``; direction-aware because the
        view into ``to`` depends on which way the signal travels.
        """
        e = self._edge_index(frm, to)
        return self._wire_res[e] * (
            0.5 * self._wire_cap[e] + self.node_view(to, frm)
        )

    def repeater_delay_through(self, at: int, came_from: int, going_to: int) -> float:
        """Delay through the repeater at ``at``, entering from ``came_from``
        and driving toward ``going_to``.  Raises if no repeater is assigned.
        """
        rep = self._assignment.get(at)
        if rep is None:
            raise ValueError(f"no repeater assigned at node {at}")
        return self._repeater_crossing_delay(at, came_from, going_to, rep)

    def has_repeater(self, at: int) -> bool:
        """True when the assignment places a repeater at node ``at``."""
        return at in self._assignment

    def augmented_delay(self, src: int, dst: int) -> float:
        """``alpha(src) + PD(src, dst) + beta(dst)`` — one ARD candidate."""
        tree = self._tree
        src_t = tree.node(src).terminal
        dst_t = tree.node(dst).terminal
        if src_t is None or dst_t is None:
            raise ValueError("augmented_delay endpoints must be terminals")
        if not src_t.is_source or not dst_t.is_sink:
            return NEVER
        return src_t.arrival_time + self.path_delay(src, dst) + dst_t.downstream_delay

    def ard_bruteforce(self) -> float:
        """ARD(T) by enumerating all source/sink pairs — O(n^2) reference.

        The linear-time algorithm (`repro.core.ard`) is validated against
        this.  Returns ``-inf`` when the net has no source/sink pair.
        """
        best = NEVER
        terminals = self._tree.terminal_indices()
        for u in terminals:
            if not self._tree.node(u).terminal.is_source:
                continue
            for v in terminals:
                if v == u or not self._tree.node(v).terminal.is_sink:
                    continue
                best = max(best, self.augmented_delay(u, v))
        return best

    def critical_pair(self) -> Tuple[Optional[int], Optional[int], float]:
        """The (source, sink, augmented delay) achieving the ARD."""
        best: Tuple[Optional[int], Optional[int], float] = (None, None, NEVER)
        terminals = self._tree.terminal_indices()
        for u in terminals:
            if not self._tree.node(u).terminal.is_source:
                continue
            for v in terminals:
                if v == u or not self._tree.node(v).terminal.is_sink:
                    continue
                d = self.augmented_delay(u, v)
                if d > best[2]:
                    best = (u, v, d)
        return best

    # -- internals ------------------------------------------------------------------

    @property
    def tree(self) -> RoutingTree:
        return self._tree

    @property
    def technology(self) -> Technology:
        return self._tech

    @property
    def assignment(self) -> Dict[int, Repeater]:
        return dict(self._assignment)

    @property
    def wire_widths(self) -> Dict[int, float]:
        return dict(self._wire_widths)

    @property
    def include_companion_cap(self) -> bool:
        return self._companion

    @property
    def context(self) -> EvalContext:
        """The analyzer's evaluation knobs as one :class:`EvalContext`.

        Empty knobs normalize to ``None`` so a round-tripped context
        compares equal to the one passed in.
        """
        return EvalContext(
            assignment=dict(self._assignment) or None,
            wire_widths=dict(self._wire_widths) or None,
            include_companion_cap=self._companion,
        )

    def evaluate(self, tree: Optional[RoutingTree] = None):
        """The full Fig. 2 ARD pass (:class:`TimingEngine` conformance).

        Returns an :class:`~repro.rctree.engine.ARDResult` with the
        per-subtree ``timing`` table populated.
        """
        check_engine_tree(self._tree, tree)
        from ..core.ard import compute_ard

        return compute_ard(self)

    def _sole_neighbor(self, leaf: int) -> int:
        nbrs = self._tree.neighbors(leaf)
        if len(nbrs) != 1:
            raise ValueError(f"node {leaf} is not a leaf (neighbors {nbrs})")
        return nbrs[0]

    def _edge_index(self, a: int, b: int) -> int:
        """Index carrying the edge between adjacent nodes ``a`` and ``b``."""
        if self._tree.parent(b) == a:
            return b
        if self._tree.parent(a) == b:
            return a
        raise ValueError(f"nodes {a} and {b} are not adjacent")

    def _edge_cap(self, a: int, b: int) -> float:
        return self._wire_cap[self._edge_index(a, b)]

    def _repeater_crossing_delay(
        self, at: int, came_from: int, going_to: int, rep: Repeater
    ) -> float:
        """Delay through the repeater at node ``at`` continuing to ``going_to``."""
        downward = came_from == self._tree.parent(at)  # A -> B flow
        load = self.cap_into(at, going_to)
        if self._companion:
            load += rep.c_b if downward else rep.c_a
        return rep.delay(a_to_b=downward, load_pf=load)
