"""Event-driven functional simulation of one bus transaction.

An independent validation path for the analytic machinery: given a routing
tree, a repeater assignment, and a driving terminal, the simulator
propagates the transition event through wires and repeaters node by node,
accumulating Elmore delays *locally* (each hop only looks at its own wire
and the capacitance view at its far end) and tracking signal polarity
through inverting repeaters.

Because the propagation rules are written hop-by-hop rather than as closed
path formulas, agreement with :meth:`ElmoreAnalyzer.path_delay` (which sums
a whole path at once) and with the linear-time ARD is a genuine
cross-check, not a tautology — and polarity correctness of the inverter
extension becomes directly observable at the sinks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rctree.elmore import ElmoreAnalyzer
from ..rctree.engine import ARDResult, EvalContext, check_engine_tree
from ..rctree.topology import RoutingTree
from ..tech.buffers import Repeater
from ..tech.parameters import Technology
from ..tech.terminals import NEVER

__all__ = [
    "SinkEvent",
    "TransactionResult",
    "SimulationEngine",
    "simulate_transaction",
    "simulate_all",
]


@dataclass(frozen=True)
class SinkEvent:
    """Arrival of the transition at one sink terminal."""

    sink: int
    time: float          # ps since the driver's input transition
    inverted: bool       # polarity relative to the driven value

    @property
    def augmented_time(self) -> float:
        """Placeholder kept simple: the raw arrival; callers add beta."""
        return self.time


@dataclass
class TransactionResult:
    """Everything one driven transaction produced."""

    source: int
    events: Dict[int, SinkEvent] = field(default_factory=dict)
    node_times: Dict[int, float] = field(default_factory=dict)

    def arrival(self, sink: int) -> float:
        return self.events[sink].time

    def worst_sink(self) -> Tuple[int, float]:
        sink, ev = max(self.events.items(), key=lambda kv: kv[1].time)
        return sink, ev.time


def simulate_transaction(
    tree: RoutingTree,
    tech: Technology,
    source: int,
    assignment: Optional[Dict[int, Repeater]] = None,
    *,
    analyzer: Optional[ElmoreAnalyzer] = None,
) -> TransactionResult:
    """Propagate one transition from ``source`` to every reachable sink.

    The event queue holds ``(time, node, came_from, inverted)`` tuples; a
    node fires once (tree — no reconvergence).  Wire hops add the local
    Elmore term; a repeater at an intermediate node adds its directional
    crossing delay and possibly flips polarity.
    """
    term = tree.node(source).terminal
    if term is None or not term.is_source:
        raise ValueError(f"node {source} cannot drive the net")
    an = analyzer or ElmoreAnalyzer(
        tree, tech, context=EvalContext(assignment=assignment)
    )
    assignment = an.assignment

    result = TransactionResult(source=source)
    start = term.driver_delay(term.capacitance + an.cap_into(source, _sole(tree, source)))
    heap: List[Tuple[float, int, int, bool]] = []
    result.node_times[source] = start
    for nb in tree.neighbors(source):
        heapq.heappush(
            heap, (start + an.wire_delay(source, nb), nb, source, False)
        )

    while heap:
        time, node, came_from, inverted = heapq.heappop(heap)
        if node in result.node_times:
            continue  # a tree has one path per node; guard anyway
        result.node_times[node] = time
        payload = tree.node(node)
        if payload.terminal is not None and payload.terminal.is_sink:
            result.events[node] = SinkEvent(node, time, inverted)

        rep = assignment.get(node)
        for nxt in tree.neighbors(node):
            if nxt == came_from:
                continue
            hop_time = time
            hop_inverted = inverted
            if rep is not None:
                hop_time += an.repeater_delay_through(node, came_from, nxt)
                hop_inverted ^= rep.is_inverting
            heapq.heappush(
                heap,
                (hop_time + an.wire_delay(node, nxt), nxt, node, hop_inverted),
            )
    return result


def simulate_all(
    tree: RoutingTree,
    tech: Technology,
    assignment: Optional[Dict[int, Repeater]] = None,
) -> Dict[int, TransactionResult]:
    """One transaction per source terminal (shared analyzer)."""
    an = ElmoreAnalyzer(tree, tech, context=EvalContext(assignment=assignment))
    out = {}
    for idx in tree.terminal_indices():
        t = tree.node(idx).terminal
        if t.is_source:
            out[idx] = simulate_transaction(tree, tech, idx, analyzer=an)
    return out


def simulated_ard(
    tree: RoutingTree,
    tech: Technology,
    assignment: Optional[Dict[int, Repeater]] = None,
) -> float:
    """ARD computed purely from simulation events (third implementation)."""
    best = float("-inf")
    for src, result in simulate_all(tree, tech, assignment).items():
        alpha = tree.node(src).terminal.arrival_time
        for sink, ev in result.events.items():
            if sink == src:
                continue
            beta = tree.node(sink).terminal.downstream_delay
            best = max(best, alpha + ev.time + beta)
    return best


class SimulationEngine:
    """Event-driven :class:`~repro.rctree.engine.TimingEngine` wrapper.

    Binds one tree + context to a shared :class:`ElmoreAnalyzer` backbone
    and answers ``evaluate`` / ``path_delay`` by running transactions —
    the genuine cross-check engine (hop-by-hop, not closed formulas).
    """

    def __init__(
        self,
        tree: RoutingTree,
        tech: Technology,
        *,
        context: Optional[EvalContext] = None,
    ):
        context = context if context is not None else EvalContext()
        self._tree = tree
        self._tech = tech
        self._an = ElmoreAnalyzer(tree, tech, context=context)

    @property
    def tree(self) -> RoutingTree:
        return self._tree

    @property
    def analyzer(self) -> ElmoreAnalyzer:
        return self._an

    def evaluate(self, tree: Optional[RoutingTree] = None) -> ARDResult:
        """ARD from simulation events, with the critical pair tracked.

        ``timing`` stays empty — the simulator produces per-node event
        times, not the Fig. 2 subtree table.
        """
        check_engine_tree(self._tree, tree)
        best, best_src, best_snk = NEVER, None, None
        for src in self._tree.terminal_indices():
            term = self._tree.node(src).terminal
            if not term.is_source:
                continue
            result = simulate_transaction(
                self._tree, self._tech, src, analyzer=self._an
            )
            for sink, ev in result.events.items():
                if sink == src:
                    continue
                beta = self._tree.node(sink).terminal.downstream_delay
                cand = term.arrival_time + ev.time + beta
                if cand > best:
                    best, best_src, best_snk = cand, src, sink
        return ARDResult(best, best_src, best_snk, {})

    def path_delay(self, src: int, dst: int) -> float:
        """``PD(src, dst)`` from the simulated transaction driven at ``src``."""
        if src == dst:
            raise ValueError("source and sink must differ")
        result = simulate_transaction(self._tree, self._tech, src, analyzer=self._an)
        if dst in result.events:
            return result.events[dst].time
        if dst in result.node_times:
            return result.node_times[dst]
        raise ValueError(f"node {dst} was not reached from {src}")


def _sole(tree: RoutingTree, leaf: int) -> int:
    nbrs = tree.neighbors(leaf)
    if len(nbrs) != 1:
        raise ValueError(f"terminal {leaf} is not a leaf")
    return nbrs[0]
