"""Event-driven functional simulation of bus transactions."""

from .propagation import (
    SinkEvent,
    TransactionResult,
    simulate_all,
    simulate_transaction,
    simulated_ard,
)

__all__ = [
    "SinkEvent",
    "TransactionResult",
    "simulate_all",
    "simulate_transaction",
    "simulated_ard",
]
