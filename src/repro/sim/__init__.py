"""Event-driven functional simulation of bus transactions."""

from .propagation import (
    SimulationEngine,
    SinkEvent,
    TransactionResult,
    simulate_all,
    simulate_transaction,
    simulated_ard,
)

__all__ = [
    "SimulationEngine",
    "SinkEvent",
    "TransactionResult",
    "simulate_all",
    "simulate_transaction",
    "simulated_ard",
]
