"""JSON serialization of nets, technologies, assignments and campaigns.

Keeps experiment inputs and optimizer outputs on disk in a stable,
human-inspectable format so runs are reproducible and shareable.  The
schema is versioned; loaders reject unknown versions rather than guess.

Campaign records are versioned separately (``CAMPAIGN_SCHEMA``):

* **v1** — config + results only (the original serial runner).
* **v2** — adds per-result insertion spacing, structured failure records,
  per-job runtime/memory metrics, and the worker count.  v1 files load
  transparently: per-result spacing is backfilled from the config and the
  failure/metrics sections default to empty.
* **v3** — each job-metrics record gains an optional ``obs`` field: the
  compact observability summary (counter totals plus per-path span
  aggregates, see docs/OBSERVABILITY.md) captured when the campaign ran
  under ``REPRO_OBS=1``/``repro-msri trace``.  v1 and v2 files load
  transparently: ``obs`` defaults to absent (``None``).

The campaign codecs live here (rather than in ``analysis.campaign``) so
the on-disk format has a single owner; they import the analysis types
lazily to keep this module import-light.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Any, Dict, List

from ..rctree.topology import Node, NodeKind, RoutingTree
from ..tech.buffers import Repeater
from ..tech.parameters import Technology
from ..tech.terminals import Terminal

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..analysis.campaign import Campaign
    from ..analysis.executor import JobFailure, JobMetrics
    from ..analysis.experiments import InstanceResult
    from ..rctree.engine import ARDResult, EvalContext, SubtreeTiming

__all__ = [
    "SCHEMA_VERSION",
    "CAMPAIGN_SCHEMA",
    "SERVE_SCHEMA",
    "WireProtocolError",
    "encode_frame",
    "decode_frame",
    "tree_to_dict",
    "tree_from_dict",
    "save_tree",
    "load_tree",
    "terminal_to_dict",
    "terminal_from_dict",
    "technology_to_dict",
    "technology_from_dict",
    "repeater_to_dict",
    "repeater_from_dict",
    "assignment_to_dict",
    "assignment_from_dict",
    "eval_context_to_dict",
    "eval_context_from_dict",
    "subtree_timing_to_dict",
    "subtree_timing_from_dict",
    "ard_result_to_dict",
    "ard_result_from_dict",
    "instance_result_to_dict",
    "instance_result_from_dict",
    "job_failure_to_dict",
    "job_failure_from_dict",
    "job_metrics_to_dict",
    "job_metrics_from_dict",
    "campaign_to_dict",
    "campaign_from_dict",
]

SCHEMA_VERSION = 1

#: Current version of the campaign record format (see module docstring).
CAMPAIGN_SCHEMA = 3

#: Version of the session-server NDJSON wire protocol (docs/SERVING.md).
SERVE_SCHEMA = 1

#: JSON has no -inf literal; encode the NEVER sentinel explicitly.
_NEVER_TOKEN = "never"


def _num(value: float) -> Any:
    if value == -math.inf:
        return _NEVER_TOKEN
    return value


def _denum(value: Any) -> float:
    if value == _NEVER_TOKEN:
        return -math.inf
    return float(value)


def terminal_to_dict(t: Terminal) -> Dict[str, Any]:
    """One terminal's timing/electrical payload as a JSON-ready dict.

    Public since the serve wire protocol ships terminal payloads in
    ``set_terminal`` edit frames; the tree codec uses it per node.
    """
    return _terminal_to_dict(t)


def terminal_from_dict(d: Dict[str, Any]) -> Terminal:
    """Inverse of :func:`terminal_to_dict`."""
    return _terminal_from_dict(d)


def _terminal_to_dict(t: Terminal) -> Dict[str, Any]:
    return {
        "name": t.name,
        "x": t.x,
        "y": t.y,
        "arrival_time": _num(t.arrival_time),
        "downstream_delay": _num(t.downstream_delay),
        "capacitance": t.capacitance,
        "resistance": t.resistance,
        "intrinsic_delay": t.intrinsic_delay,
    }


def _terminal_from_dict(d: Dict[str, Any]) -> Terminal:
    return Terminal(
        name=d["name"],
        x=float(d["x"]),
        y=float(d["y"]),
        arrival_time=_denum(d["arrival_time"]),
        downstream_delay=_denum(d["downstream_delay"]),
        capacitance=float(d["capacitance"]),
        resistance=float(d["resistance"]),
        intrinsic_delay=float(d.get("intrinsic_delay", 0.0)),
    )


def tree_to_dict(tree: RoutingTree) -> Dict[str, Any]:
    """The whole routing tree as a JSON-ready dict."""
    nodes = []
    for n in tree.nodes:
        entry: Dict[str, Any] = {"kind": n.kind.value, "x": n.x, "y": n.y}
        if n.terminal is not None:
            entry["terminal"] = _terminal_to_dict(n.terminal)
        nodes.append(entry)
    return {
        "schema": SCHEMA_VERSION,
        "nodes": nodes,
        "parent": [tree.parent(i) for i in range(len(tree))],
        "edge_length": [tree.edge_length(i) for i in range(len(tree))],
    }


def tree_from_dict(data: Dict[str, Any]) -> RoutingTree:
    """Inverse of :func:`tree_to_dict`; validates the schema version."""
    version = data.get("schema")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported net schema version: {version!r}")
    nodes = []
    for i, entry in enumerate(data["nodes"]):
        kind = NodeKind(entry["kind"])
        terminal = None
        if kind is NodeKind.TERMINAL:
            terminal = _terminal_from_dict(entry["terminal"])
        nodes.append(Node(i, float(entry["x"]), float(entry["y"]), kind, terminal))
    parent = [None if p is None else int(p) for p in data["parent"]]
    lengths = [float(x) for x in data["edge_length"]]
    return RoutingTree(nodes, parent, lengths)


def save_tree(tree: RoutingTree, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(tree_to_dict(tree), fh, indent=2)


def load_tree(path: str) -> RoutingTree:
    with open(path) as fh:
        return tree_from_dict(json.load(fh))


def technology_to_dict(tech: Technology) -> Dict[str, Any]:
    return {
        "name": tech.name,
        "unit_resistance": tech.unit_resistance,
        "unit_capacitance": tech.unit_capacitance,
        "extras": dict(tech.extras),
    }


def technology_from_dict(d: Dict[str, Any]) -> Technology:
    return Technology(
        unit_resistance=float(d["unit_resistance"]),
        unit_capacitance=float(d["unit_capacitance"]),
        name=d.get("name", "unnamed"),
        extras={k: float(v) for k, v in d.get("extras", {}).items()},
    )


def repeater_to_dict(rep: Repeater) -> Dict[str, Any]:
    return {
        "name": rep.name,
        "d_ab": rep.d_ab,
        "r_ab": rep.r_ab,
        "c_a": rep.c_a,
        "d_ba": rep.d_ba,
        "r_ba": rep.r_ba,
        "c_b": rep.c_b,
        "cost": rep.cost,
        "is_inverting": rep.is_inverting,
    }


def repeater_from_dict(d: Dict[str, Any]) -> Repeater:
    return Repeater(
        name=d["name"],
        d_ab=float(d["d_ab"]),
        r_ab=float(d["r_ab"]),
        c_a=float(d["c_a"]),
        d_ba=float(d["d_ba"]),
        r_ba=float(d["r_ba"]),
        c_b=float(d["c_b"]),
        cost=float(d["cost"]),
        is_inverting=bool(d.get("is_inverting", False)),
    )


def assignment_to_dict(assignment: Dict[int, Repeater]) -> Dict[str, Any]:
    """Repeater assignment with full electrical parameters inline."""
    return {str(idx): repeater_to_dict(rep) for idx, rep in assignment.items()}


def assignment_from_dict(data: Dict[str, Any]) -> Dict[int, Repeater]:
    return {int(idx): repeater_from_dict(d) for idx, d in data.items()}


def eval_context_to_dict(context: "EvalContext") -> Dict[str, Any]:
    """An :class:`~repro.rctree.engine.EvalContext` as a JSON-ready dict."""
    d: Dict[str, Any] = {}
    if context.assignment:
        d["assignment"] = assignment_to_dict(dict(context.assignment))
    if context.wire_widths:
        d["wire_widths"] = {
            str(idx): float(w) for idx, w in context.wire_widths.items()
        }
    if context.include_companion_cap:
        d["include_companion_cap"] = True
    return d


def eval_context_from_dict(d: Dict[str, Any]) -> "EvalContext":
    """Inverse of :func:`eval_context_to_dict` (missing keys → defaults)."""
    from ..rctree.engine import EvalContext

    return EvalContext(
        assignment=(
            assignment_from_dict(d["assignment"]) if d.get("assignment") else None
        ),
        wire_widths=(
            {int(i): float(w) for i, w in d["wire_widths"].items()}
            if d.get("wire_widths")
            else None
        ),
        include_companion_cap=bool(d.get("include_companion_cap", False)),
    )


# -- serve wire protocol (NDJSON frames, docs/SERVING.md) -----------------------


class WireProtocolError(ValueError):
    """A frame that cannot be decoded or fails schema validation.

    ``code`` is the wire error code the server reports back to the client
    (``bad-frame`` for bytes that are not a JSON object line,
    ``bad-request`` for a well-formed object violating the protocol).
    """

    def __init__(self, message: str, *, code: str = "bad-frame"):
        super().__init__(message)
        self.code = code


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """One NDJSON wire frame: compact key-sorted JSON plus a newline.

    Key sorting makes the byte stream deterministic, so clients can
    compare streamed responses byte-for-byte against serially recomputed
    ones.  Floats round-trip exactly (``repr`` shortest form decodes to
    the same IEEE-754 double); non-finite floats are rejected — the NEVER
    sentinel must travel as the ``"never"`` token (see :func:`_num`),
    never as a bare ``-Infinity``.
    """
    try:
        text = json.dumps(
            obj, separators=(",", ":"), sort_keys=True, allow_nan=False
        )
    except ValueError as exc:
        raise WireProtocolError(
            f"frame not JSON-encodable: {exc}", code="bad-request"
        ) from exc
    return (text + "\n").encode("utf-8")


def decode_frame(line: Any) -> Dict[str, Any]:
    """Parse one wire line into a frame dict, validating the envelope.

    Accepts ``bytes`` or ``str``.  Raises :class:`WireProtocolError` with
    ``code="bad-frame"`` for bytes that are not one JSON object
    (truncated, binary junk, arrays, bare scalars) and
    ``code="bad-request"`` for an object whose ``schema`` is missing or
    unsupported.
    """
    if isinstance(line, (bytes, bytearray)):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireProtocolError(f"frame is not UTF-8: {exc}") from exc
    if not isinstance(line, str) or not line.strip():
        raise WireProtocolError("empty frame")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireProtocolError(f"frame is not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise WireProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    schema = obj.get("schema")
    if schema != SERVE_SCHEMA:
        raise WireProtocolError(
            f"unsupported serve schema: {schema!r} (this server speaks "
            f"{SERVE_SCHEMA})",
            code="bad-request",
        )
    return obj


def subtree_timing_to_dict(st: "SubtreeTiming") -> Dict[str, Any]:
    """One per-node Fig. 2 timing record as a JSON-ready dict."""
    return {
        "arrival": _num(st.arrival),
        "arrival_source": st.arrival_source,
        "required": _num(st.required),
        "required_sink": st.required_sink,
        "diameter": _num(st.diameter),
        "diameter_pair": (
            list(st.diameter_pair) if st.diameter_pair is not None else None
        ),
    }


def subtree_timing_from_dict(d: Dict[str, Any]) -> "SubtreeTiming":
    """Inverse of :func:`subtree_timing_to_dict`."""
    from ..rctree.engine import SubtreeTiming

    pair = d.get("diameter_pair")
    return SubtreeTiming(
        arrival=_denum(d["arrival"]),
        arrival_source=(
            None if d.get("arrival_source") is None else int(d["arrival_source"])
        ),
        required=_denum(d["required"]),
        required_sink=(
            None if d.get("required_sink") is None else int(d["required_sink"])
        ),
        diameter=_denum(d["diameter"]),
        diameter_pair=None if pair is None else (int(pair[0]), int(pair[1])),
    )


def ard_result_to_dict(
    result: "ARDResult", *, include_timing: bool = False
) -> Dict[str, Any]:
    """An :class:`~repro.rctree.engine.ARDResult` as a JSON-ready dict.

    ``timing`` (the per-node table) is shipped only on request — it is
    O(n) per response and most serve clients only want the scalar ARD and
    the critical pair.
    """
    d: Dict[str, Any] = {
        "value": _num(result.value),
        "source": result.source,
        "sink": result.sink,
    }
    if include_timing:
        d["timing"] = {
            str(v): subtree_timing_to_dict(st)
            for v, st in result.timing.items()
        }
    return d


def ard_result_from_dict(d: Dict[str, Any]) -> "ARDResult":
    """Inverse of :func:`ard_result_to_dict` (absent timing → empty table)."""
    from ..rctree.engine import ARDResult

    return ARDResult(
        value=_denum(d["value"]),
        source=None if d.get("source") is None else int(d["source"]),
        sink=None if d.get("sink") is None else int(d["sink"]),
        timing={
            int(v): subtree_timing_from_dict(st)
            for v, st in d.get("timing", {}).items()
        },
    )


# -- campaign records (schema v3, v1/v2 read-compat) ---------------------------


def instance_result_to_dict(result: "InstanceResult") -> Dict[str, Any]:
    import dataclasses

    return dataclasses.asdict(result)


def instance_result_from_dict(
    d: Dict[str, Any], *, default_spacing: float = 0.0
) -> "InstanceResult":
    """Inverse of :func:`instance_result_to_dict`.

    v1 records carry no per-result spacing; ``default_spacing`` (the
    campaign-level config value) backfills it.
    """
    from ..analysis.experiments import InstanceResult

    d = dict(d)
    d.setdefault("spacing", default_spacing)
    return InstanceResult(**d)


def job_failure_to_dict(failure: "JobFailure") -> Dict[str, Any]:
    return {
        "key": list(failure.key),
        "error_type": failure.error_type,
        "message": failure.message,
        "attempts": failure.attempts,
        "elapsed_s": failure.elapsed_s,
    }


def job_failure_from_dict(d: Dict[str, Any]) -> "JobFailure":
    from ..analysis.executor import JobFailure

    return JobFailure(
        key=tuple(d["key"]),
        error_type=d["error_type"],
        message=d["message"],
        attempts=int(d["attempts"]),
        elapsed_s=float(d["elapsed_s"]),
    )


def job_metrics_to_dict(metrics: "JobMetrics") -> Dict[str, Any]:
    d = {
        "key": list(metrics.key),
        "runtime_s": metrics.runtime_s,
        "max_rss_kb": metrics.max_rss_kb,
        "attempts": metrics.attempts,
        "worker": metrics.worker,
    }
    if metrics.obs is not None:
        d["obs"] = metrics.obs
    return d


def job_metrics_from_dict(d: Dict[str, Any]) -> "JobMetrics":
    from ..analysis.executor import JobMetrics

    return JobMetrics(
        key=tuple(d["key"]),
        runtime_s=float(d["runtime_s"]),
        max_rss_kb=int(d["max_rss_kb"]),
        attempts=int(d["attempts"]),
        worker=int(d.get("worker", -1)),
        obs=d.get("obs"),
    )


def campaign_to_dict(campaign: "Campaign") -> Dict[str, Any]:
    """The full campaign record, current (v3) schema."""
    import dataclasses

    return {
        "schema": CAMPAIGN_SCHEMA,
        "config": dataclasses.asdict(campaign.config),
        "results": [instance_result_to_dict(r) for r in campaign.results],
        "failures": [job_failure_to_dict(f) for f in campaign.failures],
        "metrics": [job_metrics_to_dict(m) for m in campaign.metrics],
        "started_at": campaign.started_at,
        "elapsed_seconds": campaign.elapsed_seconds,
        "version": campaign.version,
        "workers": campaign.workers,
    }


def campaign_from_dict(data: Dict[str, Any]) -> "Campaign":
    """Load a campaign record; accepts schema v1, v2 and v3."""
    from ..analysis.campaign import Campaign, CampaignConfig

    schema = data.get("schema")
    if schema not in (1, 2, CAMPAIGN_SCHEMA):
        raise ValueError(f"unsupported campaign schema: {schema!r}")
    cfg = data["config"]
    config = CampaignConfig(
        seeds=tuple(cfg["seeds"]),
        sizes=tuple(cfg["sizes"]),
        spacing=float(cfg["spacing"]),
        label=cfg.get("label", "default"),
        spacings=tuple(float(s) for s in cfg.get("spacings", ())),
        msri=cfg.get("msri"),
        use_msri_cache=bool(cfg.get("use_msri_cache", False)),
    )
    results = [
        instance_result_from_dict(r, default_spacing=config.spacing)
        for r in data["results"]
    ]
    failures: List[Any] = [
        job_failure_from_dict(f) for f in data.get("failures", ())
    ]
    metrics: List[Any] = [job_metrics_from_dict(m) for m in data.get("metrics", ())]
    return Campaign(
        config=config,
        results=results,
        failures=failures,
        metrics=metrics,
        started_at=float(data.get("started_at", 0.0)),
        elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        version=data.get("version", ""),
        workers=int(data.get("workers", 0)),
    )
