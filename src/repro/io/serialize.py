"""JSON serialization of nets, technologies, libraries and assignments.

Keeps experiment inputs and optimizer outputs on disk in a stable,
human-inspectable format so runs are reproducible and shareable.  The
schema is versioned; loaders reject unknown versions rather than guess.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict

from ..rctree.topology import Node, NodeKind, RoutingTree
from ..tech.buffers import Repeater
from ..tech.parameters import Technology
from ..tech.terminals import Terminal

__all__ = [
    "SCHEMA_VERSION",
    "tree_to_dict",
    "tree_from_dict",
    "save_tree",
    "load_tree",
    "technology_to_dict",
    "technology_from_dict",
    "repeater_to_dict",
    "repeater_from_dict",
    "assignment_to_dict",
    "assignment_from_dict",
]

SCHEMA_VERSION = 1

#: JSON has no -inf literal; encode the NEVER sentinel explicitly.
_NEVER_TOKEN = "never"


def _num(value: float) -> Any:
    if value == -math.inf:
        return _NEVER_TOKEN
    return value


def _denum(value: Any) -> float:
    if value == _NEVER_TOKEN:
        return -math.inf
    return float(value)


def _terminal_to_dict(t: Terminal) -> Dict[str, Any]:
    return {
        "name": t.name,
        "x": t.x,
        "y": t.y,
        "arrival_time": _num(t.arrival_time),
        "downstream_delay": _num(t.downstream_delay),
        "capacitance": t.capacitance,
        "resistance": t.resistance,
        "intrinsic_delay": t.intrinsic_delay,
    }


def _terminal_from_dict(d: Dict[str, Any]) -> Terminal:
    return Terminal(
        name=d["name"],
        x=float(d["x"]),
        y=float(d["y"]),
        arrival_time=_denum(d["arrival_time"]),
        downstream_delay=_denum(d["downstream_delay"]),
        capacitance=float(d["capacitance"]),
        resistance=float(d["resistance"]),
        intrinsic_delay=float(d.get("intrinsic_delay", 0.0)),
    )


def tree_to_dict(tree: RoutingTree) -> Dict[str, Any]:
    """The whole routing tree as a JSON-ready dict."""
    nodes = []
    for n in tree.nodes:
        entry: Dict[str, Any] = {"kind": n.kind.value, "x": n.x, "y": n.y}
        if n.terminal is not None:
            entry["terminal"] = _terminal_to_dict(n.terminal)
        nodes.append(entry)
    return {
        "schema": SCHEMA_VERSION,
        "nodes": nodes,
        "parent": [tree.parent(i) for i in range(len(tree))],
        "edge_length": [tree.edge_length(i) for i in range(len(tree))],
    }


def tree_from_dict(data: Dict[str, Any]) -> RoutingTree:
    """Inverse of :func:`tree_to_dict`; validates the schema version."""
    version = data.get("schema")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported net schema version: {version!r}")
    nodes = []
    for i, entry in enumerate(data["nodes"]):
        kind = NodeKind(entry["kind"])
        terminal = None
        if kind is NodeKind.TERMINAL:
            terminal = _terminal_from_dict(entry["terminal"])
        nodes.append(Node(i, float(entry["x"]), float(entry["y"]), kind, terminal))
    parent = [None if p is None else int(p) for p in data["parent"]]
    lengths = [float(x) for x in data["edge_length"]]
    return RoutingTree(nodes, parent, lengths)


def save_tree(tree: RoutingTree, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(tree_to_dict(tree), fh, indent=2)


def load_tree(path: str) -> RoutingTree:
    with open(path) as fh:
        return tree_from_dict(json.load(fh))


def technology_to_dict(tech: Technology) -> Dict[str, Any]:
    return {
        "name": tech.name,
        "unit_resistance": tech.unit_resistance,
        "unit_capacitance": tech.unit_capacitance,
        "extras": dict(tech.extras),
    }


def technology_from_dict(d: Dict[str, Any]) -> Technology:
    return Technology(
        unit_resistance=float(d["unit_resistance"]),
        unit_capacitance=float(d["unit_capacitance"]),
        name=d.get("name", "unnamed"),
        extras={k: float(v) for k, v in d.get("extras", {}).items()},
    )


def repeater_to_dict(rep: Repeater) -> Dict[str, Any]:
    return {
        "name": rep.name,
        "d_ab": rep.d_ab,
        "r_ab": rep.r_ab,
        "c_a": rep.c_a,
        "d_ba": rep.d_ba,
        "r_ba": rep.r_ba,
        "c_b": rep.c_b,
        "cost": rep.cost,
        "is_inverting": rep.is_inverting,
    }


def repeater_from_dict(d: Dict[str, Any]) -> Repeater:
    return Repeater(
        name=d["name"],
        d_ab=float(d["d_ab"]),
        r_ab=float(d["r_ab"]),
        c_a=float(d["c_a"]),
        d_ba=float(d["d_ba"]),
        r_ba=float(d["r_ba"]),
        c_b=float(d["c_b"]),
        cost=float(d["cost"]),
        is_inverting=bool(d.get("is_inverting", False)),
    )


def assignment_to_dict(assignment: Dict[int, Repeater]) -> Dict[str, Any]:
    """Repeater assignment with full electrical parameters inline."""
    return {str(idx): repeater_to_dict(rep) for idx, rep in assignment.items()}


def assignment_from_dict(data: Dict[str, Any]) -> Dict[int, Repeater]:
    return {int(idx): repeater_from_dict(d) for idx, d in data.items()}
