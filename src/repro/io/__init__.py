"""JSON serialization for nets, technologies, and assignments."""

from .serialize import (
    SCHEMA_VERSION,
    assignment_from_dict,
    assignment_to_dict,
    load_tree,
    repeater_from_dict,
    repeater_to_dict,
    save_tree,
    technology_from_dict,
    technology_to_dict,
    tree_from_dict,
    tree_to_dict,
)

__all__ = [
    "SCHEMA_VERSION",
    "assignment_from_dict",
    "assignment_to_dict",
    "load_tree",
    "repeater_from_dict",
    "repeater_to_dict",
    "save_tree",
    "technology_from_dict",
    "technology_to_dict",
    "tree_from_dict",
    "tree_to_dict",
]
