"""Classic single-source buffer insertion (van Ginneken [26] / Dhar [9]).

An independent implementation of the single-source dynamic program in its
"min-cost suite" form (Lillis et al. [15]): each subtree candidate is the
scalar triple ``(cost, cap, delay)`` where ``delay`` is the maximum
root-of-subtree→sink delay including sink downstream delays; sets are kept
minimal with 3-D Kung–Luccio–Preparata pruning.

Its purpose in this repository is *validation*: when a multisource net
degenerates to a single source, the paper's MSRI algorithm must reproduce
exactly this algorithm's cost/delay frontier — the multisource machinery
collapses onto the classic one (the ``arr``/``diam`` coordinates carry no
information when only the root drives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.pareto import minima_3d
from ..rctree.topology import NodeKind, RoutingTree
from ..tech.buffers import Buffer
from ..tech.parameters import Technology
from ..tech.terminals import NEVER

__all__ = ["VGSolution", "van_ginneken"]


@dataclass(frozen=True)
class VGSolution:
    """One single-source candidate: scalars plus the buffer placement."""

    cost: float
    cap: float
    delay: float
    placements: Tuple[Tuple[int, Buffer], ...] = ()


def van_ginneken(
    tree: RoutingTree,
    tech: Technology,
    buffers: Sequence[Buffer],
) -> List[VGSolution]:
    """The (cost, source-to-sink max delay) frontier for a single-source net.

    The tree root must be the driving terminal; all other terminals are
    sinks (their ``beta`` is folded into ``delay``).  Returns the suite
    sorted by cost ascending, with strictly decreasing delay.
    """
    root = tree.root
    root_term = tree.node(root).terminal
    if root_term is None or not root_term.is_source:
        raise ValueError("van Ginneken requires the root to be the source")
    for idx in tree.terminal_indices():
        term = tree.node(idx).terminal
        if idx != root and term.is_source:
            raise ValueError(
                f"terminal {term.name} is a source; this baseline handles "
                "single-source nets only"
            )

    sets: Dict[int, List[VGSolution]] = {}
    for v in tree.dfs_postorder():
        if v == root:
            continue
        node = tree.node(v)
        if node.kind is NodeKind.TERMINAL:
            term = node.terminal
            beta = term.downstream_delay if term.is_sink else NEVER
            sets[v] = [VGSolution(0.0, term.capacitance, beta)]
            continue
        child_sets = [
            _augment(sets[u], tech, tree.edge_length(u)) for u in tree.children(v)
        ]
        current = child_sets[0]
        for other in child_sets[1:]:
            current = _prune(
                [
                    VGSolution(
                        a.cost + b.cost,
                        a.cap + b.cap,
                        max(a.delay, b.delay),
                        a.placements + b.placements,
                    )
                    for a in current
                    for b in other
                ]
            )
        if node.kind is NodeKind.INSERTION:
            buffered = [
                VGSolution(
                    s.cost + b.cost,
                    b.input_capacitance,
                    b.delay(s.cap) + s.delay,
                    s.placements + ((v, b),),
                )
                for s in current
                for b in buffers
            ]
            current = _prune(current + buffered)
        sets[v] = current

    (child,) = tree.children(root)
    final = []
    for s in _augment(sets[child], tech, tree.edge_length(child)):
        total = (
            root_term.arrival_time
            + root_term.driver_delay(root_term.capacitance + s.cap)
            + s.delay
        )
        final.append(VGSolution(s.cost, s.cap, total, s.placements))
    return _frontier_2d(final)


def _augment(
    solutions: Sequence[VGSolution], tech: Technology, length: float
) -> List[VGSolution]:
    r = tech.wire_resistance(length)
    c = tech.wire_capacitance(length)
    return [
        VGSolution(
            s.cost,
            s.cap + c,
            s.delay + r * (0.5 * c + s.cap),
            s.placements,
        )
        for s in solutions
    ]


def _prune(solutions: List[VGSolution]) -> List[VGSolution]:
    keep = minima_3d([(s.cost, s.cap, s.delay) for s in solutions])
    return [solutions[i] for i in keep]


def _frontier_2d(solutions: List[VGSolution]) -> List[VGSolution]:
    ordered = sorted(solutions, key=lambda s: (s.cost, s.delay))
    out: List[VGSolution] = []
    best = float("inf")
    for s in ordered:
        if s.delay < best - 1e-12:
            out.append(s)
            best = s.delay
    return out
