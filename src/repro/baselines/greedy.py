"""Greedy iterative repeater insertion — an ablation baseline.

Repeatedly inserts the single (position, oriented repeater) choice that most
reduces the current ARD, until no insertion helps (or a cost budget runs
out).  Candidate trials run on a persistent
:class:`~repro.rctree.incremental.IncrementalARD` engine by default, so one
trial costs one dirty-path re-propagation (O(depth · branching)) instead of
a full O(n) pass — the outer loop drops from O(n²) per step to near-linear.
Pass any other :class:`~repro.rctree.engine.TimingEngine` with mutation ops
via ``engine`` to change the oracle (the benchmark uses a full-recompute
engine to measure exactly this speedup).

This is *not* from the paper; it quantifies what the paper's optimal DP
buys: the greedy baseline can terminate at a worse diameter or pay more
repeaters for the same diameter (see ``benchmarks/bench_greedy_gap.py``).
Its frontier is, by construction, never better than MSRI's at any cost —
the property the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..rctree.incremental import IncrementalARD
from ..rctree.topology import RoutingTree
from ..tech.buffers import Repeater, RepeaterLibrary
from ..tech.parameters import Technology

__all__ = ["GreedyStep", "greedy_insertion"]


@dataclass(frozen=True)
class GreedyStep:
    """State after one accepted greedy insertion."""

    cost: float
    ard: float
    assignment: Dict[int, Repeater]


def greedy_insertion(
    tree: RoutingTree,
    tech: Technology,
    library: RepeaterLibrary,
    *,
    max_cost: Optional[float] = None,
    max_steps: Optional[int] = None,
    engine=None,
) -> List[GreedyStep]:
    """Run the greedy loop; returns the trajectory including the start.

    ``steps[0]`` is the unbuffered net; each later entry adds exactly one
    repeater.  Stops when no single insertion improves the ARD, or when the
    cost/step budget is exhausted.

    ``engine`` must expose ``evaluate()`` and ``set_assignment(node, rep)``
    over ``tree`` with an initially empty assignment; the default is a
    fresh :class:`~repro.rctree.incremental.IncrementalARD`.  A string
    names a registered engine instead
    (:func:`repro.rctree.registry.engine_names`, e.g. ``"flat"``).
    """
    if engine is None:
        engine = IncrementalARD(tree, tech)
    elif isinstance(engine, str):
        from ..rctree.registry import make_engine

        engine = make_engine(engine, tree, tech)
    if not hasattr(engine, "set_assignment"):
        raise TypeError(
            f"greedy_insertion needs an engine with set_assignment(); "
            f"{type(engine).__name__} has none"
        )
    assignment: Dict[int, Repeater] = {}
    current = engine.evaluate(tree).value
    steps = [GreedyStep(0.0, current, dict(assignment))]
    options = library.oriented_options()
    insertion_points = tree.insertion_indices()

    while True:
        if max_steps is not None and len(steps) - 1 >= max_steps:
            break
        best: Optional[Tuple[float, int, Repeater]] = None
        cost_now = steps[-1].cost
        for idx in insertion_points:
            if idx in assignment:
                continue
            for rep in options:
                if max_cost is not None and cost_now + rep.cost > max_cost:
                    continue
                engine.set_assignment(idx, rep)
                value = engine.evaluate(tree).value
                engine.set_assignment(idx, None)
                if best is None or value < best[0]:
                    best = (value, idx, rep)
        if best is None or best[0] >= current - 1e-9:
            break
        value, idx, rep = best
        assignment[idx] = rep
        engine.set_assignment(idx, rep)
        current = value
        steps.append(GreedyStep(cost_now + rep.cost, current, dict(assignment)))
    return steps
