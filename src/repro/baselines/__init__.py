"""Baselines: van Ginneken insertion, greedy repeaters, pairwise constraints."""

from .greedy import GreedyStep, greedy_insertion
from .pairwise import (
    PairwiseConstraint,
    PairwiseSpec,
    Violation,
    bruteforce_ard,
    check_constraints,
    greedy_pairwise_repair,
    spec_from_ard,
    worst_slack,
)
from .vanginneken import VGSolution, van_ginneken

__all__ = [
    "GreedyStep",
    "greedy_insertion",
    "PairwiseConstraint",
    "PairwiseSpec",
    "Violation",
    "bruteforce_ard",
    "check_constraints",
    "greedy_pairwise_repair",
    "spec_from_ard",
    "worst_slack",
    "VGSolution",
    "van_ginneken",
]
