"""Arbitrary pairwise delay constraints — the formulation the paper rejects.

Sec. II of the paper contrasts the ARD objective with the "arbitrary
pair-wise constraint" formulation of Tsai, Kao and Cheng [24], where every
(source, sink) pair carries its own delay bound.  The paper argues the ARD
subsumes the practical cases while admitting an exact algorithm — the
pairwise problem "appears significantly more complex" (its footnote 10
explains why the subtree decomposition breaks: external sinks no longer
share one critical source).

This module implements the pairwise world as a *baseline and verifier*:

* :class:`PairwiseSpec` — a bag of per-pair bounds;
* :func:`check_constraints` — exact violation report for a given repeater
  assignment (O(K·n) path walks);
* :func:`greedy_pairwise_repair` — a local-optimization heuristic in the
  spirit of [24]: repeatedly insert the repeater that most improves the
  worst violation;
* :func:`spec_from_ard` — the bridge to the paper's formulation: the ARD
  bound ``A`` induces the pairwise bounds
  ``PD(u,v) <= A - alpha(u) - beta(v)``, so Problem 2.1 is the special case
  where all bounds derive from 2n parameters (the paper's observation that
  its implicit pairwise bounds "are not arbitrary").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..rctree.elmore import ElmoreAnalyzer
from ..rctree.engine import EvalContext
from ..rctree.topology import RoutingTree
from ..tech.buffers import Repeater, RepeaterLibrary
from ..tech.parameters import Technology

__all__ = [
    "PairwiseConstraint",
    "PairwiseSpec",
    "Violation",
    "spec_from_ard",
    "bruteforce_ard",
    "check_constraints",
    "greedy_pairwise_repair",
]


def bruteforce_ard(
    tree: RoutingTree,
    tech: Technology,
    assignment: Optional[Dict[int, Repeater]] = None,
) -> float:
    """O(n²) all-pairs ARD: the reference the linear Fig. 2 pass must match.

    ``max over sources u, sinks v != u of alpha(u) + PD(u, v) + beta(v)``,
    each path delay walked explicitly — no subtree decomposition, so this
    is the independent oracle for the differential tests.  Returns ``-inf``
    for nets without a source/sink pair.
    """
    analyzer = ElmoreAnalyzer(tree, tech, context=EvalContext(assignment=assignment))
    best = float("-inf")
    for u in tree.terminal_indices():
        tu = tree.node(u).terminal
        if not tu.is_source:
            continue
        for v in tree.terminal_indices():
            if v == u:
                continue
            tv = tree.node(v).terminal
            if not tv.is_sink:
                continue
            delay = (
                tu.arrival_time
                + analyzer.path_delay(u, v)
                + tv.downstream_delay
            )
            if delay > best:
                best = delay
    return best


@dataclass(frozen=True)
class PairwiseConstraint:
    """``PD(source, sink) <= bound`` (raw path delay, in ps)."""

    source: int
    sink: int
    bound: float

    def __post_init__(self) -> None:
        if self.source == self.sink:
            raise ValueError("a pairwise constraint needs distinct endpoints")


@dataclass(frozen=True)
class Violation:
    """A constraint that the assignment misses, with its slack (< 0)."""

    constraint: PairwiseConstraint
    actual: float

    @property
    def slack(self) -> float:
        return self.constraint.bound - self.actual


class PairwiseSpec:
    """An immutable set of pairwise delay constraints over one tree."""

    def __init__(self, tree: RoutingTree, constraints: List[PairwiseConstraint]):
        terminals = set(tree.terminal_indices())
        for c in constraints:
            for end in (c.source, c.sink):
                if end not in terminals:
                    raise ValueError(f"constraint endpoint {end} is not a terminal")
            if not tree.node(c.source).terminal.is_source:
                raise ValueError(
                    f"terminal {tree.node(c.source).terminal.name} cannot drive"
                )
            if not tree.node(c.sink).terminal.is_sink:
                raise ValueError(
                    f"terminal {tree.node(c.sink).terminal.name} cannot receive"
                )
        self.tree = tree
        self.constraints: Tuple[PairwiseConstraint, ...] = tuple(constraints)

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)


def spec_from_ard(tree: RoutingTree, ard_bound: float) -> PairwiseSpec:
    """The pairwise bounds that the ARD bound implicitly imposes.

    ``alpha(u) + PD(u, v) + beta(v) <= A`` for every source/sink pair —
    the linear-parameter special case the paper's Problem 2.1 optimizes
    exactly.
    """
    constraints = []
    for u in tree.terminal_indices():
        tu = tree.node(u).terminal
        if not tu.is_source:
            continue
        for v in tree.terminal_indices():
            tv = tree.node(v).terminal
            if v == u or not tv.is_sink:
                continue
            constraints.append(
                PairwiseConstraint(
                    u, v, ard_bound - tu.arrival_time - tv.downstream_delay
                )
            )
    return PairwiseSpec(tree, constraints)


def check_constraints(
    spec: PairwiseSpec,
    tech: Technology,
    assignment: Optional[Dict[int, Repeater]] = None,
) -> List[Violation]:
    """All violated constraints under the given assignment (may be empty)."""
    analyzer = ElmoreAnalyzer(spec.tree, tech, context=EvalContext(assignment=assignment))
    violations = []
    for c in spec.constraints:
        actual = analyzer.path_delay(c.source, c.sink)
        if actual > c.bound + 1e-9:
            violations.append(Violation(c, actual))
    return violations


def worst_slack(
    spec: PairwiseSpec,
    tech: Technology,
    assignment: Optional[Dict[int, Repeater]] = None,
) -> float:
    """Minimum ``bound - actual`` over all constraints (negative = violated)."""
    analyzer = ElmoreAnalyzer(spec.tree, tech, context=EvalContext(assignment=assignment))
    return min(
        c.bound - analyzer.path_delay(c.source, c.sink) for c in spec.constraints
    )


def greedy_pairwise_repair(
    spec: PairwiseSpec,
    tech: Technology,
    library: RepeaterLibrary,
    *,
    max_steps: int = 50,
) -> Tuple[Dict[int, Repeater], float]:
    """Local optimization toward satisfying a pairwise spec ([24]-style).

    Greedily inserts the single (position, oriented repeater) that maximizes
    the worst slack; stops when the spec is met, no move helps, or the step
    budget runs out.  Returns the assignment and its final worst slack —
    a heuristic: unlike the paper's ARD formulation, no optimality claim.
    """
    tree = spec.tree
    assignment: Dict[int, Repeater] = {}
    current = worst_slack(spec, tech, assignment)
    options = library.oriented_options()

    for _ in range(max_steps):
        if current >= 0.0:
            break
        best: Optional[Tuple[float, int, Repeater]] = None
        for idx in tree.insertion_indices():
            if idx in assignment:
                continue
            for rep in options:
                assignment[idx] = rep
                slack = worst_slack(spec, tech, assignment)
                del assignment[idx]
                if best is None or slack > best[0]:
                    best = (slack, idx, rep)
        if best is None or best[0] <= current + 1e-9:
            break
        current, idx, rep = best
        assignment[idx] = rep
    return assignment, current
