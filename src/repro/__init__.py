"""repro — reproduction of Lillis & Cheng, *Timing Optimization for
Multisource Nets: Characterization and Optimal Repeater Insertion*
(DAC 1997 / IEEE TCAD 18(3), 1999).

The package implements the paper's three contributions and every substrate
its experiments rely on:

* the **augmented RC-diameter (ARD)** performance measure and its
  linear-time computation under the Elmore model (:func:`repro.ard`);
* **optimal repeater insertion** for multisource routing topologies via
  dynamic programming over piece-wise linear functions of the external
  capacitance (:func:`repro.insert_repeaters`), including the subsumed
  discrete **driver-sizing** problem;
* the supporting machinery: PWL primitives, minimal-functional-subset
  pruning, Elmore engines, Steiner topology generation, random workloads,
  baselines, and the Sec. VI experiment harness.

Quickstart::

    from repro import (ard, insert_repeaters, paper_instance,
                       paper_technology, repeater_insertion_options)

    tree = paper_instance(seed=0, n_pins=10)
    tech = paper_technology()
    print(f"unbuffered RC-diameter: {ard(tree, tech).value:.0f} ps")
    suite = insert_repeaters(tree, tech, repeater_insertion_options())
    for cost, diameter in suite.tradeoff():
        print(f"cost {cost:5.1f} -> diameter {diameter:8.1f} ps")
"""

from .analysis import (
    Table,
    exhaustive_frontier,
    minima_2d,
    minima_3d,
    render_tree,
    run_instance,
)
from .baselines import greedy_insertion, van_ginneken
from .core import (
    ARDResult,
    DriverOption,
    IntervalSet,
    MSRIOptions,
    MSRIResult,
    PWL,
    RootSolution,
    Solution,
    ard,
    compute_ard,
    insert_repeaters,
    make_driver_options,
)
from .netgen import (
    NetSpec,
    build_net,
    driver_sizing_options,
    paper_driver_options,
    paper_instance,
    paper_repeater_library,
    paper_technology,
    random_net,
    random_points,
    repeater_insertion_options,
)
from .rctree import (
    ElmoreAnalyzer,
    EvalContext,
    IncrementalARD,
    RoutingTree,
    SlewAnalyzer,
    SlewModel,
    TimingEngine,
    TreeBuilder,
)
from .sim import SimulationEngine, simulate_all, simulate_transaction, simulated_ard
from .steiner import add_insertion_points, build_steiner_topology
from .tech import (
    DEFAULT_BUFFER,
    DEFAULT_TECHNOLOGY,
    NEVER,
    Buffer,
    Repeater,
    RepeaterLibrary,
    Technology,
    Terminal,
    default_repeater_library,
    scaled_library,
)

__version__ = "2.0.0"

__all__ = [
    "ard",
    "compute_ard",
    "ARDResult",
    "insert_repeaters",
    "MSRIOptions",
    "MSRIResult",
    "RootSolution",
    "Solution",
    "PWL",
    "IntervalSet",
    "DriverOption",
    "make_driver_options",
    "ElmoreAnalyzer",
    "EvalContext",
    "IncrementalARD",
    "TimingEngine",
    "SlewAnalyzer",
    "SlewModel",
    "SimulationEngine",
    "simulate_all",
    "simulate_transaction",
    "simulated_ard",
    "RoutingTree",
    "TreeBuilder",
    "add_insertion_points",
    "build_steiner_topology",
    "Technology",
    "Terminal",
    "Buffer",
    "Repeater",
    "RepeaterLibrary",
    "NEVER",
    "DEFAULT_BUFFER",
    "DEFAULT_TECHNOLOGY",
    "default_repeater_library",
    "scaled_library",
    "NetSpec",
    "build_net",
    "random_net",
    "random_points",
    "paper_instance",
    "paper_technology",
    "paper_repeater_library",
    "paper_driver_options",
    "repeater_insertion_options",
    "driver_sizing_options",
    "van_ginneken",
    "greedy_insertion",
    "exhaustive_frontier",
    "minima_2d",
    "minima_3d",
    "render_tree",
    "run_instance",
    "Table",
    "__version__",
]
