"""Discrete driver sizing for multisource nets (paper Secs. V–VI).

The paper observes that the MSRI algorithm "can also solve the driver sizing
problem subject to the assumption that drivers are single input (thus
allowing us to easily take into account the effect a source driver has on
its preceding stage)".  The experiments build a driver library from the 1X
buffer: a kX buffer has cost ``k``, resistance ``R/k`` and input capacitance
``k * 0.05 pF``; each terminal independently picks an *input* (driving)
buffer size and an *output* (receiving) buffer size — 3 sizes each gave the
paper's "library of 9 terminal drivers (when orientation is considered)".

Electrically, for a terminal with a size-``i`` driver and size-``j``
receiver:

* the net sees the receiver's input capacitance ``c_in(j)``;
* driving, the terminal's arrival picks up ``R_prev * c_in(i)`` (loading
  the preceding logic stage), the driver intrinsic delay, and
  ``r(i) * (c_in(j) + c_E)`` — the driver also charges its own receiver;
* receiving, the downstream delay picks up the receiver's intrinsic delay
  plus ``r(j) * C_next`` into the following stage;
* the cost is ``i + j`` equivalent 1X buffers.

:class:`DriverOption` packages one such (driver, receiver) choice in the
form the MSRI leaf constructor consumes: :meth:`DriverOption.applied_to`
rewrites a terminal's electrical parameters accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from ..tech.buffers import Buffer
from ..tech.terminals import Terminal

__all__ = ["DriverOption", "make_driver_options", "apply_option_to_tree"]


@dataclass(frozen=True)
class DriverOption:
    """One sized (driver, receiver) pair a terminal may adopt."""

    name: str
    cost: float
    net_capacitance: float      # pF; receiver input cap, seen by the net
    driver_resistance: float    # ohm
    driver_intrinsic: float     # ps
    arrival_penalty: float      # ps; preceding-stage loading of the driver
    sink_delay_extra: float     # ps; receiver driving the following stage

    def __post_init__(self) -> None:
        if self.driver_resistance <= 0.0:
            raise ValueError("driver resistance must be positive")
        if self.net_capacitance < 0.0 or self.cost < 0.0:
            raise ValueError("capacitance and cost must be non-negative")

    def applied_to(self, terminal: Terminal) -> Terminal:
        """The terminal's electrical view under this sizing choice.

        ``alpha``/``beta`` shift by the boundary-stage penalties; the net
        capacitance and driving resistance are replaced outright.
        """
        alpha = terminal.arrival_time
        if terminal.is_source:
            alpha = alpha + self.arrival_penalty
        beta = terminal.downstream_delay
        if terminal.is_sink:
            beta = beta + self.sink_delay_extra
        return replace(
            terminal,
            arrival_time=alpha,
            downstream_delay=beta,
            capacitance=self.net_capacitance,
            resistance=self.driver_resistance,
            intrinsic_delay=self.driver_intrinsic,
        )


def make_driver_options(
    base: Buffer,
    scales: Sequence[float] = (1.0, 2.0, 3.0, 4.0),
    *,
    prev_stage_resistance: float = 400.0,
    next_stage_capacitance: float = 0.2,
) -> List[DriverOption]:
    """The paper's experimental driver library: all (driver, receiver) pairs.

    The paper derives its library from 1X/2X/3X/4X buffers (Sec. VI); every
    (driver size, receiver size) pair becomes an option, with the all-1X
    pair serving as the min-cost baseline.  ``prev_stage_resistance`` and
    ``next_stage_capacitance`` are the paper's 400 Ω / 0.2 pF terminal
    boundary conditions.
    """
    if prev_stage_resistance < 0.0 or next_stage_capacitance < 0.0:
        raise ValueError("boundary-stage parameters must be non-negative")
    return _option_grid(base, scales, prev_stage_resistance, next_stage_capacitance)


def apply_option_to_tree(tree, option: "DriverOption"):
    """A copy of a routing tree with every terminal dressed by ``option``.

    Lets callers evaluate a fixed-sizing scenario (e.g. the all-1X baseline)
    through the plain Elmore/ARD path without running the optimizer.
    """
    from ..rctree.topology import Node, NodeKind, RoutingTree

    nodes = []
    for n in tree.nodes:
        if n.kind is NodeKind.TERMINAL:
            nodes.append(Node(n.index, n.x, n.y, n.kind, option.applied_to(n.terminal)))
        else:
            nodes.append(n)
    return RoutingTree(
        nodes,
        [tree.parent(i) for i in range(len(tree))],
        [tree.edge_length(i) for i in range(len(tree))],
    )


def _option_grid(
    base: Buffer,
    scales: Sequence[float],
    prev_stage_resistance: float,
    next_stage_capacitance: float,
) -> List[DriverOption]:
    drivers = [base.scaled(k) for k in scales]
    receivers = [base.scaled(k) for k in scales]
    options: List[DriverOption] = []
    for drv in drivers:
        for rcv in receivers:
            options.append(
                DriverOption(
                    name=f"drv:{drv.name}/rcv:{rcv.name}",
                    cost=drv.cost + rcv.cost,
                    net_capacitance=rcv.input_capacitance,
                    driver_resistance=drv.output_resistance,
                    driver_intrinsic=drv.intrinsic_delay,
                    arrival_penalty=prev_stage_resistance * drv.input_capacitance,
                    sink_delay_extra=rcv.intrinsic_delay
                    + rcv.output_resistance * next_stage_capacitance,
                )
            )
    return options
