"""Minimal functional subset (MFS) pruning — paper Sec. IV-D, Fig. 4.

In scalar multidimensional dynamic programming one keeps the *minima* of the
solution set under component-wise dominance (Definition 4.2, the classic
point-dominance problem of Kung–Luccio–Preparata).  Here two of the five
coordinates are *functions* of the external capacitance ``c_E``, so a
solution may be dominated for some values of ``c_E`` and uniquely optimal
for others.  The paper's answer (Definition 4.3) is the minimal functional
subset: for each solution, delete the regions of the domain where some other
solution is no worse in every coordinate, and drop solutions whose domain
empties out.

The fundamental operation — detect all ranges of ``c_E`` where ``s2``
dominates ``s1`` and carve them from ``s1``'s domain — runs in time linear
in the number of participating PWL segments (scalar gates first, then one
``region_leq`` per function coordinate, then an interval intersection).

Tie handling: identical solutions would annihilate each other under naive
mutual weak pruning.  We process pruning asymmetrically — an *earlier*
solution prunes a later one wherever it is weakly no worse, while a later
solution prunes an earlier one only where it is *strictly* better in at
least one coordinate.  Under this rule, for every ``c_E`` the first-listed
optimum always survives, which is exactly what the DP's correctness needs.

Two strategies are provided:

* :func:`mfs_pairwise` — the straightforward O(|S|^2) incremental filter;
* :func:`mfs` — the paper's divide-and-conquer (Fig. 4): recursively prune
  both halves, then cross-prune.  Suboptimal solutions tend to die in deep
  recursion levels, avoiding many comparisons at the top; the worst case
  remains quadratic in pairwise comparisons (as the paper notes).

Both accept ``prescreen`` (default on): before building any region,
:func:`prune_one` classifies the pair with the allocation-free Shi–Li
style predictive comparison (:mod:`repro.core.prefilter`) and resolves
the no-dominance and everywhere-dominance cases directly; only genuinely
partial comparisons pay for the interval machinery.  The classification
replicates the region arithmetic exactly, so results are bit-identical
with the prescreen on or off (``docs/PRUNING.md``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..tech.terminals import NEVER
from .intervals import IntervalSet
from .prefilter import LEQ_EMPTY, LEQ_FULL, domain_subset, leq_status
from .solution import Solution

__all__ = ["prune_one", "mfs", "mfs_pairwise"]

#: Scalar slack: coordinates within this are treated as tied.
_SCALAR_ATOL = 1e-9


def _scalars_weakly_dominate(by: Solution, s: Solution) -> bool:
    """All three scalar coordinates of ``by`` are <= those of ``s``.

    Solutions of different inversion parity are functionally distinct and
    never comparable (inverter extension).
    """
    return (
        by.parity == s.parity
        and by.cost <= s.cost + _SCALAR_ATOL
        and by.cap <= s.cap + _SCALAR_ATOL
        and by.q <= s.q + _SCALAR_ATOL
    )


def _scalars_strictly_better_somewhere(by: Solution, s: Solution) -> bool:
    return (
        by.cost < s.cost - _SCALAR_ATOL
        or by.cap < s.cap - _SCALAR_ATOL
        or (by.q < s.q - _SCALAR_ATOL and not (by.q == NEVER and s.q == NEVER))
    )


def _function_leq_region(by_f, s_f, common: IntervalSet) -> IntervalSet:
    """Region of ``common`` where coordinate ``by_f`` is <= ``s_f``.

    ``None`` encodes the function being identically ``-inf`` (no source /
    no internal pair): ``-inf`` is <= anything, and nothing finite is
    <= ``-inf``.
    """
    if by_f is None:
        return common
    if s_f is None:
        return IntervalSet.empty()
    return by_f.region_leq(s_f).intersect(common)


def _function_lt_region(by_f, s_f, common: IntervalSet) -> IntervalSet:
    """Region of ``common`` where ``by_f`` is strictly below ``s_f``."""
    if s_f is None:
        return IntervalSet.empty()
    if by_f is None:
        return common  # -inf < finite everywhere they are both defined
    return by_f.region_lt(s_f).intersect(common)


def prune_one(
    s: Solution, by: Solution, *, strict: bool, prescreen: bool = True
) -> Optional[Solution]:
    """Remove from ``s`` the domain region where ``by`` dominates it.

    With ``strict=False`` dominance is weak (ties count); with
    ``strict=True`` the challenger must additionally be strictly better in
    at least one coordinate at the point.  Returns the surviving solution
    (possibly ``s`` unchanged) or None when nothing survives.

    ``prescreen`` short-circuits the two overwhelmingly common cases —
    ``by`` dominates nowhere, or everywhere — with the allocation-free
    classification of :func:`repro.core.prefilter.leq_status`; the result
    is identical either way (the classification replicates the region
    arithmetic), the flag only exists so ablations and contracts can run
    the pure Fig. 4 machinery.
    """
    if not _scalars_weakly_dominate(by, s):
        return s
    return _prune_one_gated(s, by, strict, prescreen)


def _prune_one_gated(
    s: Solution, by: Solution, strict: bool, prescreen: bool
) -> Optional[Solution]:
    """:func:`prune_one` body for callers that already ran the scalar gate.

    The pairwise and merge loops gate on the exact same comparisons as
    :func:`_scalars_weakly_dominate` before every call, so re-checking
    here would only burn time on the hottest path.
    """
    if prescreen:
        # None coordinates (identically -inf) dominate the call mix; decide
        # them inline and only pay a leq_status call for finite pairs
        by_arr = by.arr
        s_arr = s.arr
        if by_arr is None:
            arr_st = LEQ_FULL
        elif s_arr is None:
            return s  # finite is never <= -inf: LEQ_EMPTY
        else:
            arr_st = leq_status(by_arr, s_arr)
            if arr_st == LEQ_EMPTY:
                return s
        by_diam = by.diam
        s_diam = s.diam
        if by_diam is None:
            diam_st = LEQ_FULL
        elif s_diam is None:
            return s
        else:
            diam_st = leq_status(by_diam, s_diam)
            if diam_st == LEQ_EMPTY:
                return s
        # when the victim's domain is contained in the killer's, the
        # intersection *is* the victim's domain — an allocation-free walk
        # replaces building the interval set
        contained = domain_subset(s.domain, by.domain)
        if contained:
            common = s.domain
        else:
            common = s.domain.intersect(by.domain)
            if common.is_empty:
                return s
        if arr_st == LEQ_FULL and diam_st == LEQ_FULL and (
            not strict or _scalars_strictly_better_somewhere(by, s)
        ):
            # dominated on the whole common domain: the region is exactly
            # the domain intersection, so skip the per-coordinate regions
            if contained:
                return None  # survivor = s.domain - s.domain = empty
            survivor = s.domain.difference(common)
            if survivor.is_empty:
                return None
            if survivor == s.domain:
                return s
            return s.restricted(survivor)
        # mixed case: a FULL coordinate's region is the whole common
        # domain (the functions cover both solutions' domains), so only
        # the PARTIAL coordinate pays for the region machinery
        if arr_st == LEQ_FULL:
            region = common
        else:
            region = _function_leq_region(by.arr, s.arr, common)
            if region.is_empty:
                return s
        if diam_st != LEQ_FULL:
            region = _function_leq_region(by.diam, s.diam, region)
            if region.is_empty:
                return s
    else:
        common = s.domain.intersect(by.domain)
        if common.is_empty:
            return s
        region = _function_leq_region(by.arr, s.arr, common)
        if region.is_empty:
            return s
        region = _function_leq_region(by.diam, s.diam, region)
        if region.is_empty:
            return s

    if strict and not _scalars_strictly_better_somewhere(by, s):
        strict_region = _function_lt_region(by.arr, s.arr, common).union(
            _function_lt_region(by.diam, s.diam, common)
        )
        region = region.intersect(strict_region)
        if region.is_empty:
            return s

    survivor = s.domain.difference(region)
    if survivor.is_empty:
        return None
    if survivor == s.domain:
        return s
    return s.restricted(survivor)


def mfs_pairwise(
    solutions: Sequence[Solution], *, prescreen: bool = True
) -> List[Solution]:
    """Incremental O(n^2) minimal-functional-subset computation.

    Earlier solutions get weak-pruning priority over later ones, so the
    result is order-dependent in the presence of exact ties (but always a
    valid MFS: every point of the domain keeps one of its optima).
    """
    kept: List[Solution] = []
    atol = _SCALAR_ATOL
    for cand in solutions:
        c: Optional[Solution] = cand
        for k in kept:
            # inlined scalar gate (hot path): k can only prune c when all
            # three of its scalars are no worse
            if (k.parity == c.parity and k.cost <= c.cost + atol
                    and k.cap <= c.cap + atol and k.q <= c.q + atol):
                c = _prune_one_gated(c, k, False, prescreen)
                if c is None:
                    break
        if c is None:
            continue
        changed = False
        next_kept: List[Solution] = []
        for k in kept:
            if (c.parity == k.parity and c.cost <= k.cost + atol
                    and c.cap <= k.cap + atol and c.q <= k.q + atol):
                k2 = _prune_one_gated(k, c, True, prescreen)
            else:
                k2 = k
            if k2 is not None:
                next_kept.append(k2)
            if k2 is not k:
                changed = True
        next_kept.append(c)
        kept = next_kept if changed else kept + [c]
    return kept


def _cost_run_skips(front: List[Solution]) -> List[int]:
    """``nxt[i]``: first index past ``i`` whose ``(parity, cost)`` differs.

    Fronts are sorted by ``(parity, cost, cap, q, uid)``, so equal
    ``(parity, cost)`` runs are contiguous and cap-ascending inside.  Run
    boundaries use exact equality on purpose: costs inside a front are
    sums of the same library costs, so equal costs are bit-equal — and a
    conservative boundary (treating near-equal costs as different runs)
    only shortens a skip, never skips a killer the gates would pass.
    """
    n = len(front)
    nxt = [n] * n
    for i in range(n - 2, -1, -1):
        s = front[i]
        t = front[i + 1]
        if s.parity == t.parity and s.cost == t.cost:  # repro: noqa[R001]
            nxt[i] = nxt[i + 1]
        else:
            nxt[i] = i + 1
    return nxt


def _merge(
    a: List[Solution], b: List[Solution], prescreen: bool
) -> List[Solution]:
    """Cross-prune two internally-minimal sets (the Fig. 4 merge step).

    Both inputs arrive sorted by the pruner's key ``(parity, cost, cap,
    q, uid)`` — :func:`mfs` pre-sorts, pruning preserves scalars, and the
    concatenation below keeps every key in ``a`` below every key in ``b``
    — so a killer scan can stop at the first killer whose parity or cost
    already fails the weak-dominance gate: every later killer fails the
    same exact comparison.  Within an equal ``(parity, cost)`` run the
    killers are cap-ascending, so the first killer failing the cap gate
    certifies the rest of its run; :func:`_cost_run_skips` lets the scan
    jump whole runs (integer library costs make them long on fat fronts).
    """
    atol = _SCALAR_ATOL
    na = len(a)
    nxt_a = _cost_run_skips(a)
    pruned_b: List[Solution] = []
    for s in b:
        cur: Optional[Solution] = s
        cp = s.parity
        climit = s.cost + atol
        ccap = s.cap + atol
        cq = s.q + atol
        i = 0
        while i < na:
            k = a[i]
            kp = k.parity
            if kp != cp:
                if kp > cp:
                    break
                i = nxt_a[i]
                continue
            if k.cost > climit:
                break
            if k.cap > ccap:
                i = nxt_a[i]
                continue
            if k.q <= cq:
                cur = _prune_one_gated(cur, k, False, prescreen)
                if cur is None:
                    break
            i += 1
        if cur is not None:
            pruned_b.append(cur)
    npb = len(pruned_b)
    nxt_pb = _cost_run_skips(pruned_b)
    pruned_a: List[Solution] = []
    for s in a:
        cur = s
        cp = s.parity
        climit = s.cost + atol
        ccap = s.cap + atol
        cq = s.q + atol
        i = 0
        while i < npb:
            k = pruned_b[i]
            kp = k.parity
            if kp != cp:
                if kp > cp:
                    break
                i = nxt_pb[i]
                continue
            if k.cost > climit:
                break
            if k.cap > ccap:
                i = nxt_pb[i]
                continue
            if k.q <= cq:
                cur = _prune_one_gated(cur, k, True, prescreen)
                if cur is None:
                    break
            i += 1
        if cur is not None:
            pruned_a.append(cur)
    return pruned_a + pruned_b


def mfs(
    solutions: Sequence[Solution],
    *,
    leaf_size: int = 8,
    prescreen: bool = True,
) -> List[Solution]:
    """Divide-and-conquer MFS (paper Fig. 4).

    Splits the set, recursively minimizes both halves, and merges by
    cross-pruning; suboptimal solutions are mostly eliminated deep in the
    recursion where comparisons are cheap.  Solutions are pre-sorted by
    their scalar coordinates (the paper's Sec. V organizational suggestion:
    "maintaining solution sets in sorted order by cost and secondarily by
    capacitance"), which makes weak kills land early.
    """
    ordered = sorted(solutions, key=lambda s: (s.parity, s.cost, s.cap, s.q, s.uid))
    return _mfs_rec(ordered, leaf_size, prescreen)


def _mfs_rec(
    solutions: Sequence[Solution], leaf_size: int, prescreen: bool
) -> List[Solution]:
    if len(solutions) <= leaf_size:
        return mfs_pairwise(solutions, prescreen=prescreen)
    mid = len(solutions) // 2
    left = _mfs_rec(solutions[:mid], leaf_size, prescreen)
    right = _mfs_rec(solutions[mid:], leaf_size, prescreen)
    return _merge(left, right, prescreen)
