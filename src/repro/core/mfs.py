"""Minimal functional subset (MFS) pruning — paper Sec. IV-D, Fig. 4.

In scalar multidimensional dynamic programming one keeps the *minima* of the
solution set under component-wise dominance (Definition 4.2, the classic
point-dominance problem of Kung–Luccio–Preparata).  Here two of the five
coordinates are *functions* of the external capacitance ``c_E``, so a
solution may be dominated for some values of ``c_E`` and uniquely optimal
for others.  The paper's answer (Definition 4.3) is the minimal functional
subset: for each solution, delete the regions of the domain where some other
solution is no worse in every coordinate, and drop solutions whose domain
empties out.

The fundamental operation — detect all ranges of ``c_E`` where ``s2``
dominates ``s1`` and carve them from ``s1``'s domain — runs in time linear
in the number of participating PWL segments (scalar gates first, then one
``region_leq`` per function coordinate, then an interval intersection).

Tie handling: identical solutions would annihilate each other under naive
mutual weak pruning.  We process pruning asymmetrically — an *earlier*
solution prunes a later one wherever it is weakly no worse, while a later
solution prunes an earlier one only where it is *strictly* better in at
least one coordinate.  Under this rule, for every ``c_E`` the first-listed
optimum always survives, which is exactly what the DP's correctness needs.

Two strategies are provided:

* :func:`mfs_pairwise` — the straightforward O(|S|^2) incremental filter;
* :func:`mfs` — the paper's divide-and-conquer (Fig. 4): recursively prune
  both halves, then cross-prune.  Suboptimal solutions tend to die in deep
  recursion levels, avoiding many comparisons at the top; the worst case
  remains quadratic in pairwise comparisons (as the paper notes).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..tech.terminals import NEVER
from .intervals import IntervalSet
from .solution import Solution

__all__ = ["prune_one", "mfs", "mfs_pairwise"]

#: Scalar slack: coordinates within this are treated as tied.
_SCALAR_ATOL = 1e-9


def _scalars_weakly_dominate(by: Solution, s: Solution) -> bool:
    """All three scalar coordinates of ``by`` are <= those of ``s``.

    Solutions of different inversion parity are functionally distinct and
    never comparable (inverter extension).
    """
    return (
        by.parity == s.parity
        and by.cost <= s.cost + _SCALAR_ATOL
        and by.cap <= s.cap + _SCALAR_ATOL
        and by.q <= s.q + _SCALAR_ATOL
    )


def _scalars_strictly_better_somewhere(by: Solution, s: Solution) -> bool:
    return (
        by.cost < s.cost - _SCALAR_ATOL
        or by.cap < s.cap - _SCALAR_ATOL
        or (by.q < s.q - _SCALAR_ATOL and not (by.q == NEVER and s.q == NEVER))
    )


def _function_leq_region(by_f, s_f, common: IntervalSet) -> IntervalSet:
    """Region of ``common`` where coordinate ``by_f`` is <= ``s_f``.

    ``None`` encodes the function being identically ``-inf`` (no source /
    no internal pair): ``-inf`` is <= anything, and nothing finite is
    <= ``-inf``.
    """
    if by_f is None:
        return common
    if s_f is None:
        return IntervalSet.empty()
    return by_f.region_leq(s_f).intersect(common)


def _function_lt_region(by_f, s_f, common: IntervalSet) -> IntervalSet:
    """Region of ``common`` where ``by_f`` is strictly below ``s_f``."""
    if s_f is None:
        return IntervalSet.empty()
    if by_f is None:
        return common  # -inf < finite everywhere they are both defined
    return by_f.region_lt(s_f).intersect(common)


def prune_one(s: Solution, by: Solution, *, strict: bool) -> Optional[Solution]:
    """Remove from ``s`` the domain region where ``by`` dominates it.

    With ``strict=False`` dominance is weak (ties count); with
    ``strict=True`` the challenger must additionally be strictly better in
    at least one coordinate at the point.  Returns the surviving solution
    (possibly ``s`` unchanged) or None when nothing survives.
    """
    if not _scalars_weakly_dominate(by, s):
        return s
    common = s.domain.intersect(by.domain)
    if common.is_empty:
        return s

    region = _function_leq_region(by.arr, s.arr, common)
    if region.is_empty:
        return s
    region = _function_leq_region(by.diam, s.diam, region)
    if region.is_empty:
        return s

    if strict and not _scalars_strictly_better_somewhere(by, s):
        strict_region = _function_lt_region(by.arr, s.arr, common).union(
            _function_lt_region(by.diam, s.diam, common)
        )
        region = region.intersect(strict_region)
        if region.is_empty:
            return s

    survivor = s.domain.difference(region)
    if survivor.is_empty:
        return None
    if survivor == s.domain:
        return s
    return s.restricted(survivor)


def mfs_pairwise(solutions: Sequence[Solution]) -> List[Solution]:
    """Incremental O(n^2) minimal-functional-subset computation.

    Earlier solutions get weak-pruning priority over later ones, so the
    result is order-dependent in the presence of exact ties (but always a
    valid MFS: every point of the domain keeps one of its optima).
    """
    kept: List[Solution] = []
    atol = _SCALAR_ATOL
    for cand in solutions:
        c: Optional[Solution] = cand
        for k in kept:
            # inlined scalar gate (hot path): k can only prune c when all
            # three of its scalars are no worse
            if (k.parity == c.parity and k.cost <= c.cost + atol
                    and k.cap <= c.cap + atol and k.q <= c.q + atol):
                c = prune_one(c, k, strict=False)
                if c is None:
                    break
        if c is None:
            continue
        changed = False
        next_kept: List[Solution] = []
        for k in kept:
            if (c.parity == k.parity and c.cost <= k.cost + atol
                    and c.cap <= k.cap + atol and c.q <= k.q + atol):
                k2 = prune_one(k, c, strict=True)
            else:
                k2 = k
            if k2 is not None:
                next_kept.append(k2)
            if k2 is not k:
                changed = True
        next_kept.append(c)
        kept = next_kept if changed else kept + [c]
    return kept


def _merge(a: List[Solution], b: List[Solution]) -> List[Solution]:
    """Cross-prune two internally-minimal sets (the Fig. 4 merge step)."""
    atol = _SCALAR_ATOL
    pruned_b: List[Solution] = []
    for s in b:
        cur: Optional[Solution] = s
        for k in a:
            if (k.parity == cur.parity and k.cost <= cur.cost + atol
                    and k.cap <= cur.cap + atol and k.q <= cur.q + atol):
                cur = prune_one(cur, k, strict=False)
                if cur is None:
                    break
        if cur is not None:
            pruned_b.append(cur)
    pruned_a: List[Solution] = []
    for s in a:
        cur = s
        for k in pruned_b:
            if (k.parity == cur.parity and k.cost <= cur.cost + atol
                    and k.cap <= cur.cap + atol and k.q <= cur.q + atol):
                cur = prune_one(cur, k, strict=True)
                if cur is None:
                    break
        if cur is not None:
            pruned_a.append(cur)
    return pruned_a + pruned_b


def mfs(solutions: Sequence[Solution], *, leaf_size: int = 8) -> List[Solution]:
    """Divide-and-conquer MFS (paper Fig. 4).

    Splits the set, recursively minimizes both halves, and merges by
    cross-pruning; suboptimal solutions are mostly eliminated deep in the
    recursion where comparisons are cheap.  Solutions are pre-sorted by
    their scalar coordinates (the paper's Sec. V organizational suggestion:
    "maintaining solution sets in sorted order by cost and secondarily by
    capacitance"), which makes weak kills land early.
    """
    ordered = sorted(solutions, key=lambda s: (s.parity, s.cost, s.cap, s.q, s.uid))
    return _mfs_rec(ordered, leaf_size)


def _mfs_rec(solutions: Sequence[Solution], leaf_size: int) -> List[Solution]:
    if len(solutions) <= leaf_size:
        return mfs_pairwise(solutions)
    mid = len(solutions) // 2
    left = _mfs_rec(solutions[:mid], leaf_size)
    right = _mfs_rec(solutions[mid:], leaf_size)
    return _merge(left, right)
