"""Solution characterization and combinators for multisource DP (Sec. IV).

A candidate repeater assignment to a subtree ``T_v`` is characterized by
(paper Sec. IV-B):

* ``cost``  — scalar; total cost of repeaters (and sized drivers) used;
* ``cap``   — scalar; capacitance of the subtree as seen from above;
* ``q``     — scalar; maximum augmented delay from ``v`` to sinks in ``T_v``
  (``-inf`` when the subtree holds no sink);
* ``arr``   — PWL in the external capacitance ``c_E``: maximum augmented
  arrival time at ``v`` from sources in ``T_v`` (``None`` when no source);
* ``diam``  — PWL in ``c_E``: maximum augmented RC-diameter over
  source/sink pairs internal to ``T_v`` (``None`` when no pair).

``arr`` and ``diam`` are functions of ``c_E`` because a source inside the
subtree drives *through* ``v`` into the unknown outside world: the external
capacitance multiplies the accumulated path resistance (the PWL slopes), and
the identity of the critical source can flip as ``c_E`` grows (the paper's
Fig. 3).

This module provides the five solution transformers the DP needs — leaf
construction, wire augmentation (Fig. 10), joining at a branch (Fig. 7),
repeater application (Fig. 8), and root evaluation (Fig. 9) — each a direct
transcription of the paper's subroutine, implemented with the PWL
primitives of Eq. (3).

``domain`` tracks where (in ``c_E``) the solution is still potentially
useful; minimal-functional-subset pruning (``repro.core.mfs``) carves holes
into it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..tech.buffers import Repeater
from ..tech.terminals import NEVER, Terminal
from .intervals import IntervalSet
from .pwl import PWL

__all__ = [
    "Placement",
    "Trace",
    "Solution",
    "leaf_solution",
    "augment_wire",
    "join",
    "apply_repeater",
    "RootSolution",
    "evaluate_at_root",
]

_ids = itertools.count()


@dataclass(frozen=True)
class Placement:
    """One decision recorded in a solution's provenance: ``what`` went where.

    ``what`` is a :class:`~repro.tech.buffers.Repeater` (A-side facing the
    root) for insertion points, or a driver-sizing option for terminals.
    """

    node: int
    what: object


class Trace:
    """Immutable provenance DAG; reconstructs the assignment of a solution.

    Solutions share trace prefixes, so recording a placement is O(1) and the
    full assignment is only materialized for the solutions a caller keeps.
    """

    __slots__ = ("placement", "parents")

    def __init__(
        self,
        placement: Optional[Placement] = None,
        parents: Tuple["Trace", ...] = (),
    ):
        self.placement = placement
        self.parents = parents

    def collect(self) -> List[Placement]:
        """All placements reachable from this trace node."""
        out: List[Placement] = []
        stack = [self]
        seen = set()
        while stack:
            t = stack.pop()
            if id(t) in seen:
                continue
            seen.add(id(t))
            if t.placement is not None:
                out.append(t.placement)
            stack.extend(t.parents)
        return out

    def extended(self, placement: Placement) -> "Trace":
        return Trace(placement, (self,))

    @staticmethod
    def merged(a: "Trace", b: "Trace") -> "Trace":
        return Trace(None, (a, b))


_EMPTY_TRACE = Trace()


@dataclass(frozen=True)
class Solution:
    """One DP subsolution (see module docstring for field semantics).

    ``uid`` breaks ties deterministically during pruning.  Invariants:
    ``arr``/``diam`` are either ``None`` or defined exactly on ``domain``.

    ``parity`` supports the paper's Sec. V extension ("the use of inverters
    as repeaters is possible and straightforward"): on a bus, every
    source-sink path must cross an even number of inverters, which on a
    tree is equivalent to *all terminals sharing one inversion parity
    relative to the root* — so a single bit per subtree suffices.  An
    inverting repeater flips it; joining subtrees requires agreement; the
    root accepts only parity 0.  Solutions of different parity are
    incomparable during pruning.
    """

    cost: float
    cap: float
    q: float
    arr: Optional[PWL]
    diam: Optional[PWL]
    domain: IntervalSet
    trace: Trace = _EMPTY_TRACE
    parity: int = 0
    uid: int = -1

    def __post_init__(self) -> None:
        if self.uid < 0:
            object.__setattr__(self, "uid", next(_ids))

    @property
    def has_source(self) -> bool:
        return self.arr is not None

    @property
    def has_sink(self) -> bool:
        return self.q != NEVER

    def restricted(self, region: IntervalSet) -> Optional["Solution"]:
        """The same solution valid only on ``region``; None if nowhere."""
        new_domain = self.domain.intersect(region)
        if new_domain.is_empty:
            return None
        if new_domain == self.domain:
            return self
        return replace(
            self,
            domain=new_domain,
            arr=self.arr.restrict(new_domain) if self.arr is not None else None,
            diam=self.diam.restrict(new_domain) if self.diam is not None else None,
            uid=self.uid,
        )

    def check_invariants(self) -> None:
        """Debug helper: verify function domains track the solution domain."""
        for f in (self.arr, self.diam):
            if f is not None and not f.domain().approx_equal(self.domain):
                raise AssertionError(
                    f"solution {self.uid}: function domain {f.domain()!r} "
                    f"!= solution domain {self.domain!r}"
                )
        if self.cap < 0 or self.cost < 0:
            raise AssertionError("negative cap or cost")

    def describe(self) -> str:
        """Compact human-readable summary."""
        arr = f"{self.arr.num_segments}seg" if self.arr is not None else "-"
        diam = f"{self.diam.num_segments}seg" if self.diam is not None else "-"
        q = "-" if self.q == NEVER else f"{self.q:.1f}"
        return (
            f"Solution(cost={self.cost:g}, cap={self.cap:.4f}, q={q}, "
            f"arr={arr}, diam={diam}, dom={len(self.domain)}iv)"
        )


# -- LeafSolutions (Fig. 6) ------------------------------------------------------


def leaf_solution(
    terminal: Terminal,
    c_max: float,
    *,
    cost: float = 0.0,
    trace: Trace = _EMPTY_TRACE,
) -> Solution:
    """The (single) solution for a leaf terminal.

    The terminal presents ``c(v)`` to the net; as a source its arrival
    function is ``alpha + intrinsic + r * (c(v) + c_E)`` — the driver sees
    its own input capacitance plus everything external; as a sink it
    contributes ``q = beta``.
    """
    arr = None
    if terminal.is_source:
        intercept = (
            terminal.arrival_time
            + terminal.intrinsic_delay
            + terminal.resistance * terminal.capacitance
        )
        arr = PWL.linear(intercept, terminal.resistance, 0.0, c_max)
    q = terminal.downstream_delay if terminal.is_sink else NEVER
    return Solution(
        cost=cost,
        cap=terminal.capacitance,
        q=q,
        arr=arr,
        diam=None,
        domain=IntervalSet.single(0.0, c_max),
        trace=trace,
    )


# -- Augment (Fig. 10): extend a subtree by the wire to its parent ----------------


def augment_wire(
    sol: Solution,
    resistance: float,
    capacitance: float,
    c_max: float,
    *,
    extra_cost: float = 0.0,
    trace_placement: Optional[Placement] = None,
) -> Optional[Solution]:
    """Solution for the subtree plus the wire ``(v, parent)``.

    Downward: the wire adds ``R*(C/2 + cap)`` to every root-to-sink path.
    Upward: sources now see the wire capacitance as part of the outside
    world (domain shift by ``C``) plus the wire's own Elmore term
    ``R*(C/2 + c_E)``, which adds slope ``R`` to the arrival function.
    Internal paths only feel the extra external capacitance (pure shift).

    ``extra_cost``/``trace_placement`` support the wire-sizing extension:
    a sized segment charges its area and records the chosen width class.

    Returns None when the shifted domain becomes empty (cannot happen when
    ``c_max`` bounds the whole net's capacitance, but guarded for safety).
    """
    if resistance < 0.0 or capacitance < 0.0:
        raise ValueError("wire parameters must be non-negative")
    new_domain = sol.domain.shift(-capacitance).clamp(0.0, c_max)
    if new_domain.is_empty:
        return None
    q = sol.q
    if q != NEVER:
        q = q + resistance * (0.5 * capacitance + sol.cap)
    arr = None
    if sol.arr is not None:
        arr = sol.arr.shift(capacitance).add_linear(
            resistance * 0.5 * capacitance, resistance
        )
        arr = arr.restrict(new_domain)
        if arr.is_empty:
            return None
    diam = None
    if sol.diam is not None:
        diam = sol.diam.shift(capacitance).restrict(new_domain)
        if diam.is_empty:
            return None
    trace = sol.trace
    if trace_placement is not None:
        trace = trace.extended(trace_placement)
    return Solution(
        cost=sol.cost + extra_cost,
        cap=sol.cap + capacitance,
        q=q,
        arr=arr,
        diam=diam,
        domain=new_domain,
        trace=trace,
        parity=sol.parity,
    )


# -- JoinSets (Fig. 7): merge two child subtrees at a branch point ----------------


def join(s1: Solution, s2: Solution, c_max: float) -> Optional[Solution]:
    """Combine sibling solutions at their common branch vertex.

    Each side's sources now additionally see the other side's capacitance
    (domain substitution ``c_E -> c_E + cap_other``); new internal
    source/sink pairs arise across the branch, pairing one side's arrival
    function with the other side's ``q``.

    Returns None for parity-incompatible sides (inverter extension): a
    cross-branch path would see an odd number of inversions.
    """
    if s1.parity != s2.parity:
        return None
    domain = (
        s1.domain.shift(-s2.cap)
        .intersect(s2.domain.shift(-s1.cap))
        .clamp(0.0, c_max)
    )
    if domain.is_empty:
        return None

    arr1 = s1.arr.shift(s2.cap).restrict(domain) if s1.arr is not None else None
    arr2 = s2.arr.shift(s1.cap).restrict(domain) if s2.arr is not None else None
    for a in (arr1, arr2):
        if a is not None and a.is_empty:
            return None

    arr = _max_optional(arr1, arr2)

    diam_candidates: List[PWL] = []
    if s1.diam is not None:
        diam_candidates.append(s1.diam.shift(s2.cap).restrict(domain))
    if s2.diam is not None:
        diam_candidates.append(s2.diam.shift(s1.cap).restrict(domain))
    if arr1 is not None and s2.q != NEVER:
        diam_candidates.append(arr1.add_scalar(s2.q))
    if arr2 is not None and s1.q != NEVER:
        diam_candidates.append(arr2.add_scalar(s1.q))
    if any(c.is_empty for c in diam_candidates):
        return None
    diam = None
    for c in diam_candidates:
        diam = c if diam is None else diam.maximum(c)

    return Solution(
        cost=s1.cost + s2.cost,
        cap=s1.cap + s2.cap,
        q=max(s1.q, s2.q),
        arr=arr,
        diam=diam,
        domain=domain,
        trace=Trace.merged(s1.trace, s2.trace),
        parity=s1.parity,
    )


def _max_optional(a: Optional[PWL], b: Optional[PWL]) -> Optional[PWL]:
    if a is None:
        return b
    if b is None:
        return a
    return a.maximum(b)


# -- RepeaterSolutions (Fig. 8) -----------------------------------------------------


def apply_repeater(
    sol: Solution, rep: Repeater, node: int, c_max: float
) -> Optional[Solution]:
    """Place ``rep`` at the subtree root (A-side facing the tree root).

    The repeater *decouples*: the outside now sees only ``c_a``; the inside
    sees exactly ``c_b``, so the arrival function collapses to the scalar
    ``arr(c_b)`` and restarts as a fresh line with slope ``r_ba``; the
    internal diameter freezes at ``diam(c_b)``; downstream delay gains the
    A→B buffer driving the (now fixed) subtree load.

    Returns None when the solution was pruned at ``c_E = c_b`` (another
    solution dominates there and will receive this repeater instead).
    """
    if not sol.domain.contains(rep.c_b, atol=1e-12):
        return None
    full = IntervalSet.single(0.0, c_max)

    q = sol.q
    if q != NEVER:
        q = rep.d_ab + rep.r_ab * sol.cap + sol.q

    arr = None
    if sol.arr is not None:
        arrival_at_b = sol.arr.evaluate(rep.c_b)
        arr = PWL.linear(arrival_at_b + rep.d_ba, rep.r_ba, 0.0, c_max)

    diam = None
    if sol.diam is not None:
        diam = PWL.constant(sol.diam.evaluate(rep.c_b), 0.0, c_max)

    return Solution(
        cost=sol.cost + rep.cost,
        cap=rep.c_a,
        q=q,
        arr=arr,
        diam=diam,
        domain=full,
        trace=sol.trace.extended(Placement(node, rep)),
        parity=sol.parity ^ (1 if rep.is_inverting else 0),
    )


# -- RootSolutions (Fig. 9) -----------------------------------------------------------


@dataclass(frozen=True)
class RootSolution:
    """A complete net solution: scalar cost and ARD plus its assignment."""

    cost: float
    ard: float
    trace: Trace

    def assignment(self) -> Dict[int, object]:
        """Node index -> placed object (repeater or driver option)."""
        return {p.node: p.what for p in self.trace.collect()}

    def repeater_count(self) -> int:
        return sum(1 for p in self.trace.collect() if isinstance(p.what, Repeater))


def evaluate_at_root(
    sol: Solution,
    root_node: int,
    terminal: Terminal,
    *,
    extra_cost: float = 0.0,
    capacitance: Optional[float] = None,
    resistance: Optional[float] = None,
    intrinsic: Optional[float] = None,
    arrival_penalty: float = 0.0,
    sink_delay_extra: float = 0.0,
    trace_placement: Optional[Placement] = None,
) -> Optional[RootSolution]:
    """Close a solution at the root terminal, producing (cost, ARD).

    The solution covers everything except the root terminal itself, so the
    external capacitance finally becomes known: the root's input capacitance.
    The keyword overrides support driver sizing at the root (a sized root
    driver changes the capacitance/resistance and adds cost); with none
    given, the terminal's own parameters apply.

    ARD candidates (paper Fig. 9):

    * internal pairs: ``diam(c_root)``;
    * root as sink:   ``arr(c_root) + beta(root)``;
    * root as source: ``alpha + intrinsic + r*(c_root + cap) + q``.

    Returns None when the solution was pruned at ``c_E = c_root`` or offers
    no source/sink pair at all.
    """
    c_root = terminal.capacitance if capacitance is None else capacitance
    r_root = terminal.resistance if resistance is None else resistance
    d_root = terminal.intrinsic_delay if intrinsic is None else intrinsic

    if sol.parity != 0:
        # some terminal would receive inverted data (inverter extension)
        return None
    if not sol.domain.contains(c_root, atol=1e-12):
        return None

    ard = NEVER
    if sol.diam is not None:
        ard = max(ard, sol.diam.evaluate(c_root))
    if terminal.is_sink and sol.arr is not None:
        ard = max(
            ard,
            sol.arr.evaluate(c_root) + terminal.downstream_delay + sink_delay_extra,
        )
    if terminal.is_source and sol.q != NEVER:
        ard = max(
            ard,
            terminal.arrival_time
            + arrival_penalty
            + d_root
            + r_root * (c_root + sol.cap)
            + sol.q,
        )
    if ard == NEVER:
        return None
    trace = sol.trace
    if trace_placement is not None:
        trace = trace.extended(trace_placement)
    return RootSolution(cost=sol.cost + extra_cost, ard=ard, trace=trace)
