"""Subtree-front memoization for the MSRI dynamic program.

The bottom-up DP of :func:`repro.core.msri.insert_repeaters` computes, for
every vertex ``v``, a pruned candidate front for the subtree ``T_v``.  That
front is a *pure function* of the subtree's content: its topology, terminal
parameters, edge lengths and width factors, the technology constants, the
:class:`~repro.core.msri.MSRIOptions` knobs, and the global domain bound
``c_max`` (which enters every solution's ``c_E`` domain).  Nothing outside
``T_v`` influences it — the outside world is abstracted into the symbolic
external capacitance.  So fronts can be cached by content hash and reused
across invocations, across edits, and across *different* trees that share
subtrees (docs/ALGORITHMS.md §13 gives the soundness argument, including
why fresh ``uid`` tie-breaks preserve value-bit-identity).

This module provides the three layers the cache needs:

* **signatures** — :func:`subtree_signatures` composes one blake2b digest
  per vertex bottom-up in O(n) total, mirroring
  :func:`repro.rctree.flat.canonical_net_key`'s convention: floats enter as
  raw IEEE-754 bytes, names never enter (they never enter the arithmetic);
  :func:`options_fingerprint` digests the technology constants and every
  optimizer knob; :func:`front_key` combines both with ``c_max``.
* **portable fronts** — :func:`pack_front` / :func:`unpack_front` convert a
  pruned front to and from a tree-independent record: scalars, domain
  interval pairs, PWL segment quadruples, and trace placements keyed by
  *position in the subtree preorder* rather than node index, so a front
  cached under one tree rebuilds with correctly remapped indices under any
  tree with the same subtree signature.
* **the LRU** — :class:`MSRICache`, modeled on
  :class:`~repro.rctree.flat.FlatNetCache`, with ``msri.cache.*`` obs
  counters exposing its economics.

The cache stores packed records (immutable tuples of floats and frozen
dataclasses), never live :class:`~repro.core.solution.Solution` objects:
solutions carry process-local ``uid`` tie-breaks and shared ``Trace``
graphs, neither of which may leak between runs.
"""

from __future__ import annotations

import hashlib
import threading
from array import array
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..obs import core as obs
from ..rctree.topology import NodeKind, RoutingTree
from ..tech.parameters import Technology
from .intervals import IntervalSet
from .msri import MSRIOptions
from .pwl import PWL, Segment
from .solution import Placement, Solution, Trace

__all__ = [
    "MSRICache",
    "options_fingerprint",
    "subtree_signatures",
    "front_key",
    "pack_front",
    "unpack_front",
]

# Observability metrics (naming contract: docs/OBSERVABILITY.md).  All are
# free while REPRO_OBS is off.
_OBS_HITS = obs.Counter("msri.cache.hits")
_OBS_MISSES = obs.Counter("msri.cache.misses")
_OBS_STORES = obs.Counter("msri.cache.stores")
_OBS_EVICTIONS = obs.Counter("msri.cache.evictions")

#: Node-kind codes shared with ``canonical_net_key``.
_KIND_CODE = {NodeKind.TERMINAL: 0, NodeKind.STEINER: 1, NodeKind.INSERTION: 2}

#: One packed solution: ``(cost, cap, q, parity, domain, arr, diam,
#: placements)`` with ``domain`` a tuple of ``(lo, hi)`` pairs, ``arr`` /
#: ``diam`` either None or a tuple of ``(lo, hi, intercept, slope)``
#: quadruples, and ``placements`` a tuple of ``(preorder_position, what)``
#: pairs in the trace's collect() order.
PackedSolution = Tuple


def options_fingerprint(tech: Technology, options: MSRIOptions) -> bytes:
    """Digest of everything that parameterizes the DP besides the tree.

    Covers the wire constants, every pruning knob, and the full electrical
    content of the repeater library, driver options, and wire library —
    in their *offered order*, because candidate generation order feeds the
    deterministic tie-breaks.  Names are excluded (they never enter the
    arithmetic).
    """
    ints: List[int] = [
        1 if options.use_divide_and_conquer else 0,
        options.mfs_leaf_size,
        1 if options.prefilter else 0,
        -1 if options.max_front_width is None else options.max_front_width,
        -1 if options.max_pwl_segments is None else options.max_pwl_segments,
        1 if options.lossy else 0,
        1 if options.quantize_bound else 0,
        0 if options.spec is None else 1,
    ]
    floats: List[float] = [
        tech.unit_resistance,
        tech.unit_capacitance,
        0.0 if options.spec is None else options.spec,
    ]
    ints.append(-2)  # section separator: knobs / repeater library
    if options.library is not None:
        for rep in options.library.oriented_options():
            ints.append(1 if rep.is_inverting else 0)
            floats.extend(
                (rep.cost, rep.c_a, rep.c_b, rep.d_ab, rep.r_ab, rep.d_ba, rep.r_ba)
            )
    ints.append(-3)  # section separator: repeaters / driver options
    if options.driver_options is not None:
        for opt in options.driver_options:
            floats.extend(
                (
                    opt.cost,
                    opt.net_capacitance,
                    opt.driver_resistance,
                    opt.driver_intrinsic,
                    opt.arrival_penalty,
                    opt.sink_delay_extra,
                )
            )
    ints.append(-4)  # section separator: drivers / wire library
    if options.wire_library is not None:
        for wc in options.wire_library:
            floats.extend((wc.width, wc.cost_per_um))
    h = hashlib.blake2b(digest_size=16)
    h.update(array("q", ints).tobytes())
    h.update(array("d", floats).tobytes())
    return h.digest()


def subtree_signatures(
    tree: RoutingTree, widths: Optional[Dict[int, float]] = None
) -> List[bytes]:
    """One content digest per vertex, composed bottom-up in O(n) total.

    ``sig[v]`` covers the subtree *at* ``v`` — its kind, terminal
    parameters, and for every child the connecting edge's length and width
    factor plus the child's own signature — but **not** the edge from ``v``
    to its parent: a front describes the subtree before the Fig. 10 wire
    augmentation, which the parent's construction applies.  Two vertices
    share a signature exactly when they pose the bitwise-same subproblem
    (up to the global ``c_max``, which :func:`front_key` adds).
    """
    widths = widths or {}
    n = len(tree)
    sigs: List[bytes] = [b""] * n
    for v in tree.dfs_postorder():
        node = tree.node(v)
        h = hashlib.blake2b(digest_size=16)
        ints = [_KIND_CODE[node.kind]]
        floats: List[float] = []
        term = node.terminal
        if term is not None:  # presence is implied by the kind code
            floats.extend(
                (
                    term.arrival_time,
                    term.downstream_delay,
                    term.capacitance,
                    term.resistance,
                    term.intrinsic_delay,
                )
            )
        h.update(array("q", ints).tobytes())
        h.update(array("d", floats).tobytes())
        for u in tree.children(v):
            h.update(
                array(
                    "d", (tree.edge_length(u), widths.get(u, 1.0))
                ).tobytes()
            )
            h.update(sigs[u])
        sigs[v] = h.digest()
    return sigs


def front_key(signature: bytes, fingerprint: bytes, c_max: float) -> bytes:
    """The cache key of one subtree front.

    ``c_max`` is whole-tree-global (it bounds the ``c_E`` domain of every
    solution), so it must be part of the key even though it is not subtree
    content; ``MSRIOptions.quantize_bound`` coarsens it so trees that
    differ slightly still share keys.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(signature)
    h.update(fingerprint)
    h.update(array("d", (c_max,)).tobytes())
    return h.digest()


# -- portable front records ----------------------------------------------------


def _subtree_preorder(tree: RoutingTree, v: int) -> List[int]:
    """Node indices of the subtree at ``v`` in preorder."""
    out: List[int] = []
    stack = [v]
    while stack:
        x = stack.pop()
        out.append(x)
        stack.extend(reversed(tree.children(x)))
    return out


def pack_front(
    tree: RoutingTree, v: int, front: List[Solution]
) -> Tuple[PackedSolution, ...]:
    """Convert a pruned front at ``v`` into a tree-independent record.

    Trace placements are stored as ``(position, what)`` with ``position``
    the placed node's index *in the subtree preorder of* ``v`` — the
    canonical coordinate any tree with the same subtree signature shares.
    Placements keep their ``Trace.collect()`` order so that the rebuilt
    assignment dict resolves duplicate-node entries (a wire class and a
    repeater recorded against the same node) to the same winner.
    """
    positions = {node: i for i, node in enumerate(_subtree_preorder(tree, v))}
    records: List[PackedSolution] = []
    for s in front:
        records.append(
            (
                s.cost,
                s.cap,
                s.q,
                s.parity,
                tuple((iv.lo, iv.hi) for iv in s.domain.intervals),
                None
                if s.arr is None
                else tuple(
                    (g.lo, g.hi, g.intercept, g.slope) for g in s.arr.segments
                ),
                None
                if s.diam is None
                else tuple(
                    (g.lo, g.hi, g.intercept, g.slope) for g in s.diam.segments
                ),
                tuple(
                    (positions[p.node], p.what) for p in s.trace.collect()
                ),
            )
        )
    return tuple(records)


def unpack_front(
    tree: RoutingTree, v: int, records: Tuple[PackedSolution, ...]
) -> List[Solution]:
    """Rebuild a packed front as live solutions rooted at ``v`` of ``tree``.

    Node positions remap onto this tree's subtree preorder; traces rebuild
    as linear chains extended in *reversed* collect order, so the rebuilt
    ``Trace.collect()`` returns the original order.  Solutions mint fresh
    ``uid`` values in record order — safe because a reused front is never
    re-pruned, and every prune site compares only candidates freshly
    constructed at that site, whose relative uid order matches a cold
    run's generation order (docs/ALGORITHMS.md §13).
    """
    order = _subtree_preorder(tree, v)
    out: List[Solution] = []
    for cost, cap, q, parity, dom, arr, diam, placements in records:
        trace = Trace()
        for position, what in reversed(placements):
            trace = trace.extended(Placement(order[position], what))
        out.append(
            Solution(
                cost=cost,
                cap=cap,
                q=q,
                arr=None
                if arr is None
                else PWL(Segment(lo, hi, ic, sl) for lo, hi, ic, sl in arr),
                diam=None
                if diam is None
                else PWL(Segment(lo, hi, ic, sl) for lo, hi, ic, sl in diam),
                domain=IntervalSet.from_pairs(dom),
                trace=trace,
                parity=parity,
            )
        )
    return out


# -- the LRU -------------------------------------------------------------------


class MSRICache:
    """An LRU of packed subtree fronts keyed by content hash.

    Shared across :class:`~repro.core.msri_engine.IncrementalMSRI`
    instances (topology search scoring hundreds of sibling candidates, a
    campaign worker sweeping spacings, the serve daemon's ``optimize`` op).
    Stored records are immutable; ``get`` returns them as-is and callers
    rebuild live solutions via :func:`unpack_front`.  Thread-safe: the
    serve daemon evaluates concurrent sessions on an asyncio thread pool,
    and the LRU reorder/evict sequence is not atomic on its own.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize <= 0:
            raise ValueError(f"cache maxsize must be positive, got {maxsize}")
        self._maxsize = maxsize
        self._store: "OrderedDict[bytes, Tuple[PackedSolution, ...]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: bytes) -> Optional[Tuple[PackedSolution, ...]]:
        """The packed front for ``key``, or None (counted as a miss)."""
        with self._lock:
            records = self._store.get(key)
            if records is not None:
                self._store.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if records is not None:
            if obs.enabled():
                _OBS_HITS.add()
            return records
        if obs.enabled():
            _OBS_MISSES.add()
        return None

    def put(self, key: bytes, records: Tuple[PackedSolution, ...]) -> None:
        """Store a packed front, evicting least-recently-used overflow."""
        evicted = 0
        with self._lock:
            self._store[key] = records
            self._store.move_to_end(key)
            self.stores += 1
            while len(self._store) > self._maxsize:
                self._store.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if obs.enabled():
            _OBS_STORES.add()
            if evicted:
                _OBS_EVICTIONS.add(evicted)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (for serve ``stats`` frames and tests)."""
        with self._lock:
            return {
                "size": len(self._store),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
            }
