"""Piece-wise linear (PWL) functions of the external capacitance ``c_E``.

Section IV-C of Lillis & Cheng defines a PWL function as a set of quadruples
``(y-intercept, slope, domain-lo, domain-hi)`` — line segments with disjoint
domains — and lists the primitives their repeater-insertion dynamic program
needs (paper Eq. (3)):

* piece-wise **maximum** of two PWLs,
* **adding a scalar** (shifting the y-intercepts),
* **adding a linear function** ``a + b*x`` (e.g. accumulating a wire or
  driver resistance ``b`` into every slope),
* **domain substitution** ``g(x) = f(x + c)`` (when a sibling subtree or a
  wire adds capacitance ``c`` to everything a source inside the subtree can
  see — here called :meth:`PWL.shift`),
* **evaluation** at a known capacitance (when a repeater decouples the
  subtree and ``c_E`` becomes the repeater's input capacitance).

All the operators run in time linear in the number of participating
segments, as the paper requires.

Domains are finite unions of closed intervals: after minimal-functional-
subset pruning (Sec. IV-D), a solution may only remain optimal on part of
the ``c_E`` axis, so its PWLs acquire *holes*.  Within each maximal run of
contiguous segments the function is continuous (all our generators are
maxima of continuous functions), but the class itself does not require it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..check import contracts
from .intervals import ATOL, Interval, IntervalSet

__all__ = ["Segment", "PWL", "maximum_all", "max_segment_count"]

#: Tolerance used when merging collinear segments and comparing breakpoints.
_EPS = 1e-9


@dataclass(frozen=True)
class Segment:
    """One line segment: ``y = intercept + slope * x`` for ``x in [lo, hi]``.

    Mirrors the paper's quadruple ``(y, slope, lo, hi)`` (Definition 4.1).
    Degenerate point segments (``lo == hi``) are allowed; they arise when
    pruning leaves a solution optimal only at a crossover capacitance.
    """

    lo: float
    hi: float
    intercept: float
    slope: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"segment domain empty: [{self.lo}, {self.hi}]")
        if not (math.isfinite(self.lo) and math.isfinite(self.hi)):
            raise ValueError("segment domain must be finite")
        if not (math.isfinite(self.intercept) and math.isfinite(self.slope)):
            raise ValueError("segment coefficients must be finite")

    def value(self, x: float) -> float:
        """Evaluate the segment's line at ``x`` (domain not checked)."""
        return self.intercept + self.slope * x

    def interval(self) -> Interval:
        """The segment's domain as an :class:`Interval`."""
        return Interval(self.lo, self.hi)

    def same_line(self, other: "Segment", atol: float = _EPS) -> bool:
        """True when both segments lie on (numerically) the same line."""
        return (
            abs(self.intercept - other.intercept) <= atol * max(1.0, abs(self.intercept))
            and abs(self.slope - other.slope) <= atol * max(1.0, abs(self.slope))
        )


def _canonicalize(segments: Iterable[Segment]) -> Tuple[Segment, ...]:
    """Sort segments, reject overlaps, and merge touching collinear runs."""
    segs = sorted(segments, key=lambda s: (s.lo, s.hi))
    for a, b in zip(segs, segs[1:]):
        if b.lo < a.hi - ATOL:
            raise ValueError(f"overlapping segment domains: {a} and {b}")
    merged: List[Segment] = []
    for seg in segs:
        if (
            merged
            and abs(seg.lo - merged[-1].hi) <= ATOL
            and merged[-1].same_line(seg)
        ):
            prev = merged[-1]
            merged[-1] = Segment(prev.lo, seg.hi, prev.intercept, prev.slope)
        else:
            merged.append(seg)
    return tuple(merged)


class PWL:
    """An immutable piece-wise linear function with a (possibly holey) domain."""

    __slots__ = ("_segments",)

    def __init__(self, segments: Iterable[Segment]):
        self._segments = _canonicalize(segments)
        if contracts.contracts_enabled():
            contracts.verify_pwl(self, context="PWL construction")

    # -- constructors ------------------------------------------------------

    @classmethod
    def constant(cls, value: float, lo: float, hi: float) -> "PWL":
        """The constant function ``value`` on ``[lo, hi]``."""
        return cls((Segment(lo, hi, value, 0.0),))

    @classmethod
    def linear(cls, intercept: float, slope: float, lo: float, hi: float) -> "PWL":
        """The line ``intercept + slope * x`` on ``[lo, hi]``."""
        return cls((Segment(lo, hi, intercept, slope),))

    @classmethod
    def from_breakpoints(cls, xs: Sequence[float], ys: Sequence[float]) -> "PWL":
        """Continuous PWL through the points ``(xs[i], ys[i])``.

        ``xs`` must be strictly increasing.  Convenient in tests.
        """
        if len(xs) != len(ys) or len(xs) < 2:
            raise ValueError("need at least two matching breakpoints")
        segs = []
        for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
            if x1 <= x0:
                raise ValueError("breakpoint xs must be strictly increasing")
            slope = (y1 - y0) / (x1 - x0)
            segs.append(Segment(x0, x1, y0 - slope * x0, slope))
        return cls(segs)

    # -- queries -----------------------------------------------------------

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return self._segments

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def is_empty(self) -> bool:
        """True when the domain is empty (the function is nowhere defined)."""
        return not self._segments

    def domain(self) -> IntervalSet:
        """The set of ``x`` where the function is defined."""
        return IntervalSet(seg.interval() for seg in self._segments)

    def __call__(self, x: float) -> float:
        return self.evaluate(x)

    def evaluate(self, x: float, atol: float = ATOL) -> float:
        """Value at ``x``; raises ``ValueError`` outside the domain."""
        for seg in self._segments:
            if seg.lo - atol <= x <= seg.hi + atol:
                return seg.value(x)
        raise ValueError(f"x={x} outside PWL domain {self.domain()!r}")

    def evaluate_or(self, x: float, default: float, atol: float = ATOL) -> float:
        """Value at ``x`` or ``default`` when ``x`` is outside the domain."""
        for seg in self._segments:
            if seg.lo - atol <= x <= seg.hi + atol:
                return seg.value(x)
        return default

    def defined_at(self, x: float, atol: float = ATOL) -> bool:
        return any(seg.lo - atol <= x <= seg.hi + atol for seg in self._segments)

    def breakpoints(self) -> List[float]:
        """Sorted list of all domain endpoints."""
        pts: List[float] = []
        for seg in self._segments:
            pts.append(seg.lo)
            pts.append(seg.hi)
        return sorted(set(pts))

    def min_value(self) -> Tuple[float, float]:
        """Return ``(x*, f(x*))`` minimizing f over its domain."""
        if self.is_empty:
            raise ValueError("cannot minimize an empty PWL")
        best_x, best_y = None, math.inf
        for seg in self._segments:
            for x in (seg.lo, seg.hi):
                y = seg.value(x)
                if y < best_y:
                    best_x, best_y = x, y
        if best_x is None:
            raise RuntimeError("non-empty PWL yielded no minimizer")
        return best_x, best_y

    def max_value(self) -> Tuple[float, float]:
        """Return ``(x*, f(x*))`` maximizing f over its domain."""
        if self.is_empty:
            raise ValueError("cannot maximize an empty PWL")
        best_x, best_y = None, -math.inf
        for seg in self._segments:
            for x in (seg.lo, seg.hi):
                y = seg.value(x)
                if y > best_y:
                    best_x, best_y = x, y
        if best_x is None:
            raise RuntimeError("non-empty PWL yielded no maximizer")
        return best_x, best_y

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PWL):
            return NotImplemented
        return self._segments == other._segments

    def __hash__(self) -> int:
        return hash(self._segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"[{s.lo:g},{s.hi:g}]: {s.intercept:g}+{s.slope:g}x" for s in self._segments
        )
        return f"PWL({parts or 'empty'})"

    def approx_equal(self, other: "PWL", atol: float = 1e-7) -> bool:
        """Pointwise approximate equality on the union of breakpoints.

        Both functions must share (approximately) the same domain.
        """
        if not self.domain().approx_equal(other.domain(), atol=atol):
            return False
        for x in sorted(set(self.breakpoints()) | set(other.breakpoints())):
            if self.defined_at(x, atol=atol) != other.defined_at(x, atol=atol):
                return False
            if self.defined_at(x, atol=atol):
                if abs(self.evaluate(x) - other.evaluate(x)) > atol:
                    return False
        return True

    # -- Eq. (3) primitives --------------------------------------------------

    def add_scalar(self, a: float) -> "PWL":
        """``f + a``: raise every y-intercept by ``a`` (paper's scalar add).

        Used when an intrinsic buffer delay or a sink's downstream delay is
        appended to every internal path.
        """
        return PWL(
            Segment(s.lo, s.hi, s.intercept + a, s.slope) for s in self._segments
        )

    def add_linear(self, a: float, b: float) -> "PWL":
        """``f(x) + a + b*x``.

        The slope increment ``b`` is how accumulated upstream resistance
        enters arrival-time functions: a wire or driver of resistance ``b``
        between the subtree and the rest of the net multiplies the unknown
        external capacitance.
        """
        return PWL(
            Segment(s.lo, s.hi, s.intercept + a, s.slope + b) for s in self._segments
        )

    def shift(self, c: float) -> "PWL":
        """Domain substitution ``g(x) = f(x + c)``.

        When capacitance ``c`` (a wire or a sibling subtree) is appended
        *outside* the current subtree, every source inside the subtree now
        sees ``x + c`` where it previously saw ``x``; the function's domain
        translates left by ``c``.  Any part of the domain that would become
        negative is dropped (external capacitance cannot be negative).
        """
        segs = []
        for s in self._segments:
            lo, hi = s.lo - c, s.hi - c
            if hi < 0.0:
                continue
            lo = max(lo, 0.0)
            # g(x) = f(x + c) = intercept + slope * (x + c)
            segs.append(Segment(lo, hi, s.intercept + s.slope * c, s.slope))
        return PWL(segs)

    def restrict(self, region: IntervalSet) -> "PWL":
        """Restrict the domain to ``region`` (for MFS pruning)."""
        segs: List[Segment] = []
        for s in self._segments:
            for iv in region:
                lo = max(s.lo, iv.lo)
                hi = min(s.hi, iv.hi)
                if lo <= hi:
                    segs.append(Segment(lo, hi, s.intercept, s.slope))
        return PWL(segs)

    def maximum(self, other: "PWL") -> "PWL":
        """Piece-wise maximum of two PWLs on the *intersection* of domains.

        The intersection semantics match the DP's use: when two child
        solutions are joined at a branch, the combined solution only exists
        for ``c_E`` values where both children's functions are defined.
        """
        return _combine(self, other, max_of=True)

    def minimum(self, other: "PWL") -> "PWL":
        """Piece-wise minimum on the intersection of domains."""
        return _combine(self, other, max_of=False)

    def region_leq(self, other: "PWL", atol: float = 0.0) -> IntervalSet:
        """The subset of the common domain where ``self(x) <= other(x) + atol``.

        This is the comparison primitive of MFS pruning: where the challenger
        is no worse than the incumbent in one coordinate.
        """
        regions: List[Interval] = []
        for lo, hi, sa, sb in _overlaps(self, other):
            regions.extend(_line_leq_region(sa, sb, lo, hi, atol))
        return IntervalSet(regions)

    def region_lt(self, other: "PWL", atol: float = 0.0) -> IntervalSet:
        """Subset of the common domain where ``self(x) < other(x) - atol``.

        Computed as the ``<=`` region minus the (measure-zero boundary won't
        matter for pruning) region where ``other <= self``; used for
        strict-dominance tie-breaking.
        """
        leq = self.region_leq(other, atol=-atol if atol else 0.0)
        geq = other.region_leq(self, atol=atol)
        return leq.difference(geq)

    def sample(self, xs: Iterable[float]) -> List[Tuple[float, float]]:
        """Evaluate at many points, skipping those outside the domain."""
        out = []
        for x in xs:
            if self.defined_at(x):
                out.append((x, self.evaluate(x)))
        return out

    def simplified(self, max_segments: int) -> "PWL":
        """A conservative upper bound of ``self`` with a segment budget.

        Greedily merges adjacent *touching* segments — the pair whose
        chordal replacement adds the least area goes first — until at most
        ``max_segments`` remain.  Each replacement is a single line lifted
        to dominate both originals, so the result satisfies
        ``simplified(x) >= self(x)`` everywhere: for arrival/diameter
        functions the approximation can only over-report delay, never
        promise timing the exact function would miss.

        Domain holes are never bridged (bridging would invent feasibility
        on capacitances where the solution does not exist); a function
        whose holes alone exceed the budget is returned unchanged.  This
        is the *lossy* half of the MSRI segment budget — exact mode never
        calls it (``docs/PRUNING.md``).
        """
        if max_segments < 1:
            raise ValueError(f"segment budget must be >= 1, got {max_segments}")
        segs = list(self._segments)
        while len(segs) > max_segments:
            best_cost = math.inf
            best_at = -1
            best_seg = None
            for i in range(len(segs) - 1):
                a, b = segs[i], segs[i + 1]
                if b.lo - a.hi > ATOL:
                    continue  # a real hole: never bridge it
                merged = _chord_upper(a, b)
                cost = _merge_area(a, b, merged)
                if cost < best_cost:
                    best_cost, best_at, best_seg = cost, i, merged
            if best_seg is None:
                break  # only holes left between segments; budget unreachable
            segs[best_at:best_at + 2] = [best_seg]
        return self if len(segs) == len(self._segments) else PWL(segs)


# -- internal machinery -----------------------------------------------------


def _overlaps(f: PWL, g: PWL) -> Iterable[Tuple[float, float, Segment, Segment]]:
    """Yield ``(lo, hi, seg_f, seg_g)`` for every overlap of segment domains.

    Linear merge over the two sorted segment lists.
    """
    i = j = 0
    fs, gs = f.segments, g.segments
    while i < len(fs) and j < len(gs):
        lo = max(fs[i].lo, gs[j].lo)
        hi = min(fs[i].hi, gs[j].hi)
        if lo <= hi:
            yield lo, hi, fs[i], gs[j]
        if fs[i].hi < gs[j].hi:
            i += 1
        else:
            j += 1


def _combine(f: PWL, g: PWL, *, max_of: bool) -> PWL:
    """Shared implementation of piece-wise max/min on the domain overlap."""
    pick: Callable[[Segment, Segment, float], bool]
    if max_of:
        pick = lambda a, b, x: a.value(x) >= b.value(x)  # noqa: E731
    else:
        pick = lambda a, b, x: a.value(x) <= b.value(x)  # noqa: E731

    out: List[Segment] = []
    for lo, hi, sa, sb in _overlaps(f, g):
        xc = _crossing(sa, sb, lo, hi)
        cuts = [lo, hi] if xc is None else [lo, xc, hi]
        for a, b in zip(cuts, cuts[1:]):
            if b < a:
                continue
            mid = 0.5 * (a + b)
            chosen = sa if pick(sa, sb, mid) else sb
            out.append(Segment(a, b, chosen.intercept, chosen.slope))
        if lo == hi:  # point overlap: zip above produced nothing
            chosen = sa if pick(sa, sb, lo) else sb
            out.append(Segment(lo, hi, chosen.intercept, chosen.slope))
    return PWL(_dedupe_points(out))


def _dedupe_points(segments: List[Segment]) -> List[Segment]:
    """Drop point segments swallowed by an adjacent full segment."""
    full = [s for s in segments if s.hi > s.lo]
    points = [s for s in segments if s.hi == s.lo]
    kept = list(full)
    for p in points:
        if not any(f.lo - ATOL <= p.lo <= f.hi + ATOL for f in full):
            kept.append(p)
    return kept


def _crossing(a: Segment, b: Segment, lo: float, hi: float) -> Optional[float]:
    """Interior crossing point of two lines within ``(lo, hi)``, if any."""
    ds = a.slope - b.slope
    if abs(ds) <= _EPS:
        # (numerically) parallel: a sub-_EPS slope difference would place
        # the crossing far outside any finite domain of interest
        return None
    x = (b.intercept - a.intercept) / ds
    if lo + _EPS < x < hi - _EPS:
        return x
    return None


def _line_leq_region(
    a: Segment, b: Segment, lo: float, hi: float, atol: float
) -> List[Interval]:
    """Intervals within ``[lo, hi]`` where ``a(x) <= b(x) + atol``."""
    da_lo = a.value(lo) - b.value(lo) - atol
    da_hi = a.value(hi) - b.value(hi) - atol
    if da_lo <= 0.0 and da_hi <= 0.0:
        return [Interval(lo, hi)]
    if da_lo > 0.0 and da_hi > 0.0:
        return []
    ds = a.slope - b.slope
    if abs(ds) <= _EPS:
        # (numerically) parallel lines whose endpoint differences straddle
        # zero only by floating-point noise; classify by the midpoint
        mid = 0.5 * (lo + hi)
        if a.value(mid) - b.value(mid) <= atol:
            return [Interval(lo, hi)]
        return []
    # exactly one sign change: solve (a - b)(x) = atol
    x = (b.intercept + atol - a.intercept) / ds
    x = min(max(x, lo), hi)
    if da_lo <= 0.0:
        return [Interval(lo, x)]
    return [Interval(x, hi)]


def _chord_upper(a: Segment, b: Segment) -> Segment:
    """One segment covering two touching segments from above.

    The chord through the envelope's endpoint values, lifted by the
    largest shortfall at any of the four segment endpoints — a line is
    maximally below a piecewise-linear function at a breakpoint, so
    checking endpoints suffices for pointwise dominance.
    """
    lo, hi = a.lo, b.hi
    y_lo = a.value(lo)
    y_hi = b.value(hi)
    if hi > lo:
        slope = (y_hi - y_lo) / (hi - lo)
    else:
        slope = 0.0
        y_lo = max(y_lo, y_hi)
    intercept = y_lo - slope * lo
    lift = 0.0
    for seg in (a, b):
        for x in (seg.lo, seg.hi):
            short = seg.value(x) - (intercept + slope * x)
            if short > lift:
                lift = short
    return Segment(lo, hi, intercept + lift, slope)


def _merge_area(a: Segment, b: Segment, merged: Segment) -> float:
    """Area added between ``merged`` and the two segments it replaces.

    Both sides are linear on each original segment's domain, so the
    trapezoid rule on segment endpoints is exact.
    """
    total = 0.0
    for seg in (a, b):
        gap_lo = merged.value(seg.lo) - seg.value(seg.lo)
        gap_hi = merged.value(seg.hi) - seg.value(seg.hi)
        total += 0.5 * (gap_lo + gap_hi) * (seg.hi - seg.lo)
    return total


def maximum_all(functions: Sequence[PWL]) -> PWL:
    """Piece-wise maximum of many PWLs (balanced reduction).

    Pairwise reduction keeps intermediate segment counts small compared to a
    left fold when the inputs have many breakpoints.
    """
    items = [f for f in functions if not f.is_empty]
    if not items:
        raise ValueError("maximum_all needs at least one non-empty PWL")
    while len(items) > 1:
        nxt = []
        for k in range(0, len(items) - 1, 2):
            nxt.append(items[k].maximum(items[k + 1]))
        if len(items) % 2:
            nxt.append(items[-1])
        items = nxt
    return items[0]


def max_segment_count(functions: Iterable[Optional["PWL"]]) -> int:
    """The widest segment list among ``functions`` (``None`` entries skipped).

    The paper leans on PWL representations staying *small* in practice
    (Sec. VIII observes ~4 segments on its workloads); this is the quantity
    the MSRI statistics and the ``msri.pwl_segments`` observability
    histogram report per node.
    """
    widest = 0
    for f in functions:
        if f is not None and f.num_segments > widest:
            widest = f.num_segments
    return widest
