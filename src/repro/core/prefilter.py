"""Predictive dominance pre-filters for the MSRI candidate front.

The Fig. 4 minimal-functional-subset pruner (:mod:`repro.core.mfs`) is
exact but *regional*: deciding whether one solution beats another anywhere
requires building the dominated region as an :class:`IntervalSet` and
carving it out of the victim's domain.  Most candidate pairs never get
that far — profiling the DP shows the overwhelming majority of
``prune_one`` calls return the victim unchanged, and a further slice kills
it outright — yet the region machinery allocates intervals for every call.

This module ports the organizing idea of Shi & Li's predictive pruning
("An O(b n^2) Time Algorithm for Optimal Buffer Insertion with b Buffer
Types", PAPERS.md) onto the PWL-candidate DP: classify a candidate pair
with cheap, allocation-free arithmetic *first*, and only fall back to the
region machinery when the comparison is genuinely partial.

Two levels are provided:

* :func:`leq_status` / :func:`domain_subset` — an exact three-way
  classification (nowhere / partially / everywhere dominated) per function
  coordinate, replicating the segment arithmetic of
  :meth:`~repro.core.pwl.PWL.region_leq` without constructing a region.
  ``repro.core.mfs.prune_one`` uses it to dispatch the full-dominance and
  no-dominance cases in O(segments) time with zero allocation; the
  partial case falls through to the original exact machinery, so results
  are bit-identical by construction.
* :func:`prefilter_front` — a sorted-front candidate sweep run *before*
  the MFS pruner: candidates are visited in the pruner's own tie-break
  order and tested against a bounded list of earlier "killer" solutions;
  a candidate whose every coordinate is weakly dominated over its whole
  domain is certified dead (the killer, being earlier in the order, would
  have weakly pruned it — and anything it could have pruned, the killer
  also prunes).  Scalar gates here are *exact* (no tolerance slack), so a
  dropped candidate is dominated under the MFS tolerance too.

:func:`min_diam_lower_bound` supports the spec-window certificate of the
width cap (see ``docs/PRUNING.md``): the minimum of a solution's ``diam``
over its domain is a monotone lower bound on the final ARD of any
completion, because every DP transformer evaluates or shifts ``diam``
inside the current domain and only ever maxes it against other terms.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from .intervals import IntervalSet
from .pwl import PWL, _EPS
from .solution import Solution

__all__ = [
    "LEQ_EMPTY",
    "LEQ_PARTIAL",
    "LEQ_FULL",
    "leq_status",
    "domain_subset",
    "prefilter_front",
    "min_diam_lower_bound",
]

#: Three-way outcome of :func:`leq_status` over the common domain.
LEQ_EMPTY = 0   #: ``by <= s`` holds nowhere (or the domains are disjoint)
LEQ_PARTIAL = 1  #: holds on a proper, non-empty part
LEQ_FULL = 2    #: holds everywhere on the common domain


def leq_status(by_f: Optional[PWL], s_f: Optional[PWL]) -> int:
    """Classify where ``by_f <= s_f`` holds on the common domain.

    Allocation-free replica of the per-segment case analysis in
    :func:`repro.core.pwl._line_leq_region` (at ``atol=0``): each
    overlapping segment pair is *fully* inside the region, *fully*
    outside, or split by one crossing.  Any split — or any mix of inside
    and outside segments — is :data:`LEQ_PARTIAL`, which callers resolve
    with the exact region machinery.

    ``None`` encodes the identically ``-inf`` function (no source or no
    internal pair): ``-inf`` is below everything, nothing finite is below
    ``-inf``.
    """
    if by_f is None:
        return LEQ_FULL
    if s_f is None:
        return LEQ_EMPTY
    # manual merge over the two sorted segment lists (the _overlaps walk,
    # inlined: this is the hottest loop in the pruner).  Every difference
    # below replicates _line_leq_region's expressions operation for
    # operation — value(x) spelled as intercept + slope * x — so the
    # classification is bit-identical to the region machinery's.
    fs = by_f._segments
    gs = s_f._segments
    nf = len(fs)
    ng = len(gs)
    if nf == 1 and ng == 1:
        # single-segment pair (about half of all calls): one overlap, so
        # the loop below reduces to a direct classification — same
        # expressions, same outcomes
        sa = fs[0]
        sb = gs[0]
        lo = sa.lo if sa.lo > sb.lo else sb.lo
        hi = sa.hi if sa.hi < sb.hi else sb.hi
        if lo > hi:
            return LEQ_EMPTY
        ai = sa.intercept
        asl = sa.slope
        bi = sb.intercept
        bsl = sb.slope
        da_lo = (ai + asl * lo) - (bi + bsl * lo)
        da_hi = (ai + asl * hi) - (bi + bsl * hi)
        if da_lo <= 0.0 and da_hi <= 0.0:
            return LEQ_FULL
        if da_lo > 0.0 and da_hi > 0.0:
            return LEQ_EMPTY
        if abs(asl - bsl) <= _EPS:
            mid = 0.5 * (lo + hi)
            if (ai + asl * mid) - (bi + bsl * mid) <= 0.0:
                return LEQ_FULL
            return LEQ_EMPTY
        return LEQ_PARTIAL
    i = j = 0
    any_in = any_out = False
    while i < nf and j < ng:
        sa = fs[i]
        sb = gs[j]
        sa_hi = sa.hi
        sb_hi = sb.hi
        lo = sa.lo if sa.lo > sb.lo else sb.lo
        hi = sa_hi if sa_hi < sb_hi else sb_hi
        if lo <= hi:
            ai = sa.intercept
            asl = sa.slope
            bi = sb.intercept
            bsl = sb.slope
            da_lo = (ai + asl * lo) - (bi + bsl * lo)
            da_hi = (ai + asl * hi) - (bi + bsl * hi)
            if da_lo <= 0.0 and da_hi <= 0.0:
                if any_out:
                    return LEQ_PARTIAL
                any_in = True
            elif da_lo > 0.0 and da_hi > 0.0:
                if any_in:
                    return LEQ_PARTIAL
                any_out = True
            else:
                ds = asl - bsl
                if abs(ds) <= _EPS:
                    # (numerically) parallel lines whose endpoint
                    # differences straddle zero only by noise; classify by
                    # the midpoint — _line_leq_region's disambiguation
                    mid = 0.5 * (lo + hi)
                    if (ai + asl * mid) - (bi + bsl * mid) <= 0.0:
                        if any_out:
                            return LEQ_PARTIAL
                        any_in = True
                    else:
                        if any_in:
                            return LEQ_PARTIAL
                        any_out = True
                else:
                    return LEQ_PARTIAL
        if sa_hi < sb_hi:
            i += 1
        else:
            j += 1
    if not any_in:
        return LEQ_EMPTY
    return LEQ_FULL if not any_out else LEQ_PARTIAL


def domain_subset(a: IntervalSet, b: IntervalSet) -> bool:
    """True when ``a`` is contained in ``b`` (exact endpoint arithmetic).

    Both sets are canonical (sorted, coalesced), so containment reduces to
    a linear walk: every interval of ``a`` must sit inside one interval of
    ``b``.
    """
    bivs = b.intervals
    j = 0
    for iv in a.intervals:
        while j < len(bivs) and bivs[j].hi < iv.lo:
            j += 1
        if j >= len(bivs) or bivs[j].lo > iv.lo or bivs[j].hi < iv.hi:
            return False
    return True


def min_diam_lower_bound(s: Solution) -> float:
    """Minimum of ``diam`` over the solution's domain (``-inf`` if none).

    A monotone lower bound on the final ARD of any completion of ``s``
    (see module docstring); the width cap's spec-window certificate drops
    a solution only when this bound already exceeds the spec.
    """
    if s.diam is None:
        return -math.inf
    return s.diam.min_value()[1]


def prefilter_front(
    solutions: Sequence[Solution], *, max_killers: int = 24
) -> List[Solution]:
    """Drop candidates certified dominated before the full MFS pass.

    Candidates are swept in the MFS tie-break order ``(parity, cost, cap,
    q, uid)`` and compared against a bounded list of earlier *killers*
    (the first ``max_killers`` surviving solutions with a hole-free
    domain, so containment is an O(1) endpoint check).  A candidate is
    dropped only under a **full certificate**: the killer's scalars are
    no worse under exact comparison, its domain covers the candidate's,
    and both function coordinates are weakly dominated *everywhere* on
    the candidate's domain.

    Safety (exact mode): a dropped candidate would have been weakly
    pruned to nothing by the earlier killer inside MFS; and any region the
    candidate could have carved from a third solution is also carved by
    the killer (the killer is no worse everywhere, and being earlier in
    the order needs only weak dominance).  The surviving front is
    therefore bit-identical — the ``REPRO_CHECK`` front-equivalence
    contract re-derives this on every pruned node.
    """
    if len(solutions) <= 2:
        return list(solutions)
    ordered = sorted(
        solutions, key=lambda s: (s.parity, s.cost, s.cap, s.q, s.uid)
    )
    # killer record: (cap, q, dom_lo, dom_hi, arr, diam, parity) — plain
    # tuples keep the per-candidate scan at a few float compares
    killers: List[tuple] = []
    out: List[Solution] = []
    for s in ordered:
        dom = s.domain
        lo, hi = dom.lo, dom.hi
        s_arr = s.arr
        s_diam = s.diam
        dead = False
        for k in killers:
            # None coordinates decided inline (None = -inf is below
            # everything; nothing finite is below -inf), mirroring
            # leq_status's own encoding without the call
            if (
                k[6] == s.parity
                and k[0] <= s.cap
                and k[1] <= s.q
                and k[2] <= lo
                and hi <= k[3]
                and (k[4] is None or (
                    s_arr is not None
                    and leq_status(k[4], s_arr) == LEQ_FULL))
                and (k[5] is None or (
                    s_diam is not None
                    and leq_status(k[5], s_diam) == LEQ_FULL))
            ):
                dead = True
                break
        if dead:
            continue
        out.append(s)
        if len(killers) < max_killers and len(dom) == 1:
            killers.append((s.cap, s.q, lo, hi, s.arr, s.diam, s.parity))
    return out
