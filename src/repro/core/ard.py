"""Linear-time computation of the augmented RC-diameter (paper Sec. III).

The ARD of a topology ``T`` is

```
ARD(T) = max over sources u, sinks v (u != v) of alpha(u) + PD(u, v) + beta(v)
```

Naively this takes one single-source Elmore pass per source — O(n^2).  The
paper's Fig. 2 algorithm achieves O(n): after the two capacitance passes
(Eqs. 1–2, done by :class:`~repro.rctree.elmore.ElmoreAnalyzer`), one
depth-first traversal computes, for every subtree ``T_v``:

* ``arrival``  (the paper's *a(v)*) — the maximum augmented arrival time at
  ``v`` over sources inside ``T_v``, measured on the parent side of any
  repeater at ``v``;
* ``required`` (the paper's *d(v)*) — the maximum augmented delay from ``v``
  down to sinks inside ``T_v``;
* ``diameter`` (the paper's *z(v)*) — the maximum augmented source-to-sink
  delay for pairs wholly inside ``T_v``.

At a branch, paths crossing the branch combine the best upward arrival from
one child with the best downward required time of a *different* child; a
top-two scan keeps that O(children).  At the root (a terminal), the root's
own source/sink roles join in and ``ARD(T) = z(root)``.

The implementation also tracks the arg-max terminals, so callers get the
*critical source/sink pair* for free — the quantity the paper's Fig. 11
annotates on its example solutions.

The DFS combine step itself lives in :mod:`repro.rctree.incremental` as an
algebra over *linear records* (candidates parameterized by the subtree's
external load), shared verbatim with :class:`~repro.rctree.incremental.
IncrementalARD` — which is why the incremental engine is bit-identical to
this full pass.  This module evaluates those records at the analyzer's
Eq. 2 loads to materialize the classic per-node scalar ``timing`` table.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..check import contracts
from ..obs import core as obs
from ..rctree.elmore import ElmoreAnalyzer
from ..rctree.engine import ARDResult, EvalContext, SubtreeTiming
from ..rctree.incremental import (
    EvalState,
    build_records,
    finish_root,
    timing_from_record,
)
from ..rctree.topology import RoutingTree
from ..tech.parameters import Technology
from ..tech.terminals import NEVER

__all__ = ["ARDResult", "SubtreeTiming", "compute_ard", "ard"]

# Nodes visited by the Fig. 2 record pass (naming contract:
# docs/OBSERVABILITY.md).  Linear growth per full pass is the paper's O(n)
# claim made observable.
_OBS_RECORD_PASS_NODES = obs.Counter("ard.record_pass.nodes")


def compute_ard(analyzer: ElmoreAnalyzer) -> ARDResult:
    """ARD(T) for the analyzer's tree and evaluation context — O(n).

    Runs the shared record algebra once bottom-up, then evaluates each
    node's record at its actual external load (the analyzer's Eq. 2 value)
    to populate the per-subtree ``timing`` table.
    """
    tree = analyzer.tree
    with obs.trace("ard.full_pass", nodes=len(tree)):
        if obs.enabled():
            _OBS_RECORD_PASS_NODES.add(len(tree))
        state = EvalState(tree, analyzer.technology, analyzer.context)
        records = build_records(state)

        timing: Dict[int, SubtreeTiming] = {}
        for v in tree.dfs_postorder():
            if v != tree.root:
                timing[v] = timing_from_record(records[v], analyzer.upstream_cap(v))

        best, src, snk = finish_root(state, records)
        timing[tree.root] = SubtreeTiming(NEVER, None, NEVER, None, best, (src, snk))
        result = ARDResult(best, src, snk, timing)
    if contracts.contracts_enabled():
        contracts.verify_ard_consistency(result, analyzer)
    return result


def ard(
    tree: RoutingTree,
    tech: Technology,
    *,
    context: Optional[EvalContext] = None,
) -> ARDResult:
    """Convenience wrapper building the analyzer and running Fig. 2.

    All evaluation knobs travel in ``context=EvalContext(...)``; the
    pre-context per-knob arguments (``assignment`` and friends) were
    removed at v2.0 and now raise :class:`TypeError`.
    """
    return compute_ard(ElmoreAnalyzer(tree, tech, context=context))
