"""Linear-time computation of the augmented RC-diameter (paper Sec. III).

The ARD of a topology ``T`` is

```
ARD(T) = max over sources u, sinks v (u != v) of alpha(u) + PD(u, v) + beta(v)
```

Naively this takes one single-source Elmore pass per source — O(n^2).  The
paper's Fig. 2 algorithm achieves O(n): after the two capacitance passes
(Eqs. 1–2, done by :class:`~repro.rctree.elmore.ElmoreAnalyzer`), one
depth-first traversal computes, for every subtree ``T_v``:

* ``arrival``  (the paper's *a(v)*) — the maximum augmented arrival time at
  ``v`` over sources inside ``T_v``, measured on the parent side of any
  repeater at ``v``;
* ``required`` (the paper's *d(v)*) — the maximum augmented delay from ``v``
  down to sinks inside ``T_v``;
* ``diameter`` (the paper's *z(v)*) — the maximum augmented source-to-sink
  delay for pairs wholly inside ``T_v``.

At a branch, paths crossing the branch combine the best upward arrival from
one child with the best downward required time of a *different* child; a
top-two scan keeps that O(children).  At the root (a terminal), the root's
own source/sink roles join in and ``ARD(T) = z(root)``.

The implementation also tracks the arg-max terminals, so callers get the
*critical source/sink pair* for free — the quantity the paper's Fig. 11
annotates on its example solutions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..check import contracts
from ..rctree.elmore import ElmoreAnalyzer
from ..rctree.topology import NodeKind, RoutingTree
from ..tech.buffers import Repeater
from ..tech.parameters import Technology
from ..tech.terminals import NEVER

__all__ = ["ARDResult", "SubtreeTiming", "compute_ard", "ard"]


@dataclass(frozen=True)
class SubtreeTiming:
    """Per-subtree quantities of the Fig. 2 recursion, with arg-max tracking.

    ``arrival``/``required``/``diameter`` are ``-inf`` when the subtree holds
    no source / no sink / no source-sink pair respectively; the companion
    index fields are ``None`` in those cases.
    """

    arrival: float
    arrival_source: Optional[int]
    required: float
    required_sink: Optional[int]
    diameter: float
    diameter_pair: Optional[Tuple[int, int]]


@dataclass(frozen=True)
class ARDResult:
    """Outcome of an ARD computation.

    ``value`` is ``-inf`` for nets with no source/sink pair.  ``source`` and
    ``sink`` are the node indices of the critical pair achieving the ARD.
    ``timing`` exposes the per-subtree table for diagnostics and tests.
    """

    value: float
    source: Optional[int]
    sink: Optional[int]
    timing: Dict[int, SubtreeTiming]

    @property
    def is_finite(self) -> bool:
        return math.isfinite(self.value)


def compute_ard(analyzer: ElmoreAnalyzer) -> ARDResult:
    """ARD(T) for the analyzer's tree and repeater assignment — O(n)."""
    tree = analyzer.tree
    timing: Dict[int, SubtreeTiming] = {}

    for v in tree.dfs_postorder():
        node = tree.node(v)
        if node.kind is NodeKind.TERMINAL and v != tree.root:
            timing[v] = _leaf_timing(analyzer, v)
        elif v != tree.root:
            timing[v] = _internal_timing(analyzer, v, timing)
    result = _finish_at_root(analyzer, timing)
    if contracts.contracts_enabled():
        contracts.verify_ard_consistency(result, analyzer)
    return result


def ard(
    tree: RoutingTree,
    tech: Technology,
    assignment: Optional[Dict[int, Repeater]] = None,
    *,
    include_companion_cap: bool = False,
    wire_widths: Optional[Dict[int, float]] = None,
) -> ARDResult:
    """Convenience wrapper building the analyzer and running Fig. 2."""
    analyzer = ElmoreAnalyzer(
        tree,
        tech,
        assignment,
        include_companion_cap=include_companion_cap,
        wire_widths=wire_widths,
    )
    return compute_ard(analyzer)


# -- recursion cases ----------------------------------------------------------


def _leaf_timing(analyzer: ElmoreAnalyzer, v: int) -> SubtreeTiming:
    tree = analyzer.tree
    term = tree.node(v).terminal
    if term is None:
        raise RuntimeError(f"leaf node {v} carries no terminal")
    parent = tree.parent(v)
    if parent is None:
        raise RuntimeError(f"leaf node {v} has no parent edge")

    arrival, arrival_source = NEVER, None
    if term.is_source:
        load = term.capacitance + analyzer.cap_into(v, parent)
        arrival = term.arrival_time + term.driver_delay(load)
        arrival_source = v

    required, required_sink = NEVER, None
    if term.is_sink:
        required = term.downstream_delay
        required_sink = v

    return SubtreeTiming(arrival, arrival_source, required, required_sink, NEVER, None)


def _internal_timing(
    analyzer: ElmoreAnalyzer, v: int, timing: Dict[int, SubtreeTiming]
) -> SubtreeTiming:
    tree = analyzer.tree
    parent = tree.parent(v)
    if parent is None:
        raise RuntimeError(f"internal node {v} has no parent edge")
    children = tree.children(v)

    # per-child quantities measured at v (below any repeater at v)
    ups = []    # (arrival at v via child, source index, child)
    downs = []  # (delay from v to sink via child, sink index, child)
    diameter, diameter_pair = NEVER, None
    for u in children:
        tu = timing[u]
        if tu.arrival != NEVER:
            ups.append((tu.arrival + analyzer.wire_delay(u, v), tu.arrival_source, u))
        if tu.required != NEVER:
            downs.append((analyzer.wire_delay(v, u) + tu.required, tu.required_sink, u))
        if tu.diameter > diameter:
            diameter, diameter_pair = tu.diameter, tu.diameter_pair

    arrival, arrival_source = _best(ups)
    required, required_sink = _best(downs)

    # cross-child paths: best up from child i + best down into child j != i
    cross, cross_pair = _best_cross(ups, downs)
    if cross > diameter:
        diameter, diameter_pair = cross, cross_pair

    if analyzer.has_repeater(v):
        # measured values move to the repeater's parent (A) side
        (child,) = children
        if arrival != NEVER:
            arrival += analyzer.repeater_delay_through(v, child, parent)
        if required != NEVER:
            required += analyzer.repeater_delay_through(v, parent, child)

    return SubtreeTiming(
        arrival, arrival_source, required, required_sink, diameter, diameter_pair
    )


def _finish_at_root(
    analyzer: ElmoreAnalyzer, timing: Dict[int, SubtreeTiming]
) -> ARDResult:
    tree = analyzer.tree
    root = tree.root
    term = tree.node(root).terminal
    if term is None:
        raise RuntimeError("trees are rooted at a terminal")
    (child,) = tree.children(root)
    tc = timing[child]

    best, src, snk = tc.diameter, None, None
    if tc.diameter_pair is not None:
        src, snk = tc.diameter_pair

    # root as sink: arrivals from inside the child subtree terminate here
    if term.is_sink and tc.arrival != NEVER:
        cand = tc.arrival + analyzer.wire_delay(child, root) + term.downstream_delay
        if cand > best:
            best, src, snk = cand, tc.arrival_source, root

    # root as source: drive down into the child subtree
    if term.is_source and tc.required != NEVER:
        load = term.capacitance + analyzer.cap_into(root, child)
        cand = (
            term.arrival_time
            + term.driver_delay(load)
            + analyzer.wire_delay(root, child)
            + tc.required
        )
        if cand > best:
            best, src, snk = cand, root, tc.required_sink

    timing[root] = SubtreeTiming(NEVER, None, NEVER, None, best, (src, snk))
    return ARDResult(best, src, snk, timing)


# -- small helpers -------------------------------------------------------------


def _best(entries) -> Tuple[float, Optional[int]]:
    """Max value with its arg terminal; (-inf, None) when empty."""
    value, arg = NEVER, None
    for val, terminal, _child in entries:
        if val > value:
            value, arg = val, terminal
    return value, arg


def _best_cross(ups, downs) -> Tuple[float, Optional[Tuple[int, int]]]:
    """max over pairs with distinct children of up_i + down_j.

    Uses the top two entries of each list so a shared-child argmax can fall
    back to the runner-up — O(#children) overall.
    """
    top_ups = sorted(ups, key=lambda e: e[0], reverse=True)[:2]
    top_downs = sorted(downs, key=lambda e: e[0], reverse=True)[:2]
    best, pair = NEVER, None
    for uval, usrc, uchild in top_ups:
        for dval, dsnk, dchild in top_downs:
            if uchild == dchild:
                continue
            if uval + dval > best:
                best, pair = uval + dval, (usrc, dsnk)
    return best, pair
