"""Memoized, incremental, and parallel MSRI solving.

:func:`repro.core.msri.insert_repeaters` recomputes every per-node
candidate front from scratch on every call.  Its hot consumers re-solve
nearly identical subproblems: topology search scores hundreds of candidate
trees that differ from the incumbent by one edge, campaigns sweep knobs
over the same nets, and the serve daemon's ``optimize`` op re-runs the full
DP per request.  :class:`IncrementalMSRI` makes those repeated invocations
cheap with three layers:

1. **Subtree-front memoization** — a content-hash keyed
   :class:`~repro.core.msri_cache.MSRICache` shared across engines; a hit
   installs a stored front and skips the entire subtree below it.
2. **Dirty-path re-solve** — the engine retains every per-node front of its
   last solve; an edit (:meth:`set_terminal`, :meth:`set_edge_length`,
   :meth:`set_wire_width`) invalidates only the fronts on the root path
   above the dirty vertex, the same trick
   :class:`~repro.rctree.incremental.IncrementalARD` plays on its linear
   records — everything off that path is reusable because the DP is a pure
   bottom-up fold.
3. **Parallel subtree solving** — with ``workers >= 2``, independent
   sibling subtrees under the topmost branch point are farmed over the
   campaign executor and merged deterministically (sorted by subtree root
   index; workers return packed fronts, never live solutions).

Every layer is **bit-identical** to the cold DP in all value-bearing
fields: under ``REPRO_CHECK=1`` each solve that reused anything is
differentially re-verified against a cold :func:`insert_repeaters` run
(:func:`repro.check.contracts.verify_msri_equivalence`).  The soundness
argument — why fronts are content-pure, why fresh ``uid`` tie-breaks
cannot change values, and the ``c_max`` keying caveat — lives in
docs/ALGORITHMS.md §13.

The cross-tree cache is bypassed under ``options.lossy`` (lossy thinning
is an explicit approximation regime; the cache stays an exact-mode
device), while dirty-path retention and parallel solving remain available.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from ..check import contracts
from ..obs import core as obs
from ..rctree.engine import EvalContext
from ..rctree.topology import Node, NodeKind, RoutingTree
from ..tech.parameters import Technology
from ..tech.terminals import Terminal
from .msri import (
    MSRIOptions,
    MSRIResult,
    MSRIStats,
    _context_widths,
    _domain_bound,
    _make_pruner,
    _raw_set,
    _root_set,
    insert_repeaters,
)
from .msri_cache import (
    MSRICache,
    front_key,
    options_fingerprint,
    pack_front,
    subtree_signatures,
    unpack_front,
)
from .solution import Solution

__all__ = ["IncrementalMSRI", "insert_repeaters_cached"]

#: Below this many to-be-computed vertices, process fan-out costs more
#: than it saves and :meth:`IncrementalMSRI.solve` stays serial.
PARALLEL_MIN_NODES = 64

_OBS_SOLVES = obs.Counter("msri.engine.solves")
_OBS_NODES_REUSED = obs.Counter("msri.engine.nodes_reused")
_OBS_NODES_COMPUTED = obs.Counter("msri.engine.nodes_computed")


def insert_repeaters_cached(
    tree: RoutingTree,
    tech: Technology,
    options: MSRIOptions,
    *,
    context: Optional[EvalContext] = None,
    cache: Optional[MSRICache] = None,
    workers: int = 0,
) -> MSRIResult:
    """One-shot MSRI through the subtree-front cache.

    Drop-in for :func:`~repro.core.msri.insert_repeaters` when a shared
    :class:`~repro.core.msri_cache.MSRICache` makes repeated solves cheap
    (topology-search scoring, campaign sweeps, serve requests).  The
    result is bit-identical to the cold DP in every value-bearing field.
    """
    engine = IncrementalMSRI(
        tree, tech, options, context=context, cache=cache, workers=workers
    )
    return engine.solve()


class IncrementalMSRI:
    """An MSRI solver that retains per-node fronts between solves.

    Construct once per net, call :meth:`solve`, then edit and re-solve:
    only the fronts on the root path above each edit recompute.  Pass a
    shared ``cache`` to also reuse fronts across engines and across trees
    (requires exact mode; lossy engines skip the global cache).  ``workers``
    enables process fan-out over independent sibling subtrees for large
    cold solves.

    The engine exposes the same result type as the one-shot DP;
    ``result.stats`` additionally reports ``cache_hits`` (fronts installed
    from the cross-tree cache) and ``nodes_reused`` (DP vertices skipped).
    """

    def __init__(
        self,
        tree: RoutingTree,
        tech: Technology,
        options: MSRIOptions,
        *,
        context: Optional[EvalContext] = None,
        cache: Optional[MSRICache] = None,
        workers: int = 0,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.tech = tech
        self.options = options
        self.cache = cache
        self.workers = workers
        self._tree = tree
        self._widths = _context_widths(tree, context)
        self._fronts: Dict[int, List[Solution]] = {}
        self._c_max: Optional[float] = None
        self._fingerprint = options_fingerprint(tech, options)
        # lossy thinning is an approximation regime; the cross-tree cache
        # stays exact-mode only (docs/ALGORITHMS.md §13)
        self._use_cache = cache is not None and not options.lossy
        self._result: Optional[MSRIResult] = None

    @property
    def tree(self) -> RoutingTree:
        return self._tree

    @property
    def last_result(self) -> Optional[MSRIResult]:
        return self._result

    # -- edits -----------------------------------------------------------------

    def set_terminal(self, v: int, terminal: Terminal) -> None:
        """Replace the terminal payload at vertex ``v``.

        Invalidates only the fronts on the root path at and above ``v``.
        Note the domain bound ``c_max`` sums every pin capacitance, so a
        capacitance change flushes *all* retained fronts unless
        ``options.quantize_bound`` keeps the bound in the same bucket.
        """
        tree = self._tree
        node = tree.node(v)
        if node.kind is not NodeKind.TERMINAL:
            raise ValueError(f"node {v} is not a terminal")
        nodes = list(tree.nodes)
        nodes[v] = Node(
            index=v, x=node.x, y=node.y, kind=NodeKind.TERMINAL, terminal=terminal
        )
        self._tree = RoutingTree(
            nodes,
            [tree.parent(i) for i in range(len(tree))],
            [tree.edge_length(i) for i in range(len(tree))],
        )
        self._dirty_up(v)

    def set_edge_length(self, v: int, length: float) -> None:
        """Change the length of the edge from ``v`` up to its parent.

        A front describes the subtree *before* the Fig. 10 augmentation
        over the parent edge, so the dirty vertex is the parent: ``v``'s
        own front stays valid.
        """
        tree = self._tree
        parent = tree.parent(v)
        if parent is None:
            raise ValueError(f"node {v} has no parent edge")
        if length < 0.0:
            raise ValueError(f"edge length must be non-negative, got {length}")
        lengths = [tree.edge_length(i) for i in range(len(tree))]
        lengths[v] = float(length)
        self._tree = RoutingTree(
            tree.nodes, [tree.parent(i) for i in range(len(tree))], lengths
        )
        self._dirty_up(parent)

    def set_wire_width(self, v: int, width: float) -> None:
        """Set the fixed width factor of the edge from ``v`` to its parent."""
        parent = self._tree.parent(v)
        if parent is None:
            raise ValueError(f"node {v} has no parent edge")
        if width <= 0.0:
            raise ValueError(f"wire width factor must be positive, got {width}")
        self._widths[v] = float(width)
        self._dirty_up(parent)

    def solve_tree(self, tree: RoutingTree) -> MSRIResult:
        """Solve a different tree, dropping retained fronts.

        The cross-tree cache still applies: subtrees the new tree shares
        with previously solved ones (by content signature) hit without
        recomputation — this is the topology-search scoring path.
        """
        self._tree = tree
        self._fronts.clear()
        self._widths = {
            i: w for i, w in sorted(self._widths.items()) if i < len(tree)
        }
        return self.solve()

    def _dirty_up(self, v: Optional[int]) -> None:
        while v is not None:
            self._fronts.pop(v, None)
            v = self._tree.parent(v)

    # -- solving ---------------------------------------------------------------

    def solve(self) -> MSRIResult:
        """Run the DP, reusing every front the last solve left valid."""
        t0 = time.perf_counter()  # repro: noqa[R009] wall-clock feeds stats only, never the result
        tree = self._tree
        options = self.options
        stats = MSRIStats()
        c_max = _domain_bound(tree, self.tech, options, self._widths)
        if self._c_max is not None and c_max != self._c_max:  # repro: noqa[R001] bound change detection must be exact — fronts embed these bits
            # the bound enters every retained solution's domain: a changed
            # bound invalidates everything (quantize_bound avoids this)
            self._fronts.clear()
        self._c_max = c_max

        sigs: Optional[List[bytes]] = None
        if self._use_cache:
            sigs = subtree_signatures(tree, self._widths)
        sizes = self._subtree_sizes(tree)

        # top-down discovery: collect the vertices that actually need
        # computing; do not descend below a retained front or a cache hit
        root = tree.root
        order: List[int] = []  # preorder over to-be-computed vertices
        reused_any = False
        stack = list(reversed(tree.children(root)))
        while stack:
            v = stack.pop()
            front = self._fronts.get(v)
            if front is not None:
                stats.record_reused(v, len(front), sizes[v], from_cache=False)
                reused_any = True
                continue
            if sigs is not None and self._cache_site(tree, v):
                records = self.cache.get(
                    front_key(sigs[v], self._fingerprint, c_max)
                )
                if records is not None:
                    self._fronts[v] = unpack_front(tree, v, records)
                    stats.record_reused(
                        v, len(records), sizes[v], from_cache=True
                    )
                    reused_any = True
                    continue
            order.append(v)
            stack.extend(reversed(tree.children(v)))

        observing = obs.enabled()
        with obs.trace(
            "msri.engine.solve", nodes=len(tree), compute=len(order)
        ) as span:
            remaining = order
            if self.workers >= 2 and len(order) >= PARALLEL_MIN_NODES:
                remaining = self._solve_subtrees_parallel(
                    tree, c_max, order, stats, sigs
                )
            self._compute_fronts(tree, c_max, remaining, stats, sigs)
            roots = _root_set(
                tree, self.tech, self._fronts, c_max, options, self._widths
            )
            if observing:
                _OBS_SOLVES.add()
                _OBS_NODES_COMPUTED.add(stats.nodes_processed)
                _OBS_NODES_REUSED.add(stats.nodes_reused)
                span.set(
                    computed=stats.nodes_processed,
                    reused=stats.nodes_reused,
                    cache_hits=stats.cache_hits,
                )
        stats.runtime_seconds = time.perf_counter() - t0  # repro: noqa[R009] stats only
        result = MSRIResult(solutions=tuple(roots), stats=stats, tree=tree)
        if contracts.contracts_enabled() and reused_any:
            # differential contract at every reuse site: the warm answer
            # must equal a cold DP bit for bit in all value-bearing fields
            ctx = (
                EvalContext(wire_widths=dict(self._widths))
                if self._widths
                else None
            )
            cold = insert_repeaters(tree, self.tech, options, context=ctx)
            contracts.verify_msri_equivalence(
                result, cold, context="IncrementalMSRI vs cold insert_repeaters"
            )
        self._result = result
        return result

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _subtree_sizes(tree: RoutingTree) -> List[int]:
        sizes = [1] * len(tree)
        for v in tree.dfs_postorder():
            for u in tree.children(v):
                sizes[v] += sizes[u]
        return sizes

    @staticmethod
    def _cache_site(tree: RoutingTree, v: int) -> bool:
        """Whether ``v``'s front is worth caching/looking up.

        Branch points and the root's child gate whole subtrees, so a hit
        there skips the most work; insertion-chain and leaf fronts are
        cheap to recompute relative to the cost of packing their traces,
        so they are neither stored nor looked up (keeping hit/miss
        counters meaningful).
        """
        if tree.node(v).kind is NodeKind.STEINER:
            return True
        parent = tree.parent(v)
        return parent is not None and parent == tree.root

    def _compute_fronts(
        self,
        tree: RoutingTree,
        c_max: float,
        order: List[int],
        stats: MSRIStats,
        sigs: Optional[List[bytes]],
    ) -> None:
        """Bottom-up front computation over ``order`` (a preorder slice)."""
        options = self.options
        prune = _make_pruner(options)
        checking = contracts.contracts_enabled()
        observing = obs.enabled()
        sets = self._fronts
        for v in reversed(order):
            raw = _raw_set(
                tree, self.tech, v, sets, c_max, prune, options, self._widths
            )
            generated = len(raw)
            pruned = prune(raw)
            counts = stats.record(v, generated, pruned)
            if checking:
                contracts.verify_msri_node_conservation(
                    counts["node"], counts["generated"], counts["kept"]
                )
            if observing:
                obs.point("msri.node", **counts)
            sets[v] = pruned
            if sigs is not None and self._cache_site(tree, v):
                self.cache.put(
                    front_key(sigs[v], self._fingerprint, c_max),
                    pack_front(tree, v, pruned),
                )

    def _solve_subtrees_parallel(
        self,
        tree: RoutingTree,
        c_max: float,
        order: List[int],
        stats: MSRIStats,
        sigs: Optional[List[bytes]],
    ) -> List[int]:
        """Farm independent sibling subtrees out; return the serial rest.

        Jobs are the children of the topmost to-be-computed branch point
        whose subtrees are entirely uncomputed; each worker returns a
        *packed* front (no live solutions cross the process boundary) plus
        its stats aggregates, merged deterministically in ascending
        subtree-root order.  Falls back to fully serial when the tree
        offers no such split.
        """
        compute: Set[int] = set(order)
        roots = self._parallel_roots(tree, compute)
        sizes = self._subtree_sizes(tree)
        roots = [
            v
            for v in roots
            if sizes[v] >= 2
            and all(u in compute for u in self._descendants(tree, v))
        ]
        if len(roots) < 2:
            return order
        import functools

        from ..analysis.executor import Job, run_jobs

        bound = functools.partial(
            _solve_subtree_job,
            tree,
            self.tech,
            self.options,
            dict(self._widths),
            c_max,
        )
        jobs = [Job(key=(v,), args=(v,)) for v in sorted(roots)]
        outcomes = run_jobs(bound, jobs, workers=self.workers)
        by_root: Dict[int, Tuple] = {}
        for outcome in outcomes:
            if not outcome.ok:
                raise RuntimeError(
                    f"parallel MSRI subtree {outcome.key} failed: "
                    f"{outcome.failure}"
                )
            by_root[outcome.key[0]] = outcome.result
        done: Set[int] = set()
        for v in sorted(by_root):
            records, agg = by_root[v]
            self._fronts[v] = unpack_front(tree, v, records)
            self._merge_stats(stats, agg)
            done.update(self._descendants(tree, v))
            if sigs is not None and self._cache_site(tree, v):
                self.cache.put(
                    front_key(sigs[v], self._fingerprint, c_max),
                    records,
                )
        return [v for v in order if v not in done]

    @staticmethod
    def _parallel_roots(tree: RoutingTree, compute: Set[int]) -> List[int]:
        """Children of the topmost branch point on the to-compute path."""
        kids = tree.children(tree.root)
        if not kids:
            return []
        v = kids[0]
        while v in compute and len(tree.children(v)) == 1:
            v = tree.children(v)[0]
        if v not in compute:
            return []
        return [u for u in tree.children(v) if u in compute]

    @staticmethod
    def _descendants(tree: RoutingTree, v: int) -> List[int]:
        out = [v]
        stack = list(tree.children(v))
        while stack:
            x = stack.pop()
            out.append(x)
            stack.extend(tree.children(x))
        return out

    @staticmethod
    def _merge_stats(stats: MSRIStats, agg: Tuple) -> None:
        nodes, generated, kept, max_set, max_segs, set_sizes = agg
        stats.nodes_processed += nodes
        stats.solutions_generated += generated
        stats.solutions_after_pruning += kept
        stats.max_set_size = max(stats.max_set_size, max_set)
        stats.max_segments = max(stats.max_segments, max_segs)
        stats.set_sizes.update(set_sizes)


def _solve_subtree_job(
    tree: RoutingTree,
    tech: Technology,
    options: MSRIOptions,
    widths: Dict[int, float],
    c_max: float,
    sub_root: int,
) -> Tuple[Tuple, Tuple]:
    """Worker: solve one subtree bottom-up, return its packed root front.

    Module-level and bound via :func:`functools.partial` so the campaign
    executor can pickle it.  Returns ``(packed_front, stats_aggregate)``;
    live solutions never cross the process boundary (their traces are
    deep DAGs and their uids are process-local).
    """
    from .msri_cache import _subtree_preorder

    sets: Dict[int, List[Solution]] = {}
    stats = MSRIStats()
    prune = _make_pruner(options)
    checking = contracts.contracts_enabled()
    order = _subtree_preorder(tree, sub_root)
    for v in reversed(order):
        raw = _raw_set(tree, tech, v, sets, c_max, prune, options, widths)
        generated = len(raw)
        pruned = prune(raw)
        counts = stats.record(v, generated, pruned)
        if checking:
            contracts.verify_msri_node_conservation(
                counts["node"], counts["generated"], counts["kept"]
            )
        sets[v] = pruned
        for u in tree.children(v):
            del sets[u]  # children fully consumed; free worker memory
    records = pack_front(tree, sub_root, sets[sub_root])
    return records, (
        stats.nodes_processed,
        stats.solutions_generated,
        stats.solutions_after_pruning,
        stats.max_set_size,
        stats.max_segments,
        stats.set_sizes,
    )
