"""Closed-interval algebra on the real line.

The minimal functional subset (MFS) pruning of Lillis & Cheng (Sec. IV-D)
repeatedly manipulates *regions of the external-capacitance domain*: the set
of ``c_E`` values for which one candidate solution dominates another.  Those
regions are finite unions of closed intervals.  This module provides an
immutable :class:`IntervalSet` with the union / intersection / difference
operations the pruner needs, plus measure and membership queries.

Conventions
-----------
* Intervals are closed ``[lo, hi]`` with ``lo <= hi``; degenerate point
  intervals (``lo == hi``) are permitted — a solution can be uniquely optimal
  at a single crossover capacitance.
* Adjacent or overlapping intervals are always coalesced, so every
  :class:`IntervalSet` has a unique canonical form, which makes equality
  checks meaningful in tests.
* A small tolerance ``ATOL`` is used when coalescing so that floating-point
  noise from PWL breakpoint arithmetic does not produce spurious slivers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = ["Interval", "IntervalSet", "ATOL"]

#: Absolute tolerance used when deciding whether two interval endpoints touch.
ATOL = 1e-12


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[lo, hi]`` on the real line."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval endpoints may not be NaN")
        if self.lo > self.hi:
            raise ValueError(f"empty interval: lo={self.lo} > hi={self.hi}")

    @property
    def length(self) -> float:
        """Measure of the interval (0 for a point interval)."""
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        """A representative interior point of the interval."""
        if math.isinf(self.lo) and math.isinf(self.hi):
            return 0.0
        if math.isinf(self.hi):
            return self.lo + 1.0
        if math.isinf(self.lo):
            return self.hi - 1.0
        return 0.5 * (self.lo + self.hi)

    def contains(self, x: float, atol: float = 0.0) -> bool:
        """Return True when ``x`` lies in ``[lo - atol, hi + atol]``."""
        return self.lo - atol <= x <= self.hi + atol

    def overlaps(self, other: "Interval", atol: float = ATOL) -> bool:
        """Return True when the two closed intervals intersect or touch."""
        return self.lo <= other.hi + atol and other.lo <= self.hi + atol

    def intersect(self, other: "Interval") -> "Interval | None":
        """Intersection with ``other`` or None when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def shift(self, delta: float) -> "Interval":
        """Translate the interval by ``delta``."""
        return Interval(self.lo + delta, self.hi + delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.lo:g}, {self.hi:g}]"


def _coalesce(intervals: Iterable[Interval], atol: float) -> Tuple[Interval, ...]:
    """Sort and merge overlapping/touching intervals into canonical form."""
    items = sorted(intervals, key=lambda iv: (iv.lo, iv.hi))
    merged: List[Interval] = []
    for iv in items:
        if merged and iv.lo <= merged[-1].hi + atol:
            last = merged[-1]
            if iv.hi > last.hi:
                merged[-1] = Interval(last.lo, iv.hi)
        else:
            merged.append(iv)
    return tuple(merged)


class IntervalSet:
    """An immutable finite union of disjoint closed intervals.

    Construction always canonicalizes: intervals are sorted and
    overlapping/touching members merged, so two equal sets compare equal.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = (), *, atol: float = ATOL):
        self._intervals: Tuple[Interval, ...] = _coalesce(intervals, atol)

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set."""
        return cls(())

    @classmethod
    def single(cls, lo: float, hi: float) -> "IntervalSet":
        """The set consisting of one interval ``[lo, hi]``."""
        return cls((Interval(lo, hi),))

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[float, float]]) -> "IntervalSet":
        """Build from ``(lo, hi)`` tuples."""
        return cls(Interval(lo, hi) for lo, hi in pairs)

    # -- queries -----------------------------------------------------------

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The canonical, sorted, disjoint member intervals."""
        return self._intervals

    @property
    def is_empty(self) -> bool:
        return not self._intervals

    @property
    def measure(self) -> float:
        """Total length of the set."""
        return sum(iv.length for iv in self._intervals)

    @property
    def lo(self) -> float:
        """Infimum of the set; raises on the empty set."""
        if not self._intervals:
            raise ValueError("empty IntervalSet has no infimum")
        return self._intervals[0].lo

    @property
    def hi(self) -> float:
        """Supremum of the set; raises on the empty set."""
        if not self._intervals:
            raise ValueError("empty IntervalSet has no supremum")
        return self._intervals[-1].hi

    def contains(self, x: float, atol: float = 0.0) -> bool:
        """Membership test for the point ``x``."""
        return any(iv.contains(x, atol) for iv in self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = " u ".join(repr(iv) for iv in self._intervals)
        return f"IntervalSet({inner or 'empty'})"

    def approx_equal(self, other: "IntervalSet", atol: float = 1e-9) -> bool:
        """Endpoint-wise approximate equality (for float-noise tolerance)."""
        if len(self) != len(other):
            return False
        for a, b in zip(self, other):
            if not (
                math.isclose(a.lo, b.lo, rel_tol=0.0, abs_tol=atol)
                and math.isclose(a.hi, b.hi, rel_tol=0.0, abs_tol=atol)
            ):
                return False
        return True

    # -- set algebra -------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union."""
        return IntervalSet(self._intervals + other._intervals)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection via a linear merge of the two sorted lists."""
        out: List[Interval] = []
        i = j = 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            iv = a[i].intersect(b[j])
            if iv is not None:
                out.append(iv)
            # advance whichever interval ends first
            if a[i].hi < b[j].hi:
                i += 1
            else:
                j += 1
        return IntervalSet(out)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference ``self \\ other``.

        Because intervals are closed, removing a closed interval leaves
        half-open gaps; we approximate by keeping the shared endpoints
        (measure-zero effect), which is the right semantics for dominance
        pruning: a solution that is *tied* at a single point is allowed to be
        pruned there without affecting achievable optima.
        """
        if other.is_empty or self.is_empty:
            return self
        out: List[Interval] = []
        for iv in self._intervals:
            pieces = [iv]
            for cut in other._intervals:
                if cut.lo > iv.hi:
                    break
                next_pieces: List[Interval] = []
                for piece in pieces:
                    if cut.hi < piece.lo or cut.lo > piece.hi:
                        next_pieces.append(piece)
                        continue
                    if cut.lo > piece.lo:
                        next_pieces.append(Interval(piece.lo, cut.lo))
                    if cut.hi < piece.hi:
                        next_pieces.append(Interval(cut.hi, piece.hi))
                pieces = next_pieces
                if not pieces:
                    break
            out.extend(pieces)
        return IntervalSet(out)

    def shift(self, delta: float) -> "IntervalSet":
        """Translate every interval by ``delta``."""
        return IntervalSet(iv.shift(delta) for iv in self._intervals)

    def clamp(self, lo: float, hi: float) -> "IntervalSet":
        """Intersect with the single interval ``[lo, hi]``."""
        if lo > hi:
            return IntervalSet.empty()
        return self.intersect(IntervalSet.single(lo, hi))

    def sample_points(self, per_interval: int = 3) -> List[float]:
        """Representative points: endpoints plus interior midpoints.

        Used by tests and by the exhaustive dominance oracle to probe a
        region without discretizing the whole domain.
        """
        pts: List[float] = []
        for iv in self._intervals:
            pts.append(iv.lo)
            if iv.length > 0:
                if per_interval > 2:
                    step = iv.length / (per_interval - 1)
                    pts.extend(iv.lo + k * step for k in range(1, per_interval - 1))
                pts.append(iv.hi)
        return pts


def union_all(sets: Sequence[IntervalSet]) -> IntervalSet:
    """Union of many interval sets."""
    out = IntervalSet.empty()
    for s in sets:
        out = out.union(s)
    return out
