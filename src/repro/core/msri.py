"""Optimal multisource repeater insertion (MSRI) — paper Sec. IV, Fig. 5.

Bottom-up dynamic programming over a rooted routing tree.  For every vertex
``v`` the algorithm computes a minimal set of candidate solutions for the
subtree ``T_v`` (see :mod:`repro.core.solution` for the characterization and
:mod:`repro.core.mfs` for the pruning); at the root — a terminal — every
surviving solution collapses to a scalar ``(cost, ARD)`` pair, and the
result is the full cost-versus-performance trade-off suite.  Per the
paper's Theorem 4.1 the suite is exact: every achievable dominant
``(cost, cap, q, arr(c_E), diam(c_E))`` combination is represented.

The vertex dispatch mirrors the paper's Fig. 5:

* leaf          → :func:`~repro.core.solution.leaf_solution` (Fig. 6), or a
  set of sized-driver leaf solutions in driver-sizing mode;
* branch vertex → pairwise :func:`~repro.core.solution.join` of the children
  (Fig. 7);
* insertion pt  → unbuffered solutions plus one
  :func:`~repro.core.solution.apply_repeater` per oriented library repeater
  (Fig. 8);
* root terminal → :func:`~repro.core.solution.evaluate_at_root` (Fig. 9);

with :func:`~repro.core.solution.augment_wire` (Fig. 10) extending each set
across the wire toward the parent.

Problem 2.1 queries (min cost subject to ``ARD <= spec``) and the
cost-oblivious min-ARD query are answered from the returned suite.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..check import contracts
from ..obs import core as obs
from ..rctree.engine import EvalContext
from ..rctree.topology import NodeKind, RoutingTree
from ..tech.buffers import RepeaterLibrary
from ..tech.parameters import Technology
from .mfs import mfs, mfs_pairwise
from .prefilter import min_diam_lower_bound, prefilter_front
from .pwl import max_segment_count
from .solution import (
    Placement,
    RootSolution,
    Solution,
    Trace,
    apply_repeater,
    augment_wire,
    evaluate_at_root,
    join,
    leaf_solution,
)

__all__ = [
    "MSRIOptions",
    "MSRIStats",
    "MSRIResult",
    "insert_repeaters",
    "validate_msri_overrides",
]

# Observability metrics (naming contract: docs/OBSERVABILITY.md).  All are
# free while REPRO_OBS is off; the DP loop additionally hoists the enabled
# check out of its per-node body.
_OBS_NODES = obs.Counter("msri.nodes")
_OBS_GENERATED = obs.Counter("msri.solutions.generated")
_OBS_KEPT = obs.Counter("msri.solutions.kept")
_OBS_PRUNED = obs.Counter("msri.solutions.pruned")
_OBS_FRONT_WIDTH = obs.Histogram("msri.front_width")
_OBS_PWL_SEGMENTS = obs.Histogram("msri.pwl_segments")
_OBS_PREFILTER_EXAMINED = obs.Counter("msri.prefilter.examined")
_OBS_PREFILTER_DROPPED = obs.Counter("msri.prefilter.dropped")
_OBS_CAP_SPEC_DROPPED = obs.Counter("msri.cap.spec_dropped")
_OBS_CAP_LOSSY_DROPPED = obs.Counter("msri.cap.lossy_dropped")
_OBS_CAP_EXCEEDED = obs.Counter("msri.cap.exceeded")
_OBS_SEG_OVER_BUDGET = obs.Counter("pwl.segments.over_budget")
_OBS_SEG_DROPPED = obs.Counter("pwl.segments.dropped")

#: Override keys the wire/campaign/CLI layers may set on MSRIOptions.
_OVERRIDE_KEYS = (
    "prefilter",
    "max_front_width",
    "max_pwl_segments",
    "lossy",
    "spec",
    "quantize_bound",
)


def validate_msri_overrides(overrides: Optional[Dict]) -> Dict[str, object]:
    """Normalize a pruning-knob override dict from an untrusted layer.

    Shared by the CLI, the campaign config and the serve daemon so every
    entry point accepts the same knob names with the same coercions
    (``None``/empty → ``{}``).  Raises :class:`ValueError` on unknown keys
    or mistyped values; range checks live in
    :meth:`MSRIOptions.__post_init__`, which every path funnels through.
    """
    if not overrides:
        return {}
    if not isinstance(overrides, dict):
        raise ValueError(
            f"msri overrides must be an object, got {type(overrides).__name__}"
        )
    unknown = sorted(set(overrides) - set(_OVERRIDE_KEYS))
    if unknown:
        raise ValueError(
            f"unknown msri option(s) {', '.join(map(repr, unknown))}; "
            f"expected a subset of {', '.join(_OVERRIDE_KEYS)}"
        )
    out: Dict[str, object] = {}
    for key in ("prefilter", "lossy", "quantize_bound"):
        if key in overrides:
            out[key] = bool(overrides[key])
    for key in ("max_front_width", "max_pwl_segments"):
        if key in overrides and overrides[key] is not None:
            value = overrides[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"msri option {key!r} must be an integer")
            if int(value) != value:
                raise ValueError(f"msri option {key!r} must be an integer")
            out[key] = int(value)
    if "spec" in overrides and overrides["spec"] is not None:
        spec = overrides["spec"]
        if isinstance(spec, bool) or not isinstance(spec, (int, float)):
            raise ValueError("msri option 'spec' must be a number")
        out["spec"] = float(spec)
    return out


@dataclass(frozen=True)
class MSRIOptions:
    """Knobs for the MSRI run.

    ``driver_options`` switches terminals from their fixed parameters to a
    library of sized drivers (see :mod:`repro.core.driver_sizing`); it maps
    the optimizer onto the paper's driver-sizing experiments.  ``library``
    may be None in pure driver-sizing mode (no repeaters offered).
    ``wire_library`` enables the wire-sizing extension: every
    positive-length segment independently picks one
    :class:`~repro.tech.buffers.WireClass`, paying its area cost.
    ``use_divide_and_conquer`` selects the Fig. 4 pruner versus the naive
    pairwise one (ablation A1).

    The bounded-growth knobs (``docs/PRUNING.md``):

    * ``prefilter`` — Shi–Li style predictive pre-filters: the sorted-front
      candidate sweep before MFS plus the allocation-free pair prescreen
      inside it.  Exact (bit-identical fronts); on by default.
    * ``max_front_width`` — candidate-front width cap per prune site.  In
      exact mode the cap only drops solutions whose diameter lower bound
      already exceeds ``spec`` (certified infeasible); if the front still
      exceeds the cap it is kept intact and ``msri.cap.exceeded`` counts
      the site.  In ``lossy`` mode the front is deterministically thinned
      to the cap.
    * ``max_pwl_segments`` — per-function segment budget.  Exact mode only
      counts offenders (``pwl.segments.over_budget``); lossy mode replaces
      offending functions with their conservative upper-bound
      simplification (:meth:`~repro.core.pwl.PWL.simplified`).
    * ``spec`` — the timing spec (ps) that defines the feasible window for
      the exact cap's certificate (and the CLI's solution query).
    * ``lossy`` — opt-in: allow the caps to change results.  Requires at
      least one cap to act on.

    ``quantize_bound`` rounds the DP's external-capacitance domain bound
    ``c_max`` up to the next power of two.  The bound only needs to be an
    upper bound (any value at or above the net's total capacitance yields
    the same optimizer answers at the root), but it appears in every
    solution's domain, so two nets that differ anywhere get bit-different
    fronts everywhere.  Quantizing makes ``c_max`` a step function of net
    size: nets in the same bucket share subtree fronts, which is what lets
    :class:`~repro.core.msri_engine.IncrementalMSRI`'s content cache hit
    *across* trees (docs/ALGORITHMS.md §13).  Results under a quantized
    bound are self-consistent — a cold run with the same knob is
    bit-identical — but differ in the low bits from ``quantize_bound=False``
    runs because domain endpoints move.
    """

    library: Optional[RepeaterLibrary] = None
    driver_options: Optional[Sequence[object]] = None
    wire_library: Optional[Sequence[object]] = None
    use_divide_and_conquer: bool = True
    mfs_leaf_size: int = 8
    collect_stats: bool = True
    prefilter: bool = True
    max_front_width: Optional[int] = None
    max_pwl_segments: Optional[int] = None
    spec: Optional[float] = None
    lossy: bool = False
    quantize_bound: bool = False

    def __post_init__(self) -> None:
        if (
            self.library is None
            and self.driver_options is None
            and self.wire_library is None
        ):
            raise ValueError(
                "nothing to optimize: provide a repeater library, driver "
                "options, a wire library, or a combination"
            )
        if self.wire_library is not None and not self.wire_library:
            raise ValueError("wire_library may not be empty when given")
        if self.max_front_width is not None and self.max_front_width < 2:
            raise ValueError(
                f"max_front_width must be >= 2 (a front needs at least its "
                f"extremes), got {self.max_front_width}"
            )
        if self.max_pwl_segments is not None and self.max_pwl_segments < 1:
            raise ValueError(
                f"max_pwl_segments must be >= 1, got {self.max_pwl_segments}"
            )
        if self.lossy and self.max_front_width is None and (
            self.max_pwl_segments is None
        ):
            raise ValueError(
                "lossy mode needs a cap to act on: set max_front_width "
                "and/or max_pwl_segments"
            )


@dataclass
class MSRIStats:
    """Run statistics (solution-set sizes, pruning effectiveness, timing)."""

    nodes_processed: int = 0
    solutions_generated: int = 0
    solutions_after_pruning: int = 0
    max_set_size: int = 0
    max_segments: int = 0
    runtime_seconds: float = 0.0
    set_sizes: Dict[int, int] = field(default_factory=dict)
    #: Fronts installed from a cross-tree content cache (msri_cache hits).
    cache_hits: int = 0
    #: DP vertices skipped because a front was reused (cache hits count
    #: their whole subtree; engine-retained fronts likewise).  Reuse is
    #: reported separately from the generated/kept totals, so the
    #: conservation contract keeps holding per *computed* node.
    nodes_reused: int = 0

    def record(self, node: int, before: int, after: List[Solution]) -> Dict[str, int]:
        """Fold one node's prune into the totals; return its count record.

        The returned dict is the *single source* of the per-node counts:
        ``insert_repeaters`` feeds it verbatim to the conservation
        contract and to the ``msri.node`` observability point, so the
        stats totals and the obs labels cannot diverge.
        """
        kept = len(after)
        self.nodes_processed += 1
        self.solutions_generated += before
        self.solutions_after_pruning += kept
        self.max_set_size = max(self.max_set_size, kept)
        self.set_sizes[node] = kept
        for s in after:
            widest = max_segment_count((s.arr, s.diam))
            if widest > self.max_segments:
                self.max_segments = widest
        return {
            "node": node,
            "generated": before,
            "kept": kept,
            "pruned": before - kept,
        }

    def record_reused(
        self, node: int, kept: int, skipped: int, *, from_cache: bool
    ) -> None:
        """Fold one reused front into the totals.

        Deliberately does *not* touch ``solutions_generated`` /
        ``solutions_after_pruning``: those count only candidates the run
        actually constructed, so ``verify_msri_node_conservation`` stays
        valid per computed node.  ``skipped`` is the number of DP vertices
        the reuse made unnecessary (the whole subtree for a cache hit).
        """
        if from_cache:
            self.cache_hits += 1
        self.nodes_reused += skipped
        self.max_set_size = max(self.max_set_size, kept)
        self.set_sizes[node] = kept

    def front_width_p95(self) -> int:
        """95th percentile of the per-node surviving-front widths."""
        widths = sorted(self.set_sizes.values())
        if not widths:
            return 0
        return widths[min(len(widths) - 1, (len(widths) * 95) // 100)]


@dataclass(frozen=True)
class MSRIResult:
    """The suite of Pareto-optimal complete solutions, cheapest first."""

    solutions: Tuple[RootSolution, ...]
    stats: MSRIStats
    tree: RoutingTree

    def min_cost_meeting(self, spec: float) -> Optional[RootSolution]:
        """Cheapest solution with ``ARD <= spec`` (Problem 2.1); None if
        the spec is unachievable even at maximum cost."""
        for s in self.solutions:
            if s.ard <= spec:
                return s
        return None

    def min_ard(self) -> RootSolution:
        """The fastest solution regardless of cost."""
        return min(self.solutions, key=lambda s: s.ard)

    def min_cost(self) -> RootSolution:
        """The cheapest solution regardless of ARD."""
        return self.solutions[0]

    def tradeoff(self) -> List[Tuple[float, float]]:
        """The (cost, ARD) frontier, cheapest first."""
        return [(s.cost, s.ard) for s in self.solutions]

    def with_repeater_count(self, count: int) -> Optional[RootSolution]:
        """Fastest solution using exactly ``count`` repeaters (Fig. 11
        reports such fixed-budget solutions); None if no such solution is
        on the frontier."""
        matches = [s for s in self.solutions if s.repeater_count() == count]
        if not matches:
            return None
        return min(matches, key=lambda s: s.ard)


def insert_repeaters(
    tree: RoutingTree,
    tech: Technology,
    options: MSRIOptions,
    *,
    context: Optional[EvalContext] = None,
) -> MSRIResult:
    """Run the MSRI dynamic program and return the (cost, ARD) suite.

    ``context`` carries the evaluation knobs shared with the timing
    engines.  Only ``wire_widths`` is meaningful here (fixed per-edge width
    factors the DP optimizes *around*); a pre-set ``assignment`` or the
    companion-capacitance model is rejected — the DP derives the assignment
    itself and prices repeaters under the paper's Fig. 8 model.
    """
    widths = _context_widths(tree, context)
    t0 = time.perf_counter()  # repro: noqa[R009] wall-clock feeds stats only, never the result
    stats = MSRIStats()
    c_max = _domain_bound(tree, tech, options, widths)
    prune = _make_pruner(options)
    checking = contracts.contracts_enabled()
    observing = obs.enabled()  # hoisted: the per-node loop stays obs-free when off

    root = tree.root
    sets: Dict[int, List[Solution]] = {}
    with obs.trace("msri.run", nodes=len(tree)) as span:
        for v in tree.dfs_postorder():
            if v == root:
                continue
            with obs.trace("msri.prune", node=v) if observing else obs.NULL_SPAN:
                raw = _raw_set(tree, tech, v, sets, c_max, prune, options, widths)
                generated = len(raw)
                pruned = prune(raw)
            # one count record drives the contract, the stats totals and
            # the obs point — the three views cannot diverge
            counts = stats.record(v, generated, pruned)
            if checking:
                contracts.verify_msri_node_conservation(
                    counts["node"], counts["generated"], counts["kept"]
                )
            if observing:
                obs.point("msri.node", **counts)
                _OBS_FRONT_WIDTH.observe(counts["kept"])
            sets[v] = pruned
            for u in tree.children(v):
                del sets[u]  # children fully consumed; free memory

        roots = _root_set(tree, tech, sets, c_max, options, widths)
        if observing:
            _OBS_NODES.add(stats.nodes_processed)
            _OBS_GENERATED.add(stats.solutions_generated)
            _OBS_KEPT.add(stats.solutions_after_pruning)
            _OBS_PRUNED.add(
                stats.solutions_generated - stats.solutions_after_pruning
            )
            _OBS_PWL_SEGMENTS.observe(stats.max_segments)
            span.set(
                nodes=stats.nodes_processed,
                generated=stats.solutions_generated,
                kept=stats.solutions_after_pruning,
                front=stats.max_set_size,
            )
    stats.runtime_seconds = time.perf_counter() - t0  # repro: noqa[R009] stats only
    return MSRIResult(solutions=tuple(roots), stats=stats, tree=tree)


# -- per-kind solution set construction ------------------------------------------


def _raw_set(
    tree: RoutingTree,
    tech: Technology,
    v: int,
    sets: Dict[int, List[Solution]],
    c_max: float,
    prune,
    options: MSRIOptions,
    widths: Optional[Dict[int, float]] = None,
) -> List[Solution]:
    """The Fig. 5 per-kind candidate construction for one non-root vertex.

    Shared by :func:`insert_repeaters` and the incremental/parallel paths
    in :mod:`repro.core.msri_engine`, so every solver runs the exact same
    arithmetic per node.
    """
    node = tree.node(v)
    if node.kind is NodeKind.TERMINAL:
        return _leaf_set(node, v, c_max, options)
    if node.kind is NodeKind.STEINER:
        return _branch_set(tree, tech, v, sets, c_max, prune, options, widths)
    return _insertion_set(tree, tech, v, sets, c_max, options, widths)


def _leaf_set(node, v: int, c_max: float, options: MSRIOptions) -> List[Solution]:
    term = node.terminal
    if term is None:
        raise RuntimeError(f"leaf node {v} carries no terminal")
    if options.driver_options is None:
        return [leaf_solution(term, c_max)]
    out = []
    for opt in options.driver_options:
        out.append(
            leaf_solution(
                opt.applied_to(term),
                c_max,
                cost=opt.cost,
                trace=Trace().extended(Placement(v, opt)),
            )
        )
    return out


def _augment_over_edge(
    tree: RoutingTree,
    tech: Technology,
    child: int,
    solutions: List[Solution],
    c_max: float,
    options: MSRIOptions,
    widths: Optional[Dict[int, float]] = None,
) -> List[Solution]:
    """Extend a child's solutions across the wire toward its parent.

    Without a wire library this is one plain Fig. 10 augment per solution;
    with one, every positive-length segment fans out over the width menu
    (the wire-sizing extension), charging each class's area cost and
    recording the choice against the edge's child node.  A fixed context
    width factor on the edge rescales the base wire before either path.
    """
    length = tree.edge_length(child)
    w = (widths or {}).get(child, 1.0)
    r = tech.wire_resistance(length) / w
    c = tech.wire_capacitance(length) * w
    if options.wire_library is None or length <= 0.0:
        out = []
        for s in solutions:
            a = augment_wire(s, r, c, c_max)
            if a is not None:
                out.append(a)
        return out
    out = []
    for wc in options.wire_library:
        extra = wc.cost(length)
        placement = Placement(child, wc)
        for s in solutions:
            a = augment_wire(
                s,
                wc.resistance(r),
                wc.capacitance(c),
                c_max,
                extra_cost=extra,
                trace_placement=placement,
            )
            if a is not None:
                out.append(a)
    return out


def _augmented_child_sets(
    tree: RoutingTree,
    tech: Technology,
    v: int,
    sets: Dict[int, List[Solution]],
    c_max: float,
    options: MSRIOptions,
    widths: Optional[Dict[int, float]] = None,
) -> List[List[Solution]]:
    """Each child's solution set extended across its wire up to ``v``."""
    return [
        _augment_over_edge(tree, tech, u, sets[u], c_max, options, widths)
        for u in tree.children(v)
    ]


def _branch_set(
    tree: RoutingTree,
    tech: Technology,
    v: int,
    sets: Dict[int, List[Solution]],
    c_max: float,
    prune,
    options: MSRIOptions,
    widths: Optional[Dict[int, float]] = None,
) -> List[Solution]:
    child_sets = _augmented_child_sets(tree, tech, v, sets, c_max, options, widths)
    current = child_sets[0]
    for other in child_sets[1:]:
        combined = []
        for s1 in current:
            for s2 in other:
                j = join(s1, s2, c_max)
                if j is not None:
                    combined.append(j)
        # prune between pairwise joins: branch points are where suboptimal
        # combinations explode (the paper notes pruning is most effective
        # when constructing solutions at a branch point from its children)
        current = prune(combined)
    return current


def _insertion_set(
    tree: RoutingTree,
    tech: Technology,
    v: int,
    sets: Dict[int, List[Solution]],
    c_max: float,
    options: MSRIOptions,
    widths: Optional[Dict[int, float]] = None,
) -> List[Solution]:
    (unbuffered,) = _augmented_child_sets(tree, tech, v, sets, c_max, options, widths)
    out = list(unbuffered)
    if options.library is not None:
        for rep in options.library.oriented_options():
            for s in unbuffered:
                buffered = apply_repeater(s, rep, v, c_max)
                if buffered is not None:
                    out.append(buffered)
    return out


def _root_set(
    tree: RoutingTree,
    tech: Technology,
    sets: Dict[int, List[Solution]],
    c_max: float,
    options: MSRIOptions,
    widths: Optional[Dict[int, float]] = None,
) -> List[RootSolution]:
    root = tree.root
    term = tree.node(root).terminal
    if term is None:
        raise RuntimeError("trees are rooted at a terminal")
    (child,) = tree.children(root)

    candidates: List[RootSolution] = []
    for a in _augment_over_edge(tree, tech, child, sets[child], c_max, options, widths):
        if options.driver_options is None:
            rs = evaluate_at_root(a, root, term)
            if rs is not None:
                candidates.append(rs)
        else:
            for opt in options.driver_options:
                sized = opt.applied_to(term)
                rs = evaluate_at_root(
                    a,
                    root,
                    sized,
                    extra_cost=opt.cost,
                    trace_placement=Placement(root, opt),
                )
                if rs is not None:
                    candidates.append(rs)
    return _pareto_root(candidates)


def _pareto_root(candidates: List[RootSolution]) -> List[RootSolution]:
    """2-D (cost, ARD) minima, sorted by cost ascending."""
    ordered = sorted(candidates, key=lambda s: (s.cost, s.ard))
    out: List[RootSolution] = []
    best_ard = math.inf
    for s in ordered:
        if s.ard < best_ard - 1e-12:
            out.append(s)
            best_ard = s.ard
    if contracts.contracts_enabled():
        contracts.verify_root_front(out)
    return out


# -- helpers ---------------------------------------------------------------------


def _context_widths(
    tree: RoutingTree, context: Optional[EvalContext]
) -> Dict[int, float]:
    """Validate an evaluation context and extract its fixed edge widths.

    Shared by :func:`insert_repeaters` and
    :class:`~repro.core.msri_engine.IncrementalMSRI` so both reject the
    same context knobs for the same reasons.
    """
    widths: Dict[int, float] = {}
    if context is not None:
        if context.assignment:
            raise ValueError(
                "insert_repeaters derives the repeater assignment; "
                "context.assignment must be empty"
            )
        if context.include_companion_cap:
            raise ValueError(
                "insert_repeaters prices repeaters under the paper's "
                "decoupled model; include_companion_cap is not supported"
            )
        for idx, w in dict(context.wire_widths or {}).items():
            if not (0 <= idx < len(tree)) or tree.parent(idx) is None:
                raise ValueError(f"context.wire_widths[{idx}] does not name an edge")
            if w <= 0.0:
                raise ValueError(f"wire width factor must be positive, got {w}")
            widths[idx] = float(w)
    return widths


def _domain_bound(
    tree: RoutingTree,
    tech: Technology,
    options: MSRIOptions,
    widths: Optional[Dict[int, float]] = None,
) -> float:
    """Upper bound on any external capacitance seen during the DP."""
    widths = widths or {}
    wires = sum(
        tech.wire_capacitance(tree.edge_length(i)) * widths.get(i, 1.0)
        for i in range(len(tree))
    )
    pins = sum(t.capacitance for t in tree.terminals())
    if options.wire_library is not None:
        wires *= max(wc.width for wc in options.wire_library)
    extra = 0.0
    if options.library is not None:
        extra = max(max(r.c_a, r.c_b) for r in options.library)
    if options.driver_options is not None:
        extra = max(
            extra, max(opt.net_capacitance for opt in options.driver_options)
        )
    bound = wires + pins + extra + 1.0
    if options.quantize_bound:
        # next power of two: a step function of net size, so nets in the
        # same bucket share the domain bound (and hence cacheable fronts)
        bound = float(2.0 ** math.ceil(math.log2(bound)))
    return bound


def _make_pruner(options: MSRIOptions):
    """Compose the per-node pruning pipeline the DP runs at every vertex.

    prefilter (exact drop of certified-dominated candidates) → MFS (with
    the pair prescreen riding on the same knob) → width cap / segment
    budget.  Under ``REPRO_CHECK`` the pre-cap front is additionally
    cross-checked against a prescreen-free MFS pass over the *raw*
    candidates: exact mode must be bit-identical (docs/PRUNING.md).
    """
    prescreen = options.prefilter
    if options.use_divide_and_conquer:
        base = lambda sols: mfs(  # noqa: E731
            sols, leaf_size=options.mfs_leaf_size, prescreen=prescreen
        )
        baseline = lambda sols: mfs(  # noqa: E731
            sols, leaf_size=options.mfs_leaf_size, prescreen=False
        )
    else:
        base = lambda sols: mfs_pairwise(sols, prescreen=prescreen)  # noqa: E731
        baseline = lambda sols: mfs_pairwise(sols, prescreen=False)  # noqa: E731
    checking = contracts.contracts_enabled()
    observing = obs.enabled()
    has_caps = (
        options.max_front_width is not None
        or options.max_pwl_segments is not None
    )

    def prune(raw: List[Solution]) -> List[Solution]:
        candidates = raw
        if options.prefilter:
            candidates = prefilter_front(raw)
            if observing:
                _OBS_PREFILTER_EXAMINED.add(len(raw))
                _OBS_PREFILTER_DROPPED.add(len(raw) - len(candidates))
        front = base(candidates)
        if checking:
            contracts.verify_pareto(front)
            if options.prefilter:
                contracts.verify_front_equivalence(
                    front, baseline(raw), context="MSRI prefilter"
                )
        if has_caps:
            front = _enforce_caps(front, options, observing)
        return front

    return prune


_SORT_KEY = lambda s: (s.parity, s.cost, s.cap, s.q, s.uid)  # noqa: E731


def _enforce_caps(
    front: List[Solution], options: MSRIOptions, observing: bool
) -> List[Solution]:
    """Apply the width cap and the PWL segment budget to a pruned front."""
    cap = options.max_front_width
    if cap is not None and len(front) > cap:
        if options.spec is not None:
            # exact certificate: min-over-domain of diam is a monotone
            # lower bound on any completion's ARD, so these solutions can
            # never meet the spec.  Never drop the whole front — an empty
            # set would silently turn "spec unachievable" into "no net".
            feasible = [
                s for s in front if min_diam_lower_bound(s) <= options.spec
            ]
            if feasible and len(feasible) < len(front):
                if observing:
                    _OBS_CAP_SPEC_DROPPED.add(len(front) - len(feasible))
                front = feasible
        if len(front) > cap:
            if options.lossy:
                ordered = sorted(front, key=_SORT_KEY)
                n = len(ordered)
                # deterministic thinning: keep `cap` evenly spaced
                # solutions including both extremes of the sorted front
                picks = sorted(
                    {int(i * (n - 1) / (cap - 1) + 0.5) for i in range(cap)}
                )
                if observing:
                    _OBS_CAP_LOSSY_DROPPED.add(n - len(picks))
                front = [ordered[i] for i in picks]
            elif observing:
                _OBS_CAP_EXCEEDED.add()
    budget = options.max_pwl_segments
    if budget is not None:
        front = _enforce_segment_budget(front, budget, options.lossy, observing)
    return front


def _enforce_segment_budget(
    front: List[Solution], budget: int, lossy: bool, observing: bool
) -> List[Solution]:
    out: List[Solution] = []
    for s in front:
        widest = max_segment_count((s.arr, s.diam))
        if widest <= budget:
            out.append(s)
            continue
        if not lossy:
            if observing:
                _OBS_SEG_OVER_BUDGET.add()
            out.append(s)
            continue
        arr = s.arr if s.arr is None else s.arr.simplified(budget)
        diam = s.diam if s.diam is None else s.diam.simplified(budget)
        slim = replace(s, arr=arr, diam=diam, uid=s.uid)
        if observing:
            _OBS_SEG_DROPPED.add(
                widest - max_segment_count((slim.arr, slim.diam))
            )
        out.append(slim)
    return out
