"""Core algorithms: ARD computation, PWL machinery, MFS pruning, MSRI DP."""

from .ard import ARDResult, SubtreeTiming, ard, compute_ard
from .driver_sizing import DriverOption, make_driver_options
from .intervals import Interval, IntervalSet
from .mfs import mfs, mfs_pairwise, prune_one
from .msri import MSRIOptions, MSRIResult, MSRIStats, insert_repeaters
from .msri_cache import MSRICache
from .msri_engine import IncrementalMSRI, insert_repeaters_cached
from .pwl import PWL, Segment, maximum_all
from .solution import (
    Placement,
    RootSolution,
    Solution,
    Trace,
    apply_repeater,
    augment_wire,
    evaluate_at_root,
    join,
    leaf_solution,
)

__all__ = [
    "ARDResult",
    "SubtreeTiming",
    "ard",
    "compute_ard",
    "DriverOption",
    "make_driver_options",
    "Interval",
    "IntervalSet",
    "mfs",
    "mfs_pairwise",
    "prune_one",
    "MSRIOptions",
    "MSRIResult",
    "MSRIStats",
    "insert_repeaters",
    "MSRICache",
    "IncrementalMSRI",
    "insert_repeaters_cached",
    "PWL",
    "Segment",
    "maximum_all",
    "Placement",
    "RootSolution",
    "Solution",
    "Trace",
    "apply_repeater",
    "augment_wire",
    "evaluate_at_root",
    "join",
    "leaf_solution",
]
