"""Command-line interface: generate nets, compute ARDs, run the optimizer.

Installed as ``repro-msri`` (also runnable as ``python -m repro.cli``).

Subcommands
-----------
``generate``
    Build a seeded random net (the Sec. VI pipeline) and write it to JSON.
``info``
    Summarize a net file: size, wirelength, insertion points, bounding box.
``ard``
    Compute the augmented RC-diameter of a net (optionally with a saved
    repeater assignment) and report the critical source/sink pair.
``optimize``
    Run MSRI in repeater-insertion, driver-sizing, or combined mode; print
    the cost/ARD trade-off suite and optionally save the assignment that
    meets a timing spec at minimum cost.
``render``
    ASCII-render a net (optionally with a saved assignment), or write an
    SVG with ``--svg``.
``synthesize``
    ARD-driven topology synthesis: build a timing-optimized Steiner
    topology for a seeded point set (or one loaded from a points file) and
    write the resulting net.
``campaign``
    Run a sharded, resumable experiment sweep (Tables II/IV protocol);
    ``--engine`` adds a per-job bit-identity guard against the reference
    pass.
``serve``
    Start the NDJSON session daemon over the editable engines
    (``docs/SERVING.md``), or with ``--self-test`` run the in-process
    concurrent load generator and assert every streamed response is
    byte-identical to a serial replay.
``lint``
    Run the repo-specific static analysis (rules R001-R006, see
    ``docs/STATIC_ANALYSIS.md``) over files or directories; also installed
    standalone as ``repro-lint``.
``trace``
    Run any other subcommand with observability enabled
    (``repro-msri trace [-o trace.jsonl] campaign ...``): spans, counters
    and per-node DP metrics are captured — worker processes included —
    exported as JSONL, and summarized as a text flame tree (optionally an
    SVG flame graph with ``--svg``).  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .analysis.render import render_tree
from .analysis.report import Table
from .core.ard import ard
from .rctree.engine import EvalContext
from .core.msri import MSRIOptions, insert_repeaters
from .io.serialize import (
    assignment_from_dict,
    assignment_to_dict,
    load_tree,
    save_tree,
)
from .netgen.random_nets import random_net
from .rctree.registry import editable_engine_names, engine_names, make_engine
from .netgen.workloads import (
    PAPER_SPACING_UM,
    driver_sizing_options,
    paper_driver_options,
    paper_net_spec,
    paper_repeater_library,
    paper_technology,
    repeater_insertion_options,
)
from .tech.buffers import Repeater

__all__ = ["main", "build_parser"]


def _add_pruning_args(p: argparse.ArgumentParser) -> None:
    """The shared MSRI pruning knobs (docs/PRUNING.md) for a subcommand."""
    grp = p.add_argument_group("pruning (docs/PRUNING.md)")
    grp.add_argument(
        "--no-prefilter",
        dest="prefilter",
        action="store_false",
        help="disable the exact Shi-Li style dominance pre-filters "
        "(ablation; results are identical either way)",
    )
    grp.add_argument(
        "--max-front-width",
        type=int,
        help="cap the candidate-front width per prune site (exact unless "
        "--lossy: only spec-infeasible solutions are dropped)",
    )
    grp.add_argument(
        "--max-pwl-segments",
        type=int,
        help="per-function PWL segment budget (exact mode only counts "
        "offenders; --lossy simplifies to a conservative upper bound)",
    )
    grp.add_argument(
        "--lossy",
        action="store_true",
        help="allow the caps to change results (deterministic thinning / "
        "upper-bound simplification); requires a cap",
    )
    grp.add_argument(
        "--quantize-bound",
        action="store_true",
        help="round the DP's capacitance domain bound up to a power of two "
        "so similar nets share subtree-front cache entries "
        "(docs/ALGORITHMS.md section 13); self-consistent but low bits "
        "differ from unquantized runs",
    )


def _pruning_overrides(args, spec: Optional[float] = None) -> dict:
    """Collect non-default pruning knobs into a validate-ready dict."""
    ov: dict = {}
    if not args.prefilter:
        ov["prefilter"] = False
    if args.max_front_width is not None:
        ov["max_front_width"] = args.max_front_width
    if args.max_pwl_segments is not None:
        ov["max_pwl_segments"] = args.max_pwl_segments
    if args.lossy:
        ov["lossy"] = True
    if args.quantize_bound:
        ov["quantize_bound"] = True
    if spec is not None:
        ov["spec"] = spec
    return ov


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-msri",
        description="Multisource net timing optimization "
        "(Lillis & Cheng, DAC'97/TCAD'99 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a seeded random net")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--pins", type=int, default=10)
    g.add_argument(
        "--spacing",
        type=float,
        default=PAPER_SPACING_UM,
        help="max insertion-point spacing in um (0 disables insertion points)",
    )
    g.add_argument("--output", "-o", required=True, help="output net JSON path")

    i = sub.add_parser("info", help="summarize a net file")
    i.add_argument("net", help="net JSON path")

    a = sub.add_parser("ard", help="compute the augmented RC-diameter")
    a.add_argument("net", help="net JSON path")
    a.add_argument("--assignment", help="repeater assignment JSON path")
    a.add_argument(
        "--engine",
        choices=sorted(engine_names()),
        default="reference",
        help="timing engine backend (default: reference; 'flat' runs the "
        "array kernel, 'flat-numpy' forces the vectorized compiler)",
    )

    o = sub.add_parser("optimize", help="run the MSRI optimizer")
    o.add_argument("net", help="net JSON path")
    o.add_argument(
        "--mode",
        choices=["repeater", "sizing", "both"],
        default="repeater",
    )
    o.add_argument(
        "--engine",
        choices=sorted(engine_names()),
        help="also measure the input net (bare and, with --spec, under the "
        "chosen assignment) through this registry engine",
    )
    o.add_argument(
        "--spec",
        type=float,
        help="timing spec (ps); report the min-cost solution meeting it",
    )
    o.add_argument(
        "--save-assignment",
        help="write the chosen solution's repeater assignment to this path "
        "(requires --spec)",
    )
    _add_pruning_args(o)

    r = sub.add_parser("render", help="render a net (ASCII or SVG)")
    r.add_argument("net", help="net JSON path")
    r.add_argument("--assignment", help="repeater assignment JSON path")
    r.add_argument("--svg", help="write an SVG to this path instead of ASCII")

    s = sub.add_parser(
        "synthesize", help="ARD-driven topology synthesis for a point set"
    )
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--pins", type=int, default=8)
    s.add_argument(
        "--points",
        help="optional points file (one 'x y' pair per line, um) instead of "
        "a seeded random set",
    )
    s.add_argument(
        "--wirelength-weight",
        type=float,
        default=0.0,
        help="ps per um of extra wire (0 = pure diameter)",
    )
    s.add_argument(
        "--spacing",
        type=float,
        default=PAPER_SPACING_UM,
        help="insertion-point spacing for the written net (0 disables)",
    )
    s.add_argument(
        "--engine",
        choices=sorted(engine_names()),
        default="incremental",
        help="timing engine scoring candidate topologies "
        "(default: incremental; ignored with --objective msri)",
    )
    s.add_argument(
        "--objective",
        choices=["ard", "msri"],
        default="ard",
        help="candidate score: bare-tree diameter ('ard', default) or the "
        "minimum diameter after optimal repeater insertion ('msri', "
        "scored through the subtree-front cache)",
    )
    s.add_argument("--output", "-o", required=True, help="output net JSON path")
    s.add_argument(
        "--spec",
        type=float,
        help="also run the MSRI optimizer on the synthesized net and "
        "report the min-cost solution meeting this spec (ps)",
    )
    _add_pruning_args(s)

    lint = sub.add_parser(
        "lint", help="run repo-specific static analysis (rules R001-R010)"
    )
    lint.add_argument("paths", nargs="+", help="files or directories to lint")
    lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text"
    )
    lint.add_argument("--select", help="comma-separated rule ids (default: all)")
    lint.add_argument(
        "--baseline", help="suppress findings fingerprinted in this file"
    )
    lint.add_argument(
        "--write-baseline", help="adopt all current findings into this file"
    )
    lint.add_argument(
        "--changed-only",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="BASE",
        help="lint only files changed vs. the git ref BASE (default HEAD)",
    )

    c = sub.add_parser(
        "campaign", help="run a Table II-style sweep and save a JSON record"
    )
    c.add_argument("--seeds", type=int, default=3, help="seeds 0..N-1 per size")
    c.add_argument(
        "--sizes", type=int, nargs="+", default=[10, 20], help="net cardinalities"
    )
    c.add_argument("--spacing", type=float, default=PAPER_SPACING_UM)
    c.add_argument(
        "--spacings",
        type=float,
        nargs="+",
        help="sweep several insertion spacings (um) instead of --spacing",
    )
    c.add_argument("--label", default="cli")
    c.add_argument("--output", "-o", required=True, help="campaign JSON path")
    c.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = in-process serial; results are identical "
        "at any worker count)",
    )
    c.add_argument(
        "--timeout",
        type=float,
        help="per-job timeout in seconds (requires --workers >= 1)",
    )
    c.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="re-run a failed or timed-out job up to N times before "
        "recording a structured failure",
    )
    c.add_argument(
        "--checkpoint",
        help="JSONL checkpoint path (default: <output>.checkpoint.jsonl)",
    )
    c.add_argument(
        "--resume",
        action="store_true",
        help="replay the checkpoint and re-run only missing or failed jobs",
    )
    c.add_argument(
        "--engine",
        choices=sorted(engine_names()),
        help="bit-identity-check this registry engine against the "
        "reference pass on every job's net",
    )
    c.add_argument(
        "--msri-cache",
        action="store_true",
        help="route every job's optimizations through a worker-local "
        "subtree-front cache (bit-identical results; pair with "
        "--quantize-bound for cross-net hits)",
    )
    _add_pruning_args(c)

    v = sub.add_parser(
        "serve",
        help="run the NDJSON session server (timing-as-a-service; "
        "see docs/SERVING.md)",
    )
    v.add_argument("--host", default="127.0.0.1")
    v.add_argument(
        "--port",
        type=int,
        default=8642,
        help="listen port (0 = OS-assigned; default 8642)",
    )
    v.add_argument(
        "--engine",
        choices=sorted(editable_engine_names()),
        default="incremental",
        help="default session engine (editable engines only; "
        "default: incremental)",
    )
    v.add_argument(
        "--timeout", type=float, default=30.0, help="per-request timeout (s)"
    )
    v.add_argument(
        "--ttl", type=float, default=300.0, help="idle-session eviction TTL (s)"
    )
    v.add_argument(
        "--max-frame-bytes",
        type=int,
        default=1 << 20,
        help="reject frames longer than this many bytes",
    )
    v.add_argument(
        "--self-test",
        action="store_true",
        help="start an ephemeral server, run the concurrent load generator "
        "against it, verify byte-identical responses, and exit",
    )
    v.add_argument(
        "--sessions", type=int, default=8, help="self-test concurrent sessions"
    )
    v.add_argument(
        "--edits", type=int, default=30, help="self-test edits per session"
    )
    v.add_argument("--seed", type=int, default=0, help="self-test stream seed")

    t = sub.add_parser(
        "trace",
        help="run another subcommand with observability enabled "
        "(spans + DP metrics), export JSONL, print a flame summary",
    )
    t.add_argument(
        "--trace-output",
        "-o",
        dest="trace_output",
        default="trace.jsonl",
        help="JSONL trace path (default: trace.jsonl)",
    )
    t.add_argument(
        "--svg", dest="trace_svg", help="also write an SVG flame graph here"
    )
    t.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        help="the traced subcommand and its arguments, e.g. "
        "'campaign --seeds 2 --sizes 6 -o camp.json'",
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "info": _cmd_info,
        "ard": _cmd_ard,
        "optimize": _cmd_optimize,
        "render": _cmd_render,
        "synthesize": _cmd_synthesize,
        "campaign": _cmd_campaign,
        "serve": _cmd_serve,
        "lint": _cmd_lint,
        "trace": _cmd_trace,
    }[args.command]
    return handler(args)


def _cmd_generate(args) -> int:
    spacing = None if args.spacing == 0 else args.spacing
    tree = random_net(args.seed, args.pins, paper_net_spec(), spacing=spacing)
    save_tree(tree, args.output)
    print(
        f"wrote {args.output}: {len(tree)} nodes, "
        f"{len(tree.terminal_indices())} terminals, "
        f"{len(tree.insertion_indices())} insertion points, "
        f"{tree.total_wire_length():.0f} um wire"
    )
    return 0


def _cmd_info(args) -> int:
    tree = load_tree(args.net)
    min_x, min_y, max_x, max_y = tree.bounding_box()
    t = Table(f"net: {args.net}", ["property", "value"])
    t.add_row("nodes", len(tree))
    t.add_row("terminals", len(tree.terminal_indices()))
    t.add_row("steiner points", len(tree.steiner_indices()))
    t.add_row("insertion points", len(tree.insertion_indices()))
    t.add_row("wirelength (um)", tree.total_wire_length())
    t.add_row("bounding box (um)", f"({min_x:.0f},{min_y:.0f})-({max_x:.0f},{max_y:.0f})")
    t.add_row("root terminal", tree.node(tree.root).terminal.name)
    print(t)
    return 0


def _load_assignment(path: Optional[str]):
    if path is None:
        return {}
    with open(path) as fh:
        return assignment_from_dict(json.load(fh))


def _cmd_ard(args) -> int:
    tree = load_tree(args.net)
    assignment = _load_assignment(args.assignment)
    context = EvalContext(assignment=assignment)
    if args.engine == "reference":
        result = ard(tree, paper_technology(), context=context)
    else:
        engine = make_engine(
            args.engine, tree, paper_technology(), context=context
        )
        result = engine.evaluate(tree)
    if not result.is_finite:
        print("net has no source/sink pair; ARD is undefined")
        return 1
    src = tree.node(result.source).terminal.name
    snk = tree.node(result.sink).terminal.name
    print(f"ARD = {result.value:.1f} ps (critical pair: {src} -> {snk})")
    return 0


def _cmd_optimize(args) -> int:
    tree = load_tree(args.net)
    tech = paper_technology()
    if args.engine:
        bare = make_engine(args.engine, tree, tech).evaluate(tree)
        print(f"input net ARD ({args.engine} engine): {bare.value:.1f} ps")
    overrides = _pruning_overrides(args, spec=args.spec)
    if args.mode == "repeater":
        options = repeater_insertion_options(**overrides)
    elif args.mode == "sizing":
        options = driver_sizing_options(**overrides)
    else:
        options = MSRIOptions(
            library=paper_repeater_library(),
            driver_options=paper_driver_options(),
            **overrides,
        )
    result = insert_repeaters(tree, tech, options)

    t = Table(
        f"cost / ARD trade-off ({args.mode} mode, "
        f"{result.stats.runtime_seconds:.2f}s)",
        ["cost (1X eq.)", "ARD (ps)", "repeaters"],
    )
    for s in result.solutions:
        t.add_row(s.cost, s.ard, s.repeater_count())
    print(t)

    if args.spec is not None:
        chosen = result.min_cost_meeting(args.spec)
        if chosen is None:
            print(f"\nspec {args.spec} ps is not achievable "
                  f"(best ARD: {result.min_ard().ard:.1f} ps)")
            return 1
        print(
            f"\nmin-cost solution meeting {args.spec} ps: "
            f"cost {chosen.cost:.1f}, ARD {chosen.ard:.1f} ps, "
            f"{chosen.repeater_count()} repeaters"
        )
        reps = {
            k: v
            for k, v in chosen.assignment().items()
            if isinstance(v, Repeater)
        }
        if args.engine:
            measured = make_engine(
                args.engine,
                tree,
                tech,
                context=EvalContext(assignment=reps),
            ).evaluate(tree)
            print(
                f"net ARD under the chosen assignment "
                f"({args.engine} engine, driver stages excluded): "
                f"{measured.value:.1f} ps"
            )
        if args.save_assignment:
            with open(args.save_assignment, "w") as fh:
                json.dump(assignment_to_dict(reps), fh, indent=2)
            print(f"assignment written to {args.save_assignment}")
    return 0


def _cmd_render(args) -> int:
    tree = load_tree(args.net)
    assignment = _load_assignment(args.assignment)
    if args.svg:
        from .analysis.svg import save_svg

        save_svg(tree, args.svg, assignment, title=args.net)
        print(f"svg written to {args.svg}")
        return 0
    print(render_tree(tree, assignment))
    return 0


def _read_points(path: str):
    points = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 'x y', got {line!r}")
            points.append((float(parts[0]), float(parts[1])))
    if len(points) < 2:
        raise ValueError(f"{path}: need at least two points")
    return points


def _cmd_synthesize(args) -> int:
    from .netgen.random_nets import random_points
    from .steiner.insertion_points import add_insertion_points
    from .steiner.topology_search import synthesize_topology
    from .tech.terminals import Terminal

    if args.points:
        points = _read_points(args.points)
    else:
        points = random_points(args.seed, args.pins)
    spec = paper_net_spec()
    terminals = [
        Terminal(
            f"p{i}",
            x,
            y,
            capacitance=spec.capacitance,
            resistance=spec.resistance,
            intrinsic_delay=spec.intrinsic_delay,
        )
        for i, (x, y) in enumerate(points)
    ]
    if args.objective == "msri":
        # score candidates by the optimized net; quantize_bound makes the
        # shared cache hit across the sibling candidate trees
        msri_overrides = dict(_pruning_overrides(args))
        msri_overrides.setdefault("quantize_bound", True)
        result = synthesize_topology(
            terminals,
            paper_technology(),
            wirelength_weight=args.wirelength_weight,
            objective="msri",
            msri_options=repeater_insertion_options(**msri_overrides),
        )
    else:
        result = synthesize_topology(
            terminals,
            paper_technology(),
            wirelength_weight=args.wirelength_weight,
            engine=args.engine,
        )
    tree = result.tree
    if args.spacing:
        tree = add_insertion_points(tree, args.spacing)
    save_tree(tree, args.output)
    print(
        f"synthesized topology: diameter {result.ard:.0f} ps, wirelength "
        f"{result.wirelength:.0f} um ({result.iterations} iterations, "
        f"{result.evaluations} scored, {result.memo_hits} memo hits); "
        f"wrote {args.output}"
    )
    overrides = _pruning_overrides(args, spec=args.spec)
    if overrides or args.spec is not None:
        opt = insert_repeaters(
            tree, paper_technology(), repeater_insertion_options(**overrides)
        )
        t = Table(
            f"cost / ARD trade-off on the synthesized net "
            f"({opt.stats.runtime_seconds:.2f}s)",
            ["cost (1X eq.)", "ARD (ps)", "repeaters"],
        )
        for s in opt.solutions:
            t.add_row(s.cost, s.ard, s.repeater_count())
        print(t)
        if args.spec is not None:
            chosen = opt.min_cost_meeting(args.spec)
            if chosen is None:
                print(
                    f"spec {args.spec} ps is not achievable "
                    f"(best ARD: {opt.min_ard().ard:.1f} ps)"
                )
                return 1
            print(
                f"min-cost solution meeting {args.spec} ps: "
                f"cost {chosen.cost:.1f}, ARD {chosen.ard:.1f} ps, "
                f"{chosen.repeater_count()} repeaters"
            )
    return 0


def _cmd_lint(args) -> int:
    from .check.cli import run_lint

    return run_lint(
        args.paths,
        fmt=args.format,
        select=args.select,
        baseline=args.baseline,
        write_baseline_to=args.write_baseline,
        changed_only=args.changed_only,
    )


def _cmd_trace(args) -> int:
    import os

    from .analysis.render import render_flame_svg, render_trace_summary
    from .obs import core as obs
    from .obs.export import export_jsonl

    rest = list(args.rest)
    if rest and rest[0] == "--":  # argparse.REMAINDER keeps a leading --
        rest = rest[1:]
    if not rest:
        print("trace: missing the subcommand to run", file=sys.stderr)
        return 2
    if rest[0] == "trace":
        print("trace: cannot nest trace inside trace", file=sys.stderr)
        return 2

    # set the env var (inherited by campaign worker processes) and flip the
    # in-process flag for code that already imported the obs module
    prev_env = os.environ.get("REPRO_OBS")
    os.environ["REPRO_OBS"] = "1"
    obs.set_enabled(True)
    obs.reset()
    try:
        status = main(rest)
    finally:
        snap = obs.snapshot(reset=True)
        if prev_env is None:
            os.environ.pop("REPRO_OBS", None)
        else:
            os.environ["REPRO_OBS"] = prev_env
        obs.set_enabled(None)
        export_jsonl(args.trace_output, snap)
        print(f"\ntrace written to {args.trace_output}")
        if args.trace_svg:
            render_flame_svg(snap, args.trace_svg)
            print(f"flame graph written to {args.trace_svg}")
        print(render_trace_summary(snap))
    return status


def _cmd_campaign(args) -> int:
    from .analysis.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(
        seeds=tuple(range(args.seeds)),
        sizes=tuple(args.sizes),
        spacing=args.spacing,
        label=args.label,
        spacings=tuple(args.spacings) if args.spacings else (),
        msri=_pruning_overrides(args) or None,
        use_msri_cache=args.msri_cache,
    )
    checkpoint = args.checkpoint or (args.output + ".checkpoint.jsonl")

    def progress(done, total, outcome):
        seed, pins, _spacing = outcome.key
        if outcome.ok:
            r = outcome.result
            print(
                f"[{done}/{total}] seed {seed} pins {pins}: "
                f"RI diam {r.rep_min_ard / r.base_ard:.3f}x, "
                f"DS diam {r.sizing_min_ard / r.base_ard:.3f}x "
                f"({outcome.metrics.runtime_s:.1f}s)"
            )
        else:
            f = outcome.failure
            print(
                f"[{done}/{total}] seed {seed} pins {pins}: FAILED "
                f"({f.error_type} after {f.attempts} attempt(s): {f.message})"
            )

    campaign = run_campaign(
        config,
        workers=args.workers,
        timeout=args.timeout,
        max_retries=args.max_retries,
        checkpoint_path=checkpoint,
        resume=args.resume,
        progress=progress,
        engine=args.engine,
    )
    campaign.save(args.output)
    print()
    print(campaign.summary())
    print()
    print(campaign.runtime_summary())
    print(f"\ncampaign saved to {args.output} "
          f"({campaign.elapsed_seconds:.1f}s total, "
          f"checkpoint: {checkpoint})")
    if campaign.failures:
        print(f"{len(campaign.failures)} job(s) failed; "
              f"re-run with --resume to retry them")
        return 1
    return 0


def _cmd_serve(args) -> int:
    from .serve.server import ServeConfig, run_server, start_in_thread

    if args.self_test:
        from .serve.loadgen import run_load

        config = ServeConfig(
            host=args.host,
            port=0,  # ephemeral: never collide with a real deployment
            engine=args.engine,
            request_timeout_s=args.timeout,
            session_ttl_s=args.ttl,
            max_frame_bytes=args.max_frame_bytes,
        )
        server, stop = start_in_thread(config)
        try:
            report = run_load(
                args.host,
                server.port,
                sessions=args.sessions,
                edits_per_session=args.edits,
                seed=args.seed,
                engine=args.engine,
            )
        finally:
            stop()
        t = Table(
            f"serve self-test ({args.sessions} concurrent sessions, "
            f"engine={args.engine})",
            ["metric", "value"],
        )
        t.add_row("edit round-trips", report.edits_total)
        t.add_row("wall time (s)", f"{report.wall_s:.2f}")
        t.add_row("throughput (edits/s)", f"{report.throughput_eps:.0f}")
        t.add_row("p50 latency (ms)", f"{report.p50_ms:.2f}")
        t.add_row("p99 latency (ms)", f"{report.p99_ms:.2f}")
        t.add_row("max latency (ms)", f"{report.max_ms:.2f}")
        t.add_row("byte-identity mismatches", report.mismatches)
        print(t)
        for line in report.mismatch_details + report.errors:
            print(f"  {line}", file=sys.stderr)
        if not report.ok:
            print("self-test FAILED", file=sys.stderr)
            return 1
        print("self-test passed: all responses byte-identical to the "
              "serial replay")
        return 0

    run_server(
        ServeConfig(
            host=args.host,
            port=args.port,
            engine=args.engine,
            request_timeout_s=args.timeout,
            session_ttl_s=args.ttl,
            max_frame_bytes=args.max_frame_bytes,
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
