"""Exhaustive-enumeration optimizer — correctness oracle for MSRI.

Enumerates every assignment of oriented repeaters to insertion points (and,
optionally, every driver-sizing choice per terminal), evaluates each with
the independently implemented linear-time ARD algorithm, and returns the
exact (cost, ARD) Pareto frontier.  Exponential, so only usable on small
nets — which is exactly its job: the dynamic program must reproduce this
frontier bit-for-bit on every instance small enough to enumerate
(paper Theorem 4.1).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.ard import compute_ard
from ..core.driver_sizing import DriverOption
from ..rctree.elmore import ElmoreAnalyzer
from ..rctree.engine import EvalContext
from ..rctree.topology import NodeKind, RoutingTree
from ..tech.buffers import Repeater, RepeaterLibrary
from ..tech.parameters import Technology

__all__ = [
    "ExhaustivePoint",
    "enumerate_assignments",
    "exhaustive_frontier",
    "pareto_2d",
    "is_parity_feasible",
]

#: Refuse to enumerate beyond this many assignments.
MAX_ASSIGNMENTS = 2_000_000


@dataclass(frozen=True)
class ExhaustivePoint:
    """One fully evaluated assignment."""

    cost: float
    ard: float
    repeaters: Dict[int, Repeater]
    drivers: Dict[int, DriverOption]


def enumerate_assignments(
    tree: RoutingTree,
    tech: Technology,
    library: Optional[RepeaterLibrary] = None,
    driver_options: Optional[Sequence[DriverOption]] = None,
    wire_library: Optional[Sequence[object]] = None,
) -> List[ExhaustivePoint]:
    """Evaluate every repeater/driver/wire-width assignment on the tree."""
    insertion = tree.insertion_indices() if library is not None else []
    rep_choices: List[Optional[Repeater]] = [None]
    if library is not None:
        rep_choices.extend(library.oriented_options())

    terminals = tree.terminal_indices() if driver_options is not None else []
    drv_choices: Sequence[Optional[DriverOption]] = (
        list(driver_options) if driver_options is not None else [None]
    )

    edges: List[int] = []
    if wire_library is not None:
        edges = [
            v
            for v in range(len(tree))
            if tree.parent(v) is not None and tree.edge_length(v) > 0.0
        ]
    wire_choices: Sequence[Optional[object]] = (
        list(wire_library) if wire_library is not None else [None]
    )

    count = (
        len(rep_choices) ** len(insertion)
        * (len(drv_choices) ** len(terminals) if terminals else 1)
        * (len(wire_choices) ** len(edges) if edges else 1)
    )
    if count > MAX_ASSIGNMENTS:
        raise ValueError(
            f"{count} assignments exceed the exhaustive-search cap "
            f"({MAX_ASSIGNMENTS}); shrink the instance"
        )

    points: List[ExhaustivePoint] = []
    for reps in itertools.product(rep_choices, repeat=len(insertion)):
        assignment = {
            idx: rep for idx, rep in zip(insertion, reps) if rep is not None
        }
        if not is_parity_feasible(tree, assignment):
            continue  # some terminal would receive inverted data
        rep_cost = sum(r.cost for r in assignment.values())
        for drvs in itertools.product(drv_choices, repeat=max(len(terminals), 1)):
            if terminals:
                sized = dict(zip(terminals, drvs))
                work_tree = _with_sized_terminals(tree, sized)
                drv_cost = sum(d.cost for d in drvs)
            else:
                sized = {}
                work_tree = tree
                drv_cost = 0.0
            for wires in itertools.product(wire_choices, repeat=max(len(edges), 1)):
                if edges:
                    widths = {e: wc.width for e, wc in zip(edges, wires)}
                    wire_cost = sum(
                        wc.cost(tree.edge_length(e))
                        for e, wc in zip(edges, wires)
                    )
                else:
                    widths = {}
                    wire_cost = 0.0
                analyzer = ElmoreAnalyzer(
                    work_tree,
                    tech,
                    context=EvalContext(assignment=assignment, wire_widths=widths),
                )
                ard = compute_ard(analyzer).value
                points.append(
                    ExhaustivePoint(
                        cost=rep_cost + drv_cost + wire_cost,
                        ard=ard,
                        repeaters=dict(assignment),
                        drivers={k: v for k, v in sized.items() if v is not None},
                    )
                )
    return points


def exhaustive_frontier(
    tree: RoutingTree,
    tech: Technology,
    library: Optional[RepeaterLibrary] = None,
    driver_options: Optional[Sequence[DriverOption]] = None,
    wire_library: Optional[Sequence[object]] = None,
) -> List[Tuple[float, float]]:
    """The exact (cost, ARD) Pareto frontier by enumeration."""
    points = enumerate_assignments(tree, tech, library, driver_options, wire_library)
    return pareto_2d((p.cost, p.ard) for p in points)


def pareto_2d(points: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Minima of (cost, ARD) pairs, sorted by cost ascending."""
    ordered = sorted(points)
    out: List[Tuple[float, float]] = []
    best = math.inf
    for cost, ard in ordered:
        if ard < best - 1e-12:
            out.append((cost, ard))
            best = ard
    return out


def is_parity_feasible(tree: RoutingTree, assignment: Dict[int, Repeater]) -> bool:
    """True when every source-sink path crosses an even number of inverters.

    On a tree, the inversion count of the path (u, v) is
    ``parity(u) XOR parity(v)`` where ``parity(x)`` counts inverting
    repeaters between the root and ``x`` — so feasibility is simply "all
    terminals share one parity", and the root terminal pins it to 0.
    """
    if not any(rep.is_inverting for rep in assignment.values()):
        return True
    parity = {tree.root: 0}
    for v in tree.dfs_preorder():
        p = tree.parent(v)
        if p is None:
            continue
        flip = 1 if (v in assignment and assignment[v].is_inverting) else 0
        parity[v] = parity[p] ^ flip
    return all(parity[t] == 0 for t in tree.terminal_indices())


def _with_sized_terminals(
    tree: RoutingTree, sized: Dict[int, Optional[DriverOption]]
) -> RoutingTree:
    """Copy of the tree with each terminal's parameters resized."""
    from ..rctree.topology import Node

    nodes = []
    for n in tree.nodes:
        opt = sized.get(n.index)
        if n.kind is NodeKind.TERMINAL and opt is not None:
            nodes.append(
                Node(n.index, n.x, n.y, n.kind, opt.applied_to(n.terminal))
            )
        else:
            nodes.append(n)
    parent = [tree.parent(i) for i in range(len(tree))]
    lengths = [tree.edge_length(i) for i in range(len(tree))]
    return RoutingTree(nodes, parent, lengths)
