"""Analysis utilities: Pareto minima, oracles, reporting, experiments."""

from .batch import evaluate_batch_parallel
from .campaign import Campaign, CampaignConfig, load_campaign, run_campaign
from .executor import (
    Job,
    JobFailure,
    JobMetrics,
    JobOutcome,
    JsonlCheckpoint,
    run_jobs,
)
from .exhaustive import (
    ExhaustivePoint,
    enumerate_assignments,
    exhaustive_frontier,
    pareto_2d,
)
from .experiments import InstanceResult, run_instance, table1, table2, table3, table4
from .pareto import is_dominated, minima_2d, minima_3d, minima_nd
from .render import render_flame_svg, render_trace_summary, render_tree
from .svg import render_svg, save_svg
from .report import Table, results_dir, save_text
from .variation import VariationModel, VariationResult, monte_carlo_ard

__all__ = [
    "evaluate_batch_parallel",
    "Campaign",
    "CampaignConfig",
    "load_campaign",
    "run_campaign",
    "Job",
    "JobFailure",
    "JobMetrics",
    "JobOutcome",
    "JsonlCheckpoint",
    "run_jobs",
    "ExhaustivePoint",
    "enumerate_assignments",
    "exhaustive_frontier",
    "pareto_2d",
    "InstanceResult",
    "run_instance",
    "table1",
    "table2",
    "table3",
    "table4",
    "is_dominated",
    "minima_2d",
    "minima_3d",
    "minima_nd",
    "render_tree",
    "render_trace_summary",
    "render_flame_svg",
    "render_svg",
    "save_svg",
    "Table",
    "results_dir",
    "save_text",
    "VariationModel",
    "VariationResult",
    "monte_carlo_ard",
]
