"""ASCII rendering of routing trees and repeater assignments.

Used by the Fig. 11 benchmark and the examples to visualize how the
optimizer spends its repeaters: terminals appear as letters, Steiner points
as ``+``, free insertion points as ``.``, and placed repeaters as ``#``,
with wires drawn along their L-shaped routes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..rctree.topology import NodeKind, RoutingTree

__all__ = ["render_tree"]


def render_tree(
    tree: RoutingTree,
    assignment: Optional[Dict[int, object]] = None,
    width: int = 72,
    height: int = 30,
) -> str:
    """A fixed-size ASCII picture of the tree on its bounding box."""
    assignment = assignment or {}
    min_x, min_y, max_x, max_y = tree.bounding_box()
    span_x = max(max_x - min_x, 1.0)
    span_y = max(max_y - min_y, 1.0)

    def cell(x: float, y: float) -> Tuple[int, int]:
        cx = int(round((x - min_x) / span_x * (width - 1)))
        # invert y so larger y renders higher
        cy = int(round((max_y - y) / span_y * (height - 1)))
        return cx, cy

    canvas: List[List[str]] = [[" "] * width for _ in range(height)]

    def put(cx: int, cy: int, ch: str, *, force: bool = False) -> None:
        if 0 <= cx < width and 0 <= cy < height:
            if force or canvas[cy][cx] == " ":
                canvas[cy][cx] = ch

    # wires first (L-routes: horizontal then vertical)
    for v in range(len(tree)):
        p = tree.parent(v)
        if p is None:
            continue
        pa, pb = tree.node(p), tree.node(v)
        ax, ay = cell(pa.x, pa.y)
        bx, by = cell(pb.x, pb.y)
        step = 1 if bx >= ax else -1
        for cx in range(ax, bx + step, step):
            put(cx, ay, "-")
        step = 1 if by >= ay else -1
        for cy in range(ay, by + step, step):
            put(bx, cy, "|")
        put(bx, ay, "+", force=True)

    # nodes on top of wires
    labels: List[str] = []
    for node in tree.nodes:
        cx, cy = cell(node.x, node.y)
        if node.index in assignment:
            put(cx, cy, "#", force=True)
        elif node.kind is NodeKind.TERMINAL:
            ch = node.terminal.name[-1] if node.terminal.name else "T"
            put(cx, cy, ch, force=True)
            labels.append(f"{ch}={node.terminal.name}")
        elif node.kind is NodeKind.STEINER:
            put(cx, cy, "+", force=True)
        else:
            put(cx, cy, ".", force=True)

    lines = ["".join(row).rstrip() for row in canvas]
    legend = "terminals: " + ", ".join(labels) if labels else ""
    footer = "legend: letter=terminal  +=branch  .=insertion point  #=repeater"
    return "\n".join(line for line in lines if True) + "\n" + footer + (
        "\n" + legend if legend else ""
    )
