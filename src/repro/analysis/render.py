"""ASCII rendering of routing trees, assignments, and trace summaries.

Used by the Fig. 11 benchmark and the examples to visualize how the
optimizer spends its repeaters: terminals appear as letters, Steiner points
as ``+``, free insertion points as ``.``, and placed repeaters as ``#``,
with wires drawn along their L-shaped routes.

Also renders observability captures (``repro.obs`` snapshots):
:func:`render_trace_summary` prints a text flame tree — span paths nested
by their ``/``-joined name stacks with count / total / self durations —
followed by the counter and histogram sections, and
:func:`render_flame_svg` writes the same span tree as a standalone SVG
flame graph.  See docs/OBSERVABILITY.md for the snapshot format.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..rctree.topology import NodeKind, RoutingTree

__all__ = ["render_tree", "render_trace_summary", "render_flame_svg"]


def render_tree(
    tree: RoutingTree,
    assignment: Optional[Dict[int, object]] = None,
    width: int = 72,
    height: int = 30,
) -> str:
    """A fixed-size ASCII picture of the tree on its bounding box."""
    assignment = assignment or {}
    min_x, min_y, max_x, max_y = tree.bounding_box()
    span_x = max(max_x - min_x, 1.0)
    span_y = max(max_y - min_y, 1.0)

    def cell(x: float, y: float) -> Tuple[int, int]:
        cx = int(round((x - min_x) / span_x * (width - 1)))
        # invert y so larger y renders higher
        cy = int(round((max_y - y) / span_y * (height - 1)))
        return cx, cy

    canvas: List[List[str]] = [[" "] * width for _ in range(height)]

    def put(cx: int, cy: int, ch: str, *, force: bool = False) -> None:
        if 0 <= cx < width and 0 <= cy < height:
            if force or canvas[cy][cx] == " ":
                canvas[cy][cx] = ch

    # wires first (L-routes: horizontal then vertical)
    for v in range(len(tree)):
        p = tree.parent(v)
        if p is None:
            continue
        pa, pb = tree.node(p), tree.node(v)
        ax, ay = cell(pa.x, pa.y)
        bx, by = cell(pb.x, pb.y)
        step = 1 if bx >= ax else -1
        for cx in range(ax, bx + step, step):
            put(cx, ay, "-")
        step = 1 if by >= ay else -1
        for cy in range(ay, by + step, step):
            put(bx, cy, "|")
        put(bx, ay, "+", force=True)

    # nodes on top of wires
    labels: List[str] = []
    for node in tree.nodes:
        cx, cy = cell(node.x, node.y)
        if node.index in assignment:
            put(cx, cy, "#", force=True)
        elif node.kind is NodeKind.TERMINAL:
            ch = node.terminal.name[-1] if node.terminal.name else "T"
            put(cx, cy, ch, force=True)
            labels.append(f"{ch}={node.terminal.name}")
        elif node.kind is NodeKind.STEINER:
            put(cx, cy, "+", force=True)
        else:
            put(cx, cy, ".", force=True)

    lines = ["".join(row).rstrip() for row in canvas]
    legend = "terminals: " + ", ".join(labels) if labels else ""
    footer = "legend: letter=terminal  +=branch  .=insertion point  #=repeater"
    return "\n".join(line for line in lines if True) + "\n" + footer + (
        "\n" + legend if legend else ""
    )


# -- observability rendering ---------------------------------------------------


def _span_tree(snap: Dict[str, Any]) -> Dict[str, List[float]]:
    """Aggregate a snapshot's spans into ``{path: [count, total_s]}``."""
    agg: Dict[str, List[float]] = {}
    for entry in snap.get("spans", ()):
        node = agg.setdefault(entry["path"], [0, 0.0])
        node[0] += 1
        node[1] += entry["dur_s"]
    return agg


def _children_of(agg: Dict[str, List[float]], path: str) -> List[str]:
    prefix = path + "/"
    depth = path.count("/") + 1
    kids = [p for p in agg if p.startswith(prefix) and p.count("/") == depth]
    return sorted(kids, key=lambda p: -agg[p][1])


def _self_seconds(agg: Dict[str, List[float]], path: str) -> float:
    return agg[path][1] - sum(agg[k][1] for k in _children_of(agg, path))


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_trace_summary(snap: Dict[str, Any]) -> str:
    """A text flame summary of one ``repro.obs`` snapshot.

    Three sections: the span tree (paths nested by their name stacks, with
    call count, total and self time), counters, and histograms.  Works on a
    live :func:`repro.obs.snapshot` or a :func:`repro.obs.load_jsonl`
    round-trip of one.
    """
    lines: List[str] = []
    agg = _span_tree(snap)
    if agg:
        lines.append("spans (count  total  self):")
        roots = sorted(
            (p for p in agg if "/" not in p), key=lambda p: -agg[p][1]
        )

        def walk(path: str, depth: int) -> None:
            count, total = agg[path]
            self_s = _self_seconds(agg, path)
            # children running concurrently in worker processes can sum past
            # the parent's wall-clock; a negative "self" is meaningless then
            self_col = _fmt_s(self_s) if self_s >= 0 else "(conc)"
            lines.append(
                f"  {'  ' * depth}{path.rsplit('/', 1)[-1]:<28}"
                f"{int(count):>6}  {_fmt_s(total):>8}  "
                f"{self_col:>8}"
            )
            for kid in _children_of(agg, path):
                walk(kid, depth + 1)

        for root in roots:
            walk(root, 0)
    counters = {k: v for k, v in snap.get("counters", {}).items() if v}
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            value = counters[name]
            shown = int(value) if value == int(value) else value
            lines.append(f"  {name:<40}{shown:>12}")
    hists = snap.get("hists", {})
    if hists:
        lines.append("histograms (count  mean  min  max):")
        for name in sorted(hists):
            count, total, lo, hi = hists[name]
            mean = total / count if count else 0.0
            lines.append(
                f"  {name:<36}{int(count):>6}  {mean:>8.2f}  {lo:>6g}  {hi:>6g}"
            )
    dropped = snap.get("dropped", 0)
    if dropped:
        lines.append(f"warning: {dropped} record(s) dropped at the buffer cap")
    if not lines:
        return "(empty trace)"
    return "\n".join(lines)


def render_flame_svg(snap: Dict[str, Any], path: str, *, width: int = 960) -> None:
    """Write the snapshot's span tree as a standalone SVG flame graph.

    Horizontal extent is proportional to total seconds per span path;
    children nest one row below their parent.  Zero-dependency output:
    plain ``<rect>``/``<text>`` elements with ``<title>`` tooltips.
    """
    agg = _span_tree(snap)
    row_h = 22
    roots = sorted((p for p in agg if "/" not in p), key=lambda p: -agg[p][1])
    total = sum(agg[p][1] for p in roots) or 1.0
    depth_max = max((p.count("/") for p in agg), default=0)
    height = (depth_max + 1) * row_h + 30
    palette = ["#d9534f", "#f0ad4e", "#5bc0de", "#5cb85c", "#9b7fd4", "#e38dc1"]
    rects: List[str] = []

    def emit(p: str, x0: float, span_w: float, depth: int) -> None:
        count, secs = agg[p]
        w = max(span_w, 1.0)
        y = depth * row_h + 24
        color = palette[hash(p.rsplit("/", 1)[-1]) % len(palette)]
        label = p.rsplit("/", 1)[-1]
        rects.append(
            f'<g><rect x="{x0:.1f}" y="{y}" width="{w:.1f}" height="{row_h - 2}" '
            f'fill="{color}" stroke="#fff"/>'
            f"<title>{p}: {int(count)} call(s), {_fmt_s(secs)}</title>"
            + (
                f'<text x="{x0 + 3:.1f}" y="{y + 15}" font-size="11" '
                f'font-family="monospace">{label}</text>'
                if w > 8 * len(label)
                else ""
            )
            + "</g>"
        )
        kids = _children_of(agg, p)
        scale = span_w / agg[p][1] if agg[p][1] > 0 else 0.0
        x = x0
        for kid in kids:
            kw = agg[kid][1] * scale
            emit(kid, x, kw, depth + 1)
            x += kw

    x = 0.0
    for root in roots:
        rw = agg[root][1] / total * width
        emit(root, x, rw, 0)
        x += rw

    svg = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif">'
        f'<text x="4" y="16" font-size="13">trace flame graph '
        f"({_fmt_s(total)} total)</text>" + "".join(rects) + "</svg>"
    )
    with open(path, "w") as fh:
        fh.write(svg)
