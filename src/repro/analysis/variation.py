"""Process-variation robustness analysis of repeater-insertion solutions.

The optimizer commits to an assignment using nominal technology constants,
but fabricated wires and devices vary.  This module quantifies how a
solution's augmented RC-diameter moves under random multiplicative
perturbations of the wire constants and device parameters — a Monte-Carlo
corner sweep over the existing Elmore engine.

The headline question (answered by ``benchmarks/bench_variation.py``): do
the optimizer's buffered solutions stay better than the unbuffered net
across the process spread, or does their advantage evaporate at corners?
Because a repeater decouples its subtree, buffered solutions also
concentrate each path's delay into fewer RC products, which *reduces*
relative spread — measurable here.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

try:  # numpy supplies only the RNG and summary statistics here
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from ..rctree.engine import EvalContext
from ..rctree.topology import NodeKind, RoutingTree
from ..tech.buffers import Repeater
from ..tech.parameters import Technology

__all__ = ["VariationModel", "VariationResult", "monte_carlo_ard"]


@dataclass(frozen=True)
class VariationModel:
    """Relative 3-sigma spreads of each parameter class (lognormal-ish).

    Each sample draws one global multiplicative factor per parameter class
    (die-to-die variation): wire resistance, wire capacitance, device
    resistance, device capacitance.  Factors are
    ``exp(N(0, sigma))`` with ``sigma = spread / 3`` so ``spread`` reads as
    a 3-sigma relative variation.
    """

    wire_resistance_spread: float = 0.15
    wire_capacitance_spread: float = 0.10
    device_resistance_spread: float = 0.20
    device_capacitance_spread: float = 0.10

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            if getattr(self, f.name) < 0.0:
                raise ValueError(f"{f.name} must be non-negative")


@dataclass(frozen=True)
class VariationResult:
    """Distribution statistics of the sampled ARD."""

    nominal: float
    mean: float
    std: float
    p95: float
    worst: float
    samples: Tuple[float, ...]

    @property
    def relative_spread(self) -> float:
        """Std/mean — the robustness figure of merit."""
        return self.std / self.mean if self.mean else math.nan


def monte_carlo_ard(
    tree: RoutingTree,
    tech: Technology,
    assignment: Optional[Dict[int, Repeater]] = None,
    *,
    model: VariationModel = VariationModel(),
    samples: int = 100,
    seed: int = 0,
    engine: str = "incremental",
) -> VariationResult:
    """Sample the ARD under die-to-die parameter variation.

    All samples run on one persistent engine: a sample is a
    :meth:`set_wire_scale` (die-to-die wire corner) plus per-terminal and
    per-repeater device overrides — no tree or engine rebuild per sample.
    ``engine`` names the registered backend carrying the sweep (default
    ``"incremental"``; ``"flat"`` runs the array kernel instead — see
    :func:`repro.rctree.registry.engine_names`).  Requires numpy.
    """
    if np is None:
        raise RuntimeError("monte_carlo_ard requires numpy (pip install numpy)")
    if samples < 1:
        raise ValueError("need at least one sample")
    rng = np.random.default_rng(seed)
    base_assignment = dict(assignment or {})
    from ..rctree.registry import make_engine

    engine = make_engine(
        engine, tree, tech, context=EvalContext(assignment=base_assignment)
    )
    if not hasattr(engine, "set_wire_scale") or not hasattr(engine, "set_terminal"):
        raise TypeError(
            f"monte_carlo_ard needs an engine with set_wire_scale()/"
            f"set_terminal(); {type(engine).__name__} has neither"
        )
    nominal = engine.evaluate(tree).value
    terminals = [
        (idx, tree.node(idx).terminal)
        for idx in range(len(tree))
        if tree.node(idx).kind is NodeKind.TERMINAL
    ]
    values: List[float] = []
    for _ in range(samples):
        f_wr = _factor(rng, model.wire_resistance_spread)
        f_wc = _factor(rng, model.wire_capacitance_spread)
        f_dr = _factor(rng, model.device_resistance_spread)
        f_dc = _factor(rng, model.device_capacitance_spread)
        engine.set_wire_scale(
            resistance_factor=f_wr, capacitance_factor=f_wc
        )
        for idx, base in terminals:
            engine.set_terminal(
                idx,
                dataclasses.replace(
                    base,
                    resistance=base.resistance * f_dr,
                    capacitance=base.capacitance * f_dc,
                ),
            )
        for idx, rep in _scaled_repeaters(base_assignment, f_dr, f_dc).items():
            engine.set_assignment(idx, rep)
        values.append(engine.evaluate(tree).value)
    arr = np.asarray(values)
    return VariationResult(
        nominal=nominal,
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if samples > 1 else 0.0,
        p95=float(np.percentile(arr, 95)),
        worst=float(arr.max()),
        samples=tuple(values),
    )


def _factor(rng, spread: float) -> float:
    if spread == 0.0:  # repro: noqa[R001] exact zero is the "disabled" sentinel, validated non-negative
        return 1.0
    return float(np.exp(rng.normal(0.0, spread / 3.0)))


def _scaled_repeaters(
    assignment: Dict[int, Repeater], f_r: float, f_c: float
) -> Dict[int, Repeater]:
    out = {}
    for idx, rep in assignment.items():
        out[idx] = dataclasses.replace(
            rep,
            r_ab=rep.r_ab * f_r,
            r_ba=rep.r_ba * f_r,
            c_a=rep.c_a * f_c,
            c_b=rep.c_b * f_c,
        )
    return out
