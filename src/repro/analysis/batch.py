"""Multi-core batched net evaluation over the campaign executor.

:func:`repro.rctree.flat.evaluate_batch` amortizes per-net overhead inside
one process; this module shards a batch across worker processes with
:func:`repro.analysis.executor.run_jobs`, which adds kill-safe retries and
per-shard observability for free.  Shards are evaluated independently
(every net is a pure function of its tree + context), so results are
identical to the serial call and are returned in input order.

The worker function is module-level and its arguments are plain picklable
values (trees, contexts, strings) — the executor's process-pool contract.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..rctree.engine import ARDResult, EvalContext
from ..rctree.flat import FlatNetCache, evaluate_batch
from ..rctree.topology import RoutingTree
from ..tech.parameters import Technology
from .executor import Job, run_jobs

__all__ = ["evaluate_batch_parallel"]


def _evaluate_shard(
    trees: Sequence[RoutingTree],
    tech: Technology,
    contexts: Optional[Sequence[Optional[EvalContext]]],
    backend: str,
    include_timing: bool,
) -> List[ARDResult]:
    """One worker's share of the batch (module-level for picklability)."""
    return evaluate_batch(
        trees,
        tech,
        contexts=contexts,
        backend=backend,
        include_timing=include_timing,
    )


def evaluate_batch_parallel(
    nets: Sequence[RoutingTree],
    tech: Technology,
    *,
    contexts: Union[None, EvalContext, Sequence[Optional[EvalContext]]] = None,
    backend: str = "auto",
    include_timing: bool = False,
    workers: int = 0,
    shard_size: int = 64,
    timeout: Optional[float] = None,
    max_retries: int = 0,
    cache: Optional[FlatNetCache] = None,
) -> List[ARDResult]:
    """Evaluate many nets across ``workers`` processes; results in input order.

    ``workers=0`` falls back to the serial
    :func:`~repro.rctree.flat.evaluate_batch` (no process pool, no
    pickling).  Otherwise the batch is cut into shards of ``shard_size``
    nets, one executor job each — large enough to amortize pickling, small
    enough to keep the pool busy.  ``timeout`` and ``max_retries`` are the
    executor's per-job knobs; a shard that exhausts its retries raises
    :class:`RuntimeError` (partial results are never returned silently).

    ``cache`` (a :class:`~repro.rctree.flat.FlatNetCache`) feeds the
    serial path only: compiled columns live in this process and cannot
    cross the process-pool boundary, so sharded runs ignore it — repeat
    nets are recompiled in the workers rather than shipped as pickles.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    n_batch = len(nets)
    if isinstance(contexts, EvalContext) or contexts is None:
        ctx_list: List[Optional[EvalContext]] = [contexts] * n_batch
    else:
        ctx_list = list(contexts)
        if len(ctx_list) != n_batch:
            raise ValueError(
                f"contexts length {len(ctx_list)} != nets length {n_batch}"
            )
    if workers == 0 or n_batch <= shard_size:
        return evaluate_batch(
            nets,
            tech,
            contexts=ctx_list,
            backend=backend,
            include_timing=include_timing,
            cache=cache,
        )

    nets = list(nets)
    jobs = []
    for shard_idx, start in enumerate(range(0, n_batch, shard_size)):
        stop = min(start + shard_size, n_batch)
        jobs.append(
            Job(
                key=("flat-batch", shard_idx, stop - start),
                args=(
                    nets[start:stop],
                    tech,
                    ctx_list[start:stop],
                    backend,
                    include_timing,
                ),
            )
        )
    outcomes = run_jobs(
        _evaluate_shard,
        jobs,
        workers=workers,
        timeout=timeout,
        max_retries=max_retries,
    )
    results: List[ARDResult] = []
    for outcome in outcomes:
        if not outcome.ok:
            f = outcome.failure
            raise RuntimeError(
                f"batch shard {f.key} failed after {f.attempts} attempt(s): "
                f"{f.error_type}: {f.message}"
            )
        results.extend(outcome.result)
    return results
