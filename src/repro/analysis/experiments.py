"""Experiment harness regenerating the paper's Sec. VI tables.

One :func:`run_instance` call evaluates a single seeded net in both modes
(driver sizing and repeater insertion) and records everything Tables II–IV
need; the ``table2``/``table3``/``table4`` aggregators format those records
into the paper's columns.

Normalization follows the paper exactly: "results in columns 3–7 are
averages of values normalized to the corresponding values for min-cost
solutions (i.e., no repeater insertion or sizing)" — the min-cost solution
is the all-1X-terminal, zero-repeater assignment, whose cost is two
equivalent 1X buffers per pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..core.msri import insert_repeaters, validate_msri_overrides
from ..netgen.workloads import (
    PAPER_SPACING_UM,
    driver_sizing_options,
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)
from .report import Table

__all__ = [
    "InstanceResult",
    "run_instance",
    "verify_engine_agreement",
    "table1",
    "table2",
    "table3",
    "table4",
]


@dataclass(frozen=True)
class InstanceResult:
    """Everything Tables II–IV need about one seeded net."""

    seed: int
    n_pins: int
    n_insertion_points: int
    wirelength_um: float
    base_cost: float            # all-1X, no repeaters (2 per pin)
    base_ard: float             # its RC-diameter (ps)
    sizing_min_ard: float       # best diameter achievable by sizing alone
    sizing_min_ard_cost: float  # cost of that sizing solution
    sizing_runtime_s: float
    rep_min_ard: float          # best diameter achievable by repeaters
    rep_min_ard_cost: float
    rep_runtime_s: float
    rep_cost_at_sizing_ard: Optional[float]  # cheapest repeater sol <= sizing diam
    spacing: float = 0.0        # insertion spacing (um) this instance used


def verify_engine_agreement(tree, tech, engine: str) -> None:
    """Assert the named engine matches the reference engine bit-for-bit.

    The registry engines are contractually bit-identical on any net; this
    guard evaluates the bare tree through both and raises
    :class:`RuntimeError` on the first disagreement.  (The optimizer's DP
    ``base_ard`` is *not* comparable — it includes driver-stage terms the
    bare-tree engines deliberately exclude.)
    """
    from ..rctree.registry import make_engine

    named = make_engine(engine, tree, tech).evaluate(tree)
    reference = make_engine("reference", tree, tech).evaluate(tree)
    if (named.value, named.source, named.sink) != (
        reference.value,
        reference.source,
        reference.sink,
    ):
        raise RuntimeError(
            f"engine {engine!r} disagrees with the reference pass: "
            f"{named.value!r} ({named.source}->{named.sink}) vs "
            f"{reference.value!r} ({reference.source}->{reference.sink})"
        )


#: Worker-process-local subtree-front cache for ``use_msri_cache`` runs.
#: One per process: campaign jobs land on a pool worker repeatedly, and
#: consecutive jobs (same topology swept over spacings, or neighboring
#: seeds in the same ``c_max`` bucket under ``quantize_bound``) share
#: subtree fronts.  Process-local state never crosses the executor
#: boundary, so results stay independent of the worker schedule.
_WORKER_MSRI_CACHE = None


def _worker_msri_cache():
    global _WORKER_MSRI_CACHE
    if _WORKER_MSRI_CACHE is None:
        from ..core.msri_cache import MSRICache

        _WORKER_MSRI_CACHE = MSRICache()
    return _WORKER_MSRI_CACHE


def run_instance(
    seed: int,
    n_pins: int,
    spacing: float = PAPER_SPACING_UM,
    *,
    engine: Optional[str] = None,
    msri: Optional[dict] = None,
    use_msri_cache: bool = False,
) -> InstanceResult:
    """Evaluate one net in both optimization modes.

    ``engine`` optionally names a registry engine to cross-check against
    the reference pass on this instance's net (a per-job bit-identity
    guard for campaigns run with ``--engine``).  ``msri`` optionally
    carries pruning-knob overrides (``prefilter``, ``max_front_width``,
    ``max_pwl_segments``, ``lossy``, ``spec``, ``quantize_bound`` — see
    :func:`repro.core.msri.validate_msri_overrides`) applied to *both*
    optimization modes.  ``use_msri_cache`` routes both optimizations
    through a worker-process-local subtree-front cache
    (:class:`~repro.core.msri_cache.MSRICache`) — bit-identical results,
    cheaper repeats; pair with ``quantize_bound`` for cross-net hits.
    """
    tech = paper_technology()
    tree = paper_instance(seed, n_pins, spacing)
    if engine is not None and engine not in ("reference", "elmore"):
        verify_engine_agreement(tree, tech, engine)

    overrides = validate_msri_overrides(msri)
    if use_msri_cache:
        from ..core.msri_engine import insert_repeaters_cached

        cache = _worker_msri_cache()
        sizing = insert_repeaters_cached(
            tree, tech, driver_sizing_options(**overrides), cache=cache
        )
        repeater = insert_repeaters_cached(
            tree, tech, repeater_insertion_options(**overrides), cache=cache
        )
    else:
        sizing = insert_repeaters(
            tree, tech, driver_sizing_options(**overrides)
        )
        repeater = insert_repeaters(
            tree, tech, repeater_insertion_options(**overrides)
        )

    base = repeater.min_cost()  # no repeaters, 1X terminals
    sizing_best = sizing.min_ard()
    rep_best = repeater.min_ard()
    matching = repeater.min_cost_meeting(sizing_best.ard)

    return InstanceResult(
        seed=seed,
        n_pins=n_pins,
        n_insertion_points=len(tree.insertion_indices()),
        wirelength_um=tree.total_wire_length(),
        base_cost=base.cost,
        base_ard=base.ard,
        sizing_min_ard=sizing_best.ard,
        sizing_min_ard_cost=sizing_best.cost,
        sizing_runtime_s=sizing.stats.runtime_seconds,
        rep_min_ard=rep_best.ard,
        rep_min_ard_cost=rep_best.cost,
        rep_runtime_s=repeater.stats.runtime_seconds,
        rep_cost_at_sizing_ard=None if matching is None else matching.cost,
        spacing=spacing,
    )


def table1() -> Table:
    """Table I: the technology parameters in force (with provenance note)."""
    from ..tech.buffers import DEFAULT_BUFFER

    tech = paper_technology()
    t = Table(
        "Table I: technology parameters",
        ["parameter", "value", "unit"],
    )
    t.add_row("wire resistance", tech.unit_resistance, "ohm/um")
    t.add_row("wire capacitance", tech.unit_capacitance * 1000.0, "fF/um")
    t.add_row("1X buffer intrinsic delay", DEFAULT_BUFFER.intrinsic_delay, "ps")
    t.add_row("1X buffer output resistance", DEFAULT_BUFFER.output_resistance, "ohm")
    t.add_row("1X buffer input capacitance", DEFAULT_BUFFER.input_capacitance, "pF")
    t.add_row("1X buffer cost", DEFAULT_BUFFER.cost, "1X equivalents")
    t.add_row(
        "previous-stage resistance", tech.extras["prev_stage_resistance"], "ohm"
    )
    t.add_row(
        "subsequent-stage capacitance", tech.extras["next_stage_capacitance"], "pF"
    )
    t.add_note(
        "repeaters and terminal drivers are pairs of these unidirectional "
        "buffers (paper Table I caption); kX buffer = cost k, R/k, k*C."
    )
    t.add_note(
        "wire constants and 1X delay/resistance are the documented "
        "substitution for the unrecoverable Table I values (DESIGN.md section 5)."
    )
    return t


def table2(results: Sequence[InstanceResult]) -> Table:
    """Table II: normalized sizing-vs-repeater comparison, averaged per size."""
    t = Table(
        "Table II: driver sizing vs repeater insertion "
        "(normalized to the min-cost solution)",
        [
            "pins",
            "avg ins.pts",
            "DS diam",
            "DS cost",
            "RI cost @DS diam",
            "RI diam",
            "RI cost",
        ],
    )
    for n_pins in sorted({r.n_pins for r in results}):
        group = [r for r in results if r.n_pins == n_pins]
        t.add_row(
            n_pins,
            _avg(r.n_insertion_points for r in group),
            _avg(r.sizing_min_ard / r.base_ard for r in group),
            _avg(r.sizing_min_ard_cost / r.base_cost for r in group),
            _avg(
                (r.rep_cost_at_sizing_ard or float("nan")) / r.base_cost
                for r in group
            ),
            _avg(r.rep_min_ard / r.base_ard for r in group),
            _avg(r.rep_min_ard_cost / r.base_cost for r in group),
        )
    t.add_note(
        "columns 3-7 normalized to the min-cost solution (no repeaters, all "
        "1X terminal buffers); paper reference values for 10 pins: "
        "DS diam 0.73, RI diam 0.55."
    )
    return t


def table3(results: Sequence[InstanceResult]) -> Table:
    """Table III: fastest sizing vs fastest repeater solution, six samples."""
    t = Table(
        "Table III: fastest driver-sizing and repeater-insertion solutions",
        ["net", "pins", "DS diam (ps)", "DS cost", "RI diam (ps)", "RI cost"],
    )
    for k, r in enumerate(results, start=1):
        t.add_row(
            f"net{k}",
            r.n_pins,
            r.sizing_min_ard,
            r.sizing_min_ard_cost,
            r.rep_min_ard,
            r.rep_min_ard_cost,
        )
    t.add_note("cost in equivalent 1X buffers, terminal buffers included.")
    return t


def table4(
    results: Sequence[InstanceResult], metrics: Optional[Sequence] = None
) -> Table:
    """Table IV: average optimizer CPU seconds per net size and mode.

    With campaign ``metrics`` (per-job :class:`~repro.analysis.executor.
    JobMetrics`-shaped records keyed ``(seed, size, spacing)``), two
    observability columns join the paper's: average end-to-end job
    wall-clock and the peak worker RSS seen for that size.  When any metric
    additionally carries a per-job observability summary (``metrics[i].obs``
    — a campaign run under ``repro-msri trace``/``REPRO_OBS=1``), two DP
    columns follow: total MSRI candidate solutions generated and kept for
    that size, the paper's pruning-effectiveness numbers per instance.
    """
    columns = ["pins", "repeater insertion", "driver sizing"]
    with_obs = metrics is not None and any(
        getattr(m, "obs", None) for m in metrics
    )
    if metrics is not None:
        columns += ["job wall (s)", "peak RSS (MB)"]
    if with_obs:
        columns += ["DP generated", "DP kept"]
    t = Table("Table IV: average run times (CPU seconds)", columns)
    for n_pins in sorted({r.n_pins for r in results}):
        group = [r for r in results if r.n_pins == n_pins]
        row = [
            n_pins,
            _avg(r.rep_runtime_s for r in group),
            _avg(r.sizing_runtime_s for r in group),
        ]
        if metrics is not None:
            mgroup = [m for m in metrics if m.key[1] == n_pins]
            if mgroup:
                row.append(_avg(m.runtime_s for m in mgroup))
                row.append(max(m.max_rss_kb for m in mgroup) / 1024.0)
            else:
                row += [float("nan"), float("nan")]
            if with_obs:
                row.append(_obs_total(mgroup, "msri.solutions.generated"))
                row.append(_obs_total(mgroup, "msri.solutions.kept"))
        t.add_row(*row)
    t.add_note("this machine, pure-Python implementation; the paper used a SPARC 10.")
    return t


def _avg(values: Iterable[float]) -> float:
    vals = list(values)
    return sum(vals) / len(vals)


def _obs_total(metrics: Sequence, counter: str) -> float:
    """Sum of one observability counter over a group of job metrics."""
    return float(
        sum(
            (m.obs or {}).get("counters", {}).get(counter, 0)
            for m in metrics
            if getattr(m, "obs", None)
        )
    )
