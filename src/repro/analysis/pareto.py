"""Scalar point-dominance (Pareto minima) algorithms.

The paper grounds its pruning in the classic *maxima of a set of vectors*
problem of Kung, Luccio and Preparata (Definition 4.2 cites [14]); the MFS
generalizes it to functional coordinates.  This module provides the scalar
building blocks:

* :func:`minima_2d` — O(n log n) sort-and-scan;
* :func:`minima_3d` — O(n log n) sweep over the first coordinate with a
  dynamic 2-D staircase for the other two (the KLP construction);
* :func:`minima_nd` — the O(d n^2) reference used by tests and by callers
  with small sets in higher dimensions.

All functions return the *indices* of the non-dominated points, in input
order, keeping the first of any exact duplicates.  Minimization in every
coordinate is assumed (costs, capacitances, delays).
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

__all__ = ["minima_2d", "minima_3d", "minima_nd", "is_dominated"]


def is_dominated(p: Sequence[float], q: Sequence[float], tol: float = 0.0) -> bool:
    """True when ``q`` weakly dominates ``p`` in every coordinate."""
    return all(qc <= pc + tol for pc, qc in zip(p, q))


def minima_2d(points: Sequence[Tuple[float, float]]) -> List[int]:
    """Indices of the 2-D Pareto minima (first of duplicates kept)."""
    order = sorted(range(len(points)), key=lambda i: (points[i][0], points[i][1], i))
    out: List[int] = []
    best_y = float("inf")
    prev = None
    for i in order:
        x, y = points[i]
        if (x, y) == prev:
            continue
        if y < best_y:
            out.append(i)
            best_y = y
            prev = (x, y)
    return sorted(out)


class _Staircase:
    """Dynamic 2-D minima staircase: insert points, query dominance.

    Stores a set of mutually non-dominated ``(y, z)`` pairs as parallel
    sorted arrays with ``y`` strictly increasing and ``z`` strictly
    decreasing.
    """

    def __init__(self) -> None:
        self._ys: List[float] = []
        self._zs: List[float] = []

    def dominates(self, y: float, z: float) -> bool:
        """Is (y, z) weakly dominated by a stored point?"""
        k = bisect.bisect_right(self._ys, y)
        return k > 0 and self._zs[k - 1] <= z

    def insert(self, y: float, z: float) -> None:
        """Insert (y, z), evicting points it dominates."""
        if self.dominates(y, z):
            return
        k = bisect.bisect_left(self._ys, y)
        # evict stored points with y' >= y and z' >= z
        end = k
        while end < len(self._ys) and self._zs[end] >= z:
            end += 1
        self._ys[k:end] = [y]
        self._zs[k:end] = [z]


def minima_3d(points: Sequence[Tuple[float, float, float]]) -> List[int]:
    """Indices of the 3-D Pareto minima via the KLP sweep."""
    order = sorted(range(len(points)), key=lambda i: (points[i], i))
    out: List[int] = []
    stair = _Staircase()
    prev = None
    for i in order:
        x, y, z = points[i]
        if (x, y, z) == prev:
            continue
        prev = (x, y, z)
        # every previously swept point has x' <= x, so dominance reduces to
        # the (y, z) staircase query
        if not stair.dominates(y, z):
            out.append(i)
        stair.insert(y, z)
    return sorted(out)


def minima_nd(points: Sequence[Sequence[float]], tol: float = 0.0) -> List[int]:
    """Indices of the Pareto minima in any dimension — O(d n^2) reference."""
    out: List[int] = []
    for i, p in enumerate(points):
        dominated = False
        for j, q in enumerate(points):
            if i == j:
                continue
            if is_dominated(p, q, tol):
                if is_dominated(q, p, tol):
                    # exact tie: keep only the first occurrence
                    if j < i:
                        dominated = True
                        break
                else:
                    dominated = True
                    break
        if not dominated:
            out.append(i)
    return out
