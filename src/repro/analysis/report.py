"""Plain-text table rendering for experiment reports.

Every benchmark regenerating a paper table prints rows through this module
so the repository's outputs have one consistent, diff-friendly format, and
writes a copy under ``benchmarks/results/``.
"""

from __future__ import annotations

import math
import os
from typing import List, Optional, Sequence

__all__ = ["Table", "results_dir", "save_text"]


class Table:
    """A fixed-width text table with a title and optional footnotes."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []
        self.notes: List[str] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = [self.title, "=" * len(self.title), line(self.headers), sep]
        out.extend(line(row) for row in self.rows)
        if self.notes:
            out.append("")
            out.extend(f"note: {n}" for n in self.notes)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if not math.isfinite(value):
            return "n/a"  # e.g. a size group with no repeater sol at DS diam
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.1f}"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.3f}"
    return str(value)


def results_dir() -> str:
    """``benchmarks/results`` relative to the repository root, created."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def save_text(filename: str, content: str, directory: Optional[str] = None) -> str:
    """Write ``content`` under the results directory; returns the path."""
    directory = directory or results_dir()
    path = os.path.join(directory, filename)
    with open(path, "w") as fh:
        fh.write(content)
        if not content.endswith("\n"):
            fh.write("\n")
    return path
