"""SVG rendering of routing trees and optimization solutions.

Produces self-contained SVG documents (no external dependencies) showing
the routed net on its die: L-shaped wires, terminals with names, Steiner
branch points, candidate insertion points, and placed repeaters with their
orientation.  Useful for inspecting solutions beyond the coarse ASCII view
of :mod:`repro.analysis.render`.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Tuple

from ..rctree.topology import NodeKind, RoutingTree

__all__ = ["render_svg", "save_svg"]

_STYLE = {
    "wire": 'stroke="#4a6fa5" stroke-width="2" fill="none"',
    "terminal": 'fill="#1f3a5f"',
    "steiner": 'fill="#7a7a7a"',
    "insertion": 'fill="none" stroke="#b0b0b0" stroke-width="1"',
    "repeater": 'fill="#c0392b"',
    "label": 'font-family="monospace" font-size="12" fill="#202020"',
    "title": 'font-family="monospace" font-size="14" fill="#202020"',
}


def render_svg(
    tree: RoutingTree,
    assignment: Optional[Dict[int, object]] = None,
    *,
    width: int = 640,
    height: int = 640,
    margin: int = 40,
    title: Optional[str] = None,
) -> str:
    """The tree as an SVG document string."""
    assignment = assignment or {}
    min_x, min_y, max_x, max_y = tree.bounding_box()
    span_x = max(max_x - min_x, 1.0)
    span_y = max(max_y - min_y, 1.0)
    scale = min((width - 2 * margin) / span_x, (height - 2 * margin) / span_y)

    def pt(x: float, y: float) -> Tuple[float, float]:
        return (
            margin + (x - min_x) * scale,
            height - margin - (y - min_y) * scale,  # y up
        )

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#fdfdfb"/>',
    ]
    if title:
        parts.append(
            f'<text x="{margin}" y="{margin / 2 + 6}" {_STYLE["title"]}>'
            f"{html.escape(title)}</text>"
        )

    # wires as L-routes (horizontal leg first, matching the length model)
    for v in range(len(tree)):
        p = tree.parent(v)
        if p is None:
            continue
        a, b = tree.node(p), tree.node(v)
        ax, ay = pt(a.x, a.y)
        bx, by = pt(b.x, b.y)
        parts.append(
            f'<path d="M {ax:.1f} {ay:.1f} L {bx:.1f} {ay:.1f} '
            f'L {bx:.1f} {by:.1f}" {_STYLE["wire"]}/>'
        )

    # nodes
    for node in tree.nodes:
        x, y = pt(node.x, node.y)
        if node.index in assignment:
            rep = assignment[node.index]
            parts.append(
                f'<rect x="{x - 5:.1f}" y="{y - 5:.1f}" width="10" height="10" '
                f'{_STYLE["repeater"]}>'
                f"<title>{html.escape(getattr(rep, 'name', 'repeater'))}"
                f"</title></rect>"
            )
        elif node.kind is NodeKind.TERMINAL:
            parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="6" {_STYLE["terminal"]}/>')
            parts.append(
                f'<text x="{x + 8:.1f}" y="{y - 6:.1f}" {_STYLE["label"]}>'
                f"{html.escape(node.terminal.name)}</text>"
            )
        elif node.kind is NodeKind.STEINER:
            parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" {_STYLE["steiner"]}/>')
        else:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" {_STYLE["insertion"]}/>'
            )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(
    tree: RoutingTree,
    path: str,
    assignment: Optional[Dict[int, object]] = None,
    **kwargs,
) -> str:
    """Render and write to ``path``; returns the path."""
    with open(path, "w") as fh:
        fh.write(render_svg(tree, assignment, **kwargs))
    return path
