"""Experiment campaigns: parameter sweeps with persistent JSON artifacts.

Wraps :func:`repro.analysis.experiments.run_instance` into a declarative
sweep (seeds × net sizes × insertion spacings), records provenance
(configuration, package version, wall-clock), and serializes everything so
a full experimental record can be archived, diffed, and re-summarized
without re-running the optimizer.

Used by the CLI's ``campaign`` subcommand and handy for custom studies:

>>> from repro.analysis.campaign import CampaignConfig, run_campaign
>>> campaign = run_campaign(CampaignConfig(seeds=(0, 1), sizes=(10,)))
... # doctest: +SKIP
>>> print(campaign.summary().render())
... # doctest: +SKIP
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .experiments import InstanceResult, run_instance, table2, table4
from .report import Table

__all__ = ["CampaignConfig", "Campaign", "run_campaign", "load_campaign"]

CAMPAIGN_SCHEMA = 1


@dataclass(frozen=True)
class CampaignConfig:
    """What to sweep."""

    seeds: Tuple[int, ...] = (0, 1, 2)
    sizes: Tuple[int, ...] = (10, 20)
    spacing: float = 800.0
    label: str = "default"

    def __post_init__(self) -> None:
        if not self.seeds or not self.sizes:
            raise ValueError("campaign needs at least one seed and one size")
        if self.spacing <= 0.0:
            raise ValueError("spacing must be positive")

    def jobs(self) -> List[Tuple[int, int]]:
        """The (seed, size) grid in execution order."""
        return [(seed, size) for size in self.sizes for seed in self.seeds]


@dataclass
class Campaign:
    """A completed (or partially completed) sweep."""

    config: CampaignConfig
    results: List[InstanceResult] = field(default_factory=list)
    started_at: float = 0.0
    elapsed_seconds: float = 0.0
    version: str = ""

    def summary(self) -> Table:
        """The Table II-style normalized summary for this campaign."""
        return table2(self.results)

    def runtime_summary(self) -> Table:
        return table4(self.results)

    def result_for(self, seed: int, size: int) -> Optional[InstanceResult]:
        for r in self.results:
            if r.seed == seed and r.n_pins == size:
                return r
        return None

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "schema": CAMPAIGN_SCHEMA,
            "config": dataclasses.asdict(self.config),
            "results": [dataclasses.asdict(r) for r in self.results],
            "started_at": self.started_at,
            "elapsed_seconds": self.elapsed_seconds,
            "version": self.version,
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    @classmethod
    def from_dict(cls, data: Dict) -> "Campaign":
        if data.get("schema") != CAMPAIGN_SCHEMA:
            raise ValueError(f"unsupported campaign schema: {data.get('schema')!r}")
        cfg = data["config"]
        config = CampaignConfig(
            seeds=tuple(cfg["seeds"]),
            sizes=tuple(cfg["sizes"]),
            spacing=float(cfg["spacing"]),
            label=cfg.get("label", "default"),
        )
        results = [InstanceResult(**r) for r in data["results"]]
        return cls(
            config=config,
            results=results,
            started_at=float(data.get("started_at", 0.0)),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            version=data.get("version", ""),
        )


def run_campaign(
    config: CampaignConfig,
    *,
    progress: Optional[callable] = None,
) -> Campaign:
    """Execute every job in the grid; ``progress(done, total, result)`` is
    invoked after each instance when given."""
    from .. import __version__

    campaign = Campaign(
        config=config, started_at=time.time(), version=__version__
    )
    jobs = config.jobs()
    t0 = time.perf_counter()
    for k, (seed, size) in enumerate(jobs, start=1):
        result = run_instance(seed, size, config.spacing)
        campaign.results.append(result)
        if progress is not None:
            progress(k, len(jobs), result)
    campaign.elapsed_seconds = time.perf_counter() - t0
    return campaign


def load_campaign(path: str) -> Campaign:
    with open(path) as fh:
        return Campaign.from_dict(json.load(fh))
