"""Experiment campaigns: sharded, resumable parameter sweeps.

Wraps :func:`repro.analysis.experiments.run_instance` into a declarative
sweep (seeds × net sizes × insertion spacings), records provenance
(configuration, package version, wall-clock, per-job metrics), and
serializes everything so a full experimental record can be archived,
diffed, and re-summarized without re-running the optimizer.

The execution layer is :mod:`repro.analysis.executor`: ``workers=0`` runs
the sweep inline (serial fallback), ``workers>=1`` shards it over a pool
of worker processes with per-job timeouts and retry-with-backoff.  Every
job is fully determined by its ``(seed, size, spacing)`` key, so the
parallel path produces results identical to the serial path at any worker
count — only the runtime fields differ.

With a ``checkpoint_path``, every finished job is appended to a JSONL log
the moment it completes; ``resume=True`` replays that log and re-runs only
the jobs that are missing or previously failed.  A job that exhausts its
retries becomes a structured failure record in ``Campaign.failures``
instead of crashing the sweep.

Used by the CLI's ``campaign`` subcommand and handy for custom studies:

>>> from repro.analysis.campaign import CampaignConfig, run_campaign
>>> campaign = run_campaign(CampaignConfig(seeds=(0, 1), sizes=(10,)), workers=4)
... # doctest: +SKIP
>>> print(campaign.summary().render())
... # doctest: +SKIP
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..io.serialize import (
    CAMPAIGN_SCHEMA,
    campaign_from_dict,
    campaign_to_dict,
    instance_result_from_dict,
    instance_result_to_dict,
)
from ..obs import core as obs
from .executor import (
    Job,
    JobFailure,
    JobMetrics,
    JobOutcome,
    JsonlCheckpoint,
    run_jobs,
)
from .experiments import InstanceResult, run_instance, table2, table4
from .report import Table

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignConfig",
    "Campaign",
    "run_campaign",
    "load_campaign",
    "campaign_checkpoint",
]

#: ``(seed, n_pins, spacing)`` — the identity of one sweep job.
JobKey = Tuple[int, int, float]


@dataclass(frozen=True)
class CampaignConfig:
    """What to sweep.

    ``spacings`` widens the grid to several insertion spacings; when empty
    the single ``spacing`` value is swept (the original v1 behaviour, and
    what v1 records deserialize to).

    ``msri`` optionally carries pruning-knob overrides applied to every
    job (``prefilter``, ``max_front_width``, ``max_pwl_segments``,
    ``lossy``, ``spec``, ``quantize_bound`` — validated through
    :func:`repro.core.msri.validate_msri_overrides`); ``None`` sweeps with
    the exact defaults.  The dict is part of the campaign's provenance
    record, so an archived sweep states which pruning regime produced it.

    ``use_msri_cache`` routes every job's two optimizations through a
    worker-process-local subtree-front cache
    (:class:`~repro.core.msri_cache.MSRICache`): bit-identical results,
    with repeats across the spacing axis (and, under ``quantize_bound``,
    across nearby seeds) answered from memo.  Part of the provenance
    record like ``msri``.
    """

    seeds: Tuple[int, ...] = (0, 1, 2)
    sizes: Tuple[int, ...] = (10, 20)
    spacing: float = 800.0
    label: str = "default"
    spacings: Tuple[float, ...] = ()
    msri: Optional[Dict] = None
    use_msri_cache: bool = False

    def __post_init__(self) -> None:
        if not self.seeds or not self.sizes:
            raise ValueError("campaign needs at least one seed and one size")
        if self.spacing <= 0.0:
            raise ValueError("spacing must be positive")
        if any(s <= 0.0 for s in self.spacings):
            raise ValueError("spacings must be positive")
        from ..core.msri import validate_msri_overrides

        # normalize eagerly so a bad knob fails at config time, not mid-sweep
        object.__setattr__(
            self, "msri", validate_msri_overrides(self.msri) or None
        )

    def sweep_spacings(self) -> Tuple[float, ...]:
        """The spacing axis actually swept."""
        return self.spacings if self.spacings else (self.spacing,)

    def jobs(self) -> List[JobKey]:
        """The (seed, size, spacing) grid in deterministic execution order."""
        return [
            (seed, size, spacing)
            for spacing in self.sweep_spacings()
            for size in self.sizes
            for seed in self.seeds
        ]


@dataclass
class Campaign:
    """A completed (or partially completed) sweep.

    ``failures`` holds one structured record per job that exhausted its
    retry budget; ``metrics`` holds per-job wall-clock / peak-RSS records
    (one per executed job — resumed jobs carry the metrics of the run that
    actually executed them).
    """

    config: CampaignConfig
    results: List[InstanceResult] = field(default_factory=list)
    failures: List[JobFailure] = field(default_factory=list)
    metrics: List[JobMetrics] = field(default_factory=list)
    started_at: float = 0.0
    elapsed_seconds: float = 0.0
    version: str = ""
    workers: int = 0

    def summary(self) -> Table:
        """The Table II-style normalized summary for this campaign."""
        return table2(self.results)

    def runtime_summary(self) -> Table:
        """Table IV plus per-job wall-clock / peak-RSS columns when known."""
        return table4(self.results, metrics=self.metrics or None)

    def result_for(
        self, seed: int, size: int, spacing: Optional[float] = None
    ) -> Optional[InstanceResult]:
        """The result for a grid point; ``spacing=None`` matches any spacing.

        Scans newest-first so duplicate records for a retried or re-merged
        job resolve to the most recent one.
        """
        for r in reversed(self.results):
            if r.seed != seed or r.n_pins != size:
                continue
            # spacing is a grid identity (config value round-tripped through
            # JSON), not a computed quantity, so exact match is correct
            if spacing is not None and r.spacing != spacing:  # repro: noqa[R001]
                continue
            return r
        return None

    def failure_for(
        self, seed: int, size: int, spacing: Optional[float] = None
    ) -> Optional[JobFailure]:
        for f in reversed(self.failures):
            if f.key[0] != seed or f.key[1] != size:
                continue
            if spacing is not None and f.key[2] != spacing:
                continue
            return f
        return None

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> Dict:
        return campaign_to_dict(self)

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    @classmethod
    def from_dict(cls, data: Dict) -> "Campaign":
        return campaign_from_dict(data)


def campaign_checkpoint(path: str) -> JsonlCheckpoint:
    """The JSONL checkpoint used by :func:`run_campaign`, result codec wired."""
    return JsonlCheckpoint(
        path,
        encode_result=instance_result_to_dict,
        decode_result=instance_result_from_dict,
    )


def run_campaign(
    config: CampaignConfig,
    *,
    workers: int = 0,
    timeout: Optional[float] = None,
    max_retries: int = 0,
    retry_backoff_s: float = 0.25,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[Callable[[int, int, JobOutcome], None]] = None,
    job_fn: Optional[Callable[[int, int, float], InstanceResult]] = None,
    engine: Optional[str] = None,
) -> Campaign:
    """Execute every job in the grid; always returns a complete Campaign.

    ``workers=0`` runs inline; ``workers>=1`` shards the grid over a
    process pool (bit-identical results, see module docstring).  With
    ``checkpoint_path`` every outcome is flushed to a JSONL log as it
    lands; ``resume=True`` additionally replays an existing log first and
    skips the jobs it already completed (failed jobs are re-run).

    ``progress(done, total, outcome)`` is invoked after each freshly
    executed job.  ``job_fn`` swaps the per-job callable — the hook the
    fault-injection tests use; it must be picklable for ``workers>=1``.
    ``engine`` names a registry engine to bit-identity-check against the
    reference pass on every job's net (see
    :func:`~repro.analysis.experiments.verify_engine_agreement`); it is a
    :func:`functools.partial` over the default job, so it composes with
    worker pools but not with a custom ``job_fn``.
    """
    import functools

    from .. import __version__
    from ..rctree.registry import engine_names

    if engine is not None and job_fn is not None:
        raise ValueError("pass engine= or job_fn=, not both")
    if config.msri is not None and job_fn is not None:
        raise ValueError(
            "config.msri overrides compose with the default job only; "
            "a custom job_fn must apply its own MSRI options"
        )
    if engine is not None and engine not in engine_names():
        raise ValueError(
            f"unknown engine {engine!r}; available: "
            f"{', '.join(engine_names())}"
        )
    if config.use_msri_cache and job_fn is not None:
        raise ValueError(
            "config.use_msri_cache composes with the default job only; "
            "a custom job_fn must manage its own cache"
        )
    fn = job_fn if job_fn is not None else run_instance
    if engine is not None or config.msri is not None or config.use_msri_cache:
        # module-level function + keyword partial: picklable for workers>=1
        kwargs: Dict = {}
        if engine is not None:
            kwargs["engine"] = engine
        if config.msri is not None:
            kwargs["msri"] = dict(config.msri)
        if config.use_msri_cache:
            kwargs["use_msri_cache"] = True
        fn = functools.partial(run_instance, **kwargs)
    keys = config.jobs()
    jobs = [Job(key=key, args=key) for key in keys]

    checkpoint: Optional[JsonlCheckpoint] = None
    completed: Dict[JobKey, JobOutcome] = {}
    if checkpoint_path is not None:
        checkpoint = campaign_checkpoint(checkpoint_path)
        if resume and checkpoint.exists():
            grid = set(keys)
            completed = {
                key: outcome
                for key, outcome in checkpoint.load().items()
                if key in grid and outcome.ok
            }

    pending = [job for job in jobs if job.key not in completed]

    campaign = Campaign(
        config=config,
        # epoch wall clock, for display/provenance only: it can jump (NTP,
        # DST).  Every duration metric — elapsed_seconds below and the
        # per-job JobMetrics.runtime_s in the executor — is measured on
        # time.perf_counter(), which is monotonic.
        started_at=time.time(),
        version=__version__,
        workers=workers,
    )

    def _progress(done: int, total: int, outcome: JobOutcome) -> None:
        if progress is not None:
            progress(done + len(completed), len(jobs), outcome)

    t0 = time.perf_counter()
    try:
        with obs.trace(
            "campaign.run", label=config.label, jobs=len(jobs), workers=workers
        ):
            executed = run_jobs(
                fn,
                pending,
                workers=workers,
                timeout=timeout,
                max_retries=max_retries,
                retry_backoff_s=retry_backoff_s,
                checkpoint=checkpoint,
                progress=_progress,
            )
    finally:
        if checkpoint is not None:
            checkpoint.close()

    by_key = dict(completed)
    by_key.update({o.key: o for o in executed})
    for job in jobs:
        outcome = by_key[job.key]
        campaign.metrics.append(outcome.metrics)
        if outcome.ok:
            campaign.results.append(outcome.result)
        else:
            campaign.failures.append(outcome.failure)
    campaign.elapsed_seconds = time.perf_counter() - t0
    return campaign


def load_campaign(path: str) -> Campaign:
    with open(path) as fh:
        return Campaign.from_dict(json.load(fh))
