"""Fault-tolerant job execution: process pool, timeouts, retries, checkpoints.

The experiment campaigns (and any future sweep) need to run thousands of
independent jobs without a single hang or crash losing the whole run.  This
module provides the machinery, decoupled from what a "job" computes:

* :func:`run_jobs` — execute a list of :class:`Job` either inline (serial
  fallback, ``workers=0``) or on a pool of worker *processes*
  (``workers>=1``).  Each job runs to completion, raises, or exceeds its
  deadline; the pool kills and respawns a hung worker, so one pathological
  instance cannot stall a sweep.
* retry with exponential backoff — a failed or timed-out job is re-queued
  up to ``max_retries`` times before a structured :class:`JobFailure` is
  recorded in its place.  The sweep always completes.
* :class:`JsonlCheckpoint` — an append-only JSONL log of finished jobs.
  Every outcome (success or failure) is flushed as soon as it is known, so
  a killed campaign can be resumed by replaying the log and skipping the
  keys already done.
* :class:`JobMetrics` — per-job wall-clock and peak RSS, captured inside
  the worker, for runtime observability.  With ``REPRO_OBS=1`` each job
  additionally carries a compact observability summary (``metrics.obs``):
  counter totals and per-path span aggregates recorded while the job ran.
  Workers snapshot-and-reset their per-process buffers around every job
  and ship the snapshot back over the result pipe, where the parent folds
  it into its own buffers — so a single trace of a parallel campaign sees
  every worker's spans, tagged with the source pid.

Determinism: the pool only changes *where* a job runs, never its inputs —
every job is fully determined by its ``args`` — so results are identical
to the serial path at any worker count.  Outcomes are returned in the
original job order regardless of completion order.

Jobs and their results cross process boundaries, so ``fn``, ``args`` and
results must be picklable; use module-level functions.
"""

from __future__ import annotations

import json
import os
import sys
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import core as obs

__all__ = [
    "Job",
    "JobFailure",
    "JobMetrics",
    "JobOutcome",
    "JsonlCheckpoint",
    "run_jobs",
]

Key = Tuple  # JSON-representable scalars identifying a job


@dataclass(frozen=True)
class Job:
    """One unit of work: a stable identity plus the arguments for ``fn``."""

    key: Key
    args: Tuple = ()


@dataclass(frozen=True)
class JobFailure:
    """Structured record of a job that exhausted its retry budget."""

    key: Key
    error_type: str
    message: str
    attempts: int
    elapsed_s: float


@dataclass(frozen=True)
class JobMetrics:
    """Observability record for one finished job (success or failure)."""

    key: Key
    runtime_s: float
    max_rss_kb: int
    attempts: int
    worker: int  #: worker slot index; -1 for the inline serial path
    #: Compact observability summary of the job's final attempt — counter
    #: totals and per-path span aggregates ``{path: [count, total_s]}`` —
    #: or ``None`` when the run was not traced (see docs/OBSERVABILITY.md).
    obs: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class JobOutcome:
    """Terminal state of one job: exactly one of ``result``/``failure``."""

    key: Key
    result: Any
    failure: Optional[JobFailure]
    metrics: JobMetrics

    @property
    def ok(self) -> bool:
        return self.failure is None


# -- worker side ---------------------------------------------------------------


def _max_rss_kb() -> int:
    """Peak RSS of this process in KiB (0 where resource is unavailable)."""
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KiB on Linux
            rss //= 1024
        return int(rss)
    except Exception:
        return 0


def _worker_main(conn, fn) -> None:
    """Worker loop: receive ``(key, args)``, reply with a tagged payload.

    Replies: ``("ok", key, result, runtime_s, rss_kb, obs_snap)`` or
    ``("error", key, error_type, message, runtime_s, rss_kb, obs_snap)``.
    ``obs_snap`` is the worker's observability snapshot for this job (the
    buffers are reset around every job so snapshots are per-job deltas), or
    ``None`` when observability is off.  A ``None`` message is the shutdown
    sentinel.
    """
    if obs.enabled():
        obs.reset()  # drop buffers inherited across fork
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                return
            key, args = msg
            t0 = time.perf_counter()
            try:
                with obs.trace("executor.job", key=list(key)):
                    result = fn(*args)
                obs_snap = obs.snapshot(reset=True) if obs.enabled() else None
                payload = (
                    "ok", key, result, time.perf_counter() - t0, _max_rss_kb(),
                    obs_snap,
                )
            except Exception as exc:
                obs_snap = obs.snapshot(reset=True) if obs.enabled() else None
                payload = (
                    "error",
                    key,
                    type(exc).__name__,
                    _describe_error(exc),
                    time.perf_counter() - t0,
                    _max_rss_kb(),
                    obs_snap,
                )
            try:
                conn.send(payload)
            except Exception as exc:  # e.g. unpicklable result
                conn.send(
                    (
                        "error",
                        key,
                        type(exc).__name__,
                        f"result not transferable: {exc}",
                        time.perf_counter() - t0,
                        _max_rss_kb(),
                        None,
                    )
                )
    except (EOFError, KeyboardInterrupt):
        return


def _describe_error(exc: BaseException) -> str:
    tb = traceback.format_exception_only(type(exc), exc)
    return "".join(tb).strip()


# -- checkpointing -------------------------------------------------------------


class JsonlCheckpoint:
    """Append-only JSONL log of job outcomes, for kill-safe resumption.

    One JSON object per line; each line is flushed (and fsynced) as soon as
    the outcome is known, so a killed run loses at most the in-flight jobs.
    ``load`` replays the log into ``{key: JobOutcome}``; when a key appears
    more than once (a failure later retried by a resumed run) the *last*
    line wins.

    ``encode_result``/``decode_result`` translate job results to and from
    JSON-ready dicts; the identity passthrough is used when omitted.
    """

    def __init__(
        self,
        path: str,
        *,
        encode_result: Optional[Callable[[Any], Any]] = None,
        decode_result: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.path = path
        self._encode = encode_result or (lambda r: r)
        self._decode = decode_result or (lambda d: d)
        self._fh = None

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> Dict[Key, JobOutcome]:
        """Replay the log; later lines for the same key supersede earlier."""
        outcomes: Dict[Key, JobOutcome] = {}
        if not self.exists():
            return outcomes
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from a killed run
                outcome = self._entry_to_outcome(entry)
                outcomes[outcome.key] = outcome
        return outcomes

    def record(self, outcome: JobOutcome) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a")
        json.dump(self._outcome_to_entry(outcome), self._fh)
        self._fh.write("\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- line codecs -----------------------------------------------------------

    def _outcome_to_entry(self, outcome: JobOutcome) -> Dict[str, Any]:
        m = outcome.metrics
        entry: Dict[str, Any] = {
            "kind": "result" if outcome.ok else "failure",
            "key": list(outcome.key),
            "metrics": {
                "runtime_s": m.runtime_s,
                "max_rss_kb": m.max_rss_kb,
                "attempts": m.attempts,
                "worker": m.worker,
            },
        }
        if m.obs is not None:
            entry["metrics"]["obs"] = m.obs
        if outcome.ok:
            entry["result"] = self._encode(outcome.result)
        else:
            f = outcome.failure
            entry["failure"] = {
                "error_type": f.error_type,
                "message": f.message,
                "attempts": f.attempts,
                "elapsed_s": f.elapsed_s,
            }
        return entry

    def _entry_to_outcome(self, entry: Dict[str, Any]) -> JobOutcome:
        key = tuple(entry["key"])
        m = entry.get("metrics", {})
        metrics = JobMetrics(
            key=key,
            runtime_s=float(m.get("runtime_s", 0.0)),
            max_rss_kb=int(m.get("max_rss_kb", 0)),
            attempts=int(m.get("attempts", 1)),
            worker=int(m.get("worker", -1)),
            obs=m.get("obs"),
        )
        if entry.get("kind") == "failure":
            f = entry["failure"]
            failure = JobFailure(
                key=key,
                error_type=f["error_type"],
                message=f["message"],
                attempts=int(f["attempts"]),
                elapsed_s=float(f["elapsed_s"]),
            )
            return JobOutcome(key=key, result=None, failure=failure, metrics=metrics)
        return JobOutcome(
            key=key,
            result=self._decode(entry["result"]),
            failure=None,
            metrics=metrics,
        )


# -- execution -----------------------------------------------------------------


def run_jobs(
    fn: Callable,
    jobs: Sequence[Job],
    *,
    workers: int = 0,
    timeout: Optional[float] = None,
    max_retries: int = 0,
    retry_backoff_s: float = 0.25,
    checkpoint: Optional[JsonlCheckpoint] = None,
    progress: Optional[Callable[[int, int, JobOutcome], None]] = None,
) -> List[JobOutcome]:
    """Run every job; return one :class:`JobOutcome` per job, in job order.

    ``workers=0`` runs inline in this process (serial fallback; ``timeout``
    is not enforceable without process isolation and raises if requested).
    ``workers>=1`` runs on a pool of worker processes; a worker that
    exceeds ``timeout`` seconds on one job is killed and respawned.

    A job that raises (or times out / crashes its worker) is retried up to
    ``max_retries`` times with exponential backoff before a
    :class:`JobFailure` outcome is recorded; the call itself never raises
    for job-level errors, so a sweep always completes.

    ``checkpoint.record`` is called with each outcome the moment it is
    final; ``progress(done, total, outcome)`` after that.
    """
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive")
    keys = [job.key for job in jobs]
    if len(set(keys)) != len(keys):
        raise ValueError("job keys must be unique")
    if not jobs:
        return []
    if workers == 0:
        if timeout is not None:
            raise ValueError(
                "per-job timeouts need process isolation; use workers >= 1"
            )
        with obs.trace("executor.run", workers=0, jobs=len(jobs)):
            return _run_inline(
                fn, jobs, max_retries, retry_backoff_s, checkpoint, progress
            )
    with obs.trace("executor.run", workers=workers, jobs=len(jobs)):
        return _run_pool(
            fn, jobs, workers, timeout, max_retries, retry_backoff_s, checkpoint,
            progress,
        )


def _finalize(
    outcome: JobOutcome,
    done: int,
    total: int,
    checkpoint: Optional[JsonlCheckpoint],
    progress: Optional[Callable],
) -> None:
    if checkpoint is not None:
        checkpoint.record(outcome)
    if progress is not None:
        progress(done, total, outcome)


def _backoff_delay(retry_backoff_s: float, attempt: int) -> float:
    """Delay before attempt ``attempt+1`` (exponential in prior retries)."""
    return retry_backoff_s * (2 ** (attempt - 1))


def _run_inline(fn, jobs, max_retries, retry_backoff_s, checkpoint, progress):
    outcomes: List[JobOutcome] = []
    total = len(jobs)
    for job in jobs:
        attempt = 0
        t_first = time.perf_counter()
        while True:
            attempt += 1
            t0 = time.perf_counter()
            # per-job delta via mark/summary_since: the buffers are shared
            # with enclosing campaign-level spans, so resetting them here
            # (the worker-process strategy) would destroy the outer trace
            m = obs.mark() if obs.enabled() else None
            try:
                with obs.trace("executor.job", key=list(job.key)):
                    result = fn(*job.args)
            except Exception as exc:
                if attempt <= max_retries:
                    time.sleep(_backoff_delay(retry_backoff_s, attempt))
                    continue
                failure = JobFailure(
                    key=job.key,
                    error_type=type(exc).__name__,
                    message=_describe_error(exc),
                    attempts=attempt,
                    elapsed_s=time.perf_counter() - t_first,
                )
                metrics = JobMetrics(
                    key=job.key,
                    runtime_s=time.perf_counter() - t0,
                    max_rss_kb=_max_rss_kb(),
                    attempts=attempt,
                    worker=-1,
                    obs=obs.summary_since(m) if m is not None else None,
                )
                outcomes.append(JobOutcome(job.key, None, failure, metrics))
                break
            metrics = JobMetrics(
                key=job.key,
                runtime_s=time.perf_counter() - t0,
                max_rss_kb=_max_rss_kb(),
                attempts=attempt,
                worker=-1,
                obs=obs.summary_since(m) if m is not None else None,
            )
            outcomes.append(JobOutcome(job.key, result, None, metrics))
            break
        _finalize(outcomes[-1], len(outcomes), total, checkpoint, progress)
    return outcomes


class _Worker:
    """One pool slot: a process plus its duplex pipe."""

    def __init__(self, fn, slot: int) -> None:
        import multiprocessing as mp

        self.slot = slot
        parent_conn, child_conn = mp.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = mp.Process(
            target=_worker_main, args=(child_conn, fn), daemon=True
        )
        self.process.start()
        child_conn.close()

    def send(self, job: Job) -> None:
        self.conn.send((job.key, job.args))

    def stop(self) -> None:
        """Graceful shutdown of an idle worker."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=2.0)
        self.kill()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=2.0)
        self.conn.close()


@dataclass
class _Assignment:
    job: Job
    attempt: int
    started: float
    deadline: Optional[float]


def _run_pool(
    fn, jobs, workers, timeout, max_retries, retry_backoff_s, checkpoint, progress
):
    # every timestamp here is time.perf_counter(): monotonic (safe for the
    # backoff gates and deadlines) and the same clock the workers and the
    # inline path use for JobMetrics.runtime_s, so duration metrics are
    # comparable across execution modes
    from multiprocessing.connection import wait as wait_connections

    total = len(jobs)
    # (job, attempt, not_before): retried jobs carry a backoff gate
    pending: List[Tuple[Job, int, float]] = [(job, 1, 0.0) for job in jobs]
    first_start: Dict[Key, float] = {}
    outcomes: Dict[Key, JobOutcome] = {}
    pool: List[_Worker] = [_Worker(fn, i) for i in range(min(workers, total))]
    busy: Dict[int, _Assignment] = {}  # slot -> assignment

    def settle(assign: _Assignment, outcome: JobOutcome) -> None:
        outcomes[assign.job.key] = outcome
        _finalize(outcome, len(outcomes), total, checkpoint, progress)

    def retry_or_fail(
        slot: int,
        assign: _Assignment,
        error_type: str,
        message: str,
        obs_summary: Optional[Dict[str, Any]] = None,
    ) -> None:
        if assign.attempt <= max_retries:
            not_before = time.perf_counter() + _backoff_delay(
                retry_backoff_s, assign.attempt
            )
            pending.append((assign.job, assign.attempt + 1, not_before))
            return
        elapsed = time.perf_counter() - first_start[assign.job.key]
        failure = JobFailure(
            key=assign.job.key,
            error_type=error_type,
            message=message,
            attempts=assign.attempt,
            elapsed_s=elapsed,
        )
        metrics = JobMetrics(
            key=assign.job.key,
            runtime_s=time.perf_counter() - assign.started,
            max_rss_kb=0,
            attempts=assign.attempt,
            worker=slot,
            obs=obs_summary,
        )
        settle(assign, JobOutcome(assign.job.key, None, failure, metrics))

    try:
        while len(outcomes) < total:
            now = time.perf_counter()
            # hand ready pending jobs to idle workers
            for w in pool:
                if w.slot in busy:
                    continue
                idx = next(
                    (i for i, (_, _, nb) in enumerate(pending) if nb <= now), None
                )
                if idx is None:
                    break
                job, attempt, _ = pending.pop(idx)
                first_start.setdefault(job.key, now)
                w.send(job)
                busy[w.slot] = _Assignment(
                    job, attempt, now, now + timeout if timeout else None
                )

            if not busy:
                # nothing running: wait for the earliest backoff gate
                gates = [nb for (_, _, nb) in pending if nb > now]
                if gates:
                    time.sleep(min(gates) - now)
                    continue
                raise RuntimeError("executor stalled with idle workers")  # pragma: no cover

            # wait for a reply or the nearest deadline
            deadlines = [a.deadline for a in busy.values() if a.deadline is not None]
            wait_s = None
            if deadlines:
                wait_s = max(0.0, min(deadlines) - time.perf_counter())
            by_conn = {w.conn: w for w in pool if w.slot in busy}
            ready = wait_connections(list(by_conn), timeout=wait_s)

            for conn in ready:
                w = by_conn[conn]
                assign = busy.pop(w.slot)
                try:
                    payload = conn.recv()
                except (EOFError, OSError):
                    # worker died mid-job (hard crash); respawn the slot
                    w.kill()
                    pool[pool.index(w)] = _Worker(fn, w.slot)
                    retry_or_fail(
                        w.slot, assign, "WorkerCrashed", "worker process died"
                    )
                    continue
                tag = payload[0]
                if tag == "ok":
                    _, _key, result, runtime_s, rss_kb, obs_snap = payload
                    obs.merge(obs_snap)  # fold the worker's trace into ours
                    metrics = JobMetrics(
                        key=assign.job.key,
                        runtime_s=runtime_s,
                        max_rss_kb=rss_kb,
                        attempts=assign.attempt,
                        worker=w.slot,
                        obs=obs.summarize(obs_snap) if obs_snap else None,
                    )
                    settle(
                        assign, JobOutcome(assign.job.key, result, None, metrics)
                    )
                else:
                    _, _key, error_type, message, _runtime_s, _rss, obs_snap = payload
                    obs.merge(obs_snap)
                    retry_or_fail(
                        w.slot,
                        assign,
                        error_type,
                        message,
                        obs.summarize(obs_snap) if obs_snap else None,
                    )

            # enforce deadlines on workers that did not reply
            now = time.perf_counter()
            for w in pool:
                assign = busy.get(w.slot)
                if assign is None or assign.deadline is None:
                    continue
                if now >= assign.deadline:
                    busy.pop(w.slot)
                    w.kill()
                    pool[pool.index(w)] = _Worker(fn, w.slot)
                    retry_or_fail(
                        w.slot,
                        assign,
                        "JobTimeout",
                        f"exceeded {timeout}s deadline",
                    )
    finally:
        for w in pool:
            if w.slot in busy:
                w.kill()
            else:
                w.stop()

    return [outcomes[job.key] for job in jobs]
