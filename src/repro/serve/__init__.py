"""Timing-as-a-service: a session server over the editable engines.

The optimizer-facing engines answer "what is the ARD of this tree?" one
process at a time; this package puts that behind a socket so external
tools (placers, routers, notebooks) can hold *sessions* — a net opened
once, then edited incrementally with per-edit re-evaluation — without
linking the Python optimizer into their process.

* :mod:`repro.serve.session` — session state and the edit-frame
  dispatcher over the :class:`~repro.rctree.engine.EditableEngine`
  protocol;
* :mod:`repro.serve.server` — the asyncio NDJSON daemon
  (``repro-msri serve``), with micro-batched one-shot evaluation,
  per-request timeouts, TTL eviction and graceful drain;
* :mod:`repro.serve.loadgen` — a blocking client plus a concurrent load
  generator that replays every session serially and asserts the streamed
  responses were byte-identical.

The wire format is NDJSON (one JSON object per line), versioned as
``SERVE_SCHEMA`` in :mod:`repro.io.serialize`; docs/SERVING.md is the
normative frame reference.
"""

from .loadgen import LoadReport, ServeClient, run_load
from .server import ServeConfig, TimingServer, run_server, start_in_thread
from .session import Session, SessionManager, apply_edit

__all__ = [
    "LoadReport",
    "ServeClient",
    "run_load",
    "ServeConfig",
    "TimingServer",
    "run_server",
    "start_in_thread",
    "Session",
    "SessionManager",
    "apply_edit",
]
