"""Server-side session state and the edit-frame dispatcher.

A *session* pins one :class:`~repro.rctree.engine.EditableEngine` to one
opened net; the client streams edit frames and the server re-evaluates
after each.  The dispatcher (:func:`apply_edit`) is deliberately the only
place that maps wire edit ops onto protocol methods — the load
generator's serial replay calls the same function, so "what the server
did" and "what the differential check recomputes" cannot drift apart.

Sessions are single-writer: the server serializes frames per connection
and additionally holds ``session.lock`` across apply+evaluate, so an edit
is never interleaved with another edit or evaluation of the same session.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Dict, List, Optional

from ..io.serialize import (
    WireProtocolError,
    repeater_from_dict,
    terminal_from_dict,
)
from ..obs import core as obs
from ..rctree.engine import ARDResult, EditableEngine, EvalContext
from ..rctree.registry import make_editable_engine
from ..rctree.topology import RoutingTree
from ..tech.parameters import Technology

__all__ = ["Session", "SessionManager", "apply_edit", "EDIT_OPS"]

# Session lifecycle counters (naming contract: docs/OBSERVABILITY.md).
_OBS_OPENED = obs.Counter("serve.sessions.opened")
_OBS_CLOSED = obs.Counter("serve.sessions.closed")
_OBS_EVICTED = obs.Counter("serve.sessions.evicted")
_OBS_EDITS = obs.Counter("serve.edits")

#: Wire edit ops, in protocol order (docs/SERVING.md).
EDIT_OPS = (
    "set_assignment",
    "set_terminal",
    "set_wire_width",
    "set_wire_scale",
    "reroot",
)


def apply_edit(engine: EditableEngine, edit: Dict[str, object]) -> None:
    """Apply one wire edit frame to an editable engine.

    Raises :class:`WireProtocolError` (``code="bad-request"``) for frames
    that do not decode to a known edit; engine-side rejections
    (``ValueError`` / ``TypeError``) propagate for the server to report as
    ``engine-error`` — the engine validates eagerly, so a rejected edit
    leaves the session state untouched.
    """
    op = edit.get("edit")
    if op not in EDIT_OPS:
        raise WireProtocolError(
            f"unknown edit op {op!r}; expected one of {', '.join(EDIT_OPS)}",
            code="bad-request",
        )
    # decode the frame fields first (malformed → bad-request), then
    # dispatch — so engine-side rejections are never misreported as
    # protocol errors
    try:
        if op == "set_assignment":
            rep = edit.get("repeater")
            args = (
                int(edit["node"]),  # type: ignore[arg-type]
                None if rep is None else repeater_from_dict(rep),  # type: ignore[arg-type]
            )
        elif op == "set_terminal":
            args = (
                int(edit["node"]),  # type: ignore[arg-type]
                terminal_from_dict(edit["terminal"]),  # type: ignore[arg-type]
            )
        elif op == "set_wire_width":
            width = edit.get("width")
            args = (
                int(edit["edge"]),  # type: ignore[arg-type]
                None if width is None else float(width),  # type: ignore[arg-type]
            )
        elif op == "set_wire_scale":
            kwargs = {
                "resistance_factor": float(edit.get("resistance_factor", 1.0)),  # type: ignore[arg-type]
                "capacitance_factor": float(edit.get("capacitance_factor", 1.0)),  # type: ignore[arg-type]
            }
        else:  # reroot
            args = (int(edit["node"]),)  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError) as exc:
        raise WireProtocolError(
            f"malformed {op!r} edit frame: {exc!r}", code="bad-request"
        ) from exc
    if op == "set_wire_scale":
        engine.set_wire_scale(**kwargs)
    else:
        getattr(engine, op)(*args)
    if obs.enabled():
        _OBS_EDITS.add()


class Session:
    """One opened net bound to one editable engine."""

    __slots__ = (
        "sid",
        "engine",
        "tree",
        "tech",
        "engine_name",
        "include_timing",
        "msri",
        "lock",
        "last_used",
        "edits",
    )

    def __init__(
        self,
        sid: str,
        engine: EditableEngine,
        tree: RoutingTree,
        tech: Technology,
        engine_name: str,
        include_timing: bool,
        msri: Optional[Dict] = None,
    ):
        self.sid = sid
        self.engine = engine
        self.tree = tree
        self.tech = tech
        self.engine_name = engine_name
        self.include_timing = include_timing
        #: session-default MSRI pruning-knob overrides (docs/SERVING.md);
        #: per-request overrides in an ``optimize`` frame merge over these
        self.msri = msri
        self.lock = asyncio.Lock()
        self.last_used = time.monotonic()
        self.edits = 0

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def evaluate(self) -> ARDResult:
        """Current ARD of the session's engine (caller holds the lock)."""
        return self.engine.evaluate()


class SessionManager:
    """The server's session table with TTL-based idle eviction."""

    def __init__(self, *, ttl_s: float = 300.0, default_engine: str = "incremental"):
        if ttl_s <= 0:
            raise ValueError(f"session TTL must be positive, got {ttl_s}")
        self.ttl_s = ttl_s
        self.default_engine = default_engine
        self._sessions: Dict[str, Session] = {}
        self._ids = itertools.count(1)
        # one subtree-front cache across all sessions: repeated `optimize`
        # frames on the same (or an edited) net reuse fronts bit-identically
        # (docs/ALGORITHMS.md §13); the cache itself is thread-safe for the
        # daemon's concurrent thread-pool evaluations
        from ..core.msri_cache import MSRICache

        self.msri_cache = MSRICache()

    def __len__(self) -> int:
        return len(self._sessions)

    def open(
        self,
        tree: RoutingTree,
        tech: Technology,
        *,
        engine_name: Optional[str] = None,
        context: Optional[EvalContext] = None,
        include_timing: bool = False,
        msri: Optional[Dict] = None,
    ) -> Session:
        name = engine_name or self.default_engine
        engine = make_editable_engine(
            name, tree, tech, context=context, include_timing=include_timing
        )
        sid = f"s{next(self._ids)}"
        session = Session(sid, engine, tree, tech, name, include_timing, msri)
        self._sessions[sid] = session
        if obs.enabled():
            _OBS_OPENED.add()
        return session

    def get(self, sid: object) -> Session:
        session = self._sessions.get(sid)  # type: ignore[arg-type]
        if session is None:
            raise WireProtocolError(
                f"unknown session {sid!r}", code="unknown-session"
            )
        return session

    def close(self, sid: str) -> bool:
        """Drop a session; True if it existed."""
        existed = self._sessions.pop(sid, None) is not None
        if existed and obs.enabled():
            _OBS_CLOSED.add()
        return existed

    def close_many(self, sids: List[str]) -> None:
        for sid in sids:
            self.close(sid)

    def evict_idle(self) -> List[str]:
        """Drop sessions idle longer than the TTL; returns evicted ids."""
        now = time.monotonic()
        stale = [
            sid
            for sid, s in self._sessions.items()
            if now - s.last_used > self.ttl_s
        ]
        for sid in stale:
            del self._sessions[sid]
            if obs.enabled():
                _OBS_EVICTED.add()
        return stale
