"""Load generator: concurrent sessions + serial byte-identity replay.

``run_load`` drives N concurrent client sessions against a running
server, each streaming a seeded pseudo-random edit sequence, then
*replays every session serially* on a local engine and asserts the
streamed responses were **byte-identical** to the serially recomputed
frames.  That is the server's core correctness claim: concurrency,
micro-batching and executor offload are pure plumbing — they must never
change a single bit of any response.

The replay reuses :func:`repro.serve.session.apply_edit` (the server's
own dispatcher) and :func:`repro.io.serialize.encode_frame` (the
server's own encoder), so the comparison covers the full path from edit
decoding through engine arithmetic to response bytes.

Also home of :class:`ServeClient`, a small blocking NDJSON client used
by the CLI self-test and the test suite.
"""

from __future__ import annotations

import itertools
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..io.serialize import (
    SERVE_SCHEMA,
    ard_result_to_dict,
    decode_frame,
    encode_frame,
    repeater_to_dict,
    terminal_to_dict,
    tree_to_dict,
)
from ..netgen.random_nets import chain_net, star_net
from ..netgen.workloads import (
    paper_net_spec,
    paper_repeater_library,
    paper_technology,
)
from ..rctree.registry import make_editable_engine
from ..rctree.topology import RoutingTree
from .session import apply_edit

__all__ = ["ServeClient", "LoadReport", "edit_stream", "run_load"]


class ServeClient:
    """A blocking NDJSON client for one server connection."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fh = self._sock.makefile("rb")
        self._ids = itertools.count(1)
        #: raw bytes of the last response line, for byte-identity checks
        self.last_raw: bytes = b""

    def send_raw(self, payload: bytes) -> None:
        """Ship arbitrary bytes — the fuzz tests' malformed-frame hook."""
        self._sock.sendall(payload)

    def read_response(self) -> Dict[str, Any]:
        line = self._fh.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        self.last_raw = line
        return decode_frame(line)

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One round-trip; returns the decoded response frame."""
        rid = next(self._ids)
        frame = {"schema": SERVE_SCHEMA, "id": rid, "op": op, **fields}
        self.send_raw(encode_frame(frame))
        return self.read_response()

    def check(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`request` but raises on an ``ok: false`` response."""
        resp = self.request(op, **fields)
        if not resp.get("ok"):
            err = resp.get("error") or {}
            raise RuntimeError(
                f"{op} failed: {err.get('code')}: {err.get('message')}"
            )
        return resp

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _session_net(index: int) -> RoutingTree:
    """Deterministic per-session net: alternating star/chain shapes."""
    spec = paper_net_spec()
    if index % 2 == 0:
        return star_net(3 + index % 5, spec)
    return chain_net(4 + index % 7, spec)


def edit_stream(
    seed: int, tree: RoutingTree, n_edits: int
) -> List[Dict[str, Any]]:
    """A seeded, orientation-aware edit sequence valid for ``tree``.

    Tracks the current root across ``reroot`` edits so wire-width targets
    (which must not name the root) and reroot targets stay legal however
    the stream reorders the tree.  Deterministic: the same ``(seed, tree,
    n_edits)`` always yields the same frames, which is what lets the
    serial replay regenerate nothing — it replays the *sent* frames.
    """
    rng = random.Random(seed)
    rep = repeater_to_dict(paper_repeater_library().repeaters[0])
    insertion = sorted(tree.insertion_indices())
    terminals = sorted(tree.terminal_indices())
    current_root = tree.root
    edits: List[Dict[str, Any]] = []
    ops = ["set_wire_width", "set_wire_scale", "set_terminal"]
    if insertion:
        ops += ["set_assignment"] * 3
    if len(terminals) > 1:
        ops += ["reroot"]
    for _ in range(n_edits):
        op = rng.choice(ops)
        if op == "set_assignment":
            edits.append(
                {
                    "edit": op,
                    "node": rng.choice(insertion),
                    "repeater": rep if rng.random() < 0.7 else None,
                }
            )
        elif op == "set_wire_width":
            carriers = [i for i in range(len(tree)) if i != current_root]
            width = (
                round(rng.uniform(0.5, 4.0), 3) if rng.random() < 0.8 else None
            )
            edits.append(
                {"edit": op, "edge": rng.choice(carriers), "width": width}
            )
        elif op == "set_wire_scale":
            edits.append(
                {
                    "edit": op,
                    "resistance_factor": round(rng.uniform(0.8, 1.25), 3),
                    "capacitance_factor": round(rng.uniform(0.8, 1.25), 3),
                }
            )
        elif op == "set_terminal":
            node = rng.choice(terminals)
            payload = terminal_to_dict(tree.node(node).terminal)
            payload["arrival_time"] = round(rng.uniform(0.0, 100.0), 3)
            payload["downstream_delay"] = round(rng.uniform(0.0, 100.0), 3)
            payload["capacitance"] = round(rng.uniform(0.01, 0.5), 4)
            edits.append({"edit": op, "node": node, "terminal": payload})
        else:  # reroot
            node = rng.choice([t for t in terminals if t != current_root])
            edits.append({"edit": op, "node": node})
            current_root = node
    return edits


@dataclass
class LoadReport:
    """What one ``run_load`` measured (latencies in milliseconds)."""

    sessions: int
    edits_total: int
    wall_s: float
    throughput_eps: float  # edit round-trips per second, all sessions
    p50_ms: float
    p99_ms: float
    max_ms: float
    mismatches: int  # responses differing from the serial replay (must be 0)
    mismatch_details: List[str]
    errors: List[str]

    @property
    def ok(self) -> bool:
        return self.mismatches == 0 and not self.errors


def _percentile(sorted_vals: List[float], pct: float) -> float:
    if not sorted_vals:
        return 0.0
    rank = max(1, int(-(-pct / 100.0 * len(sorted_vals) // 1)))  # ceil
    return sorted_vals[min(rank, len(sorted_vals)) - 1]


def run_load(
    host: str,
    port: int,
    *,
    sessions: int = 8,
    edits_per_session: int = 50,
    seed: int = 0,
    engine: Optional[str] = None,
    include_timing: bool = False,
) -> LoadReport:
    """Drive concurrent sessions, then serially verify every byte.

    Each session thread opens its own connection and net, streams its
    seeded edit sequence and records the raw response bytes.  After all
    threads finish, each session is replayed on a fresh local engine (the
    same engine name the server used) and the expected response frames
    are re-encoded; any byte difference is a mismatch.
    """
    if sessions < 1 or edits_per_session < 0:
        raise ValueError("sessions must be >= 1 and edits_per_session >= 0")
    transcripts: List[Optional[Dict[str, Any]]] = [None] * sessions
    errors: List[str] = []
    lock = threading.Lock()

    def worker(i: int) -> None:
        tree = _session_net(i)
        edits = edit_stream(seed * 10_000 + i, tree, edits_per_session)
        latencies: List[float] = []
        raws: List[bytes] = []
        try:
            with ServeClient(host, port) as client:
                open_fields: Dict[str, Any] = {
                    "net": tree_to_dict(tree),
                    "include_timing": include_timing,
                }
                if engine is not None:
                    open_fields["engine"] = engine
                resp = client.check("open", **open_fields)
                sid = resp["session"]
                raw_open = client.last_raw
                for e in edits:
                    t0 = time.perf_counter()
                    client.check("edit", session=sid, **e)
                    latencies.append((time.perf_counter() - t0) * 1e3)
                    raws.append(client.last_raw)
                client.check("close", session=sid)
            with lock:
                transcripts[i] = {
                    "tree": tree,
                    "edits": edits,
                    "sid": sid,
                    "raw_open": raw_open,
                    "raws": raws,
                    "latencies": latencies,
                }
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            with lock:
                errors.append(f"session {i}: {type(exc).__name__}: {exc}")

    t_start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(i,), name=f"loadgen-{i}")
        for i in range(sessions)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - t_start

    # -- serial replay: recompute what every response must have been ---------
    engine_name = engine or "incremental"
    mismatches = 0
    details: List[str] = []
    all_latencies: List[float] = []
    edits_total = 0
    for i, tr in enumerate(transcripts):
        if tr is None:
            continue
        all_latencies.extend(tr["latencies"])
        edits_total += len(tr["edits"])
        local = make_editable_engine(
            engine_name,
            tr["tree"],
            paper_technology(),
            include_timing=include_timing,
        )
        sid = tr["sid"]
        expected = encode_frame(
            {
                "schema": SERVE_SCHEMA,
                "id": 1,
                "ok": True,
                "session": sid,
                "n": len(tr["tree"]),
                "ard": ard_result_to_dict(
                    local.evaluate(), include_timing=include_timing
                ),
            }
        )
        if expected != tr["raw_open"]:
            mismatches += 1
            details.append(f"session {i}: open response differs")
        for k, (edit, raw) in enumerate(zip(tr["edits"], tr["raws"])):
            apply_edit(local, edit)
            expected = encode_frame(
                {
                    "schema": SERVE_SCHEMA,
                    "id": k + 2,
                    "ok": True,
                    "session": sid,
                    "ard": ard_result_to_dict(
                        local.evaluate(), include_timing=include_timing
                    ),
                }
            )
            if expected != raw:
                mismatches += 1
                details.append(
                    f"session {i} edit {k} ({edit['edit']}): "
                    f"expected {expected!r} got {raw!r}"
                )

    ordered = sorted(all_latencies)
    return LoadReport(
        sessions=sessions,
        edits_total=edits_total,
        wall_s=wall_s,
        throughput_eps=edits_total / wall_s if wall_s > 0 else 0.0,
        p50_ms=_percentile(ordered, 50.0),
        p99_ms=_percentile(ordered, 99.0),
        max_ms=ordered[-1] if ordered else 0.0,
        mismatches=mismatches,
        mismatch_details=details[:10],
        errors=errors,
    )
