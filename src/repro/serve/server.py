"""The asyncio NDJSON session daemon behind ``repro-msri serve``.

One connection carries a sequence of newline-delimited JSON frames
(``docs/SERVING.md`` is the normative wire reference).  Frames on a
connection are processed strictly in order; concurrency comes from
serving many connections, each owning its sessions.  CPU-bound engine
work runs on the default executor so the event loop stays responsive,
and one-shot ``evaluate`` requests from all connections are micro-batched
through :func:`repro.rctree.flat.evaluate_batch` behind a shared
:class:`~repro.rctree.flat.FlatNetCache`.

Robustness contract (exercised by ``tests/test_serve.py``):

* malformed or truncated frames get an ``ok: false`` error response and
  never kill the daemon;
* a line exceeding ``max_frame_bytes`` gets a ``frame-too-large`` error
  and closes that connection (the stream is unrecoverable mid-line);
* every request is bounded by ``request_timeout_s``;
* a client disconnect closes the sessions it opened;
* sessions idle past ``session_ttl_s`` are evicted;
* SIGTERM/SIGINT drain gracefully — in-flight requests finish, new ones
  are refused with ``shutting-down``.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import __version__
from ..io.serialize import (
    SERVE_SCHEMA,
    WireProtocolError,
    ard_result_to_dict,
    decode_frame,
    encode_frame,
    eval_context_from_dict,
    load_tree,
    technology_from_dict,
    technology_to_dict,
    tree_from_dict,
)
from ..analysis.batch import evaluate_batch_parallel
from ..core.msri import validate_msri_overrides
from ..netgen.workloads import paper_technology
from ..obs import core as obs
from ..rctree.flat import FlatNetCache
from ..rctree.registry import editable_engine_names
from .session import SessionManager, apply_edit

__all__ = ["ServeConfig", "TimingServer", "run_server", "start_in_thread"]

# Server-level metrics (naming contract: docs/OBSERVABILITY.md).
_OBS_CONNECTIONS = obs.Counter("serve.connections")
_OBS_REQUESTS = obs.Counter("serve.requests")
_OBS_BAD_FRAMES = obs.Counter("serve.frames.bad")
_OBS_TIMEOUTS = obs.Counter("serve.timeouts")
_OBS_EDIT_LATENCY = obs.Histogram("serve.edit.latency_ms")
_OBS_EVAL_LATENCY = obs.Histogram("serve.eval.latency_ms")
_OBS_BATCH_SIZE = obs.Histogram("serve.batch.size")


@dataclass(frozen=True)
class ServeConfig:
    """All server knobs in one frozen value object (see docs/SERVING.md)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick; read it back from ``server.port``
    engine: str = "incremental"  # default session engine
    request_timeout_s: float = 30.0
    session_ttl_s: float = 300.0
    eviction_interval_s: float = 1.0
    max_frame_bytes: int = 1 << 20
    batch_window_s: float = 0.002  # micro-batch collection window
    batch_max: int = 32  # max one-shot nets per micro-batch
    cache_size: int = 256  # FlatNetCache entries for one-shot evaluate
    drain_grace_s: float = 5.0  # max wait for in-flight requests on drain


def _error(rid: Any, code: str, message: str) -> Dict[str, Any]:
    return {
        "schema": SERVE_SCHEMA,
        "id": rid,
        "ok": False,
        "error": {"code": code, "message": message},
    }


class TimingServer:
    """The session server; construct, ``await start()``, then serve."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.sessions = SessionManager(
            ttl_s=self.config.session_ttl_s, default_engine=self.config.engine
        )
        self.cache = FlatNetCache(self.config.cache_size)
        self._server: Optional[asyncio.AbstractServer] = None
        self._batch_queue: Optional[asyncio.Queue] = None
        self._background: List[asyncio.Task] = []
        self._writers: set = set()
        self._active_requests = 0
        self._draining = False
        self._drained = asyncio.Event()

    # -- lifecycle --------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``); 0 before ``start()``."""
        if self._server is None or not self._server.sockets:
            return 0
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._batch_queue = asyncio.Queue()
        self._server = await asyncio.start_server(
            self._handle_client,
            self.config.host,
            self.config.port,
            limit=self.config.max_frame_bytes,
        )
        self._background = [
            asyncio.create_task(self._batcher_loop(), name="serve-batcher"),
            asyncio.create_task(self._evictor_loop(), name="serve-evictor"),
        ]

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (POSIX event loops only)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.drain())
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass

    async def serve_until_drained(self) -> None:
        await self._drained.wait()

    async def drain(self) -> None:
        """Stop accepting, let in-flight requests finish, close everything."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_grace_s
        while self._active_requests and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._writers):
            writer.close()
        for task in self._background:
            task.cancel()
        for task in self._background:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._drained.set()

    # -- connection handling ----------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if obs.enabled():
            _OBS_CONNECTIONS.add()
        self._writers.add(writer)
        owned: List[str] = []
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # the frame exceeded max_frame_bytes; mid-line the
                    # stream has no recoverable framing, so answer and hang up
                    await self._send(
                        writer,
                        _error(
                            None,
                            "frame-too-large",
                            f"frame exceeds {self.config.max_frame_bytes} bytes",
                        ),
                    )
                    break
                if not line:
                    break  # EOF: client disconnected
                if not line.strip():
                    continue  # blank keep-alive line
                self._active_requests += 1
                try:
                    response = await self._handle_frame(line, owned)
                finally:
                    self._active_requests -= 1
                await self._send(writer, response)
                if self._draining:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # mid-frame disconnect: cleanup below still runs
        finally:
            self._writers.discard(writer)
            self.sessions.close_many(owned)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, frame: Dict[str, Any]) -> None:
        writer.write(encode_frame(frame))
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _handle_frame(
        self, line: bytes, owned: List[str]
    ) -> Dict[str, Any]:
        if obs.enabled():
            _OBS_REQUESTS.add()
        try:
            frame = decode_frame(line)
        except WireProtocolError as exc:
            if obs.enabled():
                _OBS_BAD_FRAMES.add()
            return _error(_salvage_id(line), exc.code, str(exc))
        rid = frame.get("id")
        op = frame.get("op")
        if self._draining and op not in ("hello", "close", "stats"):
            return _error(rid, "shutting-down", "server is draining")
        try:
            result = await asyncio.wait_for(
                self._dispatch(op, frame, owned),
                timeout=self.config.request_timeout_s,
            )
        except asyncio.TimeoutError:
            if obs.enabled():
                _OBS_TIMEOUTS.add()
            return _error(
                rid,
                "timeout",
                f"request exceeded {self.config.request_timeout_s}s",
            )
        except WireProtocolError as exc:
            return _error(rid, exc.code, str(exc))
        except (ValueError, TypeError) as exc:
            return _error(rid, "engine-error", str(exc))
        return {"schema": SERVE_SCHEMA, "id": rid, "ok": True, **result}

    # -- request dispatch -------------------------------------------------------

    async def _dispatch(
        self, op: Any, frame: Dict[str, Any], owned: List[str]
    ) -> Dict[str, Any]:
        if op == "hello":
            return {
                "server": "repro-msri",
                "version": __version__,
                "engines": list(editable_engine_names()),
                "default_engine": self.config.engine,
            }
        if op == "open":
            return await self._op_open(frame, owned)
        if op == "edit":
            return await self._op_edit(frame)
        if op == "optimize":
            return await self._op_optimize(frame)
        if op == "eval":
            return await self._op_eval(frame)
        if op == "path_delay":
            return await self._op_path_delay(frame)
        if op == "evaluate":
            return await self._op_evaluate(frame)
        if op == "close":
            sid = frame.get("session")
            closed = self.sessions.close(sid) if isinstance(sid, str) else False
            if sid in owned:
                owned.remove(sid)
            return {"closed": closed}
        if op == "stats":
            return self._op_stats()
        raise WireProtocolError(f"unknown op {op!r}", code="unknown-op")

    async def _op_open(
        self, frame: Dict[str, Any], owned: List[str]
    ) -> Dict[str, Any]:
        try:
            if "net" in frame:
                tree = tree_from_dict(frame["net"])
            elif "path" in frame:
                tree = load_tree(str(frame["path"]))
            else:
                raise WireProtocolError(
                    "open needs an inline 'net' or a 'path'", code="bad-request"
                )
            tech = (
                technology_from_dict(frame["tech"])
                if "tech" in frame
                else paper_technology()
            )
            context = eval_context_from_dict(frame.get("context") or {})
            msri = validate_msri_overrides(frame.get("msri")) or None
        except WireProtocolError:
            raise
        except (KeyError, TypeError, ValueError, OSError) as exc:
            raise WireProtocolError(
                f"malformed open frame: {exc}", code="bad-request"
            ) from exc
        try:
            session = self.sessions.open(
                tree,
                tech,
                engine_name=frame.get("engine"),
                context=context,
                include_timing=bool(frame.get("include_timing", False)),
                msri=msri,
            )
        except ValueError as exc:
            # unknown / non-editable engine name: a client mistake, not an
            # engine runtime failure
            raise WireProtocolError(str(exc), code="bad-request") from exc
        owned.append(session.sid)
        loop = asyncio.get_running_loop()
        async with session.lock:
            result = await loop.run_in_executor(None, session.evaluate)
            session.touch()
        return {
            "session": session.sid,
            "n": len(tree),
            "ard": ard_result_to_dict(
                result, include_timing=session.include_timing
            ),
        }

    async def _op_edit(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        session = self.sessions.get(frame.get("session"))
        loop = asyncio.get_running_loop()

        def work():
            apply_edit(session.engine, frame)
            return session.evaluate()

        t0 = loop.time()
        async with session.lock:
            result = await loop.run_in_executor(None, work)
            session.touch()
            session.edits += 1
        if obs.enabled():
            _OBS_EDIT_LATENCY.observe((loop.time() - t0) * 1e3)
        return {
            "session": session.sid,
            "ard": ard_result_to_dict(
                result, include_timing=session.include_timing
            ),
        }

    async def _op_optimize(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Run the MSRI optimizer over a session's net (docs/SERVING.md).

        ``mode`` selects ``repeater`` (default) or ``sizing``; ``msri``
        carries per-request pruning-knob overrides, merged over the
        session's defaults from the ``open`` frame.  Responds with the
        (cost, ARD) trade-off frontier and the DP statistics; with a
        ``spec`` (here or in the knobs) the cheapest solution meeting it
        is additionally resolved (Problem 2.1).

        Requests run through the manager-wide subtree-front cache
        (:class:`~repro.core.msri_cache.MSRICache`): a repeated optimize on
        an unchanged net, or one that shares subtrees with an earlier
        request, reuses stored fronts bit-identically; ``stats`` reports
        ``cache_hits`` / ``nodes_reused`` alongside the DP counters.
        """
        from ..core.msri_engine import insert_repeaters_cached
        from ..netgen.workloads import (
            driver_sizing_options,
            repeater_insertion_options,
        )

        session = self.sessions.get(frame.get("session"))
        mode = frame.get("mode", "repeater")
        if mode not in ("repeater", "sizing"):
            raise WireProtocolError(
                f"unknown optimize mode {mode!r}; expected 'repeater' or "
                f"'sizing'",
                code="bad-request",
            )
        overrides = dict(session.msri or {})
        try:
            overrides.update(validate_msri_overrides(frame.get("msri")))
            if "spec" in frame:
                overrides.update(
                    validate_msri_overrides({"spec": frame["spec"]})
                )
        except ValueError as exc:
            raise WireProtocolError(str(exc), code="bad-request") from exc
        build = (
            repeater_insertion_options
            if mode == "repeater"
            else driver_sizing_options
        )
        options = build(**overrides)

        def work():
            return insert_repeaters_cached(
                session.tree,
                session.tech,
                options,
                cache=self.sessions.msri_cache,
            )

        loop = asyncio.get_running_loop()
        async with session.lock:
            result = await loop.run_in_executor(None, work)
            session.touch()
        response: Dict[str, Any] = {
            "session": session.sid,
            "mode": mode,
            "tradeoff": [
                {"cost": cost, "ard": ard} for cost, ard in result.tradeoff()
            ],
            "stats": {
                "nodes": result.stats.nodes_processed,
                "generated": result.stats.solutions_generated,
                "kept": result.stats.solutions_after_pruning,
                "max_set_size": result.stats.max_set_size,
                "front_width_p95": result.stats.front_width_p95(),
                "runtime_s": result.stats.runtime_seconds,
                "cache_hits": result.stats.cache_hits,
                "nodes_reused": result.stats.nodes_reused,
            },
        }
        if options.spec is not None:
            chosen = result.min_cost_meeting(options.spec)
            response["chosen"] = (
                None
                if chosen is None
                else {"cost": chosen.cost, "ard": chosen.ard}
            )
        return response

    async def _op_eval(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        session = self.sessions.get(frame.get("session"))
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        async with session.lock:
            result = await loop.run_in_executor(None, session.evaluate)
            session.touch()
        if obs.enabled():
            _OBS_EVAL_LATENCY.observe((loop.time() - t0) * 1e3)
        return {
            "session": session.sid,
            "ard": ard_result_to_dict(
                result, include_timing=session.include_timing
            ),
        }

    async def _op_path_delay(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        session = self.sessions.get(frame.get("session"))
        try:
            src = int(frame["src"])
            dst = int(frame["dst"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireProtocolError(
                f"malformed path_delay frame: {exc!r}", code="bad-request"
            ) from exc
        loop = asyncio.get_running_loop()
        async with session.lock:
            value = await loop.run_in_executor(
                None, session.engine.path_delay, src, dst
            )
            session.touch()
        return {
            "session": session.sid,
            "delay": value if math.isfinite(value) else "never",
        }

    async def _op_evaluate(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        try:
            nets = frame["nets"]
            if not isinstance(nets, list) or not nets:
                raise WireProtocolError(
                    "'nets' must be a non-empty list", code="bad-request"
                )
            trees = [tree_from_dict(d) for d in nets]
            tech = (
                technology_from_dict(frame["tech"])
                if "tech" in frame
                else paper_technology()
            )
            context = eval_context_from_dict(frame.get("context") or {})
            include_timing = bool(frame.get("include_timing", False))
        except WireProtocolError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise WireProtocolError(
                f"malformed evaluate frame: {exc}", code="bad-request"
            ) from exc
        loop = asyncio.get_running_loop()
        tech_key = json.dumps(technology_to_dict(tech), sort_keys=True)
        futures = []
        if self._batch_queue is None:
            raise RuntimeError("server not started: batch queue missing")
        for tree in trees:
            fut: asyncio.Future = loop.create_future()
            self._batch_queue.put_nowait(
                (tree, context, tech_key, tech, include_timing, fut)
            )
            futures.append(fut)
        results = await asyncio.gather(*futures)
        return {
            "ards": [
                ard_result_to_dict(r, include_timing=include_timing)
                for r in results
            ]
        }

    def _op_stats(self) -> Dict[str, Any]:
        return {
            "sessions": len(self.sessions),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "size": len(self.cache),
            },
            "draining": self._draining,
        }

    # -- background loops -------------------------------------------------------

    async def _batcher_loop(self) -> None:
        """Micro-batch one-shot evaluations across connections.

        Collect requests for ``batch_window_s`` (or until ``batch_max``),
        group by technology (``evaluate_batch`` takes one tech per call),
        then run each group through the shared compile cache on the
        executor.  Per-net contexts ride along, so grouping never changes
        results — only amortizes overhead.
        """
        if self._batch_queue is None:
            raise RuntimeError("server not started: batch queue missing")
        loop = asyncio.get_running_loop()
        cfg = self.config
        while True:
            batch = [await self._batch_queue.get()]
            deadline = loop.time() + cfg.batch_window_s
            while len(batch) < cfg.batch_max:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(
                            self._batch_queue.get(), timeout=remaining
                        )
                    )
                except asyncio.TimeoutError:
                    break
            if obs.enabled():
                _OBS_BATCH_SIZE.observe(len(batch))
            groups: Dict[Tuple[str, bool], List] = {}
            for item in batch:
                groups.setdefault((item[2], item[4]), []).append(item)
            for (_, include_timing), items in groups.items():
                trees = [it[0] for it in items]
                contexts = [it[1] for it in items]
                tech = items[0][3]
                try:
                    # workers=0: the serial evaluate_batch path, which is
                    # the only one that can reuse this process's compile
                    # cache — micro-batches are far below any sharding win
                    results = await loop.run_in_executor(
                        None,
                        lambda t=trees, x=contexts, k=tech, i=include_timing: (
                            evaluate_batch_parallel(
                                t,
                                k,
                                contexts=x,
                                include_timing=i,
                                workers=0,
                                cache=self.cache,
                            )
                        ),
                    )
                except Exception as exc:  # surface to every waiter
                    for it in items:
                        if not it[5].done():
                            it[5].set_exception(
                                exc
                                if isinstance(exc, (ValueError, TypeError))
                                else ValueError(str(exc))
                            )
                    continue
                for it, result in zip(items, results):
                    if not it[5].done():
                        it[5].set_result(result)

    async def _evictor_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.eviction_interval_s)
            self.sessions.evict_idle()


def _salvage_id(line: bytes) -> Any:
    """Best-effort request id from an otherwise unusable frame."""
    try:
        obj = json.loads(line)
        if isinstance(obj, dict):
            rid = obj.get("id")
            if isinstance(rid, (int, str)):
                return rid
    except Exception:
        pass
    return None


def run_server(config: Optional[ServeConfig] = None) -> None:
    """Blocking entry point: serve until SIGTERM/SIGINT drains the daemon."""

    async def main() -> None:
        server = TimingServer(config)
        await server.start()
        server.install_signal_handlers()
        print(
            f"repro-msri serve: listening on "
            f"{server.config.host}:{server.port} "
            f"(engine={server.config.engine})",
            flush=True,
        )
        await server.serve_until_drained()

    asyncio.run(main())


def start_in_thread(
    config: Optional[ServeConfig] = None,
) -> Tuple[TimingServer, Callable[[], None]]:
    """Run a server on a daemon thread; returns ``(server, stop)``.

    ``server.port`` is valid on return.  ``stop()`` drains the server and
    joins the thread — the in-process harness used by the self-test, the
    benchmark and the test suite.
    """
    started = threading.Event()
    holder: Dict[str, Any] = {}

    async def main() -> None:
        server = TimingServer(config)
        await server.start()
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        await server.serve_until_drained()

    thread = threading.Thread(
        target=lambda: asyncio.run(main()), name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=10.0):
        raise RuntimeError("server thread failed to start")
    server: TimingServer = holder["server"]
    loop: asyncio.AbstractEventLoop = holder["loop"]

    def stop() -> None:
        if thread.is_alive():
            asyncio.run_coroutine_threadsafe(server.drain(), loop).result(
                timeout=30.0
            )
            thread.join(timeout=10.0)

    return server, stop
