"""Rectilinear Steiner topology generation, insertion points, synthesis."""

from .insertion_points import add_insertion_points, l_route_point
from .mst import rectilinear_mst, total_length
from .steinerize import SteinerTopology, build_steiner_topology, steinerize
from .topology_search import (
    SynthesisResult,
    synthesize_topology,
    tree_from_terminal_edges,
)

__all__ = [
    "add_insertion_points",
    "l_route_point",
    "rectilinear_mst",
    "total_length",
    "SteinerTopology",
    "build_steiner_topology",
    "steinerize",
    "SynthesisResult",
    "synthesize_topology",
    "tree_from_terminal_edges",
]
