"""ARD-driven topology synthesis for multisource nets.

The paper's conclusions point out that, given its results, "a multisource
version of the P-Tree timing-driven Steiner router is now possible" — the
ARD gives topology construction an objective, and the linear-time algorithm
makes each candidate cheap to score.  This module implements that direction
as a local search:

1. start from the rectilinear MST over the terminals;
2. repeatedly try *edge exchanges* — remove one spanning edge, reconnect
   the two components through a different terminal pair — scoring each
   candidate by ``ARD + wirelength_weight * WL`` on the steinerized
   topology (one O(n) ARD evaluation per candidate);
3. take the steepest improving move until a local optimum (or an iteration
   cap).

This is a pragmatic stand-in for a full P-Tree-style enumeration, in the
same spirit as the repository's other topology substitution (DESIGN.md §5):
it exercises the ARD objective end to end and measurably beats
wirelength-only topologies on diameter (see
``benchmarks/bench_topology_synthesis.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..rctree.builder import TreeBuilder
from ..rctree.engine import TimingEngine
from ..rctree.incremental import IncrementalARD
from ..rctree.topology import RoutingTree
from ..tech.parameters import Technology
from ..tech.terminals import Terminal
from .mst import rectilinear_mst
from .steinerize import steinerize

__all__ = ["SynthesisResult", "synthesize_topology", "tree_from_terminal_edges"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of an ARD-driven topology search."""

    tree: RoutingTree
    terminal_edges: Tuple[Edge, ...]
    ard: float
    wirelength: float
    score: float
    iterations: int
    history: Tuple[float, ...]  # best score after each accepted move


def tree_from_terminal_edges(
    terminals: Sequence[Terminal],
    edges: Sequence[Edge],
    *,
    root: int = 0,
) -> RoutingTree:
    """Steinerize a terminal-level spanning tree and build the routing tree."""
    points = [(t.x, t.y) for t in terminals]
    topo = steinerize(points, list(edges))
    builder = TreeBuilder()
    handles = []
    for i, (x, y) in enumerate(topo.points):
        if i < len(terminals):
            handles.append(builder.add_terminal(terminals[i]))
        else:
            handles.append(builder.add_steiner(x, y))
    for a, b in topo.edges:
        builder.connect(handles[a], handles[b])
    return builder.build(root=handles[root])


def synthesize_topology(
    terminals: Sequence[Terminal],
    tech: Technology,
    *,
    wirelength_weight: float = 0.0,
    max_iterations: int = 50,
    root: int = 0,
    engine_factory: Optional[Callable[[RoutingTree], TimingEngine]] = None,
    engine: Optional[str] = None,
) -> SynthesisResult:
    """Search terminal spanning trees for low ARD (plus optional WL term).

    ``wirelength_weight`` (ps per µm) trades routing resources against
    diameter: 0 optimizes diameter alone; large values recover the MST.

    ``engine_factory`` builds the timing oracle scoring each candidate
    topology (every candidate is a *different* tree, so the oracle is
    rebuilt per candidate).  The default is
    :class:`~repro.rctree.incremental.IncrementalARD`, whose single-pass
    record build skips the Eq. 2 pass and the per-node scalar table that a
    full ``ard()`` would also materialize.  ``engine`` names a registered
    engine (:func:`repro.rctree.registry.engine_names`) as a convenience —
    pass one or the other, not both.
    """
    if len(terminals) < 2:
        raise ValueError("topology synthesis needs at least two terminals")
    if wirelength_weight < 0.0:
        raise ValueError("wirelength_weight must be non-negative")

    if engine is not None:
        if engine_factory is not None:
            raise TypeError(
                "synthesize_topology: pass either engine= (a registry name) "
                "or engine_factory=, not both"
            )
        from ..rctree.registry import resolve_engine_factory

        engine_factory = resolve_engine_factory(engine, tech)
    if engine_factory is None:
        def engine_factory(tree: RoutingTree) -> TimingEngine:
            return IncrementalARD(tree, tech)

    points = [(t.x, t.y) for t in terminals]
    edges: List[Edge] = list(rectilinear_mst(points))

    def score_of(edge_list: Sequence[Edge]) -> Tuple[float, float, float]:
        tree = tree_from_terminal_edges(terminals, edge_list, root=root)
        value = engine_factory(tree).evaluate(tree).value
        wl = tree.total_wire_length()
        return value + wirelength_weight * wl, value, wl

    best_score, best_ard, best_wl = score_of(edges)
    history = [best_score]
    iterations = 0

    while iterations < max_iterations:
        iterations += 1
        move: Optional[Tuple[float, int, Edge]] = None
        for k, removed in enumerate(edges):
            remaining = edges[:k] + edges[k + 1:]
            side_a = _component(len(terminals), remaining, removed[0])
            for i in sorted(side_a):
                for j in range(len(terminals)):
                    if j in side_a:
                        continue
                    if (i, j) == removed or (j, i) == removed:
                        continue
                    candidate = remaining + [(i, j)]
                    score, _, _ = score_of(candidate)
                    if score < best_score - 1e-9 and (
                        move is None or score < move[0]
                    ):
                        move = (score, k, (i, j))
        if move is None:
            break
        _, k, new_edge = move
        edges = edges[:k] + edges[k + 1:] + [new_edge]
        best_score, best_ard, best_wl = score_of(edges)
        history.append(best_score)

    tree = tree_from_terminal_edges(terminals, edges, root=root)
    return SynthesisResult(
        tree=tree,
        terminal_edges=tuple(edges),
        ard=best_ard,
        wirelength=best_wl,
        score=best_score,
        iterations=iterations,
        history=tuple(history),
    )


def _component(n: int, edges: Sequence[Edge], start: int) -> Set[int]:
    """Terminal indices reachable from ``start`` using ``edges``."""
    adj: List[List[int]] = [[] for _ in range(n)]
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for u in adj[v]:
            if u not in seen:
                seen.add(u)
                stack.append(u)
    return seen
