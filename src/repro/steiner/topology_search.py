"""ARD-driven topology synthesis for multisource nets.

The paper's conclusions point out that, given its results, "a multisource
version of the P-Tree timing-driven Steiner router is now possible" — the
ARD gives topology construction an objective, and the linear-time algorithm
makes each candidate cheap to score.  This module implements that direction
as a local search:

1. start from the rectilinear MST over the terminals;
2. repeatedly try *edge exchanges* — remove one spanning edge, reconnect
   the two components through a different terminal pair — scoring each
   candidate by ``ARD + wirelength_weight * WL`` on the steinerized
   topology (one O(n) ARD evaluation per candidate);
3. take the steepest improving move until a local optimum (or an iteration
   cap).

This is a pragmatic stand-in for a full P-Tree-style enumeration, in the
same spirit as the repository's other topology substitution (DESIGN.md §5):
it exercises the ARD objective end to end and measurably beats
wirelength-only topologies on diameter (see
``benchmarks/bench_topology_synthesis.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..rctree.builder import TreeBuilder
from ..rctree.engine import TimingEngine
from ..rctree.incremental import IncrementalARD
from ..rctree.topology import RoutingTree
from ..tech.parameters import Technology
from ..tech.terminals import Terminal
from .mst import rectilinear_mst
from .steinerize import steinerize

__all__ = ["SynthesisResult", "synthesize_topology", "tree_from_terminal_edges"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of an ARD-driven topology search.

    ``evaluations`` counts oracle calls actually made; ``memo_hits`` counts
    candidate scorings answered from the canonical edge-set memo (the same
    terminal pair reappears across edge-scan rounds, and the post-move
    re-score is always a hit).
    """

    tree: RoutingTree
    terminal_edges: Tuple[Edge, ...]
    ard: float
    wirelength: float
    score: float
    iterations: int
    history: Tuple[float, ...]  # best score after each accepted move
    evaluations: int = 0
    memo_hits: int = 0


def tree_from_terminal_edges(
    terminals: Sequence[Terminal],
    edges: Sequence[Edge],
    *,
    root: int = 0,
) -> RoutingTree:
    """Steinerize a terminal-level spanning tree and build the routing tree."""
    points = [(t.x, t.y) for t in terminals]
    topo = steinerize(points, list(edges))
    builder = TreeBuilder()
    handles = []
    for i, (x, y) in enumerate(topo.points):
        if i < len(terminals):
            handles.append(builder.add_terminal(terminals[i]))
        else:
            handles.append(builder.add_steiner(x, y))
    for a, b in topo.edges:
        builder.connect(handles[a], handles[b])
    return builder.build(root=handles[root])


def _canonical_edges(edge_list: Sequence[Edge]) -> Tuple[Edge, ...]:
    """The canonical form of a terminal spanning tree: each edge as
    ``(min, max)``, the list sorted.

    Two candidate lists describing the same edge *set* reduce to the same
    tuple, which serves both as the score-memo key and as the edge order
    actually steinerized — :func:`steinerize`'s realization can depend on
    input order, so scoring the canonical form and building anything else
    would let a memo hit report a score the built tree doesn't have.
    """
    return tuple(
        sorted((a, b) if a <= b else (b, a) for a, b in edge_list)
    )


def synthesize_topology(
    terminals: Sequence[Terminal],
    tech: Technology,
    *,
    wirelength_weight: float = 0.0,
    max_iterations: int = 50,
    root: int = 0,
    engine_factory: Optional[Callable[[RoutingTree], TimingEngine]] = None,
    engine: Optional[str] = None,
    objective: str = "ard",
    msri_options=None,
    msri_cache=None,
    msri_workers: int = 0,
) -> SynthesisResult:
    """Search terminal spanning trees for low ARD (plus optional WL term).

    ``wirelength_weight`` (ps per µm) trades routing resources against
    diameter: 0 optimizes diameter alone; large values recover the MST.

    ``engine_factory`` builds the timing oracle scoring each candidate
    topology (every candidate is a *different* tree, so the oracle is
    rebuilt per candidate).  The default is
    :class:`~repro.rctree.incremental.IncrementalARD`, whose single-pass
    record build skips the Eq. 2 pass and the per-node scalar table that a
    full ``ard()`` would also materialize.  ``engine`` names a registered
    engine (:func:`repro.rctree.registry.engine_names`) as a convenience —
    pass one or the other, not both.

    ``objective="msri"`` scores each candidate by the *optimized* net
    instead of the bare topology: the minimum achievable ARD after optimal
    repeater insertion (``msri_options``, a
    :class:`~repro.core.msri.MSRIOptions`, is required).  Candidates run
    through :func:`~repro.core.msri_engine.insert_repeaters_cached`, so
    sibling candidates — trees differing from the incumbent by one edge —
    reuse each other's subtree fronts via ``msri_cache`` (a shared
    :class:`~repro.core.msri_cache.MSRICache`; one is created per search
    when omitted).  ``msri_options.quantize_bound=True`` is what makes
    cross-candidate hits possible — without it every candidate's ``c_max``
    differs and the cache only helps on exact re-scores.  ``msri_workers``
    forwards to the engine's parallel subtree solver.

    Candidate scorings are memoized on the canonical edge set, so the same
    reconnection pair reappearing across edge-scan rounds is never
    re-scored (``SynthesisResult.evaluations`` / ``memo_hits``).
    """
    if len(terminals) < 2:
        raise ValueError("topology synthesis needs at least two terminals")
    if wirelength_weight < 0.0:
        raise ValueError("wirelength_weight must be non-negative")
    if objective not in ("ard", "msri"):
        raise ValueError(
            f"unknown objective {objective!r}; expected 'ard' or 'msri'"
        )

    if objective == "msri":
        if engine is not None or engine_factory is not None:
            raise TypeError(
                "synthesize_topology: objective='msri' scores through the "
                "MSRI optimizer; engine=/engine_factory= do not apply"
            )
        if msri_options is None:
            raise ValueError(
                "objective='msri' requires msri_options (an MSRIOptions)"
            )
        from ..core.msri_cache import MSRICache
        from ..core.msri_engine import insert_repeaters_cached

        if msri_cache is None:
            msri_cache = MSRICache()

        def evaluate(tree: RoutingTree) -> float:
            result = insert_repeaters_cached(
                tree, tech, msri_options, cache=msri_cache,
                workers=msri_workers,
            )
            return result.min_ard().ard
    else:
        if msri_options is not None or msri_cache is not None:
            raise TypeError(
                "synthesize_topology: msri_options/msri_cache require "
                "objective='msri'"
            )
        if engine is not None:
            if engine_factory is not None:
                raise TypeError(
                    "synthesize_topology: pass either engine= (a registry "
                    "name) or engine_factory=, not both"
                )
            from ..rctree.registry import resolve_engine_factory

            engine_factory = resolve_engine_factory(engine, tech)
        if engine_factory is None:
            def engine_factory(tree: RoutingTree) -> TimingEngine:
                return IncrementalARD(tree, tech)

        def evaluate(tree: RoutingTree) -> float:
            return engine_factory(tree).evaluate(tree).value

    points = [(t.x, t.y) for t in terminals]
    edges: List[Edge] = list(rectilinear_mst(points))

    memo: dict = {}
    counts = {"evaluations": 0, "memo_hits": 0}

    def score_of(edge_list: Sequence[Edge]) -> Tuple[float, float, float]:
        key = _canonical_edges(edge_list)
        hit = memo.get(key)
        if hit is not None:
            counts["memo_hits"] += 1
            return hit
        tree = tree_from_terminal_edges(terminals, key, root=root)
        value = evaluate(tree)
        wl = tree.total_wire_length()
        out = (value + wirelength_weight * wl, value, wl)
        memo[key] = out
        counts["evaluations"] += 1
        return out

    best_score, best_ard, best_wl = score_of(edges)
    history = [best_score]
    iterations = 0

    while iterations < max_iterations:
        iterations += 1
        move: Optional[Tuple[float, float, float, int, Edge]] = None
        for k, removed in enumerate(edges):
            remaining = edges[:k] + edges[k + 1:]
            side_a = _component(len(terminals), remaining, removed[0])
            for i in sorted(side_a):
                for j in range(len(terminals)):
                    if j in side_a:
                        continue
                    if (i, j) == removed or (j, i) == removed:
                        continue
                    candidate = remaining + [(i, j)]
                    score, value, wl = score_of(candidate)
                    if score < best_score - 1e-9 and (
                        move is None or score < move[0]
                    ):
                        move = (score, value, wl, k, (i, j))
        if move is None:
            break
        # the chosen move's scores were already computed during the scan —
        # carry them instead of re-scoring the edge list
        best_score, best_ard, best_wl, k, new_edge = move
        edges = edges[:k] + edges[k + 1:] + [new_edge]
        history.append(best_score)

    final_edges = _canonical_edges(edges)
    tree = tree_from_terminal_edges(terminals, final_edges, root=root)
    return SynthesisResult(
        tree=tree,
        terminal_edges=final_edges,
        ard=best_ard,
        wirelength=best_wl,
        score=best_score,
        iterations=iterations,
        history=tuple(history),
        evaluations=counts["evaluations"],
        memo_hits=counts["memo_hits"],
    )


def _component(n: int, edges: Sequence[Edge], start: int) -> Set[int]:
    """Terminal indices reachable from ``start`` using ``edges``."""
    adj: List[List[int]] = [[] for _ in range(n)]
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for u in adj[v]:
            if u not in seen:
                seen.add(u)
                stack.append(u)
    return seen
