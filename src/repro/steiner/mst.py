"""Rectilinear minimum spanning tree (Prim's algorithm, O(n^2)).

The starting point for topology generation: the paper builds its
experimental Steiner trees with the P-Tree router [16]; we substitute a
rectilinear MST refined by greedy steinerization (see DESIGN.md §5), which
produces comparable low-wirelength topologies for random point sets.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["rectilinear_mst", "total_length"]

Point = Tuple[float, float]
Edge = Tuple[int, int]


def _dist(a: Point, b: Point) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def rectilinear_mst(points: Sequence[Point]) -> List[Edge]:
    """Edges (index pairs) of a minimum spanning tree under the L1 metric.

    Prim's algorithm with an O(n^2) dense scan — optimal for the complete
    graph implied by a point set, and comfortably fast at the paper's net
    sizes (10–20 pins).
    """
    n = len(points)
    if n == 0:
        raise ValueError("need at least one point")
    if n == 1:
        return []
    in_tree = [False] * n
    best_dist = [math.inf] * n
    best_link = [-1] * n
    in_tree[0] = True
    for j in range(1, n):
        best_dist[j] = _dist(points[0], points[j])
        best_link[j] = 0

    edges: List[Edge] = []
    for _ in range(n - 1):
        # pick the closest outside vertex
        v, vd = -1, math.inf
        for j in range(n):
            if not in_tree[j] and best_dist[j] < vd:
                v, vd = j, best_dist[j]
        if v < 0:
            raise RuntimeError("Prim scan found no outside vertex to attach")
        in_tree[v] = True
        edges.append((best_link[v], v))
        for j in range(n):
            if not in_tree[j]:
                d = _dist(points[v], points[j])
                if d < best_dist[j]:
                    best_dist[j] = d
                    best_link[j] = v
    return edges


def total_length(points: Sequence[Point], edges: Sequence[Edge]) -> float:
    """Total rectilinear length of an edge list."""
    return sum(_dist(points[a], points[b]) for a, b in edges)
