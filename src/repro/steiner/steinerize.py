"""Greedy Hanan-point steinerization of a rectilinear spanning tree.

Classic wirelength refinement: wherever a vertex ``u`` has two tree
neighbors ``v`` and ``w``, the three L-shaped routes can share track.  The
optimal meeting point for three terminals under the L1 metric is the
component-wise **median**; if routing ``u``, ``v``, ``w`` through that
median point is shorter than the two direct edges, we insert a Steiner
point there.  Iterating to a fixed point converts an MST into a decent
rectilinear Steiner tree (typically 8–11% shorter, approaching the classic
Hwang bound of the MST/SMT ratio from above).

This stands in for the paper's P-Tree topology generator — see DESIGN.md §5
for why the substitution is behaviour-preserving for the experiments.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from .mst import rectilinear_mst, total_length

__all__ = ["steinerize", "SteinerTopology", "build_steiner_topology"]

Point = Tuple[float, float]
Edge = Tuple[int, int]


def _median3(a: float, b: float, c: float) -> float:
    return sorted((a, b, c))[1]


def _dist(a: Point, b: Point) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


class SteinerTopology:
    """A point-indexed tree: original terminals plus added Steiner points.

    ``points[:n_terminals]`` are the input terminals in input order; any
    further points are Steiner points introduced by refinement.
    """

    def __init__(self, points: List[Point], edges: List[Edge], n_terminals: int):
        self.points = points
        self.edges = edges
        self.n_terminals = n_terminals

    def wirelength(self) -> float:
        return total_length(self.points, self.edges)

    def steiner_points(self) -> List[Point]:
        return self.points[self.n_terminals:]


def steinerize(
    points: Sequence[Point], edges: Sequence[Edge], max_rounds: int = 20
) -> SteinerTopology:
    """Greedy median-point refinement until no move helps (or round cap)."""
    pts: List[Point] = list(points)
    n_terminals = len(pts)
    adj: Dict[int, Set[int]] = {i: set() for i in range(len(pts))}
    for a, b in edges:
        adj[a].add(b)
        adj[b].add(a)

    improved = True
    rounds = 0
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for u in list(adj.keys()):
            neighbors = list(adj[u])
            if len(neighbors) < 2:
                continue
            best = None  # (gain, v, w, steiner point)
            for i in range(len(neighbors)):
                for j in range(i + 1, len(neighbors)):
                    v, w = neighbors[i], neighbors[j]
                    sx = _median3(pts[u][0], pts[v][0], pts[w][0])
                    sy = _median3(pts[u][1], pts[v][1], pts[w][1])
                    s = (sx, sy)
                    old = _dist(pts[u], pts[v]) + _dist(pts[u], pts[w])
                    new = _dist(pts[u], s) + _dist(s, pts[v]) + _dist(s, pts[w])
                    gain = old - new
                    if gain > 1e-9 and (best is None or gain > best[0]):
                        best = (gain, v, w, s)
            if best is None:
                continue
            _, v, w, s = best
            if s == pts[u]:
                continue  # the median is u itself; no new point needed
            s_idx = len(pts)
            pts.append(s)
            adj[s_idx] = set()
            for x in (v, w):
                adj[u].discard(x)
                adj[x].discard(u)
                adj[s_idx].add(x)
                adj[x].add(s_idx)
            adj[u].add(s_idx)
            adj[s_idx].add(u)
            improved = True

    out_edges = []
    for a in adj:
        for b in adj[a]:
            if a < b:
                out_edges.append((a, b))
    return SteinerTopology(pts, out_edges, n_terminals)


def build_steiner_topology(points: Sequence[Point]) -> SteinerTopology:
    """MST construction followed by steinerization."""
    mst_edges = rectilinear_mst(points)
    return steinerize(points, mst_edges)
