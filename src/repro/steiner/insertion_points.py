"""Candidate repeater insertion points along tree wires (paper Sec. VI).

The paper's experiments add degree-two insertion points so that consecutive
candidates sit no more than ~800 µm apart, while ensuring every (non-trivial)
wire segment carries at least one — which drives the *average* spacing well
below the cap (~450 µm in the paper's footnote 14).

A wire of length ``L`` therefore receives ``k = max(1, ceil(L / spacing))``
evenly spaced insertion points, splitting it into ``k + 1`` sub-wires of
length ``L / (k + 1) < spacing``.  Zero-length pendant edges (leafification
artifacts) carry no wire and get no insertion points.

Coordinates of the new points are interpolated along the edge's L-shaped
(horizontal-then-vertical) route, so renderings stay truthful; electrically
only the lengths matter.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..rctree.builder import TreeBuilder
from ..rctree.topology import NodeKind, RoutingTree

__all__ = ["add_insertion_points", "l_route_point"]


def l_route_point(
    ax: float, ay: float, bx: float, by: float, fraction: float
) -> Tuple[float, float]:
    """Point a given arc-length fraction along the L-route from a to b.

    The route runs horizontally from ``(ax, ay)`` to ``(bx, ay)``, then
    vertically to ``(bx, by)``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction {fraction} outside [0, 1]")
    dx, dy = abs(bx - ax), abs(by - ay)
    total = dx + dy
    if total == 0.0:  # repro: noqa[R001] coincident endpoints sum to an exact 0.0, not a rounded one
        return (ax, ay)
    run = fraction * total
    if run <= dx:
        return (ax + math.copysign(run, bx - ax), ay)
    return (bx, ay + math.copysign(run - dx, by - ay))


def add_insertion_points(tree: RoutingTree, spacing: float) -> RoutingTree:
    """A new tree with candidate insertion points threaded into every wire.

    ``spacing`` is the maximum distance between consecutive candidates
    (the paper used 800 µm; its footnote 15 also reports 300 µm runs).
    """
    if spacing <= 0.0:
        raise ValueError("spacing must be positive")

    builder = TreeBuilder()
    handle: List[int] = []
    for node in tree.nodes:
        if node.kind is NodeKind.TERMINAL:
            handle.append(builder.add_terminal(node.terminal))
        elif node.kind is NodeKind.STEINER:
            handle.append(builder.add_steiner(node.x, node.y))
        else:
            handle.append(builder.add_insertion_point(node.x, node.y))

    for v in range(len(tree)):
        p = tree.parent(v)
        if p is None:
            continue
        length = tree.edge_length(v)
        if length <= 0.0:
            builder.connect(handle[p], handle[v], length=0.0)
            continue
        k = max(1, math.ceil(length / spacing))
        sub = length / (k + 1)
        pn, vn = tree.node(p), tree.node(v)
        prev = handle[p]
        for i in range(1, k + 1):
            x, y = l_route_point(pn.x, pn.y, vn.x, vn.y, i / (k + 1))
            m = builder.add_insertion_point(x, y)
            builder.connect(prev, m, length=sub)
            prev = m
        builder.connect(prev, handle[v], length=sub)

    root_term = tree.node(tree.root)
    built = builder.build(root=handle[tree.root])
    if built.node(built.root).terminal.name != root_term.terminal.name:
        raise RuntimeError(
            "insertion-point threading moved the root terminal: "
            f"{built.node(built.root).terminal.name!r} != "
            f"{root_term.terminal.name!r}"
        )
    return built
