"""Zero-dependency observability core: spans, counters, histograms, points.

The paper's central claims are *algorithmic-shape* claims — the Fig. 2 ARD
pass is linear, MSRI pruning keeps the candidate front small, the
incremental engine re-propagates only dirty root paths.  This module gives
the repository the primitives to show those shapes at runtime:

* :func:`trace` — a nestable span context manager with monotonic timing.
  Spans record their full name path (``campaign.run/executor.job/msri.run``)
  so a flame summary can be reconstructed without parent ids.  Nesting is
  tracked per thread; buffers are per process and merged explicitly (the
  campaign executor ships worker snapshots back over its result pipe).
* :class:`Counter` / :class:`Histogram` — named aggregates with a
  global-off fast path: every recording call returns immediately while
  observability is disabled, so instrumented hot loops cost nothing.
* :func:`point` — structured one-shot events (e.g. the per-node MSRI
  ``generated`` / ``kept`` / ``pruned`` record).
* :func:`snapshot` / :func:`merge` — picklable state capture for crossing
  process boundaries, plus :func:`mark` / :func:`summary_since` for cheap
  in-process per-job deltas.

Enable with ``REPRO_OBS=1`` in the environment, :func:`set_enabled`, or the
:func:`observing` context manager (tests).  The ``repro-msri trace``
subcommand sets the environment variable before dispatching so worker
processes inherit it.

The span/counter names used by the instrumented core are a **stable
contract** documented in ``docs/OBSERVABILITY.md``; renaming one is a
breaking change to downstream trace consumers.

This module must stay import-light and dependency-free: the ARD/MSRI core
imports it at module load.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "SPAN_CAP",
    "NULL_SPAN",
    "Counter",
    "Histogram",
    "enabled",
    "set_enabled",
    "observing",
    "trace",
    "point",
    "mark",
    "summary_since",
    "snapshot",
    "summarize",
    "merge",
    "reset",
]

_ENV_VAR = "REPRO_OBS"

#: Hard cap on buffered spans (and, separately, points) per process.  A
#: runaway loop under tracing degrades to dropped records (counted in the
#: snapshot's ``dropped`` field) instead of unbounded memory growth.
SPAN_CAP = 100_000


def _env_enabled() -> bool:
    return os.environ.get(_ENV_VAR, "").strip().lower() not in ("", "0", "false", "off")


_enabled = _env_enabled()


def enabled() -> bool:
    """True when observability recording is active in this process."""
    return _enabled


def set_enabled(flag: Optional[bool]) -> None:
    """Force observability on/off; ``None`` re-reads the REPRO_OBS env var."""
    global _enabled
    _enabled = _env_enabled() if flag is None else bool(flag)


@contextmanager
def observing(flag: bool = True) -> Iterator[None]:
    """Temporarily enable (or disable) observability — for tests."""
    global _enabled
    prev = _enabled
    _enabled = bool(flag)
    try:
        yield
    finally:
        _enabled = prev


# -- per-process buffers -------------------------------------------------------

_lock = threading.Lock()
_local = threading.local()  # per-thread span-name stack (nesting)

_spans: List[Dict[str, Any]] = []
_points: List[Dict[str, Any]] = []
_counters: Dict[str, float] = {}
_hists: Dict[str, List[float]] = {}  # name -> [count, sum, min, max]
_dropped = 0


def _stack() -> List[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


# -- spans ---------------------------------------------------------------------


class _NullSpan:
    """The shared disabled-path span: enter/exit/set are no-ops."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


#: The shared no-op span.  Exposed so hot loops can write
#: ``with trace(...) if observing else NULL_SPAN:`` and skip even the
#: keyword-argument packing of a disabled :func:`trace` call.
NULL_SPAN = _NullSpan()


class _Span:
    """One live span.  Exceptions are recorded (``error`` attribute holding
    the exception type name) and always re-raised — tracing never swallows."""

    __slots__ = ("name", "attrs", "path", "_t0")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.path = name

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        stack = _stack()
        stack.append(self.name)
        self.path = "/".join(stack)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        entry = {
            "name": self.name,
            "path": self.path,
            "dur_s": dur,
            "attrs": self.attrs,
        }
        global _dropped
        with _lock:
            if len(_spans) < SPAN_CAP:
                _spans.append(entry)
            else:
                _dropped += 1
        return False  # never suppress the exception


def trace(name: str, **attrs: Any):
    """A span context manager: ``with trace("msri.prune", node=v): ...``.

    Returns a shared no-op object while observability is disabled, so the
    call is a single predicate check on hot paths.
    """
    if not _enabled:
        return NULL_SPAN
    return _Span(name, attrs)


# -- points --------------------------------------------------------------------


def point(name: str, **attrs: Any) -> None:
    """Record one structured event (no duration)."""
    if not _enabled:
        return
    global _dropped
    with _lock:
        if len(_points) < SPAN_CAP:
            _points.append({"name": name, "attrs": attrs})
        else:
            _dropped += 1


# -- counters and histograms ---------------------------------------------------


class Counter:
    """A named monotonic counter.  ``add`` is free while disabled."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def add(self, n: float = 1) -> None:
        if not _enabled:
            return
        with _lock:
            _counters[self.name] = _counters.get(self.name, 0) + n

    @property
    def value(self) -> float:
        """Current total (0 when never incremented)."""
        return _counters.get(self.name, 0)


class Histogram:
    """A named summary histogram: count / sum / min / max.

    Deliberately not bucketed — the instrumented quantities (front widths,
    dirty-path lengths, segment counts) are small integers where the
    count/mean/extremes already answer the shape questions, and the summary
    merges exactly across processes.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        with _lock:
            h = _hists.get(self.name)
            if h is None:
                _hists[self.name] = [1, value, value, value]
            else:
                h[0] += 1
                h[1] += value
                if value < h[2]:
                    h[2] = value
                if value > h[3]:
                    h[3] = value

    @property
    def summary(self) -> Optional[Dict[str, float]]:
        """``{"count", "sum", "min", "max"}`` or None when never observed."""
        h = _hists.get(self.name)
        if h is None:
            return None
        return {"count": h[0], "sum": h[1], "min": h[2], "max": h[3]}


# -- snapshots, deltas, merging ------------------------------------------------


def snapshot(reset: bool = False) -> Dict[str, Any]:
    """The full per-process state as one picklable dict.

    Keys: ``counters`` (name → total), ``hists`` (name → [count, sum, min,
    max]), ``spans`` / ``points`` (record lists), ``dropped``, ``pid``.
    With ``reset=True`` the buffers are cleared atomically with the capture
    (the worker-side per-job delta mechanism).
    """
    global _dropped
    with _lock:
        snap = {
            "counters": dict(_counters),
            "hists": {k: list(v) for k, v in _hists.items()},
            "spans": list(_spans),
            "points": list(_points),
            "dropped": _dropped,
            "pid": os.getpid(),
        }
        if reset:
            _spans.clear()
            _points.clear()
            _counters.clear()
            _hists.clear()
            _dropped = 0
    return snap


def reset() -> None:
    """Clear every buffer (does not change the enabled flag)."""
    snapshot(reset=True)


def merge(snap: Optional[Dict[str, Any]]) -> None:
    """Fold another process's :func:`snapshot` into this one's buffers.

    Counters and histogram summaries add exactly; spans and points are
    appended (still subject to :data:`SPAN_CAP`), tagged with the source
    pid so mixed-process traces stay attributable.  ``None`` is a no-op —
    the executor passes whatever the worker shipped, which is ``None``
    when the worker ran with observability off.
    """
    if not snap:
        return
    global _dropped
    pid = snap.get("pid")
    with _lock:
        for name, value in snap.get("counters", {}).items():
            _counters[name] = _counters.get(name, 0) + value
        for name, (count, total, lo, hi) in snap.get("hists", {}).items():
            h = _hists.get(name)
            if h is None:
                _hists[name] = [count, total, lo, hi]
            else:
                h[0] += count
                h[1] += total
                if lo < h[2]:
                    h[2] = lo
                if hi > h[3]:
                    h[3] = hi
        for key in ("spans", "points"):
            buf = _spans if key == "spans" else _points
            for entry in snap.get(key, ()):
                if len(buf) >= SPAN_CAP:
                    _dropped += 1
                    continue
                if pid is not None and "pid" not in entry:
                    entry = dict(entry)
                    entry["pid"] = pid
                buf.append(entry)
        _dropped += snap.get("dropped", 0)


def summarize(snap: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Compact per-job summary of a snapshot: counter totals plus per-path
    span aggregates ``{path: [count, total_s]}``.  None when empty — the
    shape stored in ``JobMetrics.obs`` and campaign schema v3."""
    spans: Dict[str, List[float]] = {}
    for entry in snap.get("spans", ()):
        agg = spans.setdefault(entry["path"], [0, 0.0])
        agg[0] += 1
        agg[1] += entry["dur_s"]
    counters = {k: v for k, v in snap.get("counters", {}).items() if v}
    if not counters and not spans:
        return None
    return {"counters": counters, "spans": spans}


def mark() -> Dict[str, Any]:
    """A cheap position marker for :func:`summary_since` (inline jobs)."""
    with _lock:
        return {"spans": len(_spans), "counters": dict(_counters)}


def summary_since(m: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The compact :func:`summarize`-shaped delta since ``m`` — used by the
    inline executor path, where resetting the shared buffers per job would
    destroy enclosing campaign-level spans."""
    with _lock:
        spans = list(_spans[m["spans"]:])
        counters = dict(_counters)
    before = m["counters"]
    delta = {
        k: v - before.get(k, 0) for k, v in counters.items() if v != before.get(k, 0)
    }
    return summarize({"spans": spans, "counters": delta})
