"""repro.obs — zero-dependency observability: spans, counters, JSONL traces.

Usage in instrumented code::

    from ..obs import core as obs

    _NODES = obs.Counter("msri.nodes")

    with obs.trace("msri.run", nodes=len(tree)):
        ...
        _NODES.add(count)

All recording is off by default; enable with ``REPRO_OBS=1``, the
``repro-msri trace`` subcommand, or :func:`repro.obs.core.observing` in
tests.  The naming contract lives in ``docs/OBSERVABILITY.md``.
"""

from .core import (
    Counter,
    Histogram,
    enabled,
    merge,
    observing,
    point,
    reset,
    set_enabled,
    snapshot,
    summarize,
    trace,
)
from .export import export_jsonl, load_jsonl

__all__ = [
    "Counter",
    "Histogram",
    "enabled",
    "merge",
    "observing",
    "point",
    "reset",
    "set_enabled",
    "snapshot",
    "summarize",
    "trace",
    "export_jsonl",
    "load_jsonl",
]
