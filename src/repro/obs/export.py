"""JSONL export/import of observability snapshots.

One JSON object per line, discriminated by ``"type"``:

* ``meta``    — first line: schema version, source pid, dropped-record count;
* ``counter`` — ``{"type": "counter", "name": ..., "value": ...}``;
* ``hist``    — ``{"type": "hist", "name", "count", "sum", "min", "max"}``;
* ``point``   — ``{"type": "point", "name", "attrs"}``;
* ``span``    — ``{"type": "span", "name", "path", "dur_s", "attrs"[, "pid"]}``.

The format (names, field sets, and the span ``path`` convention) is part of
the observability contract — see ``docs/OBSERVABILITY.md``.  Loading is
forgiving in the same way the campaign checkpoint loader is: blank lines
and a torn final line from a killed process are skipped, unknown record
types are preserved under their type key so newer traces degrade gracefully
in older readers.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from . import core

__all__ = ["TRACE_SCHEMA", "export_jsonl", "load_jsonl"]

#: Version of the JSONL trace format.
TRACE_SCHEMA = 1


def export_jsonl(path: str, snap: Optional[Dict[str, Any]] = None) -> str:
    """Write a snapshot (default: the current process state) to ``path``.

    Returns the path.  Attributes that are not JSON types are stringified
    rather than failing the export.
    """
    if snap is None:
        snap = core.snapshot()
    with open(path, "w") as fh:
        _line(fh, {
            "type": "meta",
            "schema": TRACE_SCHEMA,
            "pid": snap.get("pid"),
            "dropped": snap.get("dropped", 0),
        })
        for name in sorted(snap.get("counters", {})):
            _line(fh, {
                "type": "counter",
                "name": name,
                "value": snap["counters"][name],
            })
        for name in sorted(snap.get("hists", {})):
            count, total, lo, hi = snap["hists"][name]
            _line(fh, {
                "type": "hist",
                "name": name,
                "count": count,
                "sum": total,
                "min": lo,
                "max": hi,
            })
        for entry in snap.get("points", ()):
            record = {"type": "point"}
            record.update(entry)
            _line(fh, record)
        for entry in snap.get("spans", ()):
            record = {"type": "span"}
            record.update(entry)
            _line(fh, record)
    return path


def _line(fh, record: Dict[str, Any]) -> None:
    json.dump(record, fh, default=str)
    fh.write("\n")


def load_jsonl(path: str) -> Dict[str, Any]:
    """Read a trace back into the :func:`repro.obs.core.snapshot` shape.

    The returned dict has ``counters`` / ``hists`` / ``points`` / ``spans``
    / ``dropped`` / ``pid`` keys, so it can be passed straight to
    :func:`repro.obs.core.merge` or the flame renderers.
    """
    snap: Dict[str, Any] = {
        "counters": {},
        "hists": {},
        "points": [],
        "spans": [],
        "dropped": 0,
        "pid": None,
    }
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line from a killed process
            kind = record.get("type")
            if kind == "meta":
                snap["pid"] = record.get("pid")
                snap["dropped"] = record.get("dropped", 0)
            elif kind == "counter":
                snap["counters"][record["name"]] = record["value"]
            elif kind == "hist":
                snap["hists"][record["name"]] = [
                    record["count"],
                    record["sum"],
                    record["min"],
                    record["max"],
                ]
            elif kind == "point":
                snap["points"].append(
                    {"name": record["name"], "attrs": record.get("attrs", {})}
                )
            elif kind == "span":
                entry = {
                    "name": record["name"],
                    "path": record.get("path", record["name"]),
                    "dur_s": float(record.get("dur_s", 0.0)),
                    "attrs": record.get("attrs", {}),
                }
                if "pid" in record:
                    entry["pid"] = record["pid"]
                snap["spans"].append(entry)
    return snap
