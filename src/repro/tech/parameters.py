"""Technology parameters: per-unit wire resistance and capacitance.

The paper (Sec. II) assumes two given technology constants: ``r`` (ohms per
unit wire length) and ``c`` (pF per unit length).  Units throughout the
library:

===========  =========
quantity     unit
===========  =========
distance     micrometre (µm)
resistance   ohm (Ω)
capacitance  picofarad (pF)
delay        picosecond (ps) — because Ω · pF = ps
cost         dimensionless (equivalent 1X buffers)
===========  =========

The experimental section of the paper (Table I) used parameters taken from
Okamoto & Cong [20], described as "representative of typical submicron
technologies".  The exact Table I values are not recoverable from the
available text, so :data:`DEFAULT_TECHNOLOGY` uses the standard mid-1990s
literature constants with all the anchors the paper states in prose
honoured exactly (1X input capacitance 0.05 pF, kX scaling, 400 Ω previous
stage, 0.2 pF subsequent stage); see DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["Technology", "DEFAULT_TECHNOLOGY", "UM_PER_CM"]

#: Micrometres per centimetre; the paper's nets live on a 1 cm x 1 cm grid.
UM_PER_CM = 10_000.0


@dataclass(frozen=True)
class Technology:
    """Wire constants of the target technology plus bookkeeping extras.

    Parameters
    ----------
    unit_resistance:
        Wire resistance in Ω per µm.
    unit_capacitance:
        Wire capacitance in pF per µm (fringe capacitance may be folded in,
        per the paper's footnote 4).
    name:
        Identifier used in reports.
    extras:
        Free-form auxiliary constants (e.g. the experiments' previous-stage
        resistance and subsequent-stage capacitance) so harness code can keep
        one provenance record per technology.
    """

    unit_resistance: float
    unit_capacitance: float
    name: str = "unnamed"
    extras: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.unit_resistance <= 0.0:
            raise ValueError("unit_resistance must be positive")
        if self.unit_capacitance <= 0.0:
            raise ValueError("unit_capacitance must be positive")

    def wire_resistance(self, length_um: float) -> float:
        """Total resistance (Ω) of a wire of the given length (µm)."""
        self._check_length(length_um)
        return self.unit_resistance * length_um

    def wire_capacitance(self, length_um: float) -> float:
        """Total capacitance (pF) of a wire of the given length (µm)."""
        self._check_length(length_um)
        return self.unit_capacitance * length_um

    def wire_delay(self, length_um: float, load_pf: float) -> float:
        """Elmore delay (ps) across a wire driving ``load_pf`` downstream.

        ``d = R * (C/2 + C_load)`` — the wire's own capacitance counts at
        half weight (distributed RC), exactly the model of paper Sec. II.
        """
        r = self.wire_resistance(length_um)
        c = self.wire_capacitance(length_um)
        return r * (0.5 * c + load_pf)

    def with_name(self, name: str) -> "Technology":
        """Copy of this technology under a different name."""
        return replace(self, name=name)

    @staticmethod
    def _check_length(length_um: float) -> None:
        if length_um < 0.0:
            raise ValueError(f"negative wire length: {length_um}")


#: Default experimental technology (DESIGN.md §5 documents the substitution
#: for the paper's Table I).  ``prev_stage_resistance`` and
#: ``next_stage_capacitance`` are the paper's stated 400 Ω / 0.2 pF terminal
#: boundary conditions.
DEFAULT_TECHNOLOGY = Technology(
    unit_resistance=0.076,       # ohm / um
    unit_capacitance=0.000118,   # pF / um  (0.118 fF/um)
    name="submicron-0.5um",
    extras={
        "prev_stage_resistance": 400.0,   # ohm
        "next_stage_capacitance": 0.2,    # pF
    },
)
