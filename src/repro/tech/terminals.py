"""Terminals of a multisource net and their electrical view.

Per the paper's Sec. II (and its Fig. 1), each terminal ``v`` of the net may
act as an input (source) *and* as an output (sink), and carries four
net-specific parameters:

* ``alpha`` — maximum delay from a primary input of the circuit to the
  input buffer at ``v`` (the source-side arrival time),
* ``beta`` — maximum delay from the output buffer at ``v`` to a primary
  output (the sink-side downstream delay; the output buffer's own intrinsic
  and RC delay is folded in, per the paper's footnote 5),
* ``capacitance`` — input capacitance the terminal presents to the net,
* ``resistance`` — output resistance of the input buffer when driving.

Pure sinks are modelled with ``alpha = -inf`` ("never a source") and pure
sources with ``beta = -inf`` ("never a sink"), exactly the paper's remark at
the end of Sec. II that no generality is lost by not designating roles
explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

__all__ = ["Terminal", "NEVER"]

#: Sentinel for "this terminal never plays this role": a -inf augmented
#: arrival/required value can never become the max in an ARD computation.
NEVER = -math.inf


@dataclass(frozen=True)
class Terminal:
    """A net terminal with its position and electrical parameters."""

    name: str
    x: float                        # um
    y: float                        # um
    arrival_time: float = 0.0       # ps; alpha(v); NEVER if not a source
    downstream_delay: float = 0.0   # ps; beta(v); NEVER if not a sink
    capacitance: float = 0.0        # pF; c(v)
    resistance: float = 1.0         # ohm; r(v), driver output resistance
    intrinsic_delay: float = 0.0    # ps; optional driver intrinsic delay

    def __post_init__(self) -> None:
        if self.capacitance < 0.0:
            raise ValueError(f"terminal {self.name}: negative capacitance")
        if self.resistance <= 0.0 and self.is_source:
            raise ValueError(
                f"terminal {self.name}: a source needs positive driver resistance"
            )
        if self.intrinsic_delay < 0.0:
            raise ValueError(f"terminal {self.name}: negative intrinsic delay")
        if math.isnan(self.arrival_time) or math.isnan(self.downstream_delay):
            raise ValueError(f"terminal {self.name}: NaN timing parameter")

    @property
    def position(self) -> Tuple[float, float]:
        return (self.x, self.y)

    @property
    def is_source(self) -> bool:
        """True when the terminal can drive the net."""
        return self.arrival_time != NEVER

    @property
    def is_sink(self) -> bool:
        """True when the terminal can receive from the net."""
        return self.downstream_delay != NEVER

    def driver_delay(self, load_pf: float) -> float:
        """Delay (ps) of this terminal's driver into ``load_pf`` (pF).

        The load a terminal driver sees is the *whole* net — including the
        terminal's own input capacitance, which hangs on the same bus node
        (see DESIGN.md §4); callers pass that total.
        """
        if not self.is_source:
            raise ValueError(f"terminal {self.name} is not a source")
        if load_pf < 0.0:
            raise ValueError(f"negative load: {load_pf}")
        return self.intrinsic_delay + self.resistance * load_pf

    def as_source_only(self) -> "Terminal":
        """Copy that never acts as a sink."""
        return replace(self, downstream_delay=NEVER)

    def as_sink_only(self) -> "Terminal":
        """Copy that never acts as a source."""
        return replace(self, arrival_time=NEVER)

    def moved(self, x: float, y: float) -> "Terminal":
        """Copy at a new position (used by topology builders)."""
        return replace(self, x=x, y=y)
