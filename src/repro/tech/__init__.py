"""Technology modelling: wire constants, buffers, repeaters, terminals."""

from .buffers import (
    DEFAULT_BUFFER,
    Buffer,
    Repeater,
    RepeaterLibrary,
    WireClass,
    default_repeater_library,
    default_wire_library,
    scaled_library,
)
from .parameters import DEFAULT_TECHNOLOGY, UM_PER_CM, Technology
from .terminals import NEVER, Terminal

__all__ = [
    "Buffer",
    "Repeater",
    "RepeaterLibrary",
    "WireClass",
    "Technology",
    "Terminal",
    "NEVER",
    "DEFAULT_BUFFER",
    "DEFAULT_TECHNOLOGY",
    "UM_PER_CM",
    "default_repeater_library",
    "default_wire_library",
    "scaled_library",
]
