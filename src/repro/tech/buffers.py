"""Buffers, bidirectional repeaters, and libraries.

The paper's technology inputs (Sec. II) include a library of repeaters.  A
repeater has an "A-side" and a "B-side"; its parameters carry a direction
subscript so the optimizer can account for orientation:

* ``d_ab`` / ``d_ba`` — intrinsic delay (ps) for A→B / B→A signal flow,
* ``r_ab`` / ``r_ba`` — output resistance (Ω) driving the B / A side,
* ``c_a`` / ``c_b``  — input capacitance (pF) presented at the A / B side,
* ``cost``          — e.g. area, in equivalent 1X buffers.

The experiments construct bidirectional repeaters and terminal drivers from
*pairs of unidirectional buffers* (Table I caption), and derive a sized
library where a kX buffer has cost ``k``, resistance ``R/k`` and input
capacitance ``k * 0.05 pF`` (Sec. VI).  Those constructions are
:func:`Repeater.from_buffer_pair` and :func:`scaled_library`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "Buffer",
    "Repeater",
    "RepeaterLibrary",
    "WireClass",
    "scaled_library",
    "DEFAULT_BUFFER",
    "default_repeater_library",
    "default_wire_library",
]


@dataclass(frozen=True)
class Buffer:
    """A unidirectional buffer.

    Delay driving a load ``C``: ``intrinsic_delay + output_resistance * C``
    (paper Sec. II).  ``is_inverting`` supports the paper's Sec. V extension
    where inverters may be used as repeaters.
    """

    name: str
    intrinsic_delay: float      # ps
    output_resistance: float    # ohm
    input_capacitance: float    # pF
    cost: float = 1.0
    is_inverting: bool = False

    def __post_init__(self) -> None:
        if self.output_resistance <= 0.0:
            raise ValueError("buffer output resistance must be positive")
        if self.input_capacitance < 0.0:
            raise ValueError("buffer input capacitance must be non-negative")
        if self.intrinsic_delay < 0.0:
            raise ValueError("buffer intrinsic delay must be non-negative")
        if self.cost < 0.0:
            raise ValueError("buffer cost must be non-negative")

    def delay(self, load_pf: float) -> float:
        """Delay (ps) of this buffer driving ``load_pf`` (pF)."""
        if load_pf < 0.0:
            raise ValueError(f"negative load: {load_pf}")
        return self.intrinsic_delay + self.output_resistance * load_pf

    def scaled(self, k: float, name: str | None = None) -> "Buffer":
        """The kX version: cost ``k * cost``, resistance ``R/k``, cap ``k*C``.

        This is exactly the sizing rule of the paper's Sec. VI experiments.
        Intrinsic delay is size-independent under this first-order model.
        """
        if k <= 0.0:
            raise ValueError("scale factor must be positive")
        return Buffer(
            name=name or f"{self.name}@{k:g}x",
            intrinsic_delay=self.intrinsic_delay,
            output_resistance=self.output_resistance / k,
            input_capacitance=self.input_capacitance * k,
            cost=self.cost * k,
            is_inverting=self.is_inverting,
        )


@dataclass(frozen=True)
class Repeater:
    """A bidirectional repeater with distinguished A and B sides.

    Orientation matters: the insertion algorithm tries both ways of
    connecting the A-side (toward the root or toward the leaves).
    :meth:`reversed` swaps the sides, which is how the optimizer enumerates
    orientations without duplicating library entries.
    """

    name: str
    d_ab: float   # ps,  intrinsic delay, A -> B
    r_ab: float   # ohm, output resistance driving the B side
    c_a: float    # pF,  input capacitance at the A side
    d_ba: float   # ps,  intrinsic delay, B -> A
    r_ba: float   # ohm, output resistance driving the A side
    c_b: float    # pF,  input capacitance at the B side
    cost: float = 1.0
    is_inverting: bool = False

    def __post_init__(self) -> None:
        for label, value in (("r_ab", self.r_ab), ("r_ba", self.r_ba)):
            if value <= 0.0:
                raise ValueError(f"{label} must be positive")
        for label, value in (
            ("c_a", self.c_a),
            ("c_b", self.c_b),
            ("d_ab", self.d_ab),
            ("d_ba", self.d_ba),
            ("cost", self.cost),
        ):
            if value < 0.0:
                raise ValueError(f"{label} must be non-negative")

    @classmethod
    def from_buffer_pair(
        cls,
        forward: Buffer,
        backward: Buffer | None = None,
        name: str | None = None,
    ) -> "Repeater":
        """Build a repeater from two anti-parallel unidirectional buffers.

        ``forward`` carries A→B traffic (its input sits on the A side),
        ``backward`` carries B→A traffic.  With ``backward`` omitted the
        repeater is symmetric — the construction used throughout the paper's
        experiments ("a pair of the buffers described in Table I").
        """
        backward = backward or forward
        if forward.is_inverting != backward.is_inverting:
            raise ValueError(
                "repeater halves must agree on polarity; mixing an inverting "
                "and a non-inverting buffer yields a direction-dependent "
                "polarity, which a bus cannot use"
            )
        return cls(
            name=name or f"rep({forward.name}|{backward.name})",
            d_ab=forward.intrinsic_delay,
            r_ab=forward.output_resistance,
            c_a=forward.input_capacitance,
            d_ba=backward.intrinsic_delay,
            r_ba=backward.output_resistance,
            c_b=backward.input_capacitance,
            cost=forward.cost + backward.cost,
            is_inverting=forward.is_inverting,
        )

    @property
    def is_symmetric(self) -> bool:
        """True when both directions have identical parameters."""
        return (
            self.d_ab == self.d_ba  # repro: noqa[R001] configured library constants; equality is exact by construction
            and self.r_ab == self.r_ba  # repro: noqa[R001] configured library constants
            and self.c_a == self.c_b  # repro: noqa[R001] configured library constants
        )

    def reversed(self) -> "Repeater":
        """The same repeater with A and B sides swapped (other orientation)."""
        return Repeater(
            name=f"{self.name}~rev",
            d_ab=self.d_ba,
            r_ab=self.r_ba,
            c_a=self.c_b,
            d_ba=self.d_ab,
            r_ba=self.r_ab,
            c_b=self.c_a,
            cost=self.cost,
            is_inverting=self.is_inverting,
        )

    def delay(self, a_to_b: bool, load_pf: float) -> float:
        """Delay (ps) through the repeater in the given direction."""
        if load_pf < 0.0:
            raise ValueError(f"negative load: {load_pf}")
        if a_to_b:
            return self.d_ab + self.r_ab * load_pf
        return self.d_ba + self.r_ba * load_pf

    def input_cap(self, a_side: bool) -> float:
        """Capacitance presented to the net on the requested side."""
        return self.c_a if a_side else self.c_b


class RepeaterLibrary:
    """An immutable collection of repeaters offered to the optimizer."""

    def __init__(self, repeaters: Iterable[Repeater]):
        self._repeaters: Tuple[Repeater, ...] = tuple(repeaters)
        if not self._repeaters:
            raise ValueError("repeater library may not be empty")
        names = [r.name for r in self._repeaters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate repeater names in library: {names}")

    @property
    def repeaters(self) -> Tuple[Repeater, ...]:
        return self._repeaters

    def __len__(self) -> int:
        return len(self._repeaters)

    def __iter__(self):
        return iter(self._repeaters)

    def __getitem__(self, name: str) -> Repeater:
        for r in self._repeaters:
            if r.name == name:
                return r
        raise KeyError(name)

    def oriented_options(self) -> List[Repeater]:
        """All distinct oriented repeaters (both orientations, dedup symmetric).

        The MSRI algorithm enumerates these at every insertion point; a
        symmetric repeater contributes one option instead of two identical
        ones.
        """
        options: List[Repeater] = []
        for r in self._repeaters:
            options.append(r)
            if not r.is_symmetric:
                options.append(r.reversed())
        return options

    def min_cost(self) -> float:
        """Cheapest repeater cost (useful for bounds)."""
        return min(r.cost for r in self._repeaters)


@dataclass(frozen=True)
class WireClass:
    """One discrete wire width the sizing extension may assign to a segment.

    A ``width``-wide wire has ``width`` times the minimum-width capacitance
    and ``1/width`` times its resistance (first-order scaling, fringe folded
    in per the paper's footnote 4).  ``cost_per_um`` prices the consumed
    routing area in equivalent 1X buffers per micrometre, making wire and
    repeater costs commensurable in the min-cost objective.

    The paper's conclusions single out wire sizing as a problem "the basic
    techniques introduced here" extend to; `repro.core.msri` implements that
    extension when :class:`~repro.core.msri.MSRIOptions` carries a wire
    library.
    """

    name: str
    width: float
    cost_per_um: float

    def __post_init__(self) -> None:
        if self.width <= 0.0:
            raise ValueError("wire width factor must be positive")
        if self.cost_per_um < 0.0:
            raise ValueError("wire cost must be non-negative")

    def resistance(self, base_resistance: float) -> float:
        """Total resistance of a wire whose 1X resistance is given."""
        return base_resistance / self.width

    def capacitance(self, base_capacitance: float) -> float:
        """Total capacitance of a wire whose 1X capacitance is given."""
        return base_capacitance * self.width

    def cost(self, length_um: float) -> float:
        """Area cost (1X-buffer equivalents) of ``length_um`` of this wire."""
        if length_um < 0.0:
            raise ValueError("negative wire length")
        return self.cost_per_um * length_um


def default_wire_library(
    widths: Sequence[float] = (1.0, 2.0, 3.0),
    base_cost_per_um: float = 0.0005,
) -> List[WireClass]:
    """Discrete width menu: a kX wire costs k times the 1X area.

    With the default pricing, 2 mm of minimum-width wire costs one
    equivalent 1X buffer — wide enough that the optimizer only widens wires
    where resistance genuinely limits the diameter.
    """
    return [
        WireClass(name=f"w{w:g}x", width=w, cost_per_um=base_cost_per_um * w)
        for w in widths
    ]


def scaled_library(
    base: Buffer, scales: Sequence[float] = (1.0, 2.0, 3.0, 4.0)
) -> List[Buffer]:
    """The kX buffer family of the paper's Sec. VI (1X, 2X, 3X, 4X)."""
    return [base.scaled(k, name=f"{k:g}x") for k in scales]


#: The experiments' base "1X" buffer.  The 0.05 pF input capacitance is the
#: paper's stated anchor; intrinsic delay and output resistance are the
#: documented Table-I substitution (DESIGN.md §5).
DEFAULT_BUFFER = Buffer(
    name="1x",
    intrinsic_delay=50.0,       # ps
    output_resistance=400.0,    # ohm
    input_capacitance=0.05,     # pF
    cost=1.0,
)


def default_repeater_library() -> RepeaterLibrary:
    """The repeater used in the paper's Table II: a pair of 1X buffers."""
    return RepeaterLibrary([Repeater.from_buffer_pair(DEFAULT_BUFFER, name="rep1x")])
