"""The paper's Fig. 11 scenario: progressive buffering of an 8-pin bus.

All eight pins can drive or receive.  The example shows the unoptimized
topology, then the two-repeater and five-repeater solutions from the
optimal suite, each rendered in ASCII with its RC-diameter and the critical
source/sink pair — reproducing how "performance is improved with added
buffering resources and ... the critical input-to-output path changes as
the algorithm carefully balances the requirements of all paths".

Run:  python examples/bus_optimization.py
"""

from repro import (
    EvalContext,
    Repeater,
    ard,
    insert_repeaters,
    paper_instance,
    paper_technology,
    render_tree,
    repeater_insertion_options,
)
from repro.core.driver_sizing import apply_option_to_tree
from repro.netgen import find_fig11_seed, fixed_1x_option


def describe(tree, tech, assignment, label):
    # evaluate with the same 1X terminal dressing the optimizer used
    dressed = apply_option_to_tree(tree, fixed_1x_option())
    result = ard(dressed, tech, context=EvalContext(assignment=assignment))
    src = tree.node(result.source).terminal.name
    snk = tree.node(result.sink).terminal.name
    print(f"\n=== {label} ===")
    print(f"RC-diameter: {result.value:.0f} ps   critical: {src} -> {snk}   "
          f"repeaters: {len(assignment)}")
    print(render_tree(tree, assignment, width=64, height=22))


def main() -> None:
    tech = paper_technology()
    seed = find_fig11_seed()  # 8-pin instance with ~19.6 kum of wire
    tree = paper_instance(seed, n_pins=8)
    print(f"eight-pin bus, total wire length "
          f"{tree.total_wire_length() / 1000:.1f} kum (paper: 19.6 kum)")

    suite = insert_repeaters(tree, tech, repeater_insertion_options())

    describe(tree, tech, {}, "(a) unoptimized topology")
    for count, label in [(2, "(b) two-repeater solution"),
                         (5, "(c) five-repeater solution")]:
        sol = suite.with_repeater_count(count)
        if sol is None:
            print(f"\n(no {count}-repeater solution on the optimal frontier; "
                  "frontier repeater counts: "
                  f"{[s.repeater_count() for s in suite.solutions]})")
            continue
        reps = {k: v for k, v in sol.assignment().items()
                if isinstance(v, Repeater)}
        describe(tree, tech, reps, label)


if __name__ == "__main__":
    main()
