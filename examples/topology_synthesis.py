"""ARD-driven topology synthesis: routing the bus for timing, not just wire.

The paper's conclusion points out that with the ARD measure and its
linear-time evaluation, "a multisource version of the P-Tree timing-driven
Steiner router is now possible".  This example builds the wirelength-
optimal (MST-based) topology for a terminal set, then lets the local search
re-route it to minimize the RC-diameter, and finally runs repeater
insertion on both topologies to show the downstream benefit compounds.

Run:  python examples/topology_synthesis.py
"""

from repro import (
    MSRIOptions,
    ard,
    default_repeater_library,
    insert_repeaters,
    paper_technology,
    random_points,
    render_tree,
)
from repro.netgen import paper_net_spec
from repro.steiner import (
    add_insertion_points,
    rectilinear_mst,
    synthesize_topology,
    tree_from_terminal_edges,
)
from repro.tech import Terminal


def main() -> None:
    tech = paper_technology()
    spec = paper_net_spec()
    terms = [
        Terminal(f"p{i}", x, y, capacitance=spec.capacitance,
                 resistance=spec.resistance,
                 intrinsic_delay=spec.intrinsic_delay)
        for i, (x, y) in enumerate(random_points(seed=0, n=8))
    ]

    mst_tree = tree_from_terminal_edges(
        terms, rectilinear_mst([(t.x, t.y) for t in terms])
    )
    synth = synthesize_topology(terms, tech)

    print("wirelength-driven (MST) topology:")
    print(f"  diameter {ard(mst_tree, tech).value:.0f} ps, "
          f"wirelength {mst_tree.total_wire_length() / 1000:.1f} kum")
    print("ARD-driven topology:")
    print(f"  diameter {synth.ard:.0f} ps, "
          f"wirelength {synth.wirelength / 1000:.1f} kum "
          f"({synth.iterations} search iterations)")
    print()
    print(render_tree(synth.tree, width=60, height=16))

    # the advantage persists after optimal repeater insertion
    lib = default_repeater_library()
    for label, tree in [("MST", mst_tree), ("synthesized", synth.tree)]:
        buffered = add_insertion_points(tree, spacing=800.0)
        suite = insert_repeaters(buffered, tech, MSRIOptions(library=lib))
        print(f"\n{label} topology after optimal repeater insertion: "
              f"best diameter {suite.min_ard().ard:.0f} ps "
              f"at cost {suite.min_ard().cost:.0f}")


if __name__ == "__main__":
    main()
