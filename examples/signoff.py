"""A signoff flow: optimize under Elmore, then verify under richer models.

Real methodology separates *optimization* models (fast, convex, exact
algorithms — the paper's Elmore world) from *signoff* models (richer, slower
— used to verify the chosen solution).  This example runs that flow:

1. optimize a 8-pin bus with the paper's exact DP;
2. pick the min-cost solution meeting a spec;
3. verify it four independent ways:
   a. replay through the Elmore engine (exact agreement expected),
   b. re-propagate with the event-driven simulator (agreement + polarity),
   c. re-score under the slew-aware model (margin shrinks; spec may need
      headroom),
   d. Monte-Carlo process corners (how often does the fab win?).

Run:  python examples/signoff.py
"""

from repro import (
    EvalContext,
    Repeater,
    ard,
    insert_repeaters,
    paper_instance,
    paper_technology,
    repeater_insertion_options,
    simulated_ard,
)
from repro.analysis import monte_carlo_ard
from repro.core.driver_sizing import apply_option_to_tree
from repro.netgen import fixed_1x_option
from repro.rctree import SlewAnalyzer


def main() -> None:
    tech = paper_technology()
    tree = paper_instance(seed=2, n_pins=8)
    dressed = apply_option_to_tree(tree, fixed_1x_option())

    # 1-2. optimize and choose
    suite = insert_repeaters(tree, tech, repeater_insertion_options())
    spec = 0.7 * suite.min_cost().ard
    chosen = suite.min_cost_meeting(spec)
    if chosen is None:
        raise RuntimeError("spec unachievable; loosen it")
    reps = {k: v for k, v in chosen.assignment().items()
            if isinstance(v, Repeater)}
    print(f"spec {spec:.0f} ps -> chose cost {chosen.cost:.0f} "
          f"({len(reps)} repeaters), claimed ARD {chosen.ard:.0f} ps")

    # 3a. independent Elmore replay
    replay = ard(dressed, tech, context=EvalContext(assignment=reps))
    print(f"\n[a] Elmore replay:     {replay.value:8.0f} ps "
          f"(claim {chosen.ard:.0f}; agree: "
          f"{abs(replay.value - chosen.ard) < 1e-6})")

    # 3b. event-driven simulation
    sim = simulated_ard(dressed, tech, reps)
    print(f"[b] simulator:         {sim:8.0f} ps "
          f"(agree: {abs(sim - chosen.ard) < 1e-6})")

    # 3c. slew-aware signoff model
    slew_value, s_src, s_snk = SlewAnalyzer(dressed, tech, reps).ard()
    margin = spec - slew_value
    print(f"[c] slew-aware model:  {slew_value:8.0f} ps "
          f"(margin vs spec: {margin:+.0f} ps; critical "
          f"{dressed.node(s_src).terminal.name} -> "
          f"{dressed.node(s_snk).terminal.name})")

    # 3d. process corners
    mc = monte_carlo_ard(dressed, tech, reps, samples=200, seed=1)
    violations = sum(1 for v in mc.samples if v > spec)
    print(f"[d] 200 process corners: mean {mc.mean:.0f} ps, "
          f"p95 {mc.p95:.0f} ps, worst {mc.worst:.0f} ps; "
          f"{violations} corner(s) violate the {spec:.0f} ps spec")

    if margin < 0 or violations:
        # the standard remedy: re-target the optimizer with headroom
        guard = spec - (slew_value - chosen.ard) - (mc.worst - mc.nominal)
        retry = suite.min_cost_meeting(guard)
        if retry is not None:
            print(f"\nre-targeting with headroom ({guard:.0f} ps) -> "
                  f"cost {retry.cost:.0f}, nominal ARD {retry.ard:.0f} ps")
        else:
            print(f"\nheadroom target {guard:.0f} ps not achievable with "
                  "repeaters alone — consider sizing or re-routing")


if __name__ == "__main__":
    main()
