"""Quickstart: optimize a random multisource net end to end.

Builds a seeded 10-pin net with the paper's Sec. VI methodology, measures
its unoptimized augmented RC-diameter, runs the optimal repeater-insertion
algorithm, and prints the full cost-versus-diameter trade-off suite.

Run:  python examples/quickstart.py
"""

from repro import (
    ard,
    insert_repeaters,
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)


def main() -> None:
    tech = paper_technology()
    tree = paper_instance(seed=7, n_pins=10)
    print(
        f"net: {len(tree.terminal_indices())} terminals, "
        f"{len(tree.insertion_indices())} candidate insertion points, "
        f"{tree.total_wire_length() / 1000:.1f} mm of wire"
    )

    # 1. the ARD of the bare topology (every pin both drives and listens)
    base = ard(tree, tech)
    src = tree.node(base.source).terminal.name
    snk = tree.node(base.sink).terminal.name
    print(f"unoptimized RC-diameter: {base.value:.0f} ps "
          f"(critical pair {src} -> {snk})")

    # 2. optimal repeater insertion: the whole cost/performance suite
    suite = insert_repeaters(tree, tech, repeater_insertion_options())
    print(f"\noptimizer: {suite.stats.runtime_seconds:.2f}s, "
          f"{suite.stats.solutions_generated} candidate solutions generated")
    print("\n  cost (1X eq.)   diameter (ps)   repeaters")
    for s in suite.solutions:
        print(f"  {s.cost:12.1f}   {s.ard:13.1f}   {s.repeater_count():9d}")

    # 3. Problem 2.1: cheapest solution meeting a timing spec
    spec = 0.6 * suite.min_cost().ard
    chosen = suite.min_cost_meeting(spec)
    if chosen is None:
        print(f"\nspec {spec:.0f} ps unachievable; fastest possible is "
              f"{suite.min_ard().ard:.0f} ps")
    else:
        print(f"\nspec {spec:.0f} ps met at cost {chosen.cost:.0f} with "
              f"{chosen.repeater_count()} repeaters "
              f"(diameter {chosen.ard:.0f} ps)")


if __name__ == "__main__":
    main()
