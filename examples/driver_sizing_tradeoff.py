"""Driver sizing versus repeater insertion on the same bus.

Reproduces the comparison at the heart of the paper's Table II on a single
net: how far can sizing the terminal drivers/receivers (1X–4X) push the
RC-diameter, versus inserting bidirectional repeaters along the wires — and
what does each approach cost?  The punchline (paper Sec. VI): repeaters
reach substantially smaller diameters, and matching the best *sized*
diameter by repeaters is much cheaper than the sizing itself.

Run:  python examples/driver_sizing_tradeoff.py
"""

from repro import (
    Table,
    driver_sizing_options,
    insert_repeaters,
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)


def main() -> None:
    tech = paper_technology()
    tree = paper_instance(seed=3, n_pins=10)
    print(f"net: 10 pins, {len(tree.insertion_indices())} insertion points, "
          f"{tree.total_wire_length() / 1000:.1f} mm of wire\n")

    sizing = insert_repeaters(tree, tech, driver_sizing_options())
    repeater = insert_repeaters(tree, tech, repeater_insertion_options())

    base = repeater.min_cost()  # all-1X terminals, no repeaters

    t = Table(
        "cost / diameter suites (normalized to the min-cost solution)",
        ["approach", "cost", "cost ratio", "diameter (ps)", "diam ratio"],
    )
    for s in sizing.solutions:
        t.add_row("sizing", s.cost, s.cost / base.cost, s.ard, s.ard / base.ard)
    for s in repeater.solutions:
        t.add_row("repeater", s.cost, s.cost / base.cost, s.ard, s.ard / base.ard)
    print(t)

    best_sized = sizing.min_ard()
    match = repeater.min_cost_meeting(best_sized.ard)
    print(f"\nbest sizing diameter: {best_sized.ard:.0f} ps "
          f"at cost {best_sized.cost:.0f}")
    if match is not None:
        print(f"repeaters reach the same diameter at cost {match.cost:.0f} "
              f"({match.repeater_count()} repeaters) — "
              f"{best_sized.cost / match.cost:.2f}x cheaper")
    print(f"best repeater diameter: {repeater.min_ard().ard:.0f} ps "
          f"({repeater.min_ard().ard / best_sized.ard:.2f}x the sizing optimum)")


if __name__ == "__main__":
    main()
