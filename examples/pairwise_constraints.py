"""Pairwise delay constraints: the formulation the paper argues against.

Sec. II of the paper contrasts the ARD objective with giving every
(source, sink) pair its own delay bound (Tsai et al. [24]).  This example
shows both sides of that argument on one bus:

1. an ARD spec induces a full matrix of pairwise bounds
   (``PD(u,v) <= A - alpha(u) - beta(v)``) — the structured special case
   Problem 2.1 solves *exactly*;
2. the [24]-style greedy local optimizer attacks the same bounds and lands
   on a feasible but costlier assignment;
3. genuinely arbitrary bounds (here: one pair tightened far below the
   rest) are outside the ARD formulation — the checker still verifies
   them, which is the practical role of the pairwise machinery in this
   repository.

Run:  python examples/pairwise_constraints.py
"""

from repro import (
    MSRIOptions,
    Repeater,
    ard,
    default_repeater_library,
    insert_repeaters,
    paper_instance,
    paper_technology,
)
from repro.baselines import (
    PairwiseConstraint,
    PairwiseSpec,
    check_constraints,
    greedy_pairwise_repair,
    spec_from_ard,
)


def main() -> None:
    tech = paper_technology()
    tree = paper_instance(seed=6, n_pins=6)
    lib = default_repeater_library()

    base = ard(tree, tech).value
    target = 0.75 * base
    print(f"unoptimized diameter {base:.0f} ps; timing spec {target:.0f} ps")

    # 1. the exact route: Problem 2.1 through the MSRI dynamic program
    suite = insert_repeaters(tree, tech, MSRIOptions(library=lib))
    optimal = suite.min_cost_meeting(target)
    print(f"\noptimal (Problem 2.1): cost {optimal.cost:.0f}, "
          f"ARD {optimal.ard:.0f} ps, {optimal.repeater_count()} repeaters")

    # 2. the [24]-style greedy on the induced pairwise bounds
    spec = spec_from_ard(tree, target)
    print(f"induced pairwise constraints: {len(spec)}")
    assignment, slack = greedy_pairwise_repair(spec, tech, lib)
    greedy_cost = sum(r.cost for r in assignment.values())
    print(f"greedy pairwise repair: cost {greedy_cost:.0f}, "
          f"worst slack {slack:.0f} ps, {len(assignment)} repeaters "
          f"({'meets' if slack >= 0 else 'MISSES'} the spec; "
          f"optimal needed {optimal.cost:.0f})")

    # 3. a genuinely arbitrary constraint set: tighten one specific pair
    terminals = tree.terminal_indices()
    u, v = terminals[0], terminals[-1]
    arbitrary = PairwiseSpec(
        tree,
        list(spec_from_ard(tree, base).constraints)
        + [PairwiseConstraint(u, v, 0.35 * base)],
    )
    reps = {k: r for k, r in optimal.assignment().items()
            if isinstance(r, Repeater)}
    violations = check_constraints(arbitrary, tech, reps)
    print(f"\narbitrary extra bound on "
          f"{tree.node(u).terminal.name} -> {tree.node(v).terminal.name}: "
          f"{len(violations)} violation(s) under the ARD-optimal solution")
    for viol in violations:
        c = viol.constraint
        print(f"  {tree.node(c.source).terminal.name} -> "
              f"{tree.node(c.sink).terminal.name}: {viol.actual:.0f} ps "
              f"vs bound {c.bound:.0f} ps (slack {viol.slack:.0f})")
    print("\n(the ARD formulation cannot express that per-pair tightening —"
          "\n exactly the trade-off the paper's Sec. II discusses)")


if __name__ == "__main__":
    main()
