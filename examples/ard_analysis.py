"""The linear-time ARD algorithm versus n single-source computations.

The paper's second contribution (Sec. III): the augmented RC-diameter of a
multisource net can be computed in O(n) — no harder than a single-source
RC-radius — instead of running one Elmore pass per source.  This example
measures both implementations over growing nets and prints the scaling,
confirming the ~n versus ~n^2 growth.

Run:  python examples/ard_analysis.py
"""

import time

from repro import ElmoreAnalyzer, Table, compute_ard, paper_instance, paper_technology


def time_call(fn, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def main() -> None:
    tech = paper_technology()
    t = Table(
        "ARD computation: Fig. 2 linear-time vs per-source brute force",
        ["pins", "tree nodes", "linear (ms)", "brute (ms)", "speedup", "agree"],
    )
    for pins in (5, 10, 20, 40, 80):
        tree = paper_instance(seed=1, n_pins=pins, spacing=400.0)
        analyzer = ElmoreAnalyzer(tree, tech)
        t_lin, linear = time_call(lambda: compute_ard(analyzer).value)
        t_bru, brute = time_call(lambda: analyzer.ard_bruteforce())
        t.add_row(
            pins,
            len(tree),
            t_lin * 1000,
            t_bru * 1000,
            f"{t_bru / t_lin:.1f}x",
            "yes" if abs(linear - brute) < 1e-6 * max(1.0, abs(brute)) else "NO",
        )
    t.add_note("the speedup grows with net size: O(n) vs O(n^2).")
    print(t)


if __name__ == "__main__":
    main()
