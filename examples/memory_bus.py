"""A realistic asymmetric scenario: a controller with four memory devices.

The paper's introduction motivates multisource optimization with buses; this
example models one: a memory controller on the left edge of a 1 cm die and
four devices spread across it, all sharing a bidirectional data bus.

The asymmetry matters:

* the controller's data arrives late (deep logic before the bus) but its
  received data feeds fast paths -> large alpha, small beta;
* the devices respond quickly but their received data crosses slow I/O
  logic -> small alpha, large beta;
* the controller has a strong driver, the devices weak ones.

The optimizer must balance controller->device write paths against
device->controller read paths; the example shows the chosen repeater
orientations and how the critical pair shifts along the trade-off suite.

Run:  python examples/memory_bus.py
"""

from repro import (
    EvalContext,
    MSRIOptions,
    Repeater,
    Terminal,
    TreeBuilder,
    ard,
    default_repeater_library,
    insert_repeaters,
    paper_technology,
    render_tree,
)
from repro.steiner import add_insertion_points


def build_bus():
    """Controller at the left edge, devices along a horizontal trunk."""
    controller = Terminal(
        "ctl", 0, 5000,
        arrival_time=900.0,       # deep datapath before the bus
        downstream_delay=100.0,   # received data lands in fast logic
        capacitance=0.10,
        resistance=120.0,         # strong pad driver
        intrinsic_delay=60.0,
    )
    devices = [
        Terminal(
            f"dm{i}", 2500 * (i + 1), 5000 + (1500 if i % 2 else -1500),
            arrival_time=150.0,      # devices respond promptly
            downstream_delay=650.0,  # slow receive path inside the device
            capacitance=0.06,
            resistance=450.0,        # weak device driver
            intrinsic_delay=80.0,
        )
        for i in range(4)
    ]

    b = TreeBuilder()
    hc = b.add_terminal(controller)
    taps = []
    for i, dev in enumerate(devices):
        taps.append(b.add_steiner(2500 * (i + 1), 5000))
    prev = hc
    for tap in taps:
        b.connect(prev, tap)
        prev = tap
    for tap, dev in zip(taps, devices):
        b.connect(tap, b.add_terminal(dev))
    tree = b.build(root=hc)
    return add_insertion_points(tree, spacing=800.0)


def main() -> None:
    tech = paper_technology()
    tree = build_bus()
    base = ard(tree, tech)
    src = tree.node(base.source).terminal.name
    snk = tree.node(base.sink).terminal.name
    print(f"memory bus: {len(tree.insertion_indices())} insertion points, "
          f"{tree.total_wire_length() / 1000:.1f} mm of trunk+stub wire")
    print(f"unbuffered worst path: {base.value:.0f} ps ({src} -> {snk})\n")

    suite = insert_repeaters(
        tree, tech, MSRIOptions(library=default_repeater_library())
    )
    print("  cost   diameter(ps)   reps   critical path")
    for s in suite.solutions:
        reps = {k: v for k, v in s.assignment().items() if isinstance(v, Repeater)}
        check = ard(tree, tech, context=EvalContext(assignment=reps))
        pair = (
            f"{tree.node(check.source).terminal.name} -> "
            f"{tree.node(check.sink).terminal.name}"
        )
        print(f"  {s.cost:4.0f}   {s.ard:12.0f}   {len(reps):4d}   {pair}")

    fastest = suite.min_ard()
    reps = {k: v for k, v in fastest.assignment().items()
            if isinstance(v, Repeater)}
    print("\nfastest solution layout:")
    print(render_tree(tree, reps, width=72, height=18))


if __name__ == "__main__":
    main()
