"""Tests for the campaign sweep runner and its persistence."""

import json

import pytest

from repro.analysis.campaign import (
    Campaign,
    CampaignConfig,
    load_campaign,
    run_campaign,
)


class TestConfig:
    def test_jobs_grid(self):
        cfg = CampaignConfig(seeds=(0, 1), sizes=(4, 5))
        assert cfg.jobs() == [(0, 4), (1, 4), (0, 5), (1, 5)]

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(seeds=())
        with pytest.raises(ValueError):
            CampaignConfig(sizes=())
        with pytest.raises(ValueError):
            CampaignConfig(spacing=0.0)


@pytest.fixture(scope="module")
def small_campaign():
    # two tiny instances keep this fast while exercising the whole pipeline
    return run_campaign(CampaignConfig(seeds=(0, 1), sizes=(4,), label="test"))


class TestRun:
    def test_all_jobs_completed(self, small_campaign):
        assert len(small_campaign.results) == 2
        assert small_campaign.elapsed_seconds > 0
        assert small_campaign.version

    def test_progress_callback(self):
        calls = []
        run_campaign(
            CampaignConfig(seeds=(0,), sizes=(4,)),
            progress=lambda done, total, r: calls.append((done, total, r.seed)),
        )
        assert calls == [(1, 1, 0)]

    def test_result_lookup(self, small_campaign):
        assert small_campaign.result_for(1, 4).seed == 1
        assert small_campaign.result_for(9, 4) is None

    def test_summaries_render(self, small_campaign):
        assert "Table II" in small_campaign.summary().render()
        assert "run times" in small_campaign.runtime_summary().render()


class TestPersistence:
    def test_roundtrip(self, small_campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        small_campaign.save(path)
        loaded = load_campaign(path)
        assert loaded.config == small_campaign.config
        assert loaded.results == small_campaign.results
        assert loaded.version == small_campaign.version

    def test_json_is_plain(self, small_campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        small_campaign.save(path)
        with open(path) as fh:
            data = json.load(fh)
        assert data["schema"] == 1
        assert len(data["results"]) == 2

    def test_schema_check(self):
        with pytest.raises(ValueError, match="schema"):
            Campaign.from_dict({"schema": 99})

    def test_summary_from_loaded(self, small_campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        small_campaign.save(path)
        loaded = load_campaign(path)
        assert loaded.summary().render() == small_campaign.summary().render()
