"""Tests for the campaign sweep runner: sharding, persistence, resumption."""

import copy
import dataclasses
import json

import pytest

from repro.analysis.campaign import (
    Campaign,
    CampaignConfig,
    campaign_checkpoint,
    load_campaign,
    run_campaign,
)

from ._campaign_faults import fake_instance, interrupt_on_seed1


def normalized(campaign: Campaign) -> dict:
    """``to_dict`` stripped of timestamps and runtime-dependent fields."""
    d = copy.deepcopy(campaign.to_dict())
    for key in ("started_at", "elapsed_seconds", "metrics", "workers"):
        d.pop(key)
    for r in d["results"]:
        r.pop("sizing_runtime_s")
        r.pop("rep_runtime_s")
    return d


class TestConfig:
    def test_jobs_grid(self):
        cfg = CampaignConfig(seeds=(0, 1), sizes=(4, 5), spacing=700.0)
        assert cfg.jobs() == [
            (0, 4, 700.0),
            (1, 4, 700.0),
            (0, 5, 700.0),
            (1, 5, 700.0),
        ]

    def test_jobs_grid_spacing_axis(self):
        cfg = CampaignConfig(seeds=(0,), sizes=(4,), spacings=(400.0, 800.0))
        assert cfg.jobs() == [(0, 4, 400.0), (0, 4, 800.0)]
        assert cfg.sweep_spacings() == (400.0, 800.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(seeds=())
        with pytest.raises(ValueError):
            CampaignConfig(sizes=())
        with pytest.raises(ValueError):
            CampaignConfig(spacing=0.0)
        with pytest.raises(ValueError):
            CampaignConfig(spacings=(800.0, -1.0))


@pytest.fixture(scope="module")
def small_campaign():
    # two tiny instances keep this fast while exercising the whole pipeline
    return run_campaign(CampaignConfig(seeds=(0, 1), sizes=(4,), label="test"))


class TestRun:
    def test_all_jobs_completed(self, small_campaign):
        assert len(small_campaign.results) == 2
        assert small_campaign.failures == []
        assert len(small_campaign.metrics) == 2
        assert small_campaign.elapsed_seconds > 0
        assert small_campaign.version

    def test_results_carry_spacing(self, small_campaign):
        assert {r.spacing for r in small_campaign.results} == {
            small_campaign.config.spacing
        }

    def test_metrics_are_populated(self, small_campaign):
        for m in small_campaign.metrics:
            assert m.runtime_s > 0
            assert m.attempts == 1
            assert m.worker == -1  # inline serial path

    def test_progress_callback(self):
        calls = []
        run_campaign(
            CampaignConfig(seeds=(0,), sizes=(4,)),
            progress=lambda done, total, o: calls.append((done, total, o.key)),
        )
        assert calls == [(1, 1, (0, 4, 800.0))]

    def test_result_lookup(self, small_campaign):
        assert small_campaign.result_for(1, 4).seed == 1
        assert small_campaign.result_for(9, 4) is None

    def test_summaries_render(self, small_campaign):
        assert "Table II" in small_campaign.summary().render()
        assert "run times" in small_campaign.runtime_summary().render()

    def test_runtime_summary_has_metrics_columns(self, small_campaign):
        rendered = small_campaign.runtime_summary().render()
        assert "job wall" in rendered
        assert "peak RSS" in rendered


class TestResultForKeying:
    """Regression: ``result_for`` keys on spacing and de-duplicates."""

    def _campaign_with_duplicates(self):
        cfg = CampaignConfig(seeds=(0,), sizes=(4,), spacings=(400.0, 800.0))
        stale = dataclasses.replace(
            fake_instance(0, 4, 800.0), rep_min_ard=999.0
        )
        fresh = fake_instance(0, 4, 800.0)
        other_spacing = fake_instance(0, 4, 400.0)
        return Campaign(
            config=cfg, results=[other_spacing, stale, fresh]
        )

    def test_keys_on_spacing(self):
        campaign = self._campaign_with_duplicates()
        assert campaign.result_for(0, 4, 400.0).spacing == 400.0
        assert campaign.result_for(0, 4, 800.0).spacing == 800.0
        assert campaign.result_for(0, 4, 600.0) is None

    def test_deduplicates_retried_jobs(self):
        # the re-run (newest) record must win over the stale one
        campaign = self._campaign_with_duplicates()
        assert campaign.result_for(0, 4, 800.0).rep_min_ard != 999.0


class TestDeterminism:
    """Sharding must not perturb seeding: serial == pool at any width."""

    CFG = CampaignConfig(seeds=(0, 1), sizes=(4,), label="determinism")

    def test_worker_count_invariance(self):
        serial = run_campaign(self.CFG)  # inline fallback, no pool
        one = run_campaign(self.CFG, workers=1)
        four = run_campaign(self.CFG, workers=4)
        assert normalized(serial) == normalized(one) == normalized(four)

    def test_pool_metrics_report_worker_slots(self):
        pooled = run_campaign(self.CFG, workers=2)
        assert {m.worker for m in pooled.metrics} <= {0, 1}
        assert all(m.max_rss_kb > 0 for m in pooled.metrics)


class TestCheckpointRoundTrip:
    CFG = CampaignConfig(seeds=(0, 1, 2), sizes=(4, 5), label="ckpt")

    def test_killed_campaign_resumes_to_identical_record(self, tmp_path):
        ckpt = str(tmp_path / "campaign.checkpoint.jsonl")
        # the operator's ctrl-C lands at the seed-1 job
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                self.CFG, checkpoint_path=ckpt, job_fn=interrupt_on_seed1
            )
        partial = campaign_checkpoint(ckpt).load()
        assert 0 < len(partial) < len(self.CFG.jobs())

        resumed = run_campaign(
            self.CFG, checkpoint_path=ckpt, resume=True, job_fn=fake_instance
        )
        uninterrupted = run_campaign(self.CFG, job_fn=fake_instance)
        assert resumed.failures == []
        assert normalized(resumed) == normalized(uninterrupted)

    def test_resume_skips_completed_jobs(self, tmp_path, monkeypatch):
        ckpt = str(tmp_path / "c.jsonl")
        run_campaign(self.CFG, checkpoint_path=ckpt, job_fn=fake_instance)

        log = tmp_path / "calls.log"
        monkeypatch.setenv("REPRO_FAULT_CALL_LOG", str(log))
        resumed = run_campaign(
            self.CFG, checkpoint_path=ckpt, resume=True, job_fn=fake_instance
        )
        assert len(resumed.results) == len(self.CFG.jobs())
        assert not log.exists()  # nothing re-executed

    def test_checkpoint_survives_torn_final_line(self, tmp_path):
        ckpt = str(tmp_path / "c.jsonl")
        run_campaign(self.CFG, checkpoint_path=ckpt, job_fn=fake_instance)
        with open(ckpt, "a") as fh:
            fh.write('{"kind": "result", "key": [9, 9')  # kill -9 mid-write
        loaded = campaign_checkpoint(ckpt).load()
        assert set(loaded) == set(self.CFG.jobs())


class TestPersistence:
    def test_roundtrip(self, small_campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        small_campaign.save(path)
        loaded = load_campaign(path)
        assert loaded.config == small_campaign.config
        assert loaded.results == small_campaign.results
        assert loaded.failures == small_campaign.failures
        assert loaded.metrics == small_campaign.metrics
        assert loaded.version == small_campaign.version

    def test_json_is_plain(self, small_campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        small_campaign.save(path)
        with open(path) as fh:
            data = json.load(fh)
        assert data["schema"] == 3
        assert len(data["results"]) == 2
        assert data["failures"] == []
        assert len(data["metrics"]) == 2

    def test_schema_check(self):
        with pytest.raises(ValueError, match="schema"):
            Campaign.from_dict({"schema": 99})

    def test_schema_v1_load_compat(self, small_campaign):
        """v1 records (no spacing/failures/metrics) still load."""
        v1 = copy.deepcopy(small_campaign.to_dict())
        v1["schema"] = 1
        for key in ("failures", "metrics", "workers"):
            v1.pop(key)
        v1["config"].pop("spacings")
        for r in v1["results"]:
            r.pop("spacing")
        loaded = Campaign.from_dict(v1)
        assert loaded.config == small_campaign.config
        assert loaded.results == small_campaign.results  # spacing backfilled
        assert loaded.failures == []
        assert loaded.metrics == []
        assert loaded.result_for(0, 4, small_campaign.config.spacing) is not None

    def test_schema_v2_load_compat(self, small_campaign):
        """v2 records (metrics without the obs field) still load."""
        v2 = copy.deepcopy(small_campaign.to_dict())
        v2["schema"] = 2
        for m in v2["metrics"]:
            m.pop("obs", None)
        loaded = Campaign.from_dict(v2)
        assert loaded.config == small_campaign.config
        assert loaded.results == small_campaign.results
        assert all(m.obs is None for m in loaded.metrics)

    def test_summary_from_loaded(self, small_campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        small_campaign.save(path)
        loaded = load_campaign(path)
        assert loaded.summary().render() == small_campaign.summary().render()
