"""Tests for the Kung–Luccio–Preparata Pareto minima algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import is_dominated, minima_2d, minima_3d, minima_nd


class TestIsDominated:
    def test_basic(self):
        assert is_dominated((2, 2), (1, 1))
        assert is_dominated((2, 2), (2, 2))  # weak
        assert not is_dominated((1, 3), (2, 2))

    def test_tolerance(self):
        assert is_dominated((1.0, 1.0), (1.0 + 1e-12, 1.0), tol=1e-9)


class TestMinima2D:
    def test_staircase(self):
        pts = [(1, 5), (2, 3), (3, 4), (4, 1), (5, 2)]
        assert minima_2d(pts) == [0, 1, 3]

    def test_duplicates_keep_first(self):
        pts = [(1, 1), (1, 1), (0, 2)]
        assert minima_2d(pts) == [0, 2]

    def test_single(self):
        assert minima_2d([(3, 3)]) == [0]

    def test_all_dominated_by_one(self):
        pts = [(0, 0), (1, 1), (2, 2)]
        assert minima_2d(pts) == [0]

    def test_empty(self):
        assert minima_2d([]) == []


class TestMinima3D:
    def test_simple(self):
        pts = [(1, 1, 1), (2, 2, 2), (0, 3, 3), (3, 0, 3), (3, 3, 0)]
        assert minima_3d(pts) == [0, 2, 3, 4]

    def test_duplicates_keep_first(self):
        pts = [(1, 1, 1), (1, 1, 1)]
        assert minima_3d(pts) == [0]

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        pts = [tuple(rng.integers(0, 8, size=3).tolist()) for _ in range(60)]
        assert sorted(minima_3d(pts)) == sorted(minima_nd(pts))

    def test_continuous_coordinates(self):
        rng = np.random.default_rng(123)
        pts = [tuple(rng.random(3).tolist()) for _ in range(100)]
        assert sorted(minima_3d(pts)) == sorted(minima_nd(pts))


class TestMinimaND:
    def test_5d(self):
        pts = [(1, 1, 1, 1, 1), (0, 2, 1, 1, 1), (2, 2, 2, 2, 2)]
        assert minima_nd(pts) == [0, 1]

    def test_all_incomparable(self):
        pts = [(0, 2), (1, 1), (2, 0)]
        assert minima_nd(pts) == [0, 1, 2]


@given(
    st.lists(
        st.tuples(
            st.integers(0, 6), st.integers(0, 6), st.integers(0, 6)
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=200)
def test_property_3d_equals_bruteforce(pts):
    assert sorted(minima_3d(pts)) == sorted(minima_nd(pts))


@given(
    st.lists(
        st.tuples(
            st.floats(0, 10, allow_nan=False), st.floats(0, 10, allow_nan=False)
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=200)
def test_property_2d_minima_cover(pts):
    """Every input point is dominated by some reported minimum."""
    idx = minima_2d(pts)
    for p in pts:
        assert any(is_dominated(p, pts[i], tol=1e-12) for i in idx)
