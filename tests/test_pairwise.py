"""Tests for the pairwise-constraint baseline and its bridge to the ARD."""

import numpy as np
import pytest

from repro.baselines.pairwise import (
    PairwiseConstraint,
    PairwiseSpec,
    check_constraints,
    greedy_pairwise_repair,
    spec_from_ard,
    worst_slack,
)
from repro.core.ard import ard
from repro.core.msri import MSRIOptions, insert_repeaters
from repro.rctree import TreeBuilder
from repro.tech import Buffer, Repeater, RepeaterLibrary, Technology

from .conftest import make_terminal, random_topology, two_pin_net

TECH = Technology(0.1, 0.01, name="test")
REP = Repeater.from_buffer_pair(Buffer("b", 20.0, 50.0, 0.25), name="rep")
LIB = RepeaterLibrary([REP])


class TestSpecConstruction:
    def test_rejects_self_pair(self):
        with pytest.raises(ValueError):
            PairwiseConstraint(1, 1, 100.0)

    def test_rejects_non_terminal_endpoint(self):
        t = two_pin_net()
        m = t.insertion_indices()[0]
        with pytest.raises(ValueError, match="not a terminal"):
            PairwiseSpec(t, [PairwiseConstraint(t.root, m, 100.0)])

    def test_rejects_role_mismatch(self):
        b = TreeBuilder()
        src = b.add_terminal(make_terminal("s", 0, 0).as_source_only())
        src2 = b.add_terminal(make_terminal("r", 50, 50).as_source_only())
        snk = b.add_terminal(make_terminal("k", 100, 0).as_sink_only())
        b.connect(src, snk)
        b.connect(snk, src2)
        t = b.build(root=src)
        s = t.terminal_by_name("s")
        r = t.terminal_by_name("r")
        k = t.terminal_by_name("k")
        with pytest.raises(ValueError, match="cannot drive"):
            PairwiseSpec(t, [PairwiseConstraint(k, s, 1.0)])
        with pytest.raises(ValueError, match="cannot receive"):
            PairwiseSpec(t, [PairwiseConstraint(s, r, 1.0)])

    def test_spec_from_ard_covers_all_pairs(self):
        rng = np.random.default_rng(0)
        t = random_topology(rng, n_terminals=5, p_insertion=0.0)
        spec = spec_from_ard(t, 1e6)
        sources = sum(
            1 for i in t.terminal_indices() if t.node(i).terminal.is_source
        )
        sinks = sum(1 for i in t.terminal_indices() if t.node(i).terminal.is_sink)
        both = sum(
            1
            for i in t.terminal_indices()
            if t.node(i).terminal.is_source and t.node(i).terminal.is_sink
        )
        assert len(spec) == sources * sinks - both


class TestARDBridge:
    @pytest.mark.parametrize("seed", range(6))
    def test_ard_bound_iff_pairwise_satisfied(self, seed):
        """ARD <= A exactly when the induced pairwise spec has no violation."""
        rng = np.random.default_rng(seed)
        t = random_topology(rng, n_terminals=5, p_insertion=0.5)
        value = ard(t, TECH).value
        tight = spec_from_ard(t, value + 1.0)
        assert check_constraints(tight, TECH) == []
        too_tight = spec_from_ard(t, value - 1.0)
        assert len(check_constraints(too_tight, TECH)) >= 1

    def test_worst_slack_matches_ard(self):
        rng = np.random.default_rng(3)
        t = random_topology(rng, n_terminals=5, p_insertion=0.0)
        value = ard(t, TECH).value
        spec = spec_from_ard(t, value)
        # slack of the critical pair is exactly zero at the ARD bound
        assert worst_slack(spec, TECH) == pytest.approx(0.0, abs=1e-6)


class TestChecker:
    def test_violation_report_fields(self):
        t = two_pin_net(length=4000.0)
        spec = spec_from_ard(t, 1.0)  # absurdly tight
        violations = check_constraints(spec, TECH)
        assert violations
        v = violations[0]
        assert v.slack < 0
        assert v.actual > v.constraint.bound

    def test_assignment_changes_result(self):
        t = two_pin_net(length=4000.0)
        m = t.insertion_indices()[0]
        base = ard(t, TECH).value
        spec = spec_from_ard(t, base * 0.8)
        assert check_constraints(spec, TECH)  # violated unbuffered
        assert not check_constraints(spec, TECH, {m: REP})  # repeater fixes it


class TestGreedyRepair:
    def test_meets_achievable_spec(self):
        t = two_pin_net(length=4000.0)
        base = ard(t, TECH).value
        spec = spec_from_ard(t, base * 0.8)
        assignment, slack = greedy_pairwise_repair(spec, TECH, LIB)
        assert slack >= 0.0
        assert assignment  # needed at least one repeater

    def test_already_satisfied_spec_is_free(self):
        t = two_pin_net(length=4000.0)
        spec = spec_from_ard(t, 1e9)
        assignment, slack = greedy_pairwise_repair(spec, TECH, LIB)
        assert assignment == {}
        assert slack >= 0.0

    def test_never_worse_than_msri_on_ard_specs(self):
        """On ARD-induced specs the exact DP meets anything greedy meets,
        at no greater cost."""
        rng = np.random.default_rng(5)
        for _ in range(4):
            t = random_topology(rng, n_terminals=4, p_insertion=0.7)
            base = ard(t, TECH).value
            target = base * 0.85
            spec = spec_from_ard(t, target)
            assignment, slack = greedy_pairwise_repair(spec, TECH, LIB)
            optimal = insert_repeaters(t, TECH, MSRIOptions(library=LIB))
            chosen = optimal.min_cost_meeting(target)
            if slack >= 0.0:
                greedy_cost = sum(r.cost for r in assignment.values())
                assert chosen is not None
                assert chosen.cost <= greedy_cost + 1e-9

    def test_impossible_spec_reports_negative_slack(self):
        t = two_pin_net(length=4000.0)
        spec = spec_from_ard(t, 1.0)
        _, slack = greedy_pairwise_repair(spec, TECH, LIB, max_steps=3)
        assert slack < 0.0
