"""Edge-case batteries that don't fit a single module's test file."""

import pytest

from repro.core.intervals import IntervalSet
from repro.core.pwl import PWL, Segment
from repro.core.solution import Placement, Trace
from repro.netgen.workloads import find_fig11_seed
from repro.rctree import ElmoreAnalyzer
from repro.tech import Technology

from .conftest import y_net


class TestPWLEdges:
    def test_evaluate_at_hole_boundary(self):
        f = PWL([Segment(0, 1, 1.0, 0.0), Segment(2, 3, 5.0, 0.0)])
        assert f.evaluate(1.0) == 1.0
        assert f.evaluate(2.0) == 5.0
        with pytest.raises(ValueError):
            f.evaluate(1.5)

    def test_restrict_to_point(self):
        f = PWL.linear(0.0, 2.0, 0.0, 10.0)
        g = f.restrict(IntervalSet.single(3.0, 3.0))
        assert g.evaluate(3.0) == 6.0
        assert g.domain().measure == 0.0

    def test_point_segment_max(self):
        a = PWL([Segment(2, 2, 1.0, 0.0)])
        b = PWL([Segment(2, 2, 3.0, 0.0)])
        m = a.maximum(b)
        assert m.evaluate(2.0) == 3.0

    def test_min_max_with_holes(self):
        f = PWL([Segment(0, 1, 0.0, 1.0), Segment(5, 6, 10.0, -1.0)])
        assert f.min_value()[1] == 0.0
        assert f.max_value()[1] == pytest.approx(5.0)

    def test_breakpoints_sorted_unique(self):
        f = PWL([Segment(0, 1, 0, 1), Segment(1, 2, 1, 0)])
        assert f.breakpoints() == [0.0, 1.0, 2.0]

    def test_shift_by_negative_is_rightward(self):
        f = PWL.linear(0.0, 1.0, 0.0, 5.0)
        g = f.shift(-2.0)  # g(x) = f(x - 2) on [2, 7]
        assert g.defined_at(6.0)
        assert not g.defined_at(1.0)
        assert g.evaluate(4.0) == pytest.approx(f.evaluate(2.0))


class TestTraceScaling:
    def test_deep_chain_no_recursion_error(self):
        t = Trace()
        for i in range(10_000):
            t = t.extended(Placement(i, i))
        assert len(t.collect()) == 10_000

    def test_wide_merge(self):
        leaves = [Trace().extended(Placement(i, i)) for i in range(100)]
        merged = leaves[0]
        for leaf in leaves[1:]:
            merged = Trace.merged(merged, leaf)
        assert len(merged.collect()) == 100


class TestWorkloadEdges:
    def test_fig11_seed_search_failure(self):
        with pytest.raises(RuntimeError, match="no seed"):
            find_fig11_seed(target_wirelength=1.0, tolerance=0.1, max_seed=3)


class TestAnalyzerEdges:
    def test_zero_length_pendant_edges_are_free(self):
        """Leafification pendants add no delay anywhere."""
        from repro.rctree import TreeBuilder

        from .conftest import make_terminal

        tech = Technology(0.1, 0.01)
        b = TreeBuilder()
        a = b.add_terminal(make_terminal("a", 0, 0))
        m = b.add_terminal(make_terminal("m", 50, 0))
        z = b.add_terminal(make_terminal("z", 100, 0))
        b.connect(a, m)
        b.connect(m, z)
        t = b.build(root=a)
        an = ElmoreAnalyzer(t, tech)
        # direct: a->z ignores the pendant's wire (it has none)
        d_az = an.path_delay(t.terminal_by_name("a"), t.terminal_by_name("z"))
        d_am = an.path_delay(t.terminal_by_name("a"), t.terminal_by_name("m"))
        # m sits exactly halfway: reaching it costs strictly less than z
        assert d_am < d_az

    def test_node_view_rejects_non_neighbor(self):
        tech = Technology(0.1, 0.01)
        t = y_net()
        an = ElmoreAnalyzer(t, tech)
        b_idx = t.terminal_by_name("b")
        c_idx = t.terminal_by_name("c")
        with pytest.raises(ValueError, match="not adjacent"):
            an.node_view(b_idx, c_idx)

    def test_wire_delay_rejects_non_adjacent(self):
        tech = Technology(0.1, 0.01)
        t = y_net()
        an = ElmoreAnalyzer(t, tech)
        with pytest.raises(ValueError, match="not adjacent"):
            an.wire_delay(t.terminal_by_name("b"), t.terminal_by_name("c"))

    def test_repeater_delay_requires_repeater(self):
        tech = Technology(0.1, 0.01)
        t = y_net()
        an = ElmoreAnalyzer(t, tech)
        s = t.steiner_indices()[0]
        with pytest.raises(ValueError, match="no repeater"):
            an.repeater_delay_through(s, t.root, t.terminal_by_name("b"))
