"""Negative case for R007: dimensionally consistent cross-function calls."""


def combined_delay(delay, padding):
    return delay + padding


def clean_caller(delay, arrival):
    return combined_delay(delay, arrival)  # ps into a ps parameter: fine
