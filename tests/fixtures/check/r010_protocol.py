"""Seeded violations for R010: protocol drift and a deprecated shim call.

``DriftingEngine`` defines ``path_delay`` so it claims the TimingEngine
shape, but its ``evaluate`` renamed the protocol's ``tree`` parameter and
dropped its default.  ``replay_legacy`` calls ``ard`` with the deprecated
positional assignment argument.
"""


class DriftingEngine:
    def evaluate(self, routing_tree):  # line 11: signature drift
        return 0.0

    def path_delay(self, src, dst):
        return 0.0


def replay_legacy(tree, tech, assignment):
    return ard(tree, tech, assignment)  # line 19: pre-EvalContext shim
