"""Seeded violations for R001: exact float equality on physical quantities."""


def crossing(ds, delay, arrival):
    if ds == 0.0:  # line 5: equality against a float literal
        return None
    if delay == arrival:  # line 7: equality between two ps quantities
        return delay
    return None
