"""Seeded violation for R007: an Ω quantity laundered through a call.

``total_delay``'s second parameter carries no dimension by name, but the
body pins it to ps by adding it to ``delay`` — so the call below passing a
resistance is a cross-function unit mix that per-file R006 cannot see.
"""


def total_delay(delay, extra):
    return delay + extra


def mix_caller(delay, resistance):
    return total_delay(delay, resistance)  # line 14: Ω into a ps parameter
