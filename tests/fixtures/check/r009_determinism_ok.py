"""Negative case for R009: a seeded RNG instance threaded explicitly."""

import random


def ard_bruteforce(tree, seed):
    rng = random.Random(seed)
    return _seeded_jitter(tree, rng)


def _seeded_jitter(tree, rng):
    return rng.random()  # instance RNG, reproducible from the seed
