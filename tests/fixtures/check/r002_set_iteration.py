"""Seeded violation for R002: iterating a set in a merge path."""


def merge_candidates(solutions):
    pending = {id(s) for s in solutions}
    merged = []
    for uid in pending:  # line 7: hash-salted iteration order
        merged.append(uid)
    return merged
