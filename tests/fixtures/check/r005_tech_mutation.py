"""Seeded violation for R005: mutating shared Technology state."""


def stamp_run(tech, label):
    tech.extras["last_run"] = label  # line 5: writes through shared tech
    return tech
