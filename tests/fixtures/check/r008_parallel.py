"""Seeded violations for R008: parallel-unsafe executor submissions.

``unsafe_job`` is worker-reachable (submitted with ``workers=4``) and
writes a module-level dict; the second submission hands the pool a lambda,
which cannot cross the process pipe.
"""

_CACHE = {}


def unsafe_job(item):
    _CACHE[item] = item  # line 12: worker-side shared-state write
    return item


def submit_unsafe(jobs):
    run_jobs(unsafe_job, jobs, workers=4)
    run_jobs(lambda item: item, jobs, workers=4)  # line 18: unpicklable
