"""Seeded violation for R003: control-flow assert in library code."""


def pick_best(values):
    best = None
    for v in values:
        if best is None or v > best:
            best = v
    assert best is not None  # line 9: vanishes under python -O
    return best
