"""Seeded violation for R004: mutable default argument."""


def accumulate(value, acc=[]):  # line 4: shared default list
    acc.append(value)
    return acc
