"""Seeded violations for R010's EditableEngine surface check.

``PartialEditor`` defines three of the five edit methods — enough to
claim the editable shape — but is missing ``set_wire_scale`` and
``reroot``.  ``DriftingEditor`` has the full method set but renamed
``set_wire_width``'s ``edge`` parameter.  ``BaselineProbe`` defines only
one edit method, below the three-of-five marker, and must not be
flagged.
"""


class PartialEditor:  # line 12: missing set_wire_scale + reroot
    def set_assignment(self, node, repeater):
        pass

    def set_terminal(self, node, terminal):
        pass

    def set_wire_width(self, edge, width):
        pass


class DriftingEditor:
    def set_assignment(self, node, repeater):
        pass

    def set_terminal(self, node, terminal):
        pass

    def set_wire_width(self, wire, width):  # line 30: renamed ``edge``
        pass

    def set_wire_scale(self, *, resistance_factor=1.0, capacitance_factor=1.0):
        pass

    def reroot(self, node):
        pass


class BaselineProbe:
    def set_assignment(self, node, repeater):
        pass

    def evaluate(self):
        return 0.0
