"""Seeded violations for R009: nondeterminism in engine-reachable compute.

``compute_ard`` is an optimizer entry point, so everything it reaches must
be a pure function of its inputs; ``_jitter`` consults the module-level
RNG.  The ``id()`` sort key is flagged anywhere in library code.
"""

import random


def compute_ard(tree):
    return _jitter(tree)


def _jitter(tree):
    return random.random()  # line 16: module-level RNG in engine compute


def unstable_order(nodes):
    return sorted(nodes, key=lambda n: id(n))  # line 20: address ordering
