"""Seeded violation for R006: dimensionally inconsistent arithmetic."""


def broken_elmore(resistance, delay):
    return resistance + delay  # line 5: adds an ohm quantity to a ps quantity
