"""Negative case for R010: an engine matching the TimingEngine surface."""


class ConformingEngine:
    def evaluate(self, tree=None):
        return 0.0

    def path_delay(self, src, dst):
        return 0.0


def replay_modern(tree, tech, assignment, context):
    return ard(tree, tech, context=context)
