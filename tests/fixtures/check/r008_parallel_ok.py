"""Negative case for R008: module-level pure job, inline closures only."""


def safe_job(item):
    return [item]


def submit_safe(jobs):
    run_jobs(safe_job, jobs, workers=4)
    run_jobs(lambda item: item, jobs, workers=0)  # inline path: closures fine
