"""Negative case: idiomatic code that must produce zero findings."""

NEVER = float("-inf")


def elmore_delay(resistance, capacitance, load):
    delay = resistance * (0.5 * capacitance + load)
    return delay


def is_parallel(ds, eps=1e-9):
    return abs(ds) <= eps


def no_sink(q):
    return q == NEVER  # sentinel comparison is exempt from R001


def deterministic_order(items):
    unique = set(items)
    return [v for v in sorted(unique)]


def scaled_copy(tech, factor):
    extras = dict(tech.extras)
    extras["scale"] = factor
    return extras
