"""Tests for minimal-functional-subset pruning (paper Sec. IV-D).

Soundness criterion: for every sampled external capacitance ``x``, any
solution that was Pareto-minimal at ``x`` in the original set must still be
*covered* after pruning — some survivor defined at ``x`` is no worse in all
five coordinates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import IntervalSet
from repro.core.mfs import mfs, mfs_pairwise, prune_one
from repro.core.pwl import PWL
from repro.core.solution import Solution
from repro.tech import NEVER

C_MAX = 10.0


def sol(cost=0.0, cap=0.0, q=0.0, arr=None, diam=None, domain=None):
    domain = domain or IntervalSet.single(0.0, C_MAX)
    return Solution(cost=cost, cap=cap, q=q, arr=arr, diam=diam, domain=domain)


def line(i, s, lo=0.0, hi=C_MAX):
    return PWL.linear(i, s, lo, hi)


def coords_at(s, x):
    """The 5-tuple of coordinates of a solution at x (None if undefined)."""
    if not s.domain.contains(x, atol=1e-9):
        return None
    arr = s.arr.evaluate(x) if s.arr is not None else -np.inf
    diam = s.diam.evaluate(x) if s.diam is not None else -np.inf
    return (s.cost, s.cap, s.q, arr, diam)


def dominates(a, b, tol=1e-9):
    return all(x <= y + tol for x, y in zip(a, b))


def assert_mfs_sound(original, pruned, xs):
    for x in xs:
        table = [coords_at(s, x) for s in original]
        table = [t for t in table if t is not None]
        surv = [coords_at(s, x) for s in pruned]
        surv = [t for t in surv if t is not None]
        for t in table:
            # t must be covered by some survivor
            assert any(
                dominates(sv, t) for sv in surv
            ), f"point {t} at x={x} lost its cover"


class TestPruneOne:
    def test_no_prune_when_scalar_worse(self):
        a = sol(cost=1.0, arr=line(0, 1))
        b = sol(cost=2.0, arr=line(-100, 0))  # better arr but worse cost
        assert prune_one(a, b, strict=False) is a

    def test_full_prune(self):
        a = sol(cost=2.0, arr=line(10, 1))
        b = sol(cost=1.0, arr=line(0, 1))
        assert prune_one(a, b, strict=False) is None

    def test_partial_prune_creates_hole(self):
        # b's arr is better only for x < 5
        a = sol(arr=line(5, 0))    # constant 5
        b = sol(arr=line(0, 1))    # x
        a2 = prune_one(a, b, strict=False)
        assert a2 is not None
        assert a2.domain.approx_equal(IntervalSet.single(5.0, C_MAX))

    def test_weak_prunes_exact_tie(self):
        a = sol(arr=line(1, 1))
        b = sol(arr=line(1, 1))
        assert prune_one(a, b, strict=False) is None

    def test_strict_spares_exact_tie(self):
        a = sol(arr=line(1, 1))
        b = sol(arr=line(1, 1))
        assert prune_one(a, b, strict=True) is a

    def test_strict_prunes_when_scalar_strictly_better(self):
        a = sol(cost=2.0, arr=line(1, 1))
        b = sol(cost=1.0, arr=line(1, 1))
        assert prune_one(a, b, strict=True) is None

    def test_strict_function_region(self):
        # same scalars; b strictly better on x<5, tie at x=5, worse after
        a = sol(arr=line(5, 0))
        b = sol(arr=line(0, 1))
        a2 = prune_one(a, b, strict=True)
        assert a2 is not None
        assert a2.domain.contains(7.0)
        assert not a2.domain.contains(3.0)

    def test_none_arr_dominates(self):
        # no-source solution has arr = -inf: dominates any finite arr
        a = sol(arr=line(0, 0))
        b = sol(arr=None)
        assert prune_one(a, b, strict=False) is None

    def test_finite_cannot_dominate_none(self):
        a = sol(arr=None)
        b = sol(arr=line(-1000, 0))
        assert prune_one(a, b, strict=False) is a

    def test_never_q_dominates(self):
        a = sol(q=5.0)
        b = sol(q=NEVER)
        assert prune_one(a, b, strict=False) is None
        assert prune_one(b, a, strict=False) is b

    def test_disjoint_domains_no_prune(self):
        a = sol(arr=line(10, 0, 0, 4), domain=IntervalSet.single(0, 4))
        b = sol(arr=line(0, 0, 6, 9), domain=IntervalSet.single(6, 9))
        assert prune_one(a, b, strict=False) is a

    def test_diam_gate(self):
        # b better in arr but worse in diam -> no pruning anywhere
        a = sol(arr=line(5, 0), diam=line(0, 0))
        b = sol(arr=line(0, 0), diam=line(5, 0))
        assert prune_one(a, b, strict=False) is a


class TestMFSSets:
    def test_keeps_crossing_pair(self):
        # two lines crossing at x=5: both survive, with complementary domains
        a = sol(arr=line(5, 0))
        b = sol(arr=line(0, 1))
        out = mfs_pairwise([a, b])
        assert len(out) == 2
        doms = sorted((s.domain.lo, s.domain.hi) for s in out)
        assert doms[0] == pytest.approx((0.0, 5.0))
        assert doms[1] == pytest.approx((5.0, C_MAX))

    def test_removes_duplicates_keeps_one(self):
        sols = [sol(arr=line(1, 1)) for _ in range(5)]
        out = mfs_pairwise(sols)
        assert len(out) == 1

    def test_incomparable_all_survive(self):
        sols = [
            sol(cost=float(i), cap=float(10 - i), arr=line(1, 1))
            for i in range(5)
        ]
        assert len(mfs_pairwise(sols)) == 5

    def test_dnc_equivalent_coverage(self):
        rng = np.random.default_rng(5)
        sols = _random_solutions(rng, 40)
        xs = np.linspace(0, C_MAX, 21)
        pruned_dnc = mfs(sols, leaf_size=4)
        pruned_pair = mfs_pairwise(sols)
        assert_mfs_sound(sols, pruned_dnc, xs)
        assert_mfs_sound(sols, pruned_pair, xs)

    def test_empty_set(self):
        assert mfs([]) == []
        assert mfs_pairwise([]) == []

    def test_single(self):
        s = sol(arr=line(1, 1))
        assert mfs([s]) == [s]


def _random_solutions(rng, n):
    out = []
    for _ in range(n):
        arr = None
        diam = None
        if rng.random() < 0.8:
            arr = line(float(rng.uniform(0, 50)), float(rng.uniform(0, 10)))
        if rng.random() < 0.6:
            diam = line(float(rng.uniform(0, 80)), float(rng.uniform(0, 5)))
        out.append(
            sol(
                cost=float(rng.integers(0, 4)),
                cap=float(rng.choice([0.1, 0.2, 0.5])),
                q=float(rng.choice([NEVER, 10.0, 20.0, 30.0])),
                arr=arr,
                diam=diam,
            )
        )
    return out


@given(seed=st.integers(min_value=0, max_value=100_000), n=st.integers(2, 30))
@settings(max_examples=60, deadline=None)
def test_property_mfs_sound(seed, n):
    rng = np.random.default_rng(seed)
    sols = _random_solutions(rng, n)
    xs = np.linspace(0, C_MAX, 11)
    pruned = mfs(sols, leaf_size=4)
    assert len(pruned) <= len(sols)
    assert_mfs_sound(sols, pruned, xs)


@given(seed=st.integers(min_value=0, max_value=100_000), n=st.integers(2, 20))
@settings(max_examples=40, deadline=None)
def test_property_mfs_idempotent_size(seed, n):
    rng = np.random.default_rng(seed)
    sols = _random_solutions(rng, n)
    once = mfs(sols, leaf_size=4)
    twice = mfs(once, leaf_size=4)
    # a second pass may merge nothing new: same coverage, no growth
    assert len(twice) <= len(once)
    assert_mfs_sound(once, twice, np.linspace(0, C_MAX, 11))
