"""Shared fixtures and net constructors used across the test suite."""

from __future__ import annotations

import pytest

from repro.rctree import TreeBuilder
from repro.tech import Buffer, Repeater, Technology, Terminal


@pytest.fixture
def tech():
    """Round-number technology so hand computations stay exact."""
    return Technology(unit_resistance=0.1, unit_capacitance=0.01, name="test")


@pytest.fixture
def simple_buffer():
    return Buffer(
        name="buf",
        intrinsic_delay=20.0,
        output_resistance=50.0,
        input_capacitance=0.25,
        cost=1.0,
    )


@pytest.fixture
def simple_repeater(simple_buffer):
    return Repeater.from_buffer_pair(simple_buffer, name="rep")


def make_terminal(name, x, y, alpha=0.0, beta=0.0, cap=0.5, res=100.0):
    """Terminal with compact defaults used by most topology tests."""
    return Terminal(
        name=name,
        x=x,
        y=y,
        arrival_time=alpha,
        downstream_delay=beta,
        capacitance=cap,
        resistance=res,
    )


def y_net():
    """Three terminals joined at a Steiner point, rooted at ``a``.

    Geometry: a(0,0) -- s(100,0) -- b(200,0), with c(100,100) also on s.
    All wire lengths are 100 um.
    """
    b = TreeBuilder()
    a = b.add_terminal(make_terminal("a", 0, 0))
    t_b = b.add_terminal(make_terminal("b", 200, 0))
    t_c = b.add_terminal(make_terminal("c", 100, 100))
    s = b.add_steiner(100, 0)
    b.connect(a, s)
    b.connect(s, t_b)
    b.connect(s, t_c)
    return b.build(root=a)


def random_topology(rng, n_terminals=5, p_insertion=0.5, grid=2000.0):
    """Random tree over random terminals, by random attachment.

    Terminals get randomized timing parameters; roughly one in four is a
    pure source and one in four a pure sink, the rest are bidirectional —
    always keeping at least one source and one sink.  Insertion points are
    sprinkled mid-edge with probability ``p_insertion``.
    """
    from repro.tech import NEVER

    b = TreeBuilder()
    handles = []
    for i in range(n_terminals):
        role = rng.random()
        alpha = float(rng.uniform(0.0, 200.0))
        beta = float(rng.uniform(0.0, 200.0))
        if i >= 2:  # terminals 0 and 1 stay bidirectional
            if role < 0.25:
                beta = NEVER
            elif role < 0.5:
                alpha = NEVER
        term = Terminal(
            name=f"t{i}",
            x=float(rng.uniform(0.0, grid)),
            y=float(rng.uniform(0.0, grid)),
            arrival_time=alpha,
            downstream_delay=beta,
            capacitance=float(rng.uniform(0.01, 0.5)),
            resistance=float(rng.uniform(50.0, 400.0)),
        )
        h = b.add_terminal(term)
        if handles:
            target = handles[int(rng.integers(0, len(handles)))]
            if rng.random() < p_insertion:
                tx, ty = term.x, term.y
                m = b.add_insertion_point((tx + 1.0) / 2.0, ty)
                b.connect(target, m)
                b.connect(m, h)
            else:
                b.connect(target, h)
        handles.append(h)
    return b.build(root=handles[0])


def two_pin_net(length=1000.0, with_insertion=True):
    """Two terminals on a straight wire, optionally with one insertion point."""
    b = TreeBuilder()
    a = b.add_terminal(make_terminal("a", 0, 0))
    z = b.add_terminal(make_terminal("z", length, 0))
    if with_insertion:
        m = b.add_insertion_point(length / 2, 0)
        b.connect(a, m)
        b.connect(m, z)
    else:
        b.connect(a, z)
    return b.build(root=a)
