"""Tests for the routing-tree data structure and the builder normalizations."""

import pytest

from repro.rctree import Node, NodeKind, RoutingTree, TreeBuilder, manhattan
from repro.tech import Terminal

from .conftest import make_terminal, two_pin_net, y_net


class TestManhattan:
    def test_basic(self):
        assert manhattan(0, 0, 3, 4) == 7.0

    def test_zero(self):
        assert manhattan(1, 2, 1, 2) == 0.0


class TestBuilder:
    def test_y_net_shape(self):
        t = y_net()
        assert len(t) == 4
        assert len(t.terminal_indices()) == 3
        assert len(t.steiner_indices()) == 1
        assert t.node(t.root).terminal.name == "a"
        assert t.total_wire_length() == 300.0

    def test_default_manhattan_lengths(self):
        t = y_net()
        s = t.steiner_indices()[0]
        for child in t.children(s):
            assert t.edge_length(child) == 100.0

    def test_explicit_length_override(self):
        b = TreeBuilder()
        a = b.add_terminal(make_terminal("a", 0, 0))
        z = b.add_terminal(make_terminal("z", 100, 0))
        b.connect(a, z, length=250.0)  # detoured route
        t = b.build(root=a)
        assert t.total_wire_length() == 250.0

    def test_leafification_of_through_terminal(self):
        # terminal m lies on the a--z path: it must be split into a pendant
        b = TreeBuilder()
        a = b.add_terminal(make_terminal("a", 0, 0))
        m = b.add_terminal(make_terminal("m", 50, 0))
        z = b.add_terminal(make_terminal("z", 100, 0))
        b.connect(a, m)
        b.connect(m, z)
        t = b.build(root=a)
        m_idx = t.terminal_by_name("m")
        assert t.is_leaf(m_idx)
        assert t.edge_length(m_idx) == 0.0
        assert len(t.terminal_indices()) == 3
        # the split point became a Steiner node
        assert len(t.steiner_indices()) == 1

    def test_leafification_of_root_terminal(self):
        b = TreeBuilder()
        m = b.add_terminal(make_terminal("m", 50, 0))
        a = b.add_terminal(make_terminal("a", 0, 0))
        z = b.add_terminal(make_terminal("z", 100, 0))
        b.connect(a, m)
        b.connect(m, z)
        t = b.build(root=m)
        assert t.node(t.root).terminal.name == "m"
        assert len(t.children(t.root)) == 1
        assert t.edge_length(t.children(t.root)[0]) == 0.0

    def test_root_must_be_terminal(self):
        b = TreeBuilder()
        a = b.add_terminal(make_terminal("a", 0, 0))
        s = b.add_steiner(10, 0)
        b.connect(a, s)
        with pytest.raises(ValueError, match="root must be a terminal"):
            b.build(root=s)

    def test_rejects_disconnected(self):
        b = TreeBuilder()
        a = b.add_terminal(make_terminal("a", 0, 0))
        b.add_terminal(make_terminal("z", 100, 0))
        with pytest.raises(ValueError):
            b.build(root=a)

    def test_rejects_cycle(self):
        b = TreeBuilder()
        a = b.add_terminal(make_terminal("a", 0, 0))
        s1 = b.add_steiner(10, 0)
        s2 = b.add_steiner(20, 0)
        s3 = b.add_steiner(10, 10)
        b.connect(a, s1)
        b.connect(s1, s2)
        b.connect(s2, s3)
        b.connect(s3, s1)
        with pytest.raises(ValueError):
            b.build(root=a)

    def test_rejects_self_loop(self):
        b = TreeBuilder()
        a = b.add_terminal(make_terminal("a", 0, 0))
        with pytest.raises(ValueError, match="self-loop"):
            b.connect(a, a)

    def test_rejects_negative_length(self):
        b = TreeBuilder()
        a = b.add_terminal(make_terminal("a", 0, 0))
        z = b.add_terminal(make_terminal("z", 100, 0))
        with pytest.raises(ValueError):
            b.connect(a, z, length=-1.0)


class TestTreeInvariants:
    def test_node_index_mismatch(self):
        n = Node(0, 0, 0, NodeKind.STEINER)
        with pytest.raises(ValueError):
            RoutingTree([Node(1, 0, 0, NodeKind.STEINER)], [None], [0.0])
        del n

    def test_insertion_point_degree_enforced(self):
        # a dangling insertion point (degree 1) must be rejected
        term = make_terminal("a", 0, 0)
        nodes = [
            Node(0, 0, 0, NodeKind.TERMINAL, term),
            Node(1, 10, 0, NodeKind.INSERTION),
        ]
        with pytest.raises(ValueError, match="degree two"):
            RoutingTree(nodes, [None, 0], [0.0, 10.0])

    def test_terminal_payload_required(self):
        with pytest.raises(ValueError):
            Node(0, 0, 0, NodeKind.TERMINAL, None)
        with pytest.raises(ValueError):
            Node(0, 0, 0, NodeKind.STEINER, make_terminal("a", 0, 0))

    def test_dangling_steiner_rejected(self):
        term = make_terminal("a", 0, 0)
        nodes = [
            Node(0, 0, 0, NodeKind.TERMINAL, term),
            Node(1, 10, 0, NodeKind.STEINER),
        ]
        with pytest.raises(ValueError, match="dangling"):
            RoutingTree(nodes, [None, 0], [0.0, 10.0])


class TestTraversal:
    def test_postorder_children_first(self):
        t = y_net()
        seen = set()
        for v in t.dfs_postorder():
            for c in t.children(v):
                assert c in seen
            seen.add(v)
        assert len(seen) == len(t)

    def test_preorder_parent_first(self):
        t = y_net()
        seen = set()
        for v in t.dfs_preorder():
            p = t.parent(v)
            assert p is None or p in seen
            seen.add(v)

    def test_path_between_siblings(self):
        t = y_net()
        b = t.terminal_by_name("b")
        c = t.terminal_by_name("c")
        s = t.steiner_indices()[0]
        assert t.path_between(b, c) == [b, s, c]

    def test_path_between_root_and_leaf(self):
        t = y_net()
        a = t.terminal_by_name("a")
        b = t.terminal_by_name("b")
        s = t.steiner_indices()[0]
        assert t.path_between(a, b) == [a, s, b]
        assert t.path_between(b, a) == [b, s, a]

    def test_path_to_self(self):
        t = y_net()
        a = t.terminal_by_name("a")
        assert t.path_between(a, a) == [a]

    def test_depth(self):
        t = y_net()
        assert t.depth(t.root) == 0
        assert t.depth(t.terminal_by_name("b")) == 2


class TestQueries:
    def test_neighbors_and_degree(self):
        t = y_net()
        s = t.steiner_indices()[0]
        assert t.degree(s) == 3
        assert set(t.neighbors(s)) == {
            t.root,
            t.terminal_by_name("b"),
            t.terminal_by_name("c"),
        }

    def test_terminal_by_name_missing(self):
        t = y_net()
        with pytest.raises(KeyError):
            t.terminal_by_name("nope")

    def test_insertion_indices(self):
        t = two_pin_net()
        assert len(t.insertion_indices()) == 1

    def test_bounding_box(self):
        t = y_net()
        assert t.bounding_box() == (0.0, 0.0, 200.0, 100.0)


class TestReroot:
    def test_reroot_preserves_structure(self):
        t = y_net()
        b = t.terminal_by_name("b")
        t2 = t.rerooted(b)
        assert t2.root == b
        assert t2.total_wire_length() == t.total_wire_length()
        assert sorted(t2.terminal_indices()) == sorted(t.terminal_indices())

    def test_reroot_roundtrip(self):
        t = y_net()
        b = t.terminal_by_name("b")
        t2 = t.rerooted(b).rerooted(t.root)
        for i in range(len(t)):
            assert t2.parent(i) == t.parent(i)
            assert t2.edge_length(i) == t.edge_length(i)

    def test_reroot_invalid(self):
        t = y_net()
        with pytest.raises(ValueError):
            t.rerooted(99)
