"""Picklable job functions for the campaign fault-injection tests.

``run_campaign(job_fn=...)`` jobs cross process boundaries when
``workers >= 1``, so every injected fault lives here as a module-level
function.  Cross-process coordination uses environment variables (the
pool's workers inherit the parent environment) pointing at scratch files.

``REPRO_FAULT_CALL_LOG``  — when set, every invocation appends one
    ``seed,size,spacing`` line (lets tests assert exactly which jobs ran).
``REPRO_FAULT_MARKER``    — when set, ``transient_failure_seed1`` fails
    seed-1 jobs until the marker file exists (created on first failure),
    so a retry succeeds.
"""

from __future__ import annotations

import os
import time

from repro.analysis.experiments import InstanceResult


def _log_call(seed: int, size: int, spacing: float) -> None:
    path = os.environ.get("REPRO_FAULT_CALL_LOG")
    if not path:
        return
    with open(path, "a") as fh:
        fh.write(f"{seed},{size},{spacing}\n")
        fh.flush()
        os.fsync(fh.fileno())


def fake_instance(seed: int, size: int, spacing: float) -> InstanceResult:
    """A deterministic, instant stand-in for ``run_instance``.

    Runtime fields are pinned to 0.0 so two campaigns over the same grid
    compare exactly equal.
    """
    _log_call(seed, size, spacing)
    return InstanceResult(
        seed=seed,
        n_pins=size,
        n_insertion_points=3 * size,
        wirelength_um=1000.0 * size + seed,
        base_cost=2.0 * size,
        base_ard=100.0 + 10.0 * size + seed,
        sizing_min_ard=80.0 + seed,
        sizing_min_ard_cost=3.0 * size,
        sizing_runtime_s=0.0,
        rep_min_ard=60.0 + seed,
        rep_min_ard_cost=4.0 * size,
        rep_runtime_s=0.0,
        rep_cost_at_sizing_ard=None,
        spacing=spacing,
    )


def raise_on_seed1(seed: int, size: int, spacing: float) -> InstanceResult:
    """Deterministic crash on every seed-1 job."""
    if seed == 1:
        _log_call(seed, size, spacing)
        raise RuntimeError(f"injected failure for seed {seed}")
    return fake_instance(seed, size, spacing)


def hang_on_seed1(seed: int, size: int, spacing: float) -> InstanceResult:
    """Seed-1 jobs hang far past any sane per-job timeout."""
    if seed == 1:
        _log_call(seed, size, spacing)
        time.sleep(120.0)
    return fake_instance(seed, size, spacing)


def transient_failure_seed1(seed: int, size: int, spacing: float) -> InstanceResult:
    """Seed-1 jobs fail exactly once, then succeed (exercises retries)."""
    marker = os.environ["REPRO_FAULT_MARKER"]
    if seed == 1 and not os.path.exists(marker):
        open(marker, "w").close()
        raise RuntimeError("injected transient failure")
    return fake_instance(seed, size, spacing)


def interrupt_on_seed1(seed: int, size: int, spacing: float) -> InstanceResult:
    """Simulates the operator killing the campaign at the seed-1 job."""
    if seed == 1:
        raise KeyboardInterrupt
    return fake_instance(seed, size, spacing)


def die_on_seed1(seed: int, size: int, spacing: float) -> InstanceResult:
    """Seed-1 jobs kill their worker process outright (segfault stand-in).

    Only meaningful with ``workers >= 1`` — inline it would kill the test
    runner itself.
    """
    if seed == 1:
        os._exit(13)
    return fake_instance(seed, size, spacing)
