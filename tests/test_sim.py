"""Tests for the event-driven transaction simulator.

The simulator is a third, independent implementation of the delay
semantics (hop-local accumulation): it must agree exactly with the
path-walk Elmore engine and with the linear-time ARD on arbitrary random
buffered topologies, and it makes inverter polarity observable at sinks.
"""

import math

import numpy as np
import pytest

from repro.analysis.exhaustive import is_parity_feasible
from repro.core.ard import ard
from repro.rctree import ElmoreAnalyzer, EvalContext
from repro.sim import simulate_all, simulate_transaction, simulated_ard
from repro.tech import Buffer, Repeater, Technology

from .conftest import random_topology, two_pin_net, y_net

TECH = Technology(0.1, 0.01, name="test")
REP = Repeater.from_buffer_pair(Buffer("b", 20.0, 50.0, 0.25), name="rep")
INV = Repeater.from_buffer_pair(
    Buffer("i", 10.0, 50.0, 0.25, cost=0.5, is_inverting=True), name="inv"
)


class TestAgainstPathDelay:
    def test_y_net_arrivals(self):
        t = y_net()
        an = ElmoreAnalyzer(t, TECH)
        a = t.terminal_by_name("a")
        res = simulate_transaction(t, TECH, a)
        for name in ("b", "c"):
            sink = t.terminal_by_name(name)
            assert res.arrival(sink) == pytest.approx(an.path_delay(a, sink))

    @pytest.mark.parametrize("seed", range(10))
    def test_random_nets_all_pairs(self, seed):
        rng = np.random.default_rng(seed)
        t = random_topology(rng, n_terminals=6, p_insertion=0.6)
        assignment = {}
        for k, idx in enumerate(t.insertion_indices()):
            if k % 2 == 0:
                assignment[idx] = REP
        an = ElmoreAnalyzer(t, TECH, context=EvalContext(assignment=assignment))
        results = simulate_all(t, TECH, assignment)
        for src, res in results.items():
            for sink, ev in res.events.items():
                assert ev.time == pytest.approx(
                    an.path_delay(src, sink), rel=1e-9
                )

    def test_simulated_ard_matches_linear(self):
        rng = np.random.default_rng(42)
        for _ in range(8):
            t = random_topology(rng, n_terminals=5, p_insertion=0.5)
            assignment = {idx: REP for idx in t.insertion_indices()[:2]}
            sim = simulated_ard(t, TECH, assignment)
            lin = ard(t, TECH, context=EvalContext(assignment=assignment)).value
            assert sim == pytest.approx(lin, rel=1e-9)

    def test_no_pairs_minus_inf(self):
        from repro.rctree import TreeBuilder

        from .conftest import make_terminal

        b = TreeBuilder()
        s1 = b.add_terminal(make_terminal("s1", 0, 0).as_source_only())
        s2 = b.add_terminal(make_terminal("s2", 100, 0).as_source_only())
        b.connect(s1, s2)
        t = b.build(root=s1)
        assert simulated_ard(t, TECH) == -math.inf


class TestPolarity:
    def test_noninverting_keeps_polarity(self):
        t = two_pin_net(length=2000.0)
        m = t.insertion_indices()[0]
        res = simulate_transaction(t, TECH, t.terminal_by_name("a"), {m: REP})
        (ev,) = res.events.values()
        assert not ev.inverted

    def test_single_inverter_flips(self):
        t = two_pin_net(length=2000.0)
        m = t.insertion_indices()[0]
        res = simulate_transaction(t, TECH, t.terminal_by_name("a"), {m: INV})
        (ev,) = res.events.values()
        assert ev.inverted

    def test_inverter_pair_restores(self):
        from repro.steiner import add_insertion_points

        t = add_insertion_points(
            two_pin_net(length=2000.0, with_insertion=False), spacing=600.0
        )
        pts = t.insertion_indices()
        asg = {pts[0]: INV, pts[1]: INV}
        res = simulate_transaction(t, TECH, t.terminal_by_name("a"), asg)
        (ev,) = res.events.values()
        assert not ev.inverted

    def test_parity_feasibility_matches_simulation(self):
        """The static parity check agrees with what sinks actually see."""
        rng = np.random.default_rng(17)
        for _ in range(10):
            t = random_topology(rng, n_terminals=4, p_insertion=0.8)
            assignment = {}
            for idx in t.insertion_indices():
                roll = rng.random()
                if roll < 0.3:
                    assignment[idx] = INV
                elif roll < 0.5:
                    assignment[idx] = REP
            feasible = is_parity_feasible(t, assignment)
            sinks_clean = True
            for src, res in simulate_all(t, TECH, assignment).items():
                for ev in res.events.values():
                    if ev.sink != src and ev.inverted:
                        sinks_clean = False
            assert feasible == sinks_clean


class TestAPI:
    def test_source_validation(self):
        t = y_net()
        s = t.steiner_indices()[0]
        with pytest.raises(ValueError):
            simulate_transaction(t, TECH, s)

    def test_sink_only_cannot_drive(self):
        from repro.rctree import TreeBuilder

        from .conftest import make_terminal

        b = TreeBuilder()
        s = b.add_terminal(make_terminal("s", 0, 0))
        k = b.add_terminal(make_terminal("k", 100, 0).as_sink_only())
        b.connect(s, k)
        t = b.build(root=s)
        with pytest.raises(ValueError, match="cannot drive"):
            simulate_transaction(t, TECH, t.terminal_by_name("k"))

    def test_node_times_cover_tree(self):
        t = y_net()
        res = simulate_transaction(t, TECH, t.terminal_by_name("a"))
        assert len(res.node_times) == len(t)

    def test_worst_sink(self):
        t = y_net()
        res = simulate_transaction(t, TECH, t.terminal_by_name("a"))
        sink, time = res.worst_sink()
        assert time == max(ev.time for ev in res.events.values())
