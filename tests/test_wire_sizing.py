"""Tests for the wire-sizing extension.

The paper's conclusions state "there is no fundamental reason why the basic
techniques introduced here cannot be utilized to solve other optimization
problems in multisource nets such as wire sizing"; this repository
implements that extension: every positive-length wire segment independently
picks a discrete width class (R/w, w*C, area cost per µm), handled by the
same PWL dynamic program.  Validation is, as for repeaters, exhaustive
enumeration on small nets.
"""

import numpy as np
import pytest

from repro.analysis.exhaustive import exhaustive_frontier
from repro.core.ard import ard
from repro.core.msri import MSRIOptions, insert_repeaters
from repro.rctree import ElmoreAnalyzer, EvalContext
from repro.tech import (
    Buffer,
    Repeater,
    RepeaterLibrary,
    Technology,
    WireClass,
    default_wire_library,
)

from .conftest import random_topology, two_pin_net

TECH = Technology(0.1, 0.01, name="test")
REP = Repeater.from_buffer_pair(Buffer("b", 20.0, 50.0, 0.25), name="rep")
LIB = RepeaterLibrary([REP])
WIRES = default_wire_library(widths=(1.0, 2.0), base_cost_per_um=0.001)


def frontiers_equal(dp, ex, tol=1e-6):
    return len(dp) == len(ex) and all(
        abs(a[0] - b[0]) <= tol and abs(a[1] - b[1]) <= tol for a, b in zip(dp, ex)
    )


class TestWireClass:
    def test_scaling(self):
        wc = WireClass("w2", width=2.0, cost_per_um=0.002)
        assert wc.resistance(100.0) == 50.0
        assert wc.capacitance(1.0) == 2.0
        assert wc.cost(500.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WireClass("bad", width=0.0, cost_per_um=0.0)
        with pytest.raises(ValueError):
            WireClass("bad", width=1.0, cost_per_um=-1.0)
        with pytest.raises(ValueError):
            WireClass("w", 1.0, 0.0).cost(-5.0)

    def test_default_library(self):
        lib = default_wire_library()
        assert [w.width for w in lib] == [1.0, 2.0, 3.0]
        assert lib[1].cost_per_um == pytest.approx(2 * lib[0].cost_per_um)


class TestElmoreWireWidths:
    def test_width_scales_rc(self):
        t = two_pin_net(length=1000.0, with_insertion=False)
        a, z = t.terminal_by_name("a"), t.terminal_by_name("z")
        base = ElmoreAnalyzer(t, TECH).path_delay(a, z)
        edge = [v for v in range(len(t)) if t.parent(v) is not None][0]
        wide = ElmoreAnalyzer(t, TECH, context=EvalContext(wire_widths={edge: 2.0}))
        # width 2: R = 50, C = 20
        # driver: 100*(0.5 + 20 + 0.5) = 2100; wire: 50*(10 + 0.5) = 525
        assert wide.path_delay(a, z) == pytest.approx(2100.0 + 525.0)
        assert base == pytest.approx(1100.0 + 550.0)

    def test_invalid_widths(self):
        t = two_pin_net()
        with pytest.raises(ValueError):
            ElmoreAnalyzer(t, TECH, context=EvalContext(wire_widths={0: 0.0}))
        with pytest.raises(ValueError):
            ElmoreAnalyzer(t, TECH, context=EvalContext(wire_widths={t.root: 2.0}))

    def test_ard_wrapper_passthrough(self):
        t = two_pin_net(length=1000.0, with_insertion=False)
        edge = [v for v in range(len(t)) if t.parent(v) is not None][0]
        assert ard(t, TECH, context=EvalContext(wire_widths={edge: 2.0})).value != ard(t, TECH).value


class TestOptionsValidation:
    def test_wire_library_alone_is_enough(self):
        opts = MSRIOptions(wire_library=WIRES)
        assert opts.library is None

    def test_empty_wire_library_rejected(self):
        with pytest.raises(ValueError):
            MSRIOptions(wire_library=[])


class TestDPAgainstExhaustive:
    @pytest.mark.parametrize("seed", range(6))
    def test_wire_sizing_only(self, seed):
        rng = np.random.default_rng(seed)
        t = random_topology(rng, n_terminals=4, p_insertion=0.0)
        dp = insert_repeaters(t, TECH, MSRIOptions(wire_library=WIRES)).tradeoff()
        ex = exhaustive_frontier(t, TECH, wire_library=WIRES)
        assert frontiers_equal(dp, ex), f"dp={dp}\nex={ex}"

    @pytest.mark.parametrize("seed", range(4))
    def test_wires_plus_repeaters(self, seed):
        rng = np.random.default_rng(50 + seed)
        t = random_topology(rng, n_terminals=3, p_insertion=0.5)
        n_edges = sum(
            1
            for v in range(len(t))
            if t.parent(v) is not None and t.edge_length(v) > 0
        )
        if 2 ** n_edges * 3 ** len(t.insertion_indices()) > 300_000:
            pytest.skip("instance too large to enumerate")
        dp = insert_repeaters(
            t, TECH, MSRIOptions(library=LIB, wire_library=WIRES)
        ).tradeoff()
        ex = exhaustive_frontier(t, TECH, LIB, wire_library=WIRES)
        assert frontiers_equal(dp, ex), f"dp={dp}\nex={ex}"

    def test_replay_with_widths(self):
        """Every claimed solution is achievable: replay widths + repeaters
        through the Elmore engine."""
        rng = np.random.default_rng(7)
        t = random_topology(rng, n_terminals=4, p_insertion=0.5)
        res = insert_repeaters(t, TECH, MSRIOptions(library=LIB, wire_library=WIRES))
        for s in res.solutions:
            asg = s.assignment()
            reps = {k: v for k, v in asg.items() if isinstance(v, Repeater)}
            widths = {
                k: v.width for k, v in asg.items() if isinstance(v, WireClass)
            }
            replay = ard(t, TECH, context=EvalContext(assignment=reps, wire_widths=widths))
            assert replay.value == pytest.approx(s.ard, rel=1e-9)

    def test_every_edge_gets_a_class(self):
        rng = np.random.default_rng(9)
        t = random_topology(rng, n_terminals=4, p_insertion=0.0)
        res = insert_repeaters(t, TECH, MSRIOptions(wire_library=WIRES))
        positive_edges = {
            v
            for v in range(len(t))
            if t.parent(v) is not None and t.edge_length(v) > 0
        }
        for s in res.solutions:
            chosen = {
                k for k, v in s.assignment().items() if isinstance(v, WireClass)
            }
            assert chosen == positive_edges

    def test_free_widening_helps_weak_drivers(self):
        """With zero area cost and a resistance-bound net, wider is better."""
        free = [WireClass("w1", 1.0, 0.0), WireClass("w4", 4.0, 0.0)]
        t = two_pin_net(length=4000.0, with_insertion=False)
        res = insert_repeaters(t, TECH, MSRIOptions(wire_library=free))
        best = res.min_ard()
        base = ard(t, TECH).value
        assert best.ard <= base  # free sizing can only help


class TestCombinedThreeWay:
    def test_wires_drivers_repeaters_together(self):
        """All three optimizations compose; the frontier dominates each
        single-mode frontier."""
        from repro.core.driver_sizing import make_driver_options

        rng = np.random.default_rng(21)
        t = random_topology(rng, n_terminals=3, p_insertion=0.4)
        drivers = make_driver_options(
            Buffer("1x", 20.0, 200.0, 0.05), scales=(1.0, 2.0)
        )
        full = insert_repeaters(
            t,
            TECH,
            MSRIOptions(library=LIB, driver_options=drivers, wire_library=WIRES),
        )
        single = insert_repeaters(t, TECH, MSRIOptions(library=LIB))
        # compare at comparable cost: add the cheapest driver (2 per pin)
        # and cheapest wire dressing to the repeater-only costs
        base_extra = 2.0 * 3 + sum(
            WIRES[0].cost(t.edge_length(v))
            for v in range(len(t))
            if t.parent(v) is not None
        )
        for cost, ardv in single.tradeoff():
            best = min(
                s.ard
                for s in full.solutions
                if s.cost <= cost + base_extra + 1e-9
            )
            assert best <= ardv + 1e-6
