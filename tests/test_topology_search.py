"""Tests for ARD-driven topology synthesis."""

import pytest

from repro.core.ard import ard
from repro.netgen import paper_net_spec, paper_technology, random_points
from repro.steiner import (
    rectilinear_mst,
    synthesize_topology,
    tree_from_terminal_edges,
)
from repro.tech import Terminal

TECH = paper_technology()


def make_terms(seed, n):
    spec = paper_net_spec()
    return [
        Terminal(
            f"p{i}",
            x,
            y,
            capacitance=spec.capacitance,
            resistance=spec.resistance,
            intrinsic_delay=spec.intrinsic_delay,
        )
        for i, (x, y) in enumerate(random_points(seed, n))
    ]


class TestTreeFromTerminalEdges:
    def test_valid_tree(self):
        terms = make_terms(0, 6)
        edges = rectilinear_mst([(t.x, t.y) for t in terms])
        tree = tree_from_terminal_edges(terms, edges)
        assert sorted(t.name for t in tree.terminals()) == sorted(
            t.name for t in terms
        )
        assert tree.node(tree.root).terminal.name == "p0"

    def test_root_selection(self):
        terms = make_terms(0, 5)
        edges = rectilinear_mst([(t.x, t.y) for t in terms])
        tree = tree_from_terminal_edges(terms, edges, root=2)
        assert tree.node(tree.root).terminal.name == "p2"


class TestSynthesis:
    @pytest.mark.parametrize("seed", range(5))
    def test_never_worse_than_mst(self, seed):
        terms = make_terms(seed, 7)
        edges = rectilinear_mst([(t.x, t.y) for t in terms])
        mst_ard = ard(tree_from_terminal_edges(terms, edges), TECH).value
        res = synthesize_topology(terms, TECH)
        assert res.ard <= mst_ard + 1e-9

    def test_improves_on_average(self):
        gains = []
        for seed in range(8):
            terms = make_terms(seed, 8)
            edges = rectilinear_mst([(t.x, t.y) for t in terms])
            mst_ard = ard(tree_from_terminal_edges(terms, edges), TECH).value
            res = synthesize_topology(terms, TECH)
            gains.append(1.0 - res.ard / mst_ard)
        assert sum(gains) / len(gains) > 0.02  # >2% average diameter gain

    def test_result_consistency(self):
        terms = make_terms(1, 6)
        res = synthesize_topology(terms, TECH)
        # the reported ARD/WL match an independent rebuild from the edges
        rebuilt = tree_from_terminal_edges(terms, res.terminal_edges)
        assert ard(rebuilt, TECH).value == pytest.approx(res.ard)
        assert rebuilt.total_wire_length() == pytest.approx(res.wirelength)
        assert res.history[0] >= res.history[-1]
        assert res.score == pytest.approx(res.history[-1])

    def test_wirelength_weight_pulls_toward_mst(self):
        terms = make_terms(2, 7)
        edges = rectilinear_mst([(t.x, t.y) for t in terms])
        mst_wl = tree_from_terminal_edges(terms, edges).total_wire_length()
        free = synthesize_topology(terms, TECH, wirelength_weight=0.0)
        tight = synthesize_topology(terms, TECH, wirelength_weight=1000.0)
        # an enormous WL weight forbids any WL increase over the MST
        assert tight.wirelength <= mst_wl + 1e-6
        assert free.ard <= tight.ard + 1e-9

    def test_deterministic(self):
        terms = make_terms(3, 6)
        a = synthesize_topology(terms, TECH)
        b = synthesize_topology(terms, TECH)
        assert a.terminal_edges == b.terminal_edges
        assert a.ard == b.ard

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_topology(make_terms(0, 5)[:1], TECH)
        with pytest.raises(ValueError):
            synthesize_topology(make_terms(0, 5), TECH, wirelength_weight=-1.0)

    def test_iteration_cap(self):
        terms = make_terms(4, 7)
        res = synthesize_topology(terms, TECH, max_iterations=1)
        assert res.iterations <= 1


class TestScoreMemo:
    def test_counters_populated(self):
        terms = make_terms(0, 7)
        res = synthesize_topology(terms, TECH)
        assert res.evaluations >= 1
        # the same reconnection candidates recur across edge-scan rounds,
        # and the chosen move is never re-scored: hits are guaranteed
        # whenever the search iterates
        if res.iterations > 1:
            assert res.memo_hits >= 1

    def test_memo_does_not_change_outcome(self):
        # determinism across repeated runs covers the memo: a stale or
        # mis-keyed entry would make the second run diverge
        terms = make_terms(5, 8)
        a = synthesize_topology(terms, TECH)
        b = synthesize_topology(terms, TECH)
        assert a.terminal_edges == b.terminal_edges
        assert a.ard == b.ard and a.evaluations == b.evaluations

    def test_reported_edges_are_canonical(self):
        terms = make_terms(1, 6)
        res = synthesize_topology(terms, TECH)
        assert list(res.terminal_edges) == sorted(
            (min(a, b), max(a, b)) for a, b in res.terminal_edges
        )


class TestMSRIObjective:
    def make_options(self, **kw):
        from repro.netgen import repeater_insertion_options

        return repeater_insertion_options(**kw)

    def test_requires_options(self):
        with pytest.raises(ValueError, match="msri_options"):
            synthesize_topology(make_terms(0, 4), TECH, objective="msri")

    def test_rejects_engine_combination(self):
        opts = self.make_options()
        with pytest.raises(TypeError):
            synthesize_topology(
                make_terms(0, 4), TECH, objective="msri",
                msri_options=opts, engine="reference",
            )
        with pytest.raises(TypeError):
            synthesize_topology(
                make_terms(0, 4), TECH, msri_options=opts
            )
        with pytest.raises(ValueError, match="objective"):
            synthesize_topology(make_terms(0, 4), TECH, objective="bogus")

    def test_scores_optimized_net(self):
        from repro.core import MSRICache, insert_repeaters

        terms = make_terms(2, 5)
        opts = self.make_options(quantize_bound=True)
        cache = MSRICache()
        res = synthesize_topology(
            terms, TECH, objective="msri", msri_options=opts,
            msri_cache=cache, max_iterations=2,
        )
        # the reported score is the post-insertion min ARD of the tree
        rebuilt = tree_from_terminal_edges(terms, res.terminal_edges)
        cold = insert_repeaters(rebuilt, TECH, opts)
        assert res.ard == pytest.approx(cold.min_ard().ard)
        # sibling candidates share subtrees: the cache must have hit
        assert cache.hits >= 1
