"""Smoke tests: every example script must run cleanly and print its story."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "examples")


def run_example(name, timeout=600):
    path = os.path.join(EXAMPLES_DIR, name)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


def test_examples_directory_contents():
    names = sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))
    assert "quickstart.py" in names
    assert len(names) >= 3


def test_quickstart():
    out = run_example("quickstart.py")
    assert "unoptimized RC-diameter" in out
    assert "repeaters" in out


def test_driver_sizing_tradeoff():
    out = run_example("driver_sizing_tradeoff.py")
    assert "best sizing diameter" in out
    assert "repeater" in out


def test_ard_analysis():
    out = run_example("ard_analysis.py")
    assert "yes" in out
    assert "NO" not in out


def test_memory_bus():
    out = run_example("memory_bus.py")
    assert "critical path" in out
    assert "ctl" in out


@pytest.mark.slow
def test_bus_optimization():
    out = run_example("bus_optimization.py")
    assert "19.6" in out
    assert "unoptimized topology" in out


def test_signoff():
    out = run_example("signoff.py")
    assert "Elmore replay" in out
    assert "agree: True" in out
    assert "process corners" in out


def test_pairwise_constraints():
    out = run_example("pairwise_constraints.py")
    assert "optimal (Problem 2.1)" in out
    assert "greedy pairwise repair" in out


@pytest.mark.slow
def test_topology_synthesis():
    out = run_example("topology_synthesis.py")
    assert "ARD-driven topology" in out
    assert "after optimal repeater insertion" in out
