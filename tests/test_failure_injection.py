"""Failure-injection tests: malformed inputs must fail loudly and early.

A production library's error surface is part of its API: every constructor
and entry point should reject inconsistent inputs with a clear exception
rather than silently producing wrong timing numbers.
"""

import json
import math

import pytest

from repro.core.msri import MSRIOptions, insert_repeaters
from repro.io import tree_from_dict, tree_to_dict
from repro.rctree import ElmoreAnalyzer, TreeBuilder
from repro.rctree.topology import Node, NodeKind, RoutingTree
from repro.tech import (
    Buffer,
    Repeater,
    RepeaterLibrary,
    Technology,
    Terminal,
)

from .conftest import make_terminal, two_pin_net, y_net

TECH = Technology(0.1, 0.01)
REP = Repeater.from_buffer_pair(Buffer("b", 20.0, 50.0, 0.25), name="rep")


class TestCorruptTrees:
    def test_parent_cycle(self):
        term = make_terminal("a", 0, 0)
        nodes = [
            Node(0, 0, 0, NodeKind.TERMINAL, term),
            Node(1, 1, 0, NodeKind.STEINER),
            Node(2, 2, 0, NodeKind.STEINER),
        ]
        with pytest.raises(ValueError):
            RoutingTree(nodes, [None, 2, 1], [0.0, 1.0, 1.0])

    def test_two_roots(self):
        term = make_terminal("a", 0, 0)
        nodes = [
            Node(0, 0, 0, NodeKind.TERMINAL, term),
            Node(1, 1, 0, NodeKind.TERMINAL, make_terminal("b", 1, 0)),
        ]
        with pytest.raises(ValueError, match="exactly one root"):
            RoutingTree(nodes, [None, None], [0.0, 0.0])

    def test_root_with_edge_length(self):
        term = make_terminal("a", 0, 0)
        nodes = [
            Node(0, 0, 0, NodeKind.TERMINAL, term),
            Node(1, 1, 0, NodeKind.TERMINAL, make_terminal("b", 1, 0)),
        ]
        with pytest.raises(ValueError, match="zero edge length"):
            RoutingTree(nodes, [None, 0], [5.0, 1.0])

    def test_negative_edge_length(self):
        term = make_terminal("a", 0, 0)
        nodes = [
            Node(0, 0, 0, NodeKind.TERMINAL, term),
            Node(1, 1, 0, NodeKind.TERMINAL, make_terminal("b", 1, 0)),
        ]
        with pytest.raises(ValueError, match="negative"):
            RoutingTree(nodes, [None, 0], [0.0, -1.0])

    def test_self_parent(self):
        term = make_terminal("a", 0, 0)
        nodes = [
            Node(0, 0, 0, NodeKind.TERMINAL, term),
            Node(1, 1, 0, NodeKind.STEINER),
        ]
        with pytest.raises(ValueError):
            RoutingTree(nodes, [None, 1], [0.0, 1.0])

    def test_length_array_mismatch(self):
        term = make_terminal("a", 0, 0)
        with pytest.raises(ValueError, match="mismatch"):
            RoutingTree([Node(0, 0, 0, NodeKind.TERMINAL, term)], [None], [])


class TestCorruptAssignments:
    def test_unknown_node(self):
        t = two_pin_net()
        with pytest.raises(ValueError, match="unknown node"):
            ElmoreAnalyzer(t, TECH, {999: REP})

    def test_negative_node(self):
        t = two_pin_net()
        with pytest.raises(ValueError, match="unknown node"):
            ElmoreAnalyzer(t, TECH, {-1: REP})

    def test_repeater_on_terminal(self):
        t = two_pin_net()
        with pytest.raises(ValueError, match="insertion"):
            ElmoreAnalyzer(t, TECH, {t.root: REP})


class TestCorruptSerializedNets:
    def test_missing_schema(self):
        d = tree_to_dict(y_net())
        del d["schema"]
        with pytest.raises(ValueError, match="schema"):
            tree_from_dict(d)

    def test_terminal_without_payload(self):
        d = tree_to_dict(y_net())
        for entry in d["nodes"]:
            entry.pop("terminal", None)
        with pytest.raises(KeyError):
            tree_from_dict(d)

    def test_corrupt_parent_pointer(self):
        d = tree_to_dict(y_net())
        d["parent"] = [None] * len(d["parent"])
        with pytest.raises(ValueError):
            tree_from_dict(d)

    def test_json_roundtrip_of_corruption_detected(self):
        d = json.loads(json.dumps(tree_to_dict(y_net())))
        d["edge_length"][1] = -5.0
        with pytest.raises(ValueError):
            tree_from_dict(d)


class TestDegenerateOptimizationInputs:
    def test_no_insertion_points_still_works(self):
        t = two_pin_net(with_insertion=False)
        res = insert_repeaters(t, TECH, MSRIOptions(library=RepeaterLibrary([REP])))
        assert len(res.solutions) == 1
        assert res.solutions[0].repeater_count() == 0

    def test_net_without_sources_yields_empty_suite(self):
        b = TreeBuilder()
        k1 = b.add_terminal(make_terminal("k1", 0, 0).as_sink_only())
        k2 = b.add_terminal(make_terminal("k2", 500, 0).as_sink_only())
        b.connect(k1, k2)
        t = b.build(root=k1)
        res = insert_repeaters(t, TECH, MSRIOptions(library=RepeaterLibrary([REP])))
        assert res.solutions == ()

    def test_zero_spec_unachievable(self):
        t = two_pin_net()
        res = insert_repeaters(t, TECH, MSRIOptions(library=RepeaterLibrary([REP])))
        assert res.min_cost_meeting(0.0) is None

    def test_infinite_spec_gives_min_cost(self):
        t = two_pin_net()
        res = insert_repeaters(t, TECH, MSRIOptions(library=RepeaterLibrary([REP])))
        assert res.min_cost_meeting(math.inf).cost == res.min_cost().cost


class TestTerminalEdgeCases:
    def test_zero_capacitance_terminal(self):
        b = TreeBuilder()
        a = b.add_terminal(make_terminal("a", 0, 0, cap=0.0))
        z = b.add_terminal(make_terminal("z", 100, 0, cap=0.0))
        b.connect(a, z)
        t = b.build(root=a)
        an = ElmoreAnalyzer(t, TECH)
        assert an.ard_bruteforce() > 0.0

    def test_coincident_terminals(self):
        b = TreeBuilder()
        a = b.add_terminal(make_terminal("a", 100, 100))
        z = b.add_terminal(make_terminal("z", 100, 100))
        b.connect(a, z)
        t = b.build(root=a)
        an = ElmoreAnalyzer(t, TECH)
        # zero wire: delay is driver-only
        assert an.path_delay(t.terminal_by_name("a"), t.terminal_by_name("z")) == (
            pytest.approx(100.0 * 1.0)
        )

    def test_huge_net_does_not_overflow(self):
        # a pathological 1-metre wire: values stay finite
        t = two_pin_net(length=1_000_000.0, with_insertion=False)
        value = ElmoreAnalyzer(t, TECH).ard_bruteforce()
        assert math.isfinite(value) and value > 0
