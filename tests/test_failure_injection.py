"""Failure-injection tests: malformed inputs must fail loudly and early.

A production library's error surface is part of its API: every constructor
and entry point should reject inconsistent inputs with a clear exception
rather than silently producing wrong timing numbers.  The campaign section
goes further and injects *runtime* faults — raising, hanging, and crashing
workers — asserting the sweep still completes with structured failure
records and resumes cleanly.
"""

import json
import math

import pytest

from repro.analysis.campaign import CampaignConfig, run_campaign
from repro.analysis.executor import Job, run_jobs
from repro.core.msri import MSRIOptions, insert_repeaters
from repro.io import tree_from_dict, tree_to_dict
from repro.rctree import ElmoreAnalyzer, EvalContext, TreeBuilder
from repro.rctree.topology import Node, NodeKind, RoutingTree
from repro.tech import (
    Buffer,
    Repeater,
    RepeaterLibrary,
    Technology,
    Terminal,
)

from . import _campaign_faults as faults
from .conftest import make_terminal, two_pin_net, y_net

TECH = Technology(0.1, 0.01)
REP = Repeater.from_buffer_pair(Buffer("b", 20.0, 50.0, 0.25), name="rep")


class TestCorruptTrees:
    def test_parent_cycle(self):
        term = make_terminal("a", 0, 0)
        nodes = [
            Node(0, 0, 0, NodeKind.TERMINAL, term),
            Node(1, 1, 0, NodeKind.STEINER),
            Node(2, 2, 0, NodeKind.STEINER),
        ]
        with pytest.raises(ValueError):
            RoutingTree(nodes, [None, 2, 1], [0.0, 1.0, 1.0])

    def test_two_roots(self):
        term = make_terminal("a", 0, 0)
        nodes = [
            Node(0, 0, 0, NodeKind.TERMINAL, term),
            Node(1, 1, 0, NodeKind.TERMINAL, make_terminal("b", 1, 0)),
        ]
        with pytest.raises(ValueError, match="exactly one root"):
            RoutingTree(nodes, [None, None], [0.0, 0.0])

    def test_root_with_edge_length(self):
        term = make_terminal("a", 0, 0)
        nodes = [
            Node(0, 0, 0, NodeKind.TERMINAL, term),
            Node(1, 1, 0, NodeKind.TERMINAL, make_terminal("b", 1, 0)),
        ]
        with pytest.raises(ValueError, match="zero edge length"):
            RoutingTree(nodes, [None, 0], [5.0, 1.0])

    def test_negative_edge_length(self):
        term = make_terminal("a", 0, 0)
        nodes = [
            Node(0, 0, 0, NodeKind.TERMINAL, term),
            Node(1, 1, 0, NodeKind.TERMINAL, make_terminal("b", 1, 0)),
        ]
        with pytest.raises(ValueError, match="negative"):
            RoutingTree(nodes, [None, 0], [0.0, -1.0])

    def test_self_parent(self):
        term = make_terminal("a", 0, 0)
        nodes = [
            Node(0, 0, 0, NodeKind.TERMINAL, term),
            Node(1, 1, 0, NodeKind.STEINER),
        ]
        with pytest.raises(ValueError):
            RoutingTree(nodes, [None, 1], [0.0, 1.0])

    def test_length_array_mismatch(self):
        term = make_terminal("a", 0, 0)
        with pytest.raises(ValueError, match="mismatch"):
            RoutingTree([Node(0, 0, 0, NodeKind.TERMINAL, term)], [None], [])


class TestCorruptAssignments:
    def test_unknown_node(self):
        t = two_pin_net()
        with pytest.raises(ValueError, match="unknown node"):
            ElmoreAnalyzer(t, TECH, context=EvalContext(assignment={999: REP}))

    def test_negative_node(self):
        t = two_pin_net()
        with pytest.raises(ValueError, match="unknown node"):
            ElmoreAnalyzer(t, TECH, context=EvalContext(assignment={-1: REP}))

    def test_repeater_on_terminal(self):
        t = two_pin_net()
        with pytest.raises(ValueError, match="insertion"):
            ElmoreAnalyzer(t, TECH, context=EvalContext(assignment={t.root: REP}))


class TestCorruptSerializedNets:
    def test_missing_schema(self):
        d = tree_to_dict(y_net())
        del d["schema"]
        with pytest.raises(ValueError, match="schema"):
            tree_from_dict(d)

    def test_terminal_without_payload(self):
        d = tree_to_dict(y_net())
        for entry in d["nodes"]:
            entry.pop("terminal", None)
        with pytest.raises(KeyError):
            tree_from_dict(d)

    def test_corrupt_parent_pointer(self):
        d = tree_to_dict(y_net())
        d["parent"] = [None] * len(d["parent"])
        with pytest.raises(ValueError):
            tree_from_dict(d)

    def test_json_roundtrip_of_corruption_detected(self):
        d = json.loads(json.dumps(tree_to_dict(y_net())))
        d["edge_length"][1] = -5.0
        with pytest.raises(ValueError):
            tree_from_dict(d)


class TestDegenerateOptimizationInputs:
    def test_no_insertion_points_still_works(self):
        t = two_pin_net(with_insertion=False)
        res = insert_repeaters(t, TECH, MSRIOptions(library=RepeaterLibrary([REP])))
        assert len(res.solutions) == 1
        assert res.solutions[0].repeater_count() == 0

    def test_net_without_sources_yields_empty_suite(self):
        b = TreeBuilder()
        k1 = b.add_terminal(make_terminal("k1", 0, 0).as_sink_only())
        k2 = b.add_terminal(make_terminal("k2", 500, 0).as_sink_only())
        b.connect(k1, k2)
        t = b.build(root=k1)
        res = insert_repeaters(t, TECH, MSRIOptions(library=RepeaterLibrary([REP])))
        assert res.solutions == ()

    def test_zero_spec_unachievable(self):
        t = two_pin_net()
        res = insert_repeaters(t, TECH, MSRIOptions(library=RepeaterLibrary([REP])))
        assert res.min_cost_meeting(0.0) is None

    def test_infinite_spec_gives_min_cost(self):
        t = two_pin_net()
        res = insert_repeaters(t, TECH, MSRIOptions(library=RepeaterLibrary([REP])))
        assert res.min_cost_meeting(math.inf).cost == res.min_cost().cost


class TestCampaignFaultInjection:
    """Injected worker faults: the sweep completes, records, and resumes."""

    CFG = CampaignConfig(seeds=(0, 1, 2), sizes=(4,), label="faults")

    def test_raising_job_becomes_structured_failure(self):
        campaign = run_campaign(self.CFG, job_fn=faults.raise_on_seed1)
        assert len(campaign.results) == 2
        assert len(campaign.failures) == 1
        failure = campaign.failure_for(1, 4)
        assert failure.error_type == "RuntimeError"
        assert "injected failure" in failure.message
        assert failure.attempts == 1
        assert campaign.result_for(1, 4) is None

    def test_raising_job_in_pool_mode(self):
        campaign = run_campaign(
            self.CFG, workers=2, job_fn=faults.raise_on_seed1
        )
        assert len(campaign.results) == 2
        assert campaign.failure_for(1, 4).error_type == "RuntimeError"

    def test_hung_worker_is_killed_at_the_deadline(self):
        campaign = run_campaign(
            self.CFG, workers=2, timeout=1.0, job_fn=faults.hang_on_seed1
        )
        assert len(campaign.results) == 2
        failure = campaign.failure_for(1, 4)
        assert failure.error_type == "JobTimeout"
        assert "1.0s deadline" in failure.message

    def test_crashed_worker_is_respawned(self):
        campaign = run_campaign(
            self.CFG, workers=2, job_fn=faults.die_on_seed1
        )
        assert len(campaign.results) == 2  # the pool survived the crash
        assert campaign.failure_for(1, 4).error_type == "WorkerCrashed"

    def test_transient_failure_is_retried_to_success(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_MARKER", str(tmp_path / "marker"))
        campaign = run_campaign(
            self.CFG,
            max_retries=1,
            retry_backoff_s=0.01,
            job_fn=faults.transient_failure_seed1,
        )
        assert campaign.failures == []
        assert len(campaign.results) == 3
        attempts = {m.key[0]: m.attempts for m in campaign.metrics}
        assert attempts == {0: 1, 1: 2, 2: 1}

    def test_resume_reruns_only_the_failed_job(self, tmp_path, monkeypatch):
        ckpt = str(tmp_path / "c.jsonl")
        failed = run_campaign(
            self.CFG, checkpoint_path=ckpt, job_fn=faults.raise_on_seed1
        )
        assert len(failed.failures) == 1

        log = tmp_path / "calls.log"
        monkeypatch.setenv("REPRO_FAULT_CALL_LOG", str(log))
        resumed = run_campaign(
            self.CFG,
            checkpoint_path=ckpt,
            resume=True,
            job_fn=faults.fake_instance,
        )
        assert resumed.failures == []
        assert len(resumed.results) == 3
        executed = log.read_text().splitlines()
        assert executed == ["1,4,800.0"]  # only the failed grid point

    def test_timeout_without_workers_is_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_campaign(self.CFG, timeout=1.0)

    def test_duplicate_job_keys_are_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_jobs(len, [Job(key=(1,), args=("a",))] * 2)


class TestTerminalEdgeCases:
    def test_zero_capacitance_terminal(self):
        b = TreeBuilder()
        a = b.add_terminal(make_terminal("a", 0, 0, cap=0.0))
        z = b.add_terminal(make_terminal("z", 100, 0, cap=0.0))
        b.connect(a, z)
        t = b.build(root=a)
        an = ElmoreAnalyzer(t, TECH)
        assert an.ard_bruteforce() > 0.0

    def test_coincident_terminals(self):
        b = TreeBuilder()
        a = b.add_terminal(make_terminal("a", 100, 100))
        z = b.add_terminal(make_terminal("z", 100, 100))
        b.connect(a, z)
        t = b.build(root=a)
        an = ElmoreAnalyzer(t, TECH)
        # zero wire: delay is driver-only
        assert an.path_delay(t.terminal_by_name("a"), t.terminal_by_name("z")) == (
            pytest.approx(100.0 * 1.0)
        )

    def test_huge_net_does_not_overflow(self):
        # a pathological 1-metre wire: values stay finite
        t = two_pin_net(length=1_000_000.0, with_insertion=False)
        value = ElmoreAnalyzer(t, TECH).ard_bruteforce()
        assert math.isfinite(value) and value > 0
