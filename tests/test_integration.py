"""Integration tests: full paper-workload flows across module boundaries."""

import json
import math

import pytest

from repro import (
    MSRIOptions,
    Repeater,
    ard,
    driver_sizing_options,
    insert_repeaters,
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)
from repro.core.driver_sizing import apply_option_to_tree
from repro.rctree import EvalContext
from repro.io import (
    assignment_from_dict,
    assignment_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.netgen import fixed_1x_option


@pytest.fixture(scope="module")
def instance():
    tree = paper_instance(seed=5, n_pins=6)
    tech = paper_technology()
    suite = insert_repeaters(tree, tech, repeater_insertion_options())
    return tree, tech, suite


class TestPaperWorkloadFlow:
    def test_suite_is_nonempty_and_sane(self, instance):
        tree, tech, suite = instance
        assert len(suite.solutions) >= 2
        assert suite.min_cost().cost == pytest.approx(12.0)  # 2 per pin
        assert suite.min_ard().ard < suite.min_cost().ard

    def test_every_solution_replays_exactly(self, instance):
        """Theorem 4.1 achievability on a realistic workload."""
        tree, tech, suite = instance
        dressed = apply_option_to_tree(tree, fixed_1x_option())
        for s in suite.solutions:
            reps = {
                k: v for k, v in s.assignment().items() if isinstance(v, Repeater)
            }
            replay = ard(dressed, tech, context=EvalContext(assignment=reps))
            assert replay.value == pytest.approx(s.ard, rel=1e-9)

    def test_spec_sweep_monotone(self, instance):
        """min_cost_meeting is monotone: looser specs never cost more."""
        tree, tech, suite = instance
        specs = sorted({s.ard for s in suite.solutions})
        costs = []
        for spec in specs:
            sol = suite.min_cost_meeting(spec)
            assert sol is not None
            assert sol.ard <= spec + 1e-9
            costs.append(sol.cost)
        assert costs == sorted(costs, reverse=True)

    def test_serialize_optimize_roundtrip(self, instance):
        """net -> JSON -> net -> optimize gives an identical frontier."""
        tree, tech, suite = instance
        restored = tree_from_dict(json.loads(json.dumps(tree_to_dict(tree))))
        suite2 = insert_repeaters(restored, tech, repeater_insertion_options())
        assert [(s.cost, s.ard) for s in suite.solutions] == pytest.approx(
            [(s.cost, s.ard) for s in suite2.solutions]
        )

    def test_assignment_roundtrip_preserves_timing(self, instance):
        tree, tech, suite = instance
        best = suite.min_ard()
        reps = {k: v for k, v in best.assignment().items()
                if isinstance(v, Repeater)}
        restored = assignment_from_dict(
            json.loads(json.dumps(assignment_to_dict(reps)))
        )
        dressed = apply_option_to_tree(tree, fixed_1x_option())
        assert ard(dressed, tech, context=EvalContext(assignment=restored)).value == pytest.approx(best.ard)


class TestSizingVsRepeaterConsistency:
    def test_shared_baseline(self):
        """Both modes agree on the min-cost (all-1X, no repeater) point."""
        tree = paper_instance(seed=2, n_pins=5)
        tech = paper_technology()
        rep = insert_repeaters(tree, tech, repeater_insertion_options())
        siz = insert_repeaters(tree, tech, driver_sizing_options())
        assert rep.min_cost().cost == pytest.approx(siz.min_cost().cost)
        assert rep.min_cost().ard == pytest.approx(siz.min_cost().ard)

    def test_combined_mode_dominates_both(self):
        """Sizing+repeaters together can only improve on either alone."""
        from repro.netgen import paper_driver_options, paper_repeater_library

        tree = paper_instance(seed=2, n_pins=5)
        tech = paper_technology()
        rep = insert_repeaters(tree, tech, repeater_insertion_options())
        siz = insert_repeaters(tree, tech, driver_sizing_options())
        both = insert_repeaters(
            tree,
            tech,
            MSRIOptions(
                library=paper_repeater_library(),
                driver_options=paper_driver_options(),
            ),
        )
        for other in (rep, siz):
            for cost, ardv in other.tradeoff():
                best = min(
                    s.ard for s in both.solutions if s.cost <= cost + 1e-9
                )
                assert best <= ardv + 1e-6


class TestStatsAcrossRun:
    def test_pruning_is_effective(self, instance):
        _, _, suite = instance
        st = suite.stats
        assert st.solutions_after_pruning < st.solutions_generated
        assert st.max_segments >= 1
        assert len(st.set_sizes) == st.nodes_processed
