"""Differential tests for the incremental ARD engine and the TimingEngine API.

The load-bearing property: :class:`IncrementalARD` shares the Fig. 2 combine
step with the full :func:`compute_ard` pass, so after *any* edit sequence
its value and critical pair must equal a fresh full pass **bit for bit** —
no tolerances.  Independence from the shared implementation comes from the
O(n²) :func:`bruteforce_ard` / :meth:`ard_bruteforce` oracles, checked to
float tolerance.
"""

from __future__ import annotations

import dataclasses
import random

import numpy as np
import pytest

from repro.baselines.greedy import greedy_insertion
from repro.check import contracts
from repro.core.ard import ard, compute_ard
from repro.core.msri import MSRIOptions, insert_repeaters
from repro.netgen import paper_repeater_library, paper_technology, random_net
from repro.netgen.workloads import paper_net_spec
from repro.rctree import (
    ElmoreAnalyzer,
    EvalContext,
    IncrementalARD,
    SlewAnalyzer,
    TimingEngine,
)
from repro.rctree.topology import Node, NodeKind, RoutingTree
from repro.sim import SimulationEngine
from repro.tech import Repeater, Technology

from .conftest import make_terminal, random_topology, two_pin_net, y_net

TECH = Technology(unit_resistance=0.1, unit_capacitance=0.01, name="test")
PAPER_TECH = paper_technology()
OPTIONS = paper_repeater_library().oriented_options()


def shadow_with_overrides(tree, overrides):
    """The tree with terminal payloads replaced — the edit expressed statically."""
    nodes = []
    for n in tree.nodes:
        if n.kind is NodeKind.TERMINAL and n.index in overrides:
            nodes.append(Node(n.index, n.x, n.y, n.kind, overrides[n.index]))
        else:
            nodes.append(n)
    return RoutingTree(
        nodes,
        [tree.parent(i) for i in range(len(tree))],
        [tree.edge_length(i) for i in range(len(tree))],
    )


def full_pass(tree, context):
    return compute_ard(ElmoreAnalyzer(tree, PAPER_TECH, context=context))


class TestFreshBuild:
    def test_matches_compute_ard_bitwise(self):
        for seed in range(8):
            tree = random_net(seed, 8 + seed, paper_net_spec(), spacing=800.0)
            inc = IncrementalARD(tree, PAPER_TECH).evaluate()
            full = full_pass(tree, EvalContext())
            assert inc.value == full.value
            assert (inc.source, inc.sink) == (full.source, full.sink)

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            t = random_topology(rng, n_terminals=int(rng.integers(2, 8)))
            engine = IncrementalARD(t, TECH)
            brute = ElmoreAnalyzer(t, TECH).ard_bruteforce()
            assert engine.evaluate().value == pytest.approx(brute, rel=1e-9)

    def test_empty_timing_table(self):
        res = IncrementalARD(y_net(), TECH).evaluate()
        assert res.timing == {}
        assert res.is_finite


class TestRandomizedEditSequence:
    """The ISSUE's 500-mixed-edit differential: after *every* edit the
    incremental value and critical pair equal a fresh full pass exactly,
    and (sampled) the independent O(n²) brute force to tolerance."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_edit_sequence_differential(self, seed):
        tree = random_net(seed, 12, paper_net_spec(), spacing=800.0)
        engine = IncrementalARD(tree, PAPER_TECH)
        rng = random.Random(1000 + seed)
        insertion_points = list(tree.insertion_indices())
        terminals = list(tree.terminal_indices())
        edges = [i for i in range(len(tree)) if tree.parent(i) is not None]

        assignment, widths, overrides = {}, {}, {}
        for step in range(250):
            kind = rng.random()
            if kind < 0.4:
                idx = rng.choice(insertion_points)
                if idx in assignment and rng.random() < 0.4:
                    engine.set_assignment(idx, None)
                    assignment.pop(idx)
                else:
                    rep = rng.choice(OPTIONS)
                    engine.set_assignment(idx, rep)
                    assignment[idx] = rep
            elif kind < 0.7:
                edge = rng.choice(edges)
                w = rng.choice([0.5, 1.0, 2.0, 4.0])
                engine.set_wire_width(edge, w)
                widths[edge] = w
            else:
                t = rng.choice(terminals)
                base = tree.node(t).terminal
                override = dataclasses.replace(
                    base,
                    capacitance=base.capacitance * rng.choice([0.5, 1.0, 1.5]),
                    resistance=base.resistance * rng.choice([0.8, 1.0, 1.25]),
                )
                engine.set_terminal(t, override)
                overrides[t] = override

            inc = engine.evaluate()
            shadow = shadow_with_overrides(tree, overrides)
            full = compute_ard(
                ElmoreAnalyzer(
                    shadow,
                    PAPER_TECH,
                    context=EvalContext(assignment=assignment, wire_widths=widths),
                )
            )
            assert inc.value == full.value, f"step {step}"
            assert (inc.source, inc.sink) == (full.source, full.sink), f"step {step}"
            if step % 25 == 0:
                brute = ElmoreAnalyzer(
                    shadow,
                    PAPER_TECH,
                    context=EvalContext(assignment=assignment, wire_widths=widths),
                ).ard_bruteforce()
                assert inc.value == pytest.approx(brute, rel=1e-9)

    def test_wire_width_accepts_wireclass(self):
        from repro.tech import WireClass

        t = two_pin_net()
        engine = IncrementalARD(t, TECH)
        edge = next(i for i in range(len(t)) if t.parent(i) is not None)
        engine.set_wire_width(edge, WireClass("w2", width=2.0, cost_per_um=0.0))
        ref = ard(t, TECH, context=EvalContext(wire_widths={edge: 2.0}))
        assert engine.evaluate().value == ref.value
        engine.set_wire_width(edge, None)
        assert engine.evaluate().value == ard(t, TECH).value


class TestMutationOps:
    def test_reroot_matches_fresh_engine(self):
        for seed in range(3):
            tree = random_net(seed, 9, paper_net_spec(), spacing=800.0)
            engine = IncrementalARD(tree, PAPER_TECH)
            baseline = engine.evaluate().value
            for new_root in tree.terminal_indices()[1:3]:
                engine2 = IncrementalARD(tree, PAPER_TECH)
                engine2.reroot(new_root)
                fresh = IncrementalARD(tree.rerooted(new_root), PAPER_TECH)
                a, b = engine2.evaluate(), fresh.evaluate()
                assert a.value == b.value
                assert (a.source, a.sink) == (b.source, b.sink)
                # the ARD is a property of the net, not of the rooting
                assert a.value == pytest.approx(baseline, rel=1e-9)

    def test_reroot_remaps_wire_widths(self):
        tree = y_net()
        other_root = next(
            i for i in tree.terminal_indices() if i != tree.root
        )
        widths = {
            i: 2.0 for i in range(len(tree)) if tree.parent(i) is not None
        }
        engine = IncrementalARD(
            tree, TECH, context=EvalContext(wire_widths=widths)
        )
        engine.reroot(other_root)
        rerooted = tree.rerooted(other_root)
        ref_widths = {
            i: 2.0 for i in range(len(rerooted)) if rerooted.parent(i) is not None
        }
        ref = ard(rerooted, TECH, context=EvalContext(wire_widths=ref_widths))
        assert engine.evaluate().value == ref.value

    def test_set_wire_scale_matches_scaled_technology(self):
        tree = random_net(3, 10, paper_net_spec(), spacing=800.0)
        engine = IncrementalARD(tree, PAPER_TECH)
        engine.set_wire_scale(resistance_factor=1.3, capacitance_factor=0.85)
        scaled = Technology(
            PAPER_TECH.unit_resistance * 1.3,
            PAPER_TECH.unit_capacitance * 0.85,
            name="scaled",
            extras=dict(PAPER_TECH.extras),
        )
        ref = compute_ard(ElmoreAnalyzer(tree, scaled))
        assert engine.evaluate().value == pytest.approx(ref.value, rel=1e-12)
        # scales are absolute: returning to 1.0 restores the nominal bitwise
        engine.set_wire_scale()
        assert engine.evaluate().value == ard(tree, PAPER_TECH).value

    def test_validation(self):
        tree = two_pin_net()
        engine = IncrementalARD(tree, TECH)
        with pytest.raises(ValueError):
            engine.set_assignment(tree.root, OPTIONS[0])  # not an insertion node
        with pytest.raises(ValueError):
            engine.set_wire_width(tree.root, 2.0)  # root names no edge
        with pytest.raises(ValueError):
            engine.set_wire_width(3, 0.0)
        with pytest.raises(ValueError):
            engine.set_wire_scale(resistance_factor=-1.0)
        with pytest.raises(ValueError):
            engine.set_terminal(next(iter(tree.insertion_indices())),
                                make_terminal("x", 0, 0))


class TestTimingEngineProtocol:
    def test_all_engines_conform(self):
        t = y_net()
        engines = [
            ElmoreAnalyzer(t, TECH),
            SlewAnalyzer(t, TECH),
            IncrementalARD(t, TECH),
            SimulationEngine(t, TECH),
        ]
        for engine in engines:
            assert isinstance(engine, TimingEngine)
            result = engine.evaluate(t)
            assert result.is_finite
            assert result.source is not None and result.sink is not None

    def test_engines_agree_on_unbuffered_net(self):
        t = y_net()
        reference = ard(t, TECH).value
        for engine in (IncrementalARD(t, TECH), SimulationEngine(t, TECH)):
            assert engine.evaluate().value == pytest.approx(reference, rel=1e-9)
        # the slew engine collapses to plain Elmore at slew_to_delay = 0
        from repro.rctree.slew import SlewModel

        slew = SlewAnalyzer(t, TECH, model=SlewModel(slew_to_delay=0.0))
        assert slew.evaluate().value == pytest.approx(reference, rel=1e-9)

    def test_evaluate_rejects_foreign_tree(self):
        t, other = y_net(), two_pin_net()
        for engine in (
            ElmoreAnalyzer(t, TECH),
            SlewAnalyzer(t, TECH),
            IncrementalARD(t, TECH),
            SimulationEngine(t, TECH),
        ):
            with pytest.raises(ValueError):
                engine.evaluate(other)

    def test_path_delay_matches_elmore(self):
        tree = random_net(5, 10, paper_net_spec(), spacing=800.0)
        rng = random.Random(5)
        assignment = {
            idx: rng.choice(OPTIONS)
            for idx in list(tree.insertion_indices())[::3]
        }
        context = EvalContext(assignment=assignment)
        engine = IncrementalARD(tree, PAPER_TECH, context=context)
        analyzer = ElmoreAnalyzer(tree, PAPER_TECH, context=context)
        sim = SimulationEngine(tree, PAPER_TECH, context=context)
        terminals = tree.terminal_indices()
        for u in terminals:
            if not tree.node(u).terminal.is_source:
                continue
            for v in terminals:
                if v == u:
                    continue
                ref = analyzer.path_delay(u, v)
                assert engine.path_delay(u, v) == pytest.approx(ref, rel=1e-12)
                assert sim.path_delay(u, v) == pytest.approx(ref, rel=1e-9)


class TestEvalContextV2:
    """v2.0: the pre-context per-knob shims are gone — TypeError, not warning."""

    def test_legacy_positional_assignment_raises(self):
        t = y_net()
        with pytest.raises(TypeError):
            ard(t, TECH, {})
        with pytest.raises(TypeError):
            ElmoreAnalyzer(t, TECH, {})

    def test_legacy_keywords_raise(self):
        t = two_pin_net()
        edge = next(i for i in range(len(t)) if t.parent(i) is not None)
        with pytest.raises(TypeError):
            ard(t, TECH, wire_widths={edge: 2.0})
        with pytest.raises(TypeError):
            ElmoreAnalyzer(t, TECH, assignment={})
        with pytest.raises(TypeError):
            ard(t, TECH, include_companion_cap=True)

    def test_context_form_does_not_warn(self):
        import warnings

        t = y_net()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ard(t, TECH, context=EvalContext())
            ElmoreAnalyzer(t, TECH, context=EvalContext())
            ard(t, TECH)
            ElmoreAnalyzer(t, TECH)

    def test_analyzer_context_roundtrip(self):
        t = two_pin_net()
        edge = next(i for i in range(len(t)) if t.parent(i) is not None)
        ctx = EvalContext(wire_widths={edge: 2.0}, include_companion_cap=True)
        an = ElmoreAnalyzer(t, TECH, context=ctx)
        assert an.wire_widths == {edge: 2.0}
        assert an.include_companion_cap
        assert an.context == ctx


class TestInsertRepeatersContext:
    def test_wire_widths_honored(self):
        tree = two_pin_net(length=8000.0)
        edges = [i for i in range(len(tree)) if tree.parent(i) is not None]
        widths = {e: 2.0 for e in edges}
        options = MSRIOptions(library=paper_repeater_library())
        result = insert_repeaters(
            tree, PAPER_TECH, options, context=EvalContext(wire_widths=widths)
        )
        for sol in result.solutions:
            replay = ard(
                tree,
                PAPER_TECH,
                context=EvalContext(
                    assignment={
                        k: v
                        for k, v in sol.assignment().items()
                        if isinstance(v, Repeater)
                    },
                    wire_widths=widths,
                ),
            )
            assert replay.value == pytest.approx(sol.ard, rel=1e-9)

    def test_rejects_assignment_and_companion(self):
        tree = two_pin_net()
        m = next(iter(tree.insertion_indices()))
        options = MSRIOptions(library=paper_repeater_library())
        with pytest.raises(ValueError):
            insert_repeaters(
                tree,
                PAPER_TECH,
                options,
                context=EvalContext(assignment={m: OPTIONS[0]}),
            )
        with pytest.raises(ValueError):
            insert_repeaters(
                tree,
                PAPER_TECH,
                options,
                context=EvalContext(include_companion_cap=True),
            )


class FullRecomputeEngine:
    """The pre-incremental oracle: a fresh full pass per probe."""

    def __init__(self, tree, tech):
        self._tree = tree
        self._tech = tech
        self._assignment = {}

    def set_assignment(self, node, repeater):
        if repeater is None:
            self._assignment.pop(node, None)
        else:
            self._assignment[node] = repeater

    def evaluate(self, tree=None):
        return ard(
            self._tree,
            self._tech,
            context=EvalContext(assignment=dict(self._assignment)),
        )


class TestConsumers:
    def test_greedy_trajectories_identical(self):
        tree = random_net(2, 14, paper_net_spec(), spacing=800.0)
        lib = paper_repeater_library()
        fast = greedy_insertion(tree, PAPER_TECH, lib, max_steps=3)
        slow = greedy_insertion(
            tree,
            PAPER_TECH,
            lib,
            max_steps=3,
            engine=FullRecomputeEngine(tree, PAPER_TECH),
        )
        assert len(fast) == len(slow)
        for a, b in zip(fast, slow):
            assert a.ard == b.ard  # bit-identical: shared combine step
            assert a.cost == b.cost
            assert a.assignment.keys() == b.assignment.keys()

    def test_variation_uses_incremental_engine(self):
        """The rewired Monte-Carlo equals the original rebuild-per-sample
        implementation (same rng stream, same model) to float tolerance."""
        from repro.analysis.variation import (
            VariationModel,
            _factor,
            _scaled_repeaters,
            monte_carlo_ard,
        )

        tree = random_net(4, 8, paper_net_spec(), spacing=800.0)
        m = next(iter(tree.insertion_indices()))
        assignment = {m: OPTIONS[0]}
        model = VariationModel()
        samples = 5
        res = monte_carlo_ard(
            tree, PAPER_TECH, assignment, model=model, samples=samples, seed=42
        )

        rng = np.random.default_rng(42)
        for k in range(samples):
            f_wr = _factor(rng, model.wire_resistance_spread)
            f_wc = _factor(rng, model.wire_capacitance_spread)
            f_dr = _factor(rng, model.device_resistance_spread)
            f_dc = _factor(rng, model.device_capacitance_spread)
            var_tech = Technology(
                PAPER_TECH.unit_resistance * f_wr,
                PAPER_TECH.unit_capacitance * f_wc,
                name="var",
                extras=dict(PAPER_TECH.extras),
            )
            overrides = {
                idx: dataclasses.replace(
                    tree.node(idx).terminal,
                    resistance=tree.node(idx).terminal.resistance * f_dr,
                    capacitance=tree.node(idx).terminal.capacitance * f_dc,
                )
                for idx in tree.terminal_indices()
            }
            var_tree = shadow_with_overrides(tree, overrides)
            var_assignment = _scaled_repeaters(assignment, f_dr, f_dc)
            ref = ard(
                var_tree,
                var_tech,
                context=EvalContext(assignment=var_assignment),
            ).value
            assert res.samples[k] == pytest.approx(ref, rel=1e-9)

    def test_topology_search_engine_factory(self):
        from repro.steiner import synthesize_topology

        terminals = [
            make_terminal("a", 0, 0),
            make_terminal("b", 1500, 0),
            make_terminal("c", 700, 900),
            make_terminal("d", 200, 1400),
        ]
        default = synthesize_topology(terminals, TECH)
        explicit = synthesize_topology(
            terminals,
            TECH,
            engine_factory=lambda tree: ElmoreAnalyzer(tree, TECH),
        )
        assert default.ard == explicit.ard  # same oracle arithmetic
        assert default.terminal_edges == explicit.terminal_edges


class TestContracts:
    def test_evaluate_cross_checks_under_repro_check(self):
        tree = random_net(6, 8, paper_net_spec(), spacing=800.0)
        with contracts.checking():
            engine = IncrementalARD(tree, PAPER_TECH)
            m = next(iter(tree.insertion_indices()))
            engine.set_assignment(m, OPTIONS[0])
            assert engine.evaluate().is_finite

    def test_verifier_raises_on_divergence(self):
        tree = y_net()
        engine = IncrementalARD(tree, TECH)
        good = engine.evaluate()
        contracts.verify_incremental_consistency(good, engine)  # passes
        bad_value = dataclasses.replace(good, value=good.value + 1.0)
        with pytest.raises(contracts.ContractViolation):
            contracts.verify_incremental_consistency(bad_value, engine)
        bad_pair = dataclasses.replace(good, sink=good.source)
        with pytest.raises(contracts.ContractViolation):
            contracts.verify_incremental_consistency(bad_pair, engine)
