"""End-to-end tests for optimal multisource repeater insertion (MSRI).

The decisive checks:

1. the DP's (cost, ARD) frontier equals the exhaustive-enumeration frontier
   on every instance small enough to enumerate (Theorem 4.1);
2. every solution the DP claims is *achievable*: replaying its assignment
   through the independent Elmore engine reproduces the claimed ARD.
"""

import math

import numpy as np
import pytest

from repro.analysis.exhaustive import enumerate_assignments, exhaustive_frontier
from repro.core.ard import ard
from repro.rctree import EvalContext
from repro.core.driver_sizing import make_driver_options
from repro.core.msri import MSRIOptions, insert_repeaters
from repro.tech import (
    Buffer,
    Repeater,
    RepeaterLibrary,
    Technology,
)

from .conftest import random_topology, two_pin_net, y_net

TECH = Technology(unit_resistance=0.1, unit_capacitance=0.01, name="test")
REP = Repeater.from_buffer_pair(
    Buffer("b", intrinsic_delay=20.0, output_resistance=50.0, input_capacitance=0.25),
    name="rep",
)
ASYM = Repeater.from_buffer_pair(
    Buffer("f", 10.0, 80.0, 0.1),
    Buffer("g", 30.0, 40.0, 0.3),
    name="asym",
)
BIG = Repeater.from_buffer_pair(Buffer("B", 20.0, 25.0, 0.5, cost=2.0), name="big")
LIB = RepeaterLibrary([REP])
MULTI_LIB = RepeaterLibrary([ASYM, BIG])
BASE_1X = Buffer("1x", 20.0, 200.0, 0.05)


def frontiers_equal(dp, ex, tol=1e-6):
    if len(dp) != len(ex):
        return False
    return all(
        abs(a[0] - b[0]) <= tol and abs(a[1] - b[1]) <= tol for a, b in zip(dp, ex)
    )


class TestOptionsValidation:
    def test_need_something_to_optimize(self):
        with pytest.raises(ValueError):
            MSRIOptions()


class TestTwoPin:
    def test_frontier_matches_exhaustive(self):
        t = two_pin_net(length=4000.0)
        res = insert_repeaters(t, TECH, MSRIOptions(library=LIB))
        assert frontiers_equal(res.tradeoff(), exhaustive_frontier(t, TECH, LIB))

    def test_repeater_improves_long_net(self):
        t = two_pin_net(length=4000.0)
        res = insert_repeaters(t, TECH, MSRIOptions(library=LIB))
        assert res.min_ard().ard < res.min_cost().ard
        assert res.min_ard().repeater_count() >= 1

    def test_short_net_needs_no_repeater(self):
        # a slow repeater (large intrinsic delay) can never pay off on a
        # short wire, so the fastest solution is the unbuffered one
        slow = RepeaterLibrary(
            [Repeater.from_buffer_pair(Buffer("s", 500.0, 50.0, 0.25), name="slow")]
        )
        t = two_pin_net(length=200.0)
        res = insert_repeaters(t, TECH, MSRIOptions(library=slow))
        assert res.min_ard().repeater_count() == 0

    def test_min_cost_meeting_spec(self):
        t = two_pin_net(length=4000.0)
        res = insert_repeaters(t, TECH, MSRIOptions(library=LIB))
        cheap, fast = res.min_cost(), res.min_ard()
        # the unbuffered diameter is achievable at cost 0
        assert res.min_cost_meeting(cheap.ard).cost == cheap.cost
        # asking for the best diameter returns the full-cost solution
        assert res.min_cost_meeting(fast.ard).ard <= fast.ard
        # an impossible spec yields None
        assert res.min_cost_meeting(fast.ard * 0.5) is None


class TestAgainstExhaustive:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_nets_symmetric_lib(self, seed):
        rng = np.random.default_rng(seed)
        t = random_topology(rng, n_terminals=int(rng.integers(3, 6)), p_insertion=0.7)
        res = insert_repeaters(t, TECH, MSRIOptions(library=LIB))
        assert frontiers_equal(res.tradeoff(), exhaustive_frontier(t, TECH, LIB))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_nets_multi_lib(self, seed):
        rng = np.random.default_rng(1000 + seed)
        t = random_topology(rng, n_terminals=4, p_insertion=0.6)
        res = insert_repeaters(t, TECH, MSRIOptions(library=MULTI_LIB))
        assert frontiers_equal(
            res.tradeoff(), exhaustive_frontier(t, TECH, MULTI_LIB)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_driver_sizing_mode(self, seed):
        rng = np.random.default_rng(2000 + seed)
        t = random_topology(rng, n_terminals=3, p_insertion=0.0)
        opts = make_driver_options(BASE_1X, scales=(1.0, 2.0))
        res = insert_repeaters(t, TECH, MSRIOptions(driver_options=opts))
        assert frontiers_equal(
            res.tradeoff(), exhaustive_frontier(t, TECH, driver_options=opts)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_combined_mode(self, seed):
        rng = np.random.default_rng(3000 + seed)
        t = random_topology(rng, n_terminals=3, p_insertion=0.5)
        opts = make_driver_options(BASE_1X, scales=(1.0, 2.0))
        lib = RepeaterLibrary([ASYM])
        res = insert_repeaters(
            t, TECH, MSRIOptions(library=lib, driver_options=opts)
        )
        assert frontiers_equal(
            res.tradeoff(), exhaustive_frontier(t, TECH, lib, driver_options=opts)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_pairwise_pruner_same_frontier(self, seed):
        rng = np.random.default_rng(4000 + seed)
        t = random_topology(rng, n_terminals=4, p_insertion=0.7)
        dnc = insert_repeaters(
            t, TECH, MSRIOptions(library=LIB, use_divide_and_conquer=True)
        )
        pair = insert_repeaters(
            t, TECH, MSRIOptions(library=LIB, use_divide_and_conquer=False)
        )
        assert frontiers_equal(dnc.tradeoff(), pair.tradeoff())


class TestAchievability:
    """Theorem 4.1, the other direction: claimed solutions must be real."""

    @pytest.mark.parametrize("seed", range(10))
    def test_replay_assignment_reproduces_ard(self, seed):
        rng = np.random.default_rng(5000 + seed)
        t = random_topology(rng, n_terminals=int(rng.integers(3, 7)), p_insertion=0.8)
        res = insert_repeaters(t, TECH, MSRIOptions(library=MULTI_LIB))
        for s in res.solutions:
            assignment = {
                k: v for k, v in s.assignment().items() if isinstance(v, Repeater)
            }
            replay = ard(t, TECH, context=EvalContext(assignment=assignment))
            assert replay.value == pytest.approx(s.ard, rel=1e-9)
            cost = sum(r.cost for r in assignment.values())
            assert cost == pytest.approx(s.cost)

    def test_frontier_sorted_and_strictly_improving(self):
        rng = np.random.default_rng(99)
        t = random_topology(rng, n_terminals=5, p_insertion=0.8)
        res = insert_repeaters(t, TECH, MSRIOptions(library=LIB))
        costs = [s.cost for s in res.solutions]
        ards = [s.ard for s in res.solutions]
        assert costs == sorted(costs)
        assert all(a > b for a, b in zip(ards, ards[1:]))


class TestRootIndependenceOfOptimum:
    @pytest.mark.parametrize("seed", range(5))
    def test_min_ard_same_from_any_root(self, seed):
        rng = np.random.default_rng(6000 + seed)
        t = random_topology(rng, n_terminals=4, p_insertion=0.6)
        ref = insert_repeaters(t, TECH, MSRIOptions(library=LIB))
        for term_idx in t.terminal_indices()[1:]:
            t2 = t.rerooted(term_idx)
            res = insert_repeaters(t2, TECH, MSRIOptions(library=LIB))
            assert frontiers_equal(res.tradeoff(), ref.tradeoff())


class TestSingleSourceDegeneration:
    def test_matches_exhaustive_on_single_source_net(self):
        """With one source the problem reduces to classic buffer insertion."""
        rng = np.random.default_rng(7)
        for _ in range(5):
            t = random_topology(rng, n_terminals=4, p_insertion=0.7)
            # make terminal 0 the only source
            from repro.rctree.topology import Node, NodeKind, RoutingTree

            nodes = []
            first = True
            for n in t.nodes:
                if n.kind is NodeKind.TERMINAL:
                    term = n.terminal
                    if first:
                        term = term.as_source_only()
                        first = False
                    else:
                        term = term.as_sink_only()
                    nodes.append(Node(n.index, n.x, n.y, n.kind, term))
                else:
                    nodes.append(n)
            t1 = RoutingTree(
                nodes,
                [t.parent(i) for i in range(len(t))],
                [t.edge_length(i) for i in range(len(t))],
            )
            res = insert_repeaters(t1, TECH, MSRIOptions(library=LIB))
            assert frontiers_equal(
                res.tradeoff(), exhaustive_frontier(t1, TECH, LIB)
            )


class TestRandomizedLibraries:
    """Hypothesis sweep: random electrical parameters, random topologies —
    the DP must match the oracle for *any* library, not just the fixtures."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @staticmethod
    def _random_library(rng):
        reps = []
        for k in range(int(rng.integers(1, 3))):
            fwd = Buffer(
                f"f{k}",
                intrinsic_delay=float(rng.uniform(0.0, 80.0)),
                output_resistance=float(rng.uniform(20.0, 300.0)),
                input_capacitance=float(rng.uniform(0.05, 0.6)),
                cost=float(rng.integers(1, 4)),
            )
            if rng.random() < 0.5:
                bwd = Buffer(
                    f"g{k}",
                    intrinsic_delay=float(rng.uniform(0.0, 80.0)),
                    output_resistance=float(rng.uniform(20.0, 300.0)),
                    input_capacitance=float(rng.uniform(0.05, 0.6)),
                    cost=float(rng.integers(1, 4)),
                )
            else:
                bwd = None
            reps.append(Repeater.from_buffer_pair(fwd, bwd, name=f"r{k}"))
        return RepeaterLibrary(reps)

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=25, deadline=None)
    def test_property_dp_equals_oracle(self, seed):
        rng = np.random.default_rng(seed)
        t = random_topology(rng, n_terminals=int(rng.integers(2, 5)),
                            p_insertion=0.6)
        lib = self._random_library(rng)
        n_options = len(lib.oriented_options()) + 1
        if n_options ** len(t.insertion_indices()) > 100_000:
            return  # too large to enumerate; skip this draw
        res = insert_repeaters(t, TECH, MSRIOptions(library=lib))
        assert frontiers_equal(
            res.tradeoff(), exhaustive_frontier(t, TECH, lib)
        ), f"seed={seed}"


class TestStatsAndResultHelpers:
    def test_stats_populated(self):
        t = two_pin_net(length=4000.0)
        res = insert_repeaters(t, TECH, MSRIOptions(library=LIB))
        assert res.stats.nodes_processed == len(t) - 1
        assert res.stats.solutions_generated >= res.stats.solutions_after_pruning
        assert res.stats.runtime_seconds > 0.0
        assert res.stats.max_set_size >= 1

    def test_with_repeater_count(self):
        t = two_pin_net(length=4000.0)
        res = insert_repeaters(t, TECH, MSRIOptions(library=LIB))
        zero = res.with_repeater_count(0)
        assert zero is not None and zero.repeater_count() == 0
        assert res.with_repeater_count(99) is None

    def test_exhaustive_cap(self):
        rng = np.random.default_rng(1)
        t = random_topology(rng, n_terminals=12, p_insertion=1.0)
        with pytest.raises(ValueError, match="cap"):
            enumerate_assignments(t, TECH, MULTI_LIB)


class TestResultSelectors:
    """Direct coverage of the MSRIResult query methods on a synthetic
    frontier — the cheapest-first (cost, ARD) suite the DP contractually
    returns, here with known repeater counts per solution."""

    @staticmethod
    def make_result(specs):
        """An MSRIResult from (cost, ard, n_repeaters) triples."""
        from repro.core.msri import MSRIResult, MSRIStats
        from repro.core.solution import Placement, RootSolution, Trace

        tree = two_pin_net(length=1000.0)
        node = tree.insertion_indices()[0]
        sols = []
        for cost, ard_value, reps in specs:
            trace = Trace()
            for _ in range(reps):
                trace = trace.extended(Placement(node, REP))
            sols.append(RootSolution(cost=cost, ard=ard_value, trace=trace))
        return MSRIResult(solutions=tuple(sols), stats=MSRIStats(), tree=tree)

    def test_min_cost_meeting(self):
        res = self.make_result([(1.0, 50.0, 0), (2.0, 30.0, 1), (4.0, 20.0, 2)])
        assert res.min_cost_meeting(60.0).cost == 1.0
        assert res.min_cost_meeting(35.0).cost == 2.0
        assert res.min_cost_meeting(20.0).cost == 4.0
        assert res.min_cost_meeting(10.0) is None  # unachievable spec

    def test_min_ard_and_min_cost(self):
        res = self.make_result([(1.0, 50.0, 0), (2.0, 30.0, 1), (4.0, 20.0, 2)])
        assert res.min_ard().ard == 20.0
        assert res.min_cost().cost == 1.0

    def test_tradeoff_order(self):
        res = self.make_result([(1.0, 50.0, 0), (2.0, 30.0, 1)])
        assert res.tradeoff() == [(1.0, 50.0), (2.0, 30.0)]

    def test_with_repeater_count_picks_fastest(self):
        res = self.make_result(
            [(1.0, 50.0, 1), (2.0, 30.0, 1), (4.0, 20.0, 2)]
        )
        one = res.with_repeater_count(1)
        assert one.ard == 30.0  # fastest among the count-1 solutions
        assert res.with_repeater_count(0) is None
        assert res.with_repeater_count(3) is None

    def test_single_solution_frontier(self):
        res = self.make_result([(1.0, 50.0, 0)])
        assert res.min_cost() is res.min_ard()
        assert res.min_cost_meeting(50.0) is res.solutions[0]
        assert res.tradeoff() == [(1.0, 50.0)]
